//! # bff — Back-and-Forth FS
//!
//! A from-scratch Rust implementation of *"Going Back and Forth:
//! Efficient Multideployment and Multisnapshotting on Clouds"*
//! (Nicolae, Bresnahan, Keahey, Antoniu — HPDC 2011): a distributed
//! virtual file system for VM images that makes deploying hundreds of
//! instances and snapshotting them back cheap, transparent and
//! hypervisor-independent.
//!
//! This façade crate re-exports the workspace:
//!
//! * [`core`] — the paper's contribution: the mirroring module
//!   (on-demand lazy fetching, local modification tracking,
//!   CLONE/COMMIT snapshotting) and its POSIX-like VFS.
//! * [`blobseer`] — the versioning storage substrate: striping,
//!   shadowed segment trees, cloning, providers and managers.
//! * [`cloud`] — middleware, image backends, the hypervisor model and
//!   the experiment drivers behind every figure of the paper.
//! * [`qcow2`], [`pvfs`], [`bcast`] — the baselines: a CoW image
//!   format, a striped distributed file system, broadcast trees.
//! * [`sim`] — the deterministic discrete-event cluster simulator that
//!   stands in for the Grid'5000 testbed.
//! * [`data`], [`net`], [`workloads`] — payload ropes, the fabric
//!   cost-accounting abstraction, and workload generators.
//!
//! ## Quickstart
//!
//! ```
//! use bff::prelude::*;
//! use std::sync::Arc;
//!
//! // An in-process cloud: 4 compute nodes + 1 service node.
//! let fabric = LocalFabric::new(5);
//! let compute: Vec<NodeId> = (0..4).map(NodeId).collect();
//! let cloud = Cloud::new(
//!     fabric,
//!     compute.clone(),
//!     NodeId(4),
//!     BlobConfig { chunk_size: 64 << 10, ..Default::default() },
//!     Calibration::default(),
//! );
//!
//! // Upload an image, deploy two instances, modify, snapshot.
//! let image = Payload::synth(42, 0, 1 << 20);
//! let (blob, v) = cloud.upload_image(image).unwrap();
//! let mut vms = cloud.deploy(blob, v, &compute[..2]).unwrap();
//! vms[0].backend.write(0, Payload::from(vec![7u8; 100])).unwrap();
//! let snaps = cloud.snapshot_all(&mut vms).unwrap();
//!
//! // Every snapshot is a standalone raw image.
//! let img = cloud.download_image(snaps[0].0, snaps[0].1).unwrap();
//! assert_eq!(img.slice(0, 100).materialize(), vec![7u8; 100]);
//! ```

pub use bff_bcast as bcast;
pub use bff_blobseer as blobseer;
pub use bff_cloud as cloud;
pub use bff_core as core;
pub use bff_data as data;
pub use bff_net as net;
pub use bff_pvfs as pvfs;
pub use bff_qcow2 as qcow2;
pub use bff_sim as sim;
pub use bff_wire as wire;
pub use bff_workloads as workloads;

/// The commonly needed names in one import.
pub mod prelude {
    pub use bff_blobseer::{
        BlobConfig, BlobError, BlobId, CacheStats, Client as BlobClient, NodeContext,
        PrefetchStats, Version,
    };
    pub use bff_cloud::backend::ImageBackend;
    pub use bff_cloud::middleware::{Cloud, VmHandle};
    pub use bff_cloud::params::Calibration;
    pub use bff_core::{MirrorConfig, MirroredImage, VirtualFs};
    pub use bff_data::Payload;
    pub use bff_net::{Fabric, LocalFabric, NodeId};
}
