//! Offline shim of `crossbeam`: multi-producer multi-consumer channels
//! (both `Sender` and `Receiver` are `Clone`, matching crossbeam's
//! semantics which std::sync::mpsc lacks), built on a mutex + condvars.
//! Only the `channel` module is provided — the subset this workspace uses.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        /// Signalled when an item arrives or all senders drop.
        readable: Condvar,
        /// Signalled when space frees up or all receivers drop.
        writable: Condvar,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        capacity: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// The sending half; cloneable (multi-producer).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (multi-consumer).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// An unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// A bounded channel: sends block while `cap` items are queued.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        // A zero-capacity crossbeam channel is a rendezvous; this shim
        // approximates it with capacity 1, which preserves ordering and
        // never deadlocks callers that would have rendezvoused.
        with_capacity(Some(cap.max(1)))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                capacity,
                senders: 1,
                receivers: 1,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Send a value, blocking while the channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = inner.capacity.is_some_and(|c| inner.queue.len() >= c);
                if !full {
                    inner.queue.push_back(value);
                    self.shared.readable.notify_one();
                    return Ok(());
                }
                inner = self
                    .shared
                    .writable
                    .wait(inner)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receive a value, blocking until one arrives or all senders drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    self.shared.writable.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self
                    .shared
                    .readable
                    .wait(inner)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Receive without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            match inner.queue.pop_front() {
                Some(v) => {
                    self.shared.writable.notify_one();
                    Ok(v)
                }
                None if inner.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking iterator draining the channel until disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.senders -= 1;
            if inner.senders == 0 {
                self.shared.readable.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.receivers -= 1;
            if inner.receivers == 0 {
                self.shared.writable.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn baton_roundtrip() {
            let (tx, rx) = bounded::<u32>(1);
            let rx2 = rx.clone();
            let h = std::thread::spawn(move || rx2.recv().unwrap());
            tx.send(7).unwrap();
            assert_eq!(h.join().unwrap(), 7);
        }

        #[test]
        fn disconnect_is_observed() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert!(tx.send(2).is_err());
        }

        #[test]
        fn iter_drains() {
            let (tx, rx) = unbounded();
            for i in 0..3 {
                tx.send(i).unwrap();
            }
            drop(tx);
            assert_eq!(rx.iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        }
    }
}
