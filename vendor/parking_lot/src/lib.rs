//! Offline shim of `parking_lot`: `Mutex` and `RwLock` with the
//! non-poisoning API, implemented over `std::sync`. A poisoned std lock
//! (a panic while held) simply hands back the inner guard, matching
//! parking_lot's behaviour of never poisoning.

use std::fmt;
use std::sync::{self, TryLockError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that does not poison.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock that does not poison.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn rwlock_try_variants() {
        let l = RwLock::new(1);
        {
            let _r = l.read();
            assert!(l.try_read().is_some(), "readers share");
            assert!(l.try_write().is_none(), "writer excluded by reader");
        }
        {
            let _w = l.write();
            assert!(l.try_read().is_none(), "reader excluded by writer");
            assert!(l.try_write().is_none(), "writers exclusive");
        }
        *l.try_write().expect("uncontended") += 1;
        assert_eq!(*l.try_read().expect("uncontended"), 2);
    }
}
