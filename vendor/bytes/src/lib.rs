//! Offline shim of the `bytes` crate: a cheaply cloneable, sliceable byte
//! buffer backed by `Arc<[u8]>`. Implements exactly the API surface the
//! workspace uses (`copy_from_slice`, `slice`, `Deref<Target = [u8]>`,
//! `From<Vec<u8>>`); drop-in replaceable by the real crate when a registry
//! is available.

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A reference-counted, sliceable view into an immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::from_vec(Vec::new())
    }

    /// Copy `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from_vec(data.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            data: Arc::from(v.into_boxed_slice()),
            start: 0,
            end,
        }
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view sharing the same backing buffer (O(1), no copy).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= end && end <= len,
            "slice {begin}..{end} out of bounds (len {len})"
        );
        Self {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter().take(32) {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        if self.len() > 32 {
            write!(f, "…")?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self::from_vec(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Self::copy_from_slice(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Self::copy_from_slice(s.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_and_clamps() {
        let b = Bytes::copy_from_slice(b"hello world");
        let s = b.slice(6..11);
        assert_eq!(&s[..], b"world");
        let s2 = s.slice(1..3);
        assert_eq!(&s2[..], b"or");
        assert_eq!(b.len(), 11);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_oob_panics() {
        Bytes::copy_from_slice(b"ab").slice(1..4);
    }
}
