//! Offline shim of `proptest`: the macro/strategy subset this workspace's
//! property tests use, backed by a deterministic RNG. Differences from the
//! real crate: no shrinking (a failing case reports its case index and
//! message only), and generation distributions are simple uniforms.
//! Seeds are fixed per (test name, case index), so failures reproduce.

pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::ops::Range;

    /// The RNG handed to strategies.
    pub struct TestRng(pub(crate) SmallRng);

    impl TestRng {
        pub(crate) fn for_case(test_name: &str, case: u32) -> Self {
            // Stable seed: FNV-1a over the test name, mixed with the case.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
            Self(SmallRng::seed_from_u64(
                h ^ ((case as u64) << 1 | 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            ))
        }

        /// Uniform u64 below `n`.
        pub fn below(&mut self, n: u64) -> u64 {
            self.0.gen_range(0..n.max(1))
        }

        /// Raw 64 random bits.
        pub fn bits(&mut self) -> u64 {
            self.0.gen::<u64>()
        }
    }

    /// A generator of test values.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erase the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng: &mut TestRng| self.generate(rng)))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    (self.start as u64 + rng.below(self.end as u64 - self.start as u64)) as $t
                }
            }
        )+};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident: $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

    /// `any::<T>()` support.
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.bits() & 1 == 1
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.bits()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.bits() as u32
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            rng.bits() as u8
        }
    }

    /// Strategy for any value of `T`.
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The `any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for a `Vec` whose length is drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `prop::collection::vec(element, min..max)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use crate::strategy::TestRng;
    use std::fmt;

    /// Runner configuration (`cases` = iterations per property).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` iterations.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// A property failure (from `prop_assert!` family or explicit `fail`).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Fail with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self(msg.into())
        }

        /// Alias of [`TestCaseError::fail`] (proptest's `Reject` is not
        /// distinguished in this shim).
        pub fn reject(msg: impl Into<String>) -> Self {
            Self(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Drives the cases for one property. Used by the `proptest!` macro.
    pub fn run_cases<F>(test_name: &str, config: &ProptestConfig, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        for i in 0..config.cases {
            let mut rng = TestRng::for_case(test_name, i);
            if let Err(e) = case(&mut rng) {
                panic!(
                    "proptest property '{test_name}' failed at case {i}/{}: {e}",
                    config.cases
                );
            }
        }
    }
}

/// `use proptest::prelude::*;` surface.
pub mod prelude {
    pub use crate::strategy::{any, Any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// The `prop::` module path (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of `#[test] fn name(arg in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run_cases(stringify!($name), &config, |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                $body
                #[allow(unreachable_code)]
                Ok(())
            });
        }
        $crate::__proptest_items!($cfg; $($rest)*);
    };
}

/// Assert inside a property; failure aborts only the current case with a
/// message (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($a), stringify!($b), left, right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 0..100u64, b in any::<bool>(),
                                 v in prop::collection::vec(0..10u32, 0..5)) {
            prop_assert!(x < 100);
            prop_assert!(v.len() < 5);
            let _ = b;
            for e in v {
                prop_assert!(e < 10, "element {} out of range", e);
            }
        }

        #[test]
        fn oneof_and_map_work(op in prop_oneof![
            (0..10u64).prop_map(|x| x * 2),
            Just(99u64),
        ]) {
            prop_assert!(op == 99 || (op % 2 == 0 && op < 20));
        }
    }

    #[test]
    fn failures_report_case() {
        let result = std::panic::catch_unwind(|| {
            crate::test_runner::run_cases("always_fails", &ProptestConfig::with_cases(5), |_rng| {
                Err(TestCaseError::fail("boom"))
            });
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(
            msg.contains("always_fails") && msg.contains("boom"),
            "{msg}"
        );
    }
}
