//! Offline shim of `criterion`: a minimal but honest micro-benchmark
//! harness with the same macro/API surface the workspace's benches use.
//! Each benchmark is auto-calibrated to a target measurement time, run as
//! several samples, and reported as the median ns/iteration (with min/max
//! spread). Set `BFF_BENCH_JSON=<path>` to also append one JSON object per
//! benchmark — the workspace's `BENCH_*.json` perf trajectory hooks into
//! that. `BFF_BENCH_FAST=1` cuts calibration for smoke runs.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How batched inputs are sized (ignored by this shim).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Throughput annotation attached to a group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/name` identifier.
    pub id: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Iterations per sample used.
    pub iters: u64,
    /// Optional throughput annotation.
    pub throughput: Option<Throughput>,
}

/// The harness entry point.
pub struct Criterion {
    target: Duration,
    samples: usize,
    results: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        let fast = std::env::var("BFF_BENCH_FAST").is_ok_and(|v| v != "0");
        Self {
            target: if fast {
                Duration::from_millis(20)
            } else {
                Duration::from_millis(200)
            },
            samples: if fast { 3 } else { 11 },
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        let m = run_benchmark(name.to_string(), None, self.target, self.samples, f);
        report(&m);
        self.results.push(m);
    }

    /// Dump collected results; called by `criterion_group!` at group end.
    pub fn final_summary(&self) {
        if let Ok(path) = std::env::var("BFF_BENCH_JSON") {
            let mut out = String::new();
            for m in &self.results {
                let tp = match m.throughput {
                    Some(Throughput::Bytes(b)) => format!(
                        ",\"throughput_bytes\":{b},\"mib_per_s\":{:.1}",
                        b as f64 / (m.median_ns / 1e9) / (1 << 20) as f64
                    ),
                    Some(Throughput::Elements(e)) => format!(",\"throughput_elems\":{e}"),
                    None => String::new(),
                };
                out.push_str(&format!(
                    "{{\"bench\":\"{}\",\"median_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},\"iters\":{}{}}}\n",
                    m.id, m.median_ns, m.min_ns, m.max_ns, m.iters, tp
                ));
            }
            use std::io::Write;
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
            {
                let _ = f.write_all(out.as_bytes());
            }
        }
    }
}

/// A named group; benchmarks report as `group/name`.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, tp: Throughput) {
        self.throughput = Some(tp);
    }

    /// Run one benchmark in the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        let id = format!("{}/{}", self.name, name);
        let m = run_benchmark(id, self.throughput, self.c.target, self.c.samples, f);
        report(&m);
        self.c.results.push(m);
    }

    /// Finish the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; drives the measured iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `f` over the configured number of iterations.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Measure `routine` only, constructing a fresh input with `setup`
    /// outside the timed region each iteration.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_benchmark(
    id: String,
    throughput: Option<Throughput>,
    target: Duration,
    samples: usize,
    mut f: impl FnMut(&mut Bencher),
) -> Measurement {
    // Calibrate: find an iteration count whose sample takes >= target/samples.
    let per_sample = target / samples as u32;
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= per_sample || iters >= 1 << 30 {
            break;
        }
        let scale = (per_sample.as_secs_f64() / b.elapsed.as_secs_f64().max(1e-9)).min(1024.0);
        iters = ((iters as f64 * scale).ceil() as u64).max(iters + 1);
    }
    // Measure.
    let mut per_iter_ns: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() * 1e9 / iters as f64
        })
        .collect();
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("time is finite"));
    Measurement {
        id,
        median_ns: per_iter_ns[per_iter_ns.len() / 2],
        min_ns: per_iter_ns[0],
        max_ns: *per_iter_ns.last().expect("samples > 0"),
        iters,
        throughput,
    }
}

fn report(m: &Measurement) {
    let human = |ns: f64| -> String {
        if ns >= 1e9 {
            format!("{:.3} s", ns / 1e9)
        } else if ns >= 1e6 {
            format!("{:.3} ms", ns / 1e6)
        } else if ns >= 1e3 {
            format!("{:.3} µs", ns / 1e3)
        } else {
            format!("{ns:.1} ns")
        }
    };
    let tp = match m.throughput {
        Some(Throughput::Bytes(b)) => {
            let mibs = b as f64 / (m.median_ns / 1e9) / (1 << 20) as f64;
            format!("  thrpt: {mibs:.1} MiB/s")
        }
        _ => String::new(),
    };
    println!(
        "{:<44} time: [{} {} {}]{}",
        m.id,
        human(m.min_ns),
        human(m.median_ns),
        human(m.max_ns),
        tp
    );
}

/// Define a benchmark group function running each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
            c.final_summary();
        }
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes harness flags (e.g. --bench); ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        std::env::set_var("BFF_BENCH_FAST", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Bytes(1024));
        group.bench_function("sum", |b| {
            b.iter(|| (0..1024u64).sum::<u64>());
        });
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 1024],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
        group.finish();
        assert_eq!(c.results.len(), 2);
        assert!(c.results.iter().all(|m| m.median_ns > 0.0));
    }
}
