//! Offline shim of `rand` 0.8: deterministic `SmallRng` (xoshiro256++),
//! the `Rng`/`SeedableRng` traits, and uniform range sampling for the
//! integer and float ranges this workspace draws from. Not cryptographic;
//! bit-compatible determinism with the real crate is NOT guaranteed, only
//! self-consistency (same seed → same sequence under this shim).

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Uniform sample from a range (`a..b` or `a..=b`).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniformly random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types with a natural uniform distribution over all values.
pub trait Standard {
    /// Draw one value.
    fn from_rng<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one value from the range. Panics on empty ranges.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, lo: u64, hi_incl: u64) -> u64 {
    let span = hi_incl.wrapping_sub(lo).wrapping_add(1);
    if span == 0 {
        // Full u64 range.
        return rng.next_u64();
    }
    // Multiply-shift bounded sampling (Lemire); bias is negligible for
    // simulation purposes and vanishes for power-of-two spans.
    let x = rng.next_u64();
    lo + (((x as u128 * span as u128) >> 64) as u64)
}

macro_rules! impl_int_range {
    ($($t:ty),+) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                uniform_u64(rng, self.start as u64, self.end as u64 - 1) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                uniform_u64(rng, lo as u64, hi as u64) as $t
            }
        }
    )+};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Named RNGs.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic RNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the reference xoshiro seeding does.
            let mut z = seed;
            let mut next = move || {
                z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut x = z;
                x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                x ^ (x >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u64), b.gen_range(0..1000u64));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5..=7u32);
            assert!((5..=7).contains(&w));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn spread_covers_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(rng.gen_range(0..8u32));
        }
        assert_eq!(seen.len(), 8);
    }
}
