//! Broadcast-tree construction and execution.
//!
//! The prepropagation baseline broadcasts the 2 GB image from the NFS
//! server to every compute node along a k-ary tree. Two execution modes:
//!
//! * [`BroadcastMode::StoreAndForward`] — each relay receives the whole
//!   file, writes it through to its local disk, and only then serves its
//!   children. This is what a generic deployment tool achieves in
//!   practice (every hop is disk-bound at the 55 MB/s measured in §5.1),
//!   and it reproduces the baseline's large, slowly-growing completion
//!   times in Fig. 4(b).
//! * [`BroadcastMode::Pipelined`] — blocks stream down the tree with
//!   per-block dependencies, the Frisbee-style optimum; used by the
//!   ablation benches to show how much of the baseline's cost is the
//!   tool rather than the pattern.

use crate::signals::{key_of, SignalTable};
use bff_net::{Fabric, NetError, NodeId};
use parking_lot::Mutex;
use std::sync::Arc;

/// How data moves down the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BroadcastMode {
    /// Whole-file relay with write-through disk persistence per hop.
    StoreAndForward,
    /// Block-granular pipelining with the given block size.
    Pipelined {
        /// Pipeline block size in bytes.
        block: u64,
    },
}

/// A configured broadcast.
pub struct TreeBroadcast {
    /// Tree fan-out (taktuk defaults to small arities).
    pub arity: usize,
    /// Execution mode.
    pub mode: BroadcastMode,
    /// Whether relays persist the image to disk (the prepropagation
    /// pattern requires it: VMs boot from the local copy afterwards).
    pub write_to_disk: bool,
}

impl Default for TreeBroadcast {
    fn default() -> Self {
        Self {
            arity: 2,
            mode: BroadcastMode::StoreAndForward,
            write_to_disk: true,
        }
    }
}

/// Result of a broadcast run.
#[derive(Debug, Clone)]
pub struct BroadcastOutcome {
    /// Per-target completion time (us, fabric clock) in input order.
    pub completion_us: Vec<u64>,
    /// Time the whole broadcast finished.
    pub makespan_us: u64,
}

/// Children of node `i` in the implicit k-ary tree over
/// `0..=n_targets` (0 is the source; targets are 1-based).
pub fn children_of(i: usize, arity: usize, total: usize) -> Vec<usize> {
    (1..=arity)
        .map(|c| i * arity + c)
        .filter(|&c| c < total)
        .collect()
}

/// Parent of node `i > 0`.
pub fn parent_of(i: usize, arity: usize) -> usize {
    (i - 1) / arity
}

/// The `(parent, child)` edges of the implicit k-ary broadcast tree
/// rooted at `source` over `targets`, in index order (parents always
/// precede their children). Control-plane gossip — e.g. the blobseer
/// `PatternBoard` disseminating access summaries — walks these edges to
/// charge one small transfer per hop without running a full
/// [`TreeBroadcast`].
pub fn tree_edges(source: NodeId, targets: &[NodeId], arity: usize) -> Vec<(NodeId, NodeId)> {
    assert!(arity >= 1, "arity must be at least 1");
    let nodes: Vec<NodeId> = std::iter::once(source)
        .chain(targets.iter().copied())
        .collect();
    (1..nodes.len())
        .map(|i| (nodes[parent_of(i, arity)], nodes[i]))
        .collect()
}

/// Depth of node `i` (root = 0).
pub fn depth_of(mut i: usize, arity: usize) -> usize {
    let mut d = 0;
    while i > 0 {
        i = parent_of(i, arity);
        d += 1;
    }
    d
}

impl TreeBroadcast {
    /// Broadcast `bytes` from `source` to `targets` over `fabric`,
    /// synchronizing relay order through `signals`. Returns per-target
    /// completion times.
    pub fn run(
        &self,
        fabric: &Arc<dyn Fabric>,
        signals: &Arc<dyn SignalTable>,
        source: NodeId,
        targets: &[NodeId],
        bytes: u64,
    ) -> Result<BroadcastOutcome, NetError> {
        assert!(self.arity >= 1, "arity must be at least 1");
        if targets.is_empty() {
            return Ok(BroadcastOutcome {
                completion_us: vec![],
                makespan_us: fabric.now_us(),
            });
        }
        // Node table: index 0 = source, 1.. = targets.
        let nodes: Vec<NodeId> = std::iter::once(source)
            .chain(targets.iter().copied())
            .collect();
        let total = nodes.len();
        let (block, blocks) = match self.mode {
            BroadcastMode::StoreAndForward => (bytes, 1u64),
            BroadcastMode::Pipelined { block } => {
                assert!(block > 0);
                (block, bytes.div_ceil(block))
            }
        };
        let completions: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(vec![0; total]));
        let errors: Arc<Mutex<Vec<NetError>>> = Arc::new(Mutex::new(Vec::new()));

        let mut tasks: Vec<Box<dyn FnOnce() + Send + 'static>> = Vec::with_capacity(total);
        // Source task: read the image off the source's disk, block by
        // block, publishing availability.
        {
            let fabric = Arc::clone(fabric);
            let signals = Arc::clone(signals);
            let errors = Arc::clone(&errors);
            tasks.push(Box::new(move || {
                for b in 0..blocks {
                    let this = block.min(bytes - b * block);
                    if let Err(e) = fabric.disk_read(source, this) {
                        errors.lock().push(e);
                        return;
                    }
                    signals.signal(key_of(0, b, blocks));
                }
            }));
        }
        // One relay task per target.
        let arity = self.arity;
        let write_to_disk = self.write_to_disk;
        for idx in 1..total {
            let fabric = Arc::clone(fabric);
            let signals = Arc::clone(signals);
            let completions = Arc::clone(&completions);
            let errors = Arc::clone(&errors);
            let nodes = nodes.clone();
            tasks.push(Box::new(move || {
                let me = nodes[idx];
                let parent = nodes[parent_of(idx, arity)];
                let run = || -> Result<(), NetError> {
                    for b in 0..blocks {
                        let this = block.min(bytes - b * block);
                        signals.wait(key_of(parent_of(idx, arity), b, blocks));
                        fabric.transfer(parent, me, this)?;
                        if write_to_disk {
                            // Relays persist write-through: the VM boots
                            // from this copy, it must be durable.
                            fabric.disk_write(me, this)?;
                        }
                        signals.signal(key_of(idx, b, blocks));
                    }
                    Ok(())
                };
                if let Err(e) = run() {
                    errors.lock().push(e);
                    return;
                }
                completions.lock()[idx] = fabric.now_us();
            }));
        }
        fabric.par_join(tasks);
        if let Some(e) = errors.lock().first() {
            return Err(e.clone());
        }
        let completion_us: Vec<u64> = completions.lock()[1..].to_vec();
        let makespan_us = completion_us.iter().copied().max().unwrap_or(0);
        Ok(BroadcastOutcome {
            completion_us,
            makespan_us,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signals::NullSignals;
    use bff_net::LocalFabric;

    #[test]
    fn tree_shape_is_consistent() {
        // 7 nodes, binary: 0 -> {1,2}, 1 -> {3,4}, 2 -> {5,6}.
        assert_eq!(children_of(0, 2, 7), vec![1, 2]);
        assert_eq!(children_of(1, 2, 7), vec![3, 4]);
        assert_eq!(children_of(3, 2, 7), Vec::<usize>::new());
        for i in 1..7 {
            assert!(children_of(parent_of(i, 2), 2, 7).contains(&i));
        }
        assert_eq!(depth_of(0, 2), 0);
        assert_eq!(depth_of(6, 2), 2);
        // Higher arity is shallower.
        assert!(depth_of(100, 4) < depth_of(100, 2));
    }

    #[test]
    fn tree_edges_cover_every_target_once() {
        let targets: Vec<NodeId> = (1..8).map(NodeId).collect();
        let edges = tree_edges(NodeId(0), &targets, 2);
        assert_eq!(edges.len(), targets.len(), "one inbound edge per target");
        // Every target appears exactly once as a child; parents are
        // either the source or earlier targets.
        let mut reached = std::collections::HashSet::from([NodeId(0)]);
        for (parent, child) in edges {
            assert!(reached.contains(&parent), "parent {parent} seen first");
            assert!(reached.insert(child), "child {child} reached twice");
        }
        for t in targets {
            assert!(reached.contains(&t));
        }
    }

    #[test]
    fn every_target_is_reachable() {
        for arity in 1..=4 {
            for total in 2..40 {
                let mut seen = vec![false; total];
                seen[0] = true;
                let mut frontier = vec![0usize];
                while let Some(i) = frontier.pop() {
                    for c in children_of(i, arity, total) {
                        assert!(!seen[c], "node visited twice");
                        seen[c] = true;
                        frontier.push(c);
                    }
                }
                assert!(seen.iter().all(|&s| s), "arity {arity} total {total}");
            }
        }
    }

    #[test]
    fn broadcast_moves_n_times_the_bytes() {
        let fabric: Arc<dyn Fabric> = LocalFabric::new(9);
        let signals: Arc<dyn SignalTable> = Arc::new(NullSignals);
        let targets: Vec<NodeId> = (1..9).map(NodeId).collect();
        let bc = TreeBroadcast::default();
        let out = bc
            .run(&fabric, &signals, NodeId(0), &targets, 1000)
            .unwrap();
        assert_eq!(out.completion_us.len(), 8);
        // Each of the 8 targets received the full payload exactly once.
        assert_eq!(fabric.stats().total_network_bytes(), 8 * 1000);
        // And persisted it.
        for t in &targets {
            assert_eq!(fabric.stats().node(*t).disk_written, 1000);
        }
    }

    #[test]
    fn pipelined_mode_transfers_same_volume() {
        let fabric: Arc<dyn Fabric> = LocalFabric::new(5);
        let signals: Arc<dyn SignalTable> = Arc::new(NullSignals);
        let targets: Vec<NodeId> = (1..5).map(NodeId).collect();
        let bc = TreeBroadcast {
            mode: BroadcastMode::Pipelined { block: 300 },
            ..Default::default()
        };
        bc.run(&fabric, &signals, NodeId(0), &targets, 1000)
            .unwrap();
        assert_eq!(fabric.stats().total_network_bytes(), 4 * 1000);
    }

    #[test]
    fn failed_relay_surfaces_error() {
        let local = LocalFabric::new(4);
        local.fail_node(NodeId(2));
        let fabric: Arc<dyn Fabric> = local;
        let signals: Arc<dyn SignalTable> = Arc::new(NullSignals);
        let targets: Vec<NodeId> = (1..4).map(NodeId).collect();
        let bc = TreeBroadcast::default();
        let err = bc
            .run(&fabric, &signals, NodeId(0), &targets, 100)
            .unwrap_err();
        assert_eq!(err, NetError::NodeDown(NodeId(2)));
    }

    #[test]
    fn empty_target_list_is_noop() {
        let fabric: Arc<dyn Fabric> = LocalFabric::new(1);
        let signals: Arc<dyn SignalTable> = Arc::new(NullSignals);
        let out = TreeBroadcast::default()
            .run(&fabric, &signals, NodeId(0), &[], 100)
            .unwrap();
        assert!(out.completion_us.is_empty());
    }
}
