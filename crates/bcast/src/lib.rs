//! # bff-bcast
//!
//! The prepropagation baseline (§5.2): taktuk-like broadcast of a full VM
//! image to all compute nodes before any VM starts.
//!
//! * [`postal`] — broadcast-time arithmetic in the postal model of
//!   Bar-Noy & Kipnis (ref.\[8] of the paper), which taktuk's scheduling follows.
//! * [`tree`] — k-ary broadcast trees and their execution on a
//!   [`bff_net::Fabric`]: store-and-forward at file granularity (what a
//!   taktuk file `put` effectively does: each relay writes the image to
//!   its disk before forwarding) or pipelined at block granularity (a
//!   Frisbee-style optimized broadcaster, used as an ablation).
//! * [`signals`] — the ordering dependency ("parent holds block b")
//!   expressed as an abstract signal table so the same broadcast code
//!   runs timing-free in-process and with real dependencies on the
//!   simulator.

pub mod postal;
pub mod signals;
pub mod tree;

pub use postal::{optimal_rounds, postal_broadcast_time};
pub use signals::{NullSignals, SignalTable};
pub use tree::{BroadcastMode, BroadcastOutcome, TreeBroadcast};
