//! Broadcast arithmetic in the postal model (Bar-Noy & Kipnis, SPAA'92),
//! the model behind taktuk's adaptive trees.
//!
//! In the postal model with latency λ, a sender is busy for one unit per
//! message but the message arrives λ units after sending. `P_λ(t)` — the
//! number of nodes that can hold the message after `t` units — obeys the
//! generalized-Fibonacci recurrence `P(t) = P(t-1) + P(t-λ)` with
//! `P(t) = 1` for `0 ≤ t < λ`. Broadcasting to `n` nodes therefore takes
//! the least `t` with `P_λ(t) ≥ n`.

/// Number of informed nodes after `t` time units with integer latency
/// `lambda ≥ 1` (the sender counts as informed at t = 0).
pub fn informed_after(t: u64, lambda: u64) -> u128 {
    assert!(lambda >= 1, "latency must be at least 1");
    if t < lambda {
        return 1;
    }
    // P(t) = P(t-1) + P(t-lambda), windowed iteration.
    let mut window: Vec<u128> = vec![1; lambda as usize];
    for _ in lambda..=t {
        let next = window[window.len() - 1] + window[0];
        window.remove(0);
        window.push(next.min(u128::MAX / 2));
    }
    window[window.len() - 1]
}

/// The minimum number of time units to inform `n` nodes (including the
/// source) at latency `lambda`.
pub fn optimal_rounds(n: u64, lambda: u64) -> u64 {
    assert!(n >= 1);
    if n == 1 {
        return 0;
    }
    let mut t = 0u64;
    loop {
        if informed_after(t, lambda) >= n as u128 {
            return t;
        }
        t += 1;
    }
}

/// Estimated wall-clock time to broadcast `bytes` to `n` receivers with
/// link bandwidth `bw` (bytes/us), one-way latency `latency_us` and a
/// pipelining block of `block` bytes: the postal-model round count at the
/// block timescale times the per-block cycle, plus the pipeline drain.
/// This is the *lower bound* an optimal taktuk-like tool approaches; the
/// measured baseline is the executed tree in [`crate::tree`].
pub fn postal_broadcast_time(n: u64, bytes: u64, bw: f64, latency_us: u64, block: u64) -> u64 {
    assert!(bw > 0.0 && block > 0);
    let send_time = (block as f64 / bw).ceil() as u64; // one "unit"
    let lambda = (latency_us / send_time.max(1)).max(1);
    let rounds = optimal_rounds(n.max(1), lambda);
    let blocks = bytes.div_ceil(block);
    // Pipeline: fill (rounds) + stream (blocks) per-unit cycles.
    (rounds + blocks) * send_time
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_latency_doubles_each_round() {
        // lambda = 1 degenerates to binomial doubling: P(t) = 2^t.
        for t in 0..10 {
            assert_eq!(informed_after(t, 1), 1 << t);
        }
        assert_eq!(optimal_rounds(8, 1), 3);
        assert_eq!(optimal_rounds(9, 1), 4);
    }

    #[test]
    fn latency_slows_growth() {
        // With lambda = 2: P = 1,1,2,3,5,8,... (Fibonacci).
        let fib = [1u128, 1, 2, 3, 5, 8, 13, 21];
        for (t, &f) in fib.iter().enumerate() {
            assert_eq!(informed_after(t as u64, 2), f, "t={t}");
        }
        assert!(optimal_rounds(100, 2) > optimal_rounds(100, 1));
    }

    #[test]
    fn single_node_needs_nothing() {
        assert_eq!(optimal_rounds(1, 3), 0);
    }

    #[test]
    fn broadcast_time_scales_sanely() {
        let t1 = postal_broadcast_time(2, 1 << 30, 117.5, 100, 1 << 20);
        let t110 = postal_broadcast_time(110, 1 << 30, 117.5, 100, 1 << 20);
        // More receivers cost more, but only logarithmically.
        assert!(t110 > t1);
        assert!(t110 < t1 * 2, "pipelined broadcast is log-bounded");
        // Must be at least the raw transfer time of the payload.
        assert!(t1 >= ((1u64 << 30) as f64 / 117.5) as u64);
    }
}
