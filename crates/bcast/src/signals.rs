//! Ordering dependencies for broadcast execution.
//!
//! A broadcast relay may forward data only after it holds it. On the
//! simulator this dependency must block virtual time; in-process (where
//! the fabric is cost-free and `par_join` runs tasks sequentially) it must
//! be a no-op, or the sequential execution would deadlock waiting for a
//! sibling task that has not run yet. The [`SignalTable`] trait captures
//! exactly this difference; `bff-cloud` provides the simulator-backed
//! implementation.

/// An append-only table of one-shot events keyed by `u64`.
pub trait SignalTable: Send + Sync {
    /// Fire the event `key` (idempotent).
    fn signal(&self, key: u64);
    /// Block until `key` has fired. Implementations for cost-free fabrics
    /// may return immediately.
    fn wait(&self, key: u64);
}

/// The no-op table for in-process execution.
#[derive(Debug, Default)]
pub struct NullSignals;

impl SignalTable for NullSignals {
    fn signal(&self, _key: u64) {}
    fn wait(&self, _key: u64) {}
}

/// Compose a signal key from a node index and a block number.
#[inline]
pub fn key_of(node_idx: usize, block: u64, blocks_per_node: u64) -> u64 {
    node_idx as u64 * blocks_per_node + block
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_signals_never_block() {
        let s = NullSignals;
        s.wait(42); // must return immediately
        s.signal(42);
        s.signal(42); // idempotent
    }

    #[test]
    fn keys_are_unique_per_node_block() {
        let mut seen = std::collections::HashSet::new();
        for node in 0..10usize {
            for block in 0..20u64 {
                assert!(seen.insert(key_of(node, block, 20)));
            }
        }
    }
}
