//! # bff-pvfs
//!
//! A PVFS-like striped distributed file system (Carns et al., ref.\[9] of the
//! paper) — the storage backend of the qcow2 baseline in §5.2.
//!
//! Files are striped round-robin over I/O servers in fixed-size stripes;
//! clients read and write stripes in parallel. Metadata (file → stripe
//! map) is hash-distributed over the same servers, matching the paper's
//! note that PVFS "employs a distributed metadata management scheme that
//! avoids any potential bottlenecks due to metadata centralization".
//!
//! Like every storage component in the workspace, server state is passive
//! and clients charge a [`Fabric`] for all messages and disk accesses, so
//! the same code runs in-process and on the simulated testbed.

use bff_data::{intersect, Payload, RangeSet};
use bff_net::{Fabric, NetError, NodeId};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::ops::Range;
use std::sync::Arc;

/// File identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u64);

/// Errors returned by PVFS operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PvfsError {
    /// Unknown file.
    NoSuchFile(FileId),
    /// Access beyond end of file.
    OutOfBounds {
        /// Requested start.
        offset: u64,
        /// Requested length.
        len: u64,
        /// File size.
        size: u64,
    },
    /// Transport failure.
    Net(NetError),
}

impl From<NetError> for PvfsError {
    fn from(e: NetError) -> Self {
        PvfsError::Net(e)
    }
}

impl fmt::Display for PvfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PvfsError::NoSuchFile(id) => write!(f, "file {id:?} does not exist"),
            PvfsError::OutOfBounds { offset, len, size } => {
                write!(f, "access {offset}+{len} beyond size {size}")
            }
            PvfsError::Net(e) => write!(f, "network: {e}"),
        }
    }
}

impl std::error::Error for PvfsError {}

/// Configuration.
#[derive(Debug, Clone, Copy)]
pub struct PvfsConfig {
    /// Stripe size in bytes (paper: 256 KB to match the chunk size).
    pub stripe_size: u64,
    /// Small control message size for RPC costing.
    pub control_bytes: u64,
    /// Whether servers keep read stripes in page cache.
    pub server_read_cache: bool,
}

impl Default for PvfsConfig {
    fn default() -> Self {
        Self {
            stripe_size: 256 << 10,
            control_bytes: 64,
            server_read_cache: true,
        }
    }
}

#[derive(Debug, Clone)]
struct FileMeta {
    size: u64,
    /// Index into the server list where stripe 0 lives.
    base_server: usize,
}

#[derive(Debug, Default)]
struct IoServer {
    stripes: HashMap<(FileId, u64), Payload>,
    /// Page-cache model: byte ranges of each stripe that are resident.
    /// Partial reads cache only what they touched — this is what makes
    /// many scattered small reads expensive on the servers (each one a
    /// cold, seeking disk access), the effect §3.3 strategy 1 avoids.
    hot: HashMap<(FileId, u64), RangeSet>,
    stored_bytes: u64,
}

/// A deployed PVFS instance.
pub struct Pvfs {
    cfg: PvfsConfig,
    servers: Vec<NodeId>,
    state: Vec<Mutex<IoServer>>,
    files: Mutex<HashMap<FileId, FileMeta>>,
    next_file: Mutex<u64>,
    fabric: Arc<dyn Fabric>,
}

impl Pvfs {
    /// Deploy over the given I/O server nodes.
    pub fn new(cfg: PvfsConfig, servers: Vec<NodeId>, fabric: Arc<dyn Fabric>) -> Arc<Self> {
        assert!(!servers.is_empty(), "need at least one I/O server");
        let state = servers
            .iter()
            .map(|_| Mutex::new(IoServer::default()))
            .collect();
        Arc::new(Self {
            cfg,
            servers,
            state,
            files: Mutex::new(HashMap::new()),
            next_file: Mutex::new(1),
            fabric,
        })
    }

    /// Stripe size in effect.
    pub fn stripe_size(&self) -> u64 {
        self.cfg.stripe_size
    }

    /// Total stripe bytes stored across servers.
    pub fn total_stored_bytes(&self) -> u64 {
        self.state.iter().map(|s| s.lock().stored_bytes).sum()
    }

    /// Per-server stored bytes (balance diagnostics).
    pub fn server_loads(&self) -> Vec<u64> {
        self.state.iter().map(|s| s.lock().stored_bytes).collect()
    }

    /// Drop all simulated server page caches (cold-start experiments: the
    /// image was staged long before the deployment request).
    pub fn drop_caches(&self) {
        for s in &self.state {
            s.lock().hot.clear();
        }
    }

    /// Metadata server index for a file (hash-distributed).
    fn meta_server(&self, file: FileId) -> usize {
        (file.0.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize % self.servers.len()
    }

    /// Server index holding stripe `idx` of a file.
    fn server_of(&self, meta: &FileMeta, idx: u64) -> usize {
        (meta.base_server + idx as usize) % self.servers.len()
    }
}

/// A client handle bound to one node.
#[derive(Clone)]
pub struct PvfsClient {
    fs: Arc<Pvfs>,
    node: NodeId,
    meta_cache: Arc<Mutex<HashMap<FileId, FileMeta>>>,
}

impl PvfsClient {
    /// Client for the process on `node`.
    pub fn new(fs: Arc<Pvfs>, node: NodeId) -> Self {
        Self {
            fs,
            node,
            meta_cache: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// The filesystem handle.
    pub fn fs(&self) -> &Arc<Pvfs> {
        &self.fs
    }

    fn meta_rpc(&self, file: FileId) -> Result<(), NetError> {
        let srv = self.fs.servers[self.fs.meta_server(file)];
        let c = self.fs.cfg.control_bytes;
        self.fs.fabric.rpc(self.node, srv, c, c)
    }

    fn meta(&self, file: FileId) -> Result<FileMeta, PvfsError> {
        if let Some(m) = self.meta_cache.lock().get(&file) {
            return Ok(m.clone());
        }
        self.meta_rpc(file)?;
        let m = self
            .fs
            .files
            .lock()
            .get(&file)
            .cloned()
            .ok_or(PvfsError::NoSuchFile(file))?;
        self.meta_cache.lock().insert(file, m.clone());
        Ok(m)
    }

    /// Create a file of `size` bytes (sparse; reads as zeros).
    pub fn create(&self, size: u64) -> Result<FileId, PvfsError> {
        let id = {
            let mut next = self.fs.next_file.lock();
            let id = FileId(*next);
            *next += 1;
            id
        };
        self.meta_rpc(id)?;
        let base_server = (id.0 as usize * 7) % self.fs.servers.len();
        self.fs
            .files
            .lock()
            .insert(id, FileMeta { size, base_server });
        Ok(id)
    }

    /// File size.
    pub fn size(&self, file: FileId) -> Result<u64, PvfsError> {
        Ok(self.meta(file)?.size)
    }

    /// Read `range`. A thin wrapper over the vectored
    /// [`PvfsClient::read_multi`] pipeline (one-range plan).
    pub fn read(&self, file: FileId, range: Range<u64>) -> Result<Payload, PvfsError> {
        Ok(self
            .read_multi(file, std::slice::from_ref(&range))?
            .pop()
            .expect("one payload per range"))
    }

    /// Vectored read: fetch every range in one batched pipeline, one
    /// payload per input range. All covered stripe accesses are grouped
    /// by I/O server; each server serves its whole group as one batched
    /// disk read (cold bytes only) + one batched transfer, servers in
    /// parallel. Byte-for-byte equivalent to one [`PvfsClient::read`] per
    /// range, strictly cheaper in per-message overheads.
    pub fn read_multi(
        &self,
        file: FileId,
        ranges: &[Range<u64>],
    ) -> Result<Vec<Payload>, PvfsError> {
        let meta = self.meta(file)?;
        for range in ranges {
            if range.end > meta.size || range.start > range.end {
                return Err(PvfsError::OutOfBounds {
                    offset: range.start,
                    len: range.end.saturating_sub(range.start),
                    size: meta.size,
                });
            }
        }
        let ss = self.fs.cfg.stripe_size;
        // One piece per (range, stripe) intersection, grouped by server.
        // `slot` indexes the flat piece list so results reassemble in
        // input order.
        struct Piece {
            stripe: u64,
            want: Range<u64>,
        }
        let mut pieces: Vec<Piece> = Vec::new();
        let mut piece_of_range: Vec<Range<usize>> = Vec::with_capacity(ranges.len());
        for range in ranges {
            let first = pieces.len();
            if range.start < range.end {
                for stripe in bff_data::chunk_cover(range, ss) {
                    let sr = bff_data::chunk_range(stripe, ss, meta.size);
                    pieces.push(Piece {
                        stripe,
                        want: intersect(&sr, range),
                    });
                }
            }
            piece_of_range.push(first..pieces.len());
        }
        let mut by_server: HashMap<usize, Vec<usize>> = HashMap::new();
        for (slot, p) in pieces.iter().enumerate() {
            by_server
                .entry(self.fs.server_of(&meta, p.stripe))
                .or_default()
                .push(slot);
        }
        let mut servers: Vec<usize> = by_server.keys().copied().collect();
        servers.sort_unstable(); // deterministic task order
        type PieceSlots = Vec<Option<Result<Payload, PvfsError>>>;
        let results: Arc<Mutex<PieceSlots>> = Arc::new(Mutex::new(vec![None; pieces.len()]));
        let tasks: Vec<Box<dyn FnOnce() + Send + 'static>> = servers
            .into_iter()
            .map(|srv_idx| {
                let slots = by_server.remove(&srv_idx).expect("grouped above");
                let group: Vec<(usize, u64, Range<u64>)> = slots
                    .into_iter()
                    .map(|s| (s, pieces[s].stripe, pieces[s].want.clone()))
                    .collect();
                let fs = Arc::clone(&self.fs);
                let results = Arc::clone(&results);
                let (node, file) = (self.node, file);
                Box::new(move || {
                    let got = read_stripe_batch(&fs, node, file, srv_idx, &group);
                    let mut res = results.lock();
                    for (slot, r) in got {
                        res[slot] = Some(r);
                    }
                }) as Box<dyn FnOnce() + Send + 'static>
            })
            .collect();
        self.fs.fabric.par_join(tasks);

        let mut fetched = Arc::try_unwrap(results)
            .unwrap_or_else(|a| Mutex::new(a.lock().clone()))
            .into_inner();
        let mut out = Vec::with_capacity(ranges.len());
        for (range, span) in ranges.iter().zip(piece_of_range) {
            let mut payload = Payload::empty();
            for slot in span {
                payload.append(fetched[slot].take().expect("task ran")?);
            }
            debug_assert_eq!(payload.len(), range.end - range.start);
            out.push(payload);
        }
        Ok(out)
    }

    /// Write `data` at `offset`, scattering to the covered stripes in
    /// parallel. Unlike the chunk-granular repository, PVFS writes exactly
    /// the requested bytes: servers splice partial-stripe writes in place.
    pub fn write(&self, file: FileId, offset: u64, data: Payload) -> Result<(), PvfsError> {
        let meta = self.meta(file)?;
        let range = offset..offset + data.len();
        if range.end > meta.size {
            return Err(PvfsError::OutOfBounds {
                offset,
                len: data.len(),
                size: meta.size,
            });
        }
        if data.is_empty() {
            return Ok(());
        }
        let ss = self.fs.cfg.stripe_size;
        let stripes: Vec<u64> = bff_data::chunk_cover(&range, ss).collect();
        let errors: Arc<Mutex<Vec<PvfsError>>> = Arc::new(Mutex::new(Vec::new()));
        let tasks: Vec<Box<dyn FnOnce() + Send + 'static>> = stripes
            .iter()
            .map(|&idx| {
                let fs = Arc::clone(&self.fs);
                let errors = Arc::clone(&errors);
                let meta = meta.clone();
                let (node, file) = (self.node, file);
                let sr = bff_data::chunk_range(idx, ss, meta.size);
                let part = intersect(&sr, &range);
                let piece = data.slice(part.start - offset, part.end - offset);
                Box::new(move || {
                    if let Err(e) = write_stripe(&fs, node, file, &meta, idx, &part, piece) {
                        errors.lock().push(e);
                    }
                }) as Box<dyn FnOnce() + Send + 'static>
            })
            .collect();
        self.fs.fabric.par_join(tasks);
        if let Some(e) = errors.lock().first() {
            return Err(e.clone());
        }
        Ok(())
    }
}

/// Serve one I/O server's slice of a vectored read plan: every requested
/// piece is sliced under a single server-state acquisition, then the
/// whole group is charged as one batched disk read (cold bytes only) and
/// one batched transfer — the per-message savings of the vectored path.
/// Sparse stripes read as zeros without a disk access, exactly like the
/// former per-stripe loop.
fn read_stripe_batch(
    fs: &Arc<Pvfs>,
    me: NodeId,
    file: FileId,
    srv_idx: usize,
    group: &[(usize, u64, Range<u64>)],
) -> Vec<(usize, Result<Payload, PvfsError>)> {
    let srv = fs.servers[srv_idx];
    let ss = fs.cfg.stripe_size;
    let mut sliced: Vec<(usize, Payload)> = Vec::with_capacity(group.len());
    let (mut total, mut cold) = (0u64, 0u64);
    {
        let mut st = fs.state[srv_idx].lock();
        for (slot, stripe, want) in group {
            let len = want.end - want.start;
            let rel = want.start - stripe * ss..want.end - stripe * ss;
            let (piece, hot) = match st.stripes.get(&(file, *stripe)) {
                Some(p) => {
                    let piece = p.slice(rel.start, rel.end);
                    let cache = st.hot.entry((file, *stripe)).or_default();
                    let was_hot = cache.contains_range(&rel);
                    cache.insert(rel);
                    (piece, was_hot)
                }
                // Sparse stripe: zeros, no disk involved.
                None => (Payload::zeros(len), true),
            };
            total += len;
            if !hot || !fs.cfg.server_read_cache {
                cold += len;
            }
            sliced.push((*slot, piece));
        }
    }
    let serve = || -> Result<(), NetError> {
        if cold > 0 {
            fs.fabric.disk_read(srv, cold)?;
        }
        fs.fabric.transfer(srv, me, total)
    };
    match serve() {
        Ok(()) => sliced.into_iter().map(|(slot, p)| (slot, Ok(p))).collect(),
        Err(e) => group
            .iter()
            .map(|(slot, _, _)| (*slot, Err(e.clone().into())))
            .collect(),
    }
}

fn write_stripe(
    fs: &Arc<Pvfs>,
    me: NodeId,
    file: FileId,
    meta: &FileMeta,
    idx: u64,
    part: &Range<u64>,
    piece: Payload,
) -> Result<(), PvfsError> {
    let srv_idx = fs.server_of(meta, idx);
    let srv = fs.servers[srv_idx];
    let sr = bff_data::chunk_range(idx, fs.cfg.stripe_size, meta.size);
    let len = piece.len();
    fs.fabric.transfer(me, srv, len)?;
    {
        let mut st = fs.state[srv_idx].lock();
        let sr_len = sr.end - sr.start;
        let (existing, was_present) = match st.stripes.remove(&(file, idx)) {
            Some(p) => (p, true),
            None => (Payload::zeros(sr_len), false),
        };
        let updated = existing.overwrite(part.start - sr.start, piece);
        if !was_present {
            st.stored_bytes += sr_len;
        }
        st.stripes.insert((file, idx), updated);
        // Freshly written bytes are page-cache resident.
        st.hot
            .entry((file, idx))
            .or_default()
            .insert(part.start - sr.start..part.end - sr.start);
    }
    // PVFS servers write through to their disks.
    fs.fabric.disk_write(srv, len)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bff_net::LocalFabric;

    fn setup(servers: u32, stripe: u64) -> PvfsClient {
        let fabric = LocalFabric::new(servers as usize + 1);
        let nodes: Vec<NodeId> = (0..servers).map(NodeId).collect();
        let fs = Pvfs::new(
            PvfsConfig {
                stripe_size: stripe,
                ..Default::default()
            },
            nodes,
            fabric as Arc<dyn Fabric>,
        );
        PvfsClient::new(fs, NodeId(servers))
    }

    #[test]
    fn write_read_roundtrip() {
        let c = setup(4, 128);
        let f = c.create(1000).unwrap();
        let data = Payload::synth(1, 0, 1000);
        c.write(f, 0, data.clone()).unwrap();
        let got = c.read(f, 0..1000).unwrap();
        assert!(got.content_eq(&data));
        // Sub-range across stripes.
        let got = c.read(f, 100..300).unwrap();
        assert!(got.content_eq(&data.slice(100, 300)));
    }

    #[test]
    fn sparse_file_reads_zeros() {
        let c = setup(2, 128);
        let f = c.create(500).unwrap();
        assert!(c.read(f, 0..500).unwrap().content_eq(&Payload::zeros(500)));
        // Partial write, rest remains zero.
        c.write(f, 200, Payload::from(vec![5u8; 10])).unwrap();
        let got = c.read(f, 190..220).unwrap().materialize();
        assert_eq!(&got[..10], &[0u8; 10]);
        assert_eq!(&got[10..20], &[5u8; 10]);
        assert_eq!(&got[20..], &[0u8; 10]);
    }

    #[test]
    fn unaligned_write_preserves_neighbours() {
        let c = setup(3, 100);
        let f = c.create(1000).unwrap();
        let base = Payload::synth(2, 0, 1000);
        c.write(f, 0, base.clone()).unwrap();
        c.write(f, 150, Payload::from(vec![9u8; 30])).unwrap();
        let got = c.read(f, 0..1000).unwrap();
        let expect = base.overwrite(150, Payload::from(vec![9u8; 30]));
        assert!(got.content_eq(&expect));
    }

    #[test]
    fn stripes_spread_over_servers() {
        let c = setup(4, 100);
        let f = c.create(1600).unwrap();
        c.write(f, 0, Payload::synth(3, 0, 1600)).unwrap();
        // 16 stripes over 4 servers: each holds 400 bytes.
        let per_server = c.fs().server_loads();
        assert_eq!(per_server.iter().sum::<u64>(), 1600);
        assert!(
            per_server.iter().all(|&b| b == 400),
            "balanced: {per_server:?}"
        );
    }

    #[test]
    fn out_of_bounds_rejected() {
        let c = setup(2, 100);
        let f = c.create(100).unwrap();
        assert!(matches!(
            c.read(f, 50..200),
            Err(PvfsError::OutOfBounds { .. })
        ));
        assert!(matches!(
            c.write(f, 90, Payload::zeros(20)),
            Err(PvfsError::OutOfBounds { .. })
        ));
        assert!(matches!(
            c.read(FileId(99), 0..1),
            Err(PvfsError::NoSuchFile(_))
        ));
    }

    #[test]
    fn read_multi_equivalent_to_per_range_reads() {
        let c = setup(4, 128);
        let f = c.create(4096).unwrap();
        let data = Payload::synth(9, 0, 4096);
        c.write(f, 0, data.clone()).unwrap();
        // Sparse sibling: only the middle is written.
        let sparse = c.create(1024).unwrap();
        c.write(sparse, 400, Payload::synth(10, 0, 100)).unwrap();
        let plans: Vec<Vec<Range<u64>>> = vec![
            vec![0..4096],
            vec![0..128, 256..384, 4000..4096],
            vec![10..50, 50..300, 299..301, 77..77],
            vec![],
        ];
        for plan in plans {
            let multi = c.read_multi(f, &plan).unwrap();
            assert_eq!(multi.len(), plan.len());
            for (r, got) in plan.iter().zip(&multi) {
                let single = c.read(f, r.clone()).unwrap();
                assert!(got.content_eq(&single), "range {r:?} differs");
                assert!(got.content_eq(&data.slice(r.start, r.end)));
            }
        }
        let plan = vec![0..1024, 350..550, 0..64];
        let multi = c.read_multi(sparse, &plan).unwrap();
        for (r, got) in plan.iter().zip(&multi) {
            let single = c.read(sparse, r.clone()).unwrap();
            assert!(got.content_eq(&single), "sparse range {r:?} differs");
        }
        // Bounds still checked across the whole plan.
        assert!(matches!(
            c.read_multi(f, &[0..10, 0..5000]),
            Err(PvfsError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn read_multi_batches_transfers_per_server() {
        let c = setup(4, 128);
        let f = c.create(4096).unwrap(); // 32 stripes over 4 servers
        c.write(f, 0, Payload::synth(11, 0, 4096)).unwrap();
        let stats = c.fs().fabric.stats();
        let before = stats.transfer_count();
        c.read_multi(f, std::slice::from_ref(&(0..4096))).unwrap();
        let batched = stats.transfer_count() - before;
        assert!(
            batched <= 4,
            "one transfer per server expected, got {batched}"
        );
    }

    #[test]
    fn overwrite_does_not_leak_storage() {
        let c = setup(2, 100);
        let f = c.create(200).unwrap();
        c.write(f, 0, Payload::synth(1, 0, 200)).unwrap();
        c.write(f, 0, Payload::synth(2, 0, 200)).unwrap();
        assert_eq!(c.fs().total_stored_bytes(), 200);
    }
}
