//! # bff-pvfs
//!
//! A PVFS-like striped distributed file system (Carns et al., ref.\[9] of the
//! paper) — the storage backend of the qcow2 baseline in §5.2.
//!
//! Files are striped round-robin over I/O servers in fixed-size stripes;
//! clients read and write stripes in parallel. Metadata (file → stripe
//! map) is hash-distributed over the same servers, matching the paper's
//! note that PVFS "employs a distributed metadata management scheme that
//! avoids any potential bottlenecks due to metadata centralization".
//!
//! Like every storage component in the workspace, server state is passive
//! and clients charge a [`Fabric`] for all messages and disk accesses, so
//! the same code runs in-process and on the simulated testbed.

use bff_data::{intersect, Payload, RangeSet};
use bff_net::{Fabric, NetError, NodeId};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::ops::Range;
use std::sync::Arc;

/// File identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u64);

/// Errors returned by PVFS operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PvfsError {
    /// Unknown file.
    NoSuchFile(FileId),
    /// Access beyond end of file.
    OutOfBounds {
        /// Requested start.
        offset: u64,
        /// Requested length.
        len: u64,
        /// File size.
        size: u64,
    },
    /// Transport failure.
    Net(NetError),
}

impl From<NetError> for PvfsError {
    fn from(e: NetError) -> Self {
        PvfsError::Net(e)
    }
}

impl fmt::Display for PvfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PvfsError::NoSuchFile(id) => write!(f, "file {id:?} does not exist"),
            PvfsError::OutOfBounds { offset, len, size } => {
                write!(f, "access {offset}+{len} beyond size {size}")
            }
            PvfsError::Net(e) => write!(f, "network: {e}"),
        }
    }
}

impl std::error::Error for PvfsError {}

/// Configuration.
#[derive(Debug, Clone, Copy)]
pub struct PvfsConfig {
    /// Stripe size in bytes (paper: 256 KB to match the chunk size).
    pub stripe_size: u64,
    /// Small control message size for RPC costing.
    pub control_bytes: u64,
    /// Whether servers keep read stripes in page cache.
    pub server_read_cache: bool,
}

impl Default for PvfsConfig {
    fn default() -> Self {
        Self {
            stripe_size: 256 << 10,
            control_bytes: 64,
            server_read_cache: true,
        }
    }
}

#[derive(Debug, Clone)]
struct FileMeta {
    size: u64,
    /// Index into the server list where stripe 0 lives.
    base_server: usize,
}

#[derive(Debug, Default)]
struct IoServer {
    stripes: HashMap<(FileId, u64), Payload>,
    /// Page-cache model: byte ranges of each stripe that are resident.
    /// Partial reads cache only what they touched — this is what makes
    /// many scattered small reads expensive on the servers (each one a
    /// cold, seeking disk access), the effect §3.3 strategy 1 avoids.
    hot: HashMap<(FileId, u64), RangeSet>,
    stored_bytes: u64,
}

/// A deployed PVFS instance.
pub struct Pvfs {
    cfg: PvfsConfig,
    servers: Vec<NodeId>,
    state: Vec<Mutex<IoServer>>,
    files: Mutex<HashMap<FileId, FileMeta>>,
    next_file: Mutex<u64>,
    fabric: Arc<dyn Fabric>,
}

impl Pvfs {
    /// Deploy over the given I/O server nodes.
    pub fn new(cfg: PvfsConfig, servers: Vec<NodeId>, fabric: Arc<dyn Fabric>) -> Arc<Self> {
        assert!(!servers.is_empty(), "need at least one I/O server");
        let state = servers
            .iter()
            .map(|_| Mutex::new(IoServer::default()))
            .collect();
        Arc::new(Self {
            cfg,
            servers,
            state,
            files: Mutex::new(HashMap::new()),
            next_file: Mutex::new(1),
            fabric,
        })
    }

    /// Stripe size in effect.
    pub fn stripe_size(&self) -> u64 {
        self.cfg.stripe_size
    }

    /// Total stripe bytes stored across servers.
    pub fn total_stored_bytes(&self) -> u64 {
        self.state.iter().map(|s| s.lock().stored_bytes).sum()
    }

    /// Per-server stored bytes (balance diagnostics).
    pub fn server_loads(&self) -> Vec<u64> {
        self.state.iter().map(|s| s.lock().stored_bytes).collect()
    }

    /// Drop all simulated server page caches (cold-start experiments: the
    /// image was staged long before the deployment request).
    pub fn drop_caches(&self) {
        for s in &self.state {
            s.lock().hot.clear();
        }
    }

    /// Metadata server index for a file (hash-distributed).
    fn meta_server(&self, file: FileId) -> usize {
        (file.0.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize % self.servers.len()
    }

    /// Server index holding stripe `idx` of a file.
    fn server_of(&self, meta: &FileMeta, idx: u64) -> usize {
        (meta.base_server + idx as usize) % self.servers.len()
    }
}

/// A client handle bound to one node.
#[derive(Clone)]
pub struct PvfsClient {
    fs: Arc<Pvfs>,
    node: NodeId,
    meta_cache: Arc<Mutex<HashMap<FileId, FileMeta>>>,
}

impl PvfsClient {
    /// Client for the process on `node`.
    pub fn new(fs: Arc<Pvfs>, node: NodeId) -> Self {
        Self {
            fs,
            node,
            meta_cache: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// The filesystem handle.
    pub fn fs(&self) -> &Arc<Pvfs> {
        &self.fs
    }

    fn meta_rpc(&self, file: FileId) -> Result<(), NetError> {
        let srv = self.fs.servers[self.fs.meta_server(file)];
        let c = self.fs.cfg.control_bytes;
        self.fs.fabric.rpc(self.node, srv, c, c)
    }

    fn meta(&self, file: FileId) -> Result<FileMeta, PvfsError> {
        if let Some(m) = self.meta_cache.lock().get(&file) {
            return Ok(m.clone());
        }
        self.meta_rpc(file)?;
        let m = self
            .fs
            .files
            .lock()
            .get(&file)
            .cloned()
            .ok_or(PvfsError::NoSuchFile(file))?;
        self.meta_cache.lock().insert(file, m.clone());
        Ok(m)
    }

    /// Create a file of `size` bytes (sparse; reads as zeros).
    pub fn create(&self, size: u64) -> Result<FileId, PvfsError> {
        let id = {
            let mut next = self.fs.next_file.lock();
            let id = FileId(*next);
            *next += 1;
            id
        };
        self.meta_rpc(id)?;
        let base_server = (id.0 as usize * 7) % self.fs.servers.len();
        self.fs
            .files
            .lock()
            .insert(id, FileMeta { size, base_server });
        Ok(id)
    }

    /// File size.
    pub fn size(&self, file: FileId) -> Result<u64, PvfsError> {
        Ok(self.meta(file)?.size)
    }

    /// Read `range`, gathering the covered stripes in parallel.
    pub fn read(&self, file: FileId, range: Range<u64>) -> Result<Payload, PvfsError> {
        let meta = self.meta(file)?;
        if range.end > meta.size || range.start > range.end {
            return Err(PvfsError::OutOfBounds {
                offset: range.start,
                len: range.end.saturating_sub(range.start),
                size: meta.size,
            });
        }
        if range.start == range.end {
            return Ok(Payload::empty());
        }
        let ss = self.fs.cfg.stripe_size;
        let stripes: Vec<u64> = bff_data::chunk_cover(&range, ss).collect();
        type StripeSlots = Vec<Option<Result<Payload, PvfsError>>>;
        let results: Arc<Mutex<StripeSlots>> = Arc::new(Mutex::new(vec![None; stripes.len()]));
        let tasks: Vec<Box<dyn FnOnce() + Send + 'static>> = stripes
            .iter()
            .enumerate()
            .map(|(slot, &idx)| {
                let fs = Arc::clone(&self.fs);
                let results = Arc::clone(&results);
                let meta = meta.clone();
                let (node, file) = (self.node, file);
                let sr = bff_data::chunk_range(idx, ss, meta.size);
                let want = intersect(&sr, &range);
                Box::new(move || {
                    let r = read_stripe(&fs, node, file, &meta, idx, &want);
                    results.lock()[slot] = Some(r);
                }) as Box<dyn FnOnce() + Send + 'static>
            })
            .collect();
        self.fs.fabric.par_join(tasks);

        let pieces = Arc::try_unwrap(results)
            .unwrap_or_else(|a| Mutex::new(a.lock().clone()))
            .into_inner();
        let mut out = Payload::empty();
        for piece in pieces {
            out.append(piece.expect("task ran")?);
        }
        debug_assert_eq!(out.len(), range.end - range.start);
        Ok(out)
    }

    /// Write `data` at `offset`, scattering to the covered stripes in
    /// parallel. Unlike the chunk-granular repository, PVFS writes exactly
    /// the requested bytes: servers splice partial-stripe writes in place.
    pub fn write(&self, file: FileId, offset: u64, data: Payload) -> Result<(), PvfsError> {
        let meta = self.meta(file)?;
        let range = offset..offset + data.len();
        if range.end > meta.size {
            return Err(PvfsError::OutOfBounds {
                offset,
                len: data.len(),
                size: meta.size,
            });
        }
        if data.is_empty() {
            return Ok(());
        }
        let ss = self.fs.cfg.stripe_size;
        let stripes: Vec<u64> = bff_data::chunk_cover(&range, ss).collect();
        let errors: Arc<Mutex<Vec<PvfsError>>> = Arc::new(Mutex::new(Vec::new()));
        let tasks: Vec<Box<dyn FnOnce() + Send + 'static>> = stripes
            .iter()
            .map(|&idx| {
                let fs = Arc::clone(&self.fs);
                let errors = Arc::clone(&errors);
                let meta = meta.clone();
                let (node, file) = (self.node, file);
                let sr = bff_data::chunk_range(idx, ss, meta.size);
                let part = intersect(&sr, &range);
                let piece = data.slice(part.start - offset, part.end - offset);
                Box::new(move || {
                    if let Err(e) = write_stripe(&fs, node, file, &meta, idx, &part, piece) {
                        errors.lock().push(e);
                    }
                }) as Box<dyn FnOnce() + Send + 'static>
            })
            .collect();
        self.fs.fabric.par_join(tasks);
        if let Some(e) = errors.lock().first() {
            return Err(e.clone());
        }
        Ok(())
    }
}

fn read_stripe(
    fs: &Arc<Pvfs>,
    me: NodeId,
    file: FileId,
    meta: &FileMeta,
    idx: u64,
    want: &Range<u64>,
) -> Result<Payload, PvfsError> {
    let srv_idx = fs.server_of(meta, idx);
    let srv = fs.servers[srv_idx];
    let sr = bff_data::chunk_range(idx, fs.cfg.stripe_size, meta.size);
    let len = want.end - want.start;
    let rel = want.start - sr.start..want.end - sr.start;
    let (data, hot) = {
        let mut st = fs.state[srv_idx].lock();
        match st.stripes.get(&(file, idx)) {
            Some(p) => {
                let piece = p.slice(rel.start, rel.end);
                let cache = st.hot.entry((file, idx)).or_default();
                let was_hot = cache.contains_range(&rel);
                cache.insert(rel.clone());
                (piece, was_hot)
            }
            // Sparse stripe: zeros, no disk involved.
            None => (Payload::zeros(len), true),
        }
    };
    if !hot || !fs.cfg.server_read_cache {
        fs.fabric.disk_read(srv, len)?;
    }
    fs.fabric.transfer(srv, me, len)?;
    Ok(data)
}

fn write_stripe(
    fs: &Arc<Pvfs>,
    me: NodeId,
    file: FileId,
    meta: &FileMeta,
    idx: u64,
    part: &Range<u64>,
    piece: Payload,
) -> Result<(), PvfsError> {
    let srv_idx = fs.server_of(meta, idx);
    let srv = fs.servers[srv_idx];
    let sr = bff_data::chunk_range(idx, fs.cfg.stripe_size, meta.size);
    let len = piece.len();
    fs.fabric.transfer(me, srv, len)?;
    {
        let mut st = fs.state[srv_idx].lock();
        let sr_len = sr.end - sr.start;
        let (existing, was_present) = match st.stripes.remove(&(file, idx)) {
            Some(p) => (p, true),
            None => (Payload::zeros(sr_len), false),
        };
        let updated = existing.overwrite(part.start - sr.start, piece);
        if !was_present {
            st.stored_bytes += sr_len;
        }
        st.stripes.insert((file, idx), updated);
        // Freshly written bytes are page-cache resident.
        st.hot
            .entry((file, idx))
            .or_default()
            .insert(part.start - sr.start..part.end - sr.start);
    }
    // PVFS servers write through to their disks.
    fs.fabric.disk_write(srv, len)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bff_net::LocalFabric;

    fn setup(servers: u32, stripe: u64) -> PvfsClient {
        let fabric = LocalFabric::new(servers as usize + 1);
        let nodes: Vec<NodeId> = (0..servers).map(NodeId).collect();
        let fs = Pvfs::new(
            PvfsConfig {
                stripe_size: stripe,
                ..Default::default()
            },
            nodes,
            fabric as Arc<dyn Fabric>,
        );
        PvfsClient::new(fs, NodeId(servers))
    }

    #[test]
    fn write_read_roundtrip() {
        let c = setup(4, 128);
        let f = c.create(1000).unwrap();
        let data = Payload::synth(1, 0, 1000);
        c.write(f, 0, data.clone()).unwrap();
        let got = c.read(f, 0..1000).unwrap();
        assert!(got.content_eq(&data));
        // Sub-range across stripes.
        let got = c.read(f, 100..300).unwrap();
        assert!(got.content_eq(&data.slice(100, 300)));
    }

    #[test]
    fn sparse_file_reads_zeros() {
        let c = setup(2, 128);
        let f = c.create(500).unwrap();
        assert!(c.read(f, 0..500).unwrap().content_eq(&Payload::zeros(500)));
        // Partial write, rest remains zero.
        c.write(f, 200, Payload::from(vec![5u8; 10])).unwrap();
        let got = c.read(f, 190..220).unwrap().materialize();
        assert_eq!(&got[..10], &[0u8; 10]);
        assert_eq!(&got[10..20], &[5u8; 10]);
        assert_eq!(&got[20..], &[0u8; 10]);
    }

    #[test]
    fn unaligned_write_preserves_neighbours() {
        let c = setup(3, 100);
        let f = c.create(1000).unwrap();
        let base = Payload::synth(2, 0, 1000);
        c.write(f, 0, base.clone()).unwrap();
        c.write(f, 150, Payload::from(vec![9u8; 30])).unwrap();
        let got = c.read(f, 0..1000).unwrap();
        let expect = base.overwrite(150, Payload::from(vec![9u8; 30]));
        assert!(got.content_eq(&expect));
    }

    #[test]
    fn stripes_spread_over_servers() {
        let c = setup(4, 100);
        let f = c.create(1600).unwrap();
        c.write(f, 0, Payload::synth(3, 0, 1600)).unwrap();
        // 16 stripes over 4 servers: each holds 400 bytes.
        let per_server = c.fs().server_loads();
        assert_eq!(per_server.iter().sum::<u64>(), 1600);
        assert!(
            per_server.iter().all(|&b| b == 400),
            "balanced: {per_server:?}"
        );
    }

    #[test]
    fn out_of_bounds_rejected() {
        let c = setup(2, 100);
        let f = c.create(100).unwrap();
        assert!(matches!(
            c.read(f, 50..200),
            Err(PvfsError::OutOfBounds { .. })
        ));
        assert!(matches!(
            c.write(f, 90, Payload::zeros(20)),
            Err(PvfsError::OutOfBounds { .. })
        ));
        assert!(matches!(
            c.read(FileId(99), 0..1),
            Err(PvfsError::NoSuchFile(_))
        ));
    }

    #[test]
    fn overwrite_does_not_leak_storage() {
        let c = setup(2, 100);
        let f = c.create(200).unwrap();
        c.write(f, 0, Payload::synth(1, 0, 200)).unwrap();
        c.write(f, 0, Payload::synth(2, 0, 200)).unwrap();
        assert_eq!(c.fs().total_stored_bytes(), 200);
    }
}
