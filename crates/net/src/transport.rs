//! Message transports: how a typed request reaches the server role that
//! owns the state it targets.
//!
//! The protocol logic upstack (clients in `bff-blobseer`) charges every
//! *modelled* cost — RPC rounds, bulk transfers, disk time — to a
//! [`crate::Fabric`] before touching server state, so the mechanism that
//! actually carries the message is orthogonal to the modelled economics.
//! That mechanism is this module's [`Transport`]:
//!
//! * [`DirectTransport`] — the in-process baseline: typed requests are
//!   dispatched as plain values (zero copies, no serialization). This is
//!   the behaviour every simulation result was produced under, kept as
//!   the equivalence anchor.
//! * [`CodecTransport`] — in-process, but every message round-trips
//!   through the full binary codec (encode → decode → handle → encode →
//!   decode). Anything that cannot cross a process boundary — a stowaway
//!   pointer, a non-serializable field — fails loudly here, and the
//!   encode/decode cost is measurable against the direct baseline.
//! * [`SocketTransport`] — real TCP over loopback (or any address):
//!   length-prefixed frames, blocking I/O, one pooled connection set per
//!   server address. With [`FrameServer`] listeners on the other side
//!   the cluster runs as genuinely separate processes.
//!
//! Frames are `u32` little-endian length followed by that many bytes of
//! codec payload. The codec itself lives in `bff-wire`; this layer only
//! moves opaque frames and counts the bytes it moves.

use crate::NodeId;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::fmt;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Hard cap on a single frame. Generous (a frame carries at most a few
/// chunk payloads in structural rope encoding), but bounded so a corrupt
/// length prefix cannot ask for an absurd allocation.
pub const MAX_FRAME: u32 = 256 << 20;

/// Serialization / framed-transport failures. Deliberately small and
/// `Copy`: these map onto the existing per-chunk failover paths exactly
/// like a [`crate::NetError::NodeDown`], so they must be cheap to clone
/// through result plumbing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// A frame or value ended before its declared content.
    Truncated,
    /// An enum discriminant (or segment kind) byte was not recognized.
    BadTag(&'static str, u8),
    /// A declared length was implausible (longer than [`MAX_FRAME`], or
    /// inconsistent with the value it describes).
    BadFrame,
    /// The peer closed the connection mid-exchange.
    Closed,
    /// An OS-level socket failure.
    Io(std::io::ErrorKind),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::BadTag(what, tag) => write!(f, "bad {what} tag {tag:#x}"),
            WireError::BadFrame => write!(f, "implausible frame length"),
            WireError::Closed => write!(f, "connection closed by peer"),
            WireError::Io(kind) => write!(f, "socket error: {kind}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::UnexpectedEof => WireError::Closed,
            kind => WireError::Io(kind),
        }
    }
}

/// Which server role a request targets. The frame payload itself carries
/// the full request (including shard / provider-node addressing); the
/// route only selects *which listener* gets the frame, so a socket
/// transport maps each role to one address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouteKey {
    /// The version manager.
    Vm,
    /// The provider manager.
    Pm,
    /// The pattern board (and the purge entry point).
    Board,
    /// The cluster-wide dedup index.
    Cluster,
    /// A metadata shard (all shards share one listener).
    Meta(u32),
    /// A chunk provider (all providers share one listener).
    Provider(NodeId),
}

/// The six role classes a [`RouteKey`] collapses to for addressing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// Version manager.
    Vm,
    /// Provider manager.
    Pm,
    /// Pattern board.
    Board,
    /// Cluster dedup index.
    Cluster,
    /// Metadata shards.
    Meta,
    /// Chunk providers.
    Provider,
}

impl Role {
    /// All roles, in the order servers bind them.
    pub const ALL: [Role; 6] = [
        Role::Vm,
        Role::Pm,
        Role::Board,
        Role::Cluster,
        Role::Meta,
        Role::Provider,
    ];

    /// Stable textual name (CLI role lists, READY handshake lines).
    pub fn name(self) -> &'static str {
        match self {
            Role::Vm => "vm",
            Role::Pm => "pm",
            Role::Board => "board",
            Role::Cluster => "cluster",
            Role::Meta => "meta",
            Role::Provider => "provider",
        }
    }

    /// Parse [`Role::name`] back.
    pub fn parse(s: &str) -> Option<Role> {
        Role::ALL.into_iter().find(|r| r.name() == s)
    }
}

impl RouteKey {
    /// The role class this route addresses.
    pub fn role(self) -> Role {
        match self {
            RouteKey::Vm => Role::Vm,
            RouteKey::Pm => Role::Pm,
            RouteKey::Board => Role::Board,
            RouteKey::Cluster => Role::Cluster,
            RouteKey::Meta(_) => Role::Meta,
            RouteKey::Provider(_) => Role::Provider,
        }
    }
}

/// Wire-level traffic counters of a transport (real serialized bytes,
/// *not* the fabric's modelled bytes — synthetic payload segments cost a
/// handful of structural bytes here however many logical bytes they
/// represent).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Request frames issued.
    pub calls: u64,
    /// Encoded request bytes (frame payloads, excluding length prefixes).
    pub bytes_sent: u64,
    /// Encoded response bytes.
    pub bytes_received: u64,
}

#[derive(Default)]
struct WireCounters {
    calls: AtomicU64,
    sent: AtomicU64,
    received: AtomicU64,
}

impl WireCounters {
    fn note(&self, sent: usize, received: usize) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.sent.fetch_add(sent as u64, Ordering::Relaxed);
        self.received.fetch_add(received as u64, Ordering::Relaxed);
    }

    fn snapshot(&self) -> WireStats {
        WireStats {
            calls: self.calls.load(Ordering::Relaxed),
            bytes_sent: self.sent.load(Ordering::Relaxed),
            bytes_received: self.received.load(Ordering::Relaxed),
        }
    }
}

/// A frame-level request handler: the server-side dispatch entry point.
/// `bff-blobseer` registers one that decodes the frame, runs the typed
/// dispatcher against the passive state machines, and encodes the reply.
pub type FrameHandler = Arc<dyn Fn(RouteKey, &[u8]) -> Result<Vec<u8>, WireError> + Send + Sync>;

/// The connection registry of a [`FrameServer`]: each live connection's
/// shutdown handle paired with its serving thread.
type ConnRegistry = Arc<Mutex<Vec<(TcpStream, std::thread::JoinHandle<()>)>>>;

/// How request messages reach the server roles. See the module docs for
/// the three implementations.
pub trait Transport: Send + Sync {
    /// Whether this transport dispatches typed values without encoding
    /// (the caller must then hold the server state locally and skip
    /// [`Transport::call`] entirely).
    fn is_direct(&self) -> bool {
        false
    }

    /// Carry one encoded request frame to the role behind `route` and
    /// return the encoded response frame.
    fn call(&self, route: RouteKey, frame: &[u8]) -> Result<Vec<u8>, WireError>;

    /// Real serialized bytes moved so far (zero for direct transports).
    fn wire_stats(&self) -> WireStats {
        WireStats::default()
    }
}

/// The zero-copy in-process baseline: requests are dispatched as typed
/// values by the caller; no frame ever exists.
#[derive(Debug, Default)]
pub struct DirectTransport;

impl Transport for DirectTransport {
    fn is_direct(&self) -> bool {
        true
    }

    fn call(&self, _route: RouteKey, _frame: &[u8]) -> Result<Vec<u8>, WireError> {
        debug_assert!(false, "direct transports dispatch typed values");
        Err(WireError::Closed)
    }
}

/// In-process transport that still round-trips every message through the
/// binary codec: `call` hands the encoded frame straight to the
/// registered server-side [`FrameHandler`]. Catches anything that cannot
/// cross a process boundary and prices the serialization itself.
pub struct CodecTransport {
    handler: FrameHandler,
    counters: WireCounters,
}

impl CodecTransport {
    /// Wrap the server-side dispatch entry point.
    pub fn new(handler: FrameHandler) -> Self {
        Self {
            handler,
            counters: WireCounters::default(),
        }
    }
}

impl Transport for CodecTransport {
    fn call(&self, route: RouteKey, frame: &[u8]) -> Result<Vec<u8>, WireError> {
        let reply = (self.handler)(route, frame)?;
        self.counters.note(frame.len(), reply.len());
        Ok(reply)
    }

    fn wire_stats(&self) -> WireStats {
        self.counters.snapshot()
    }
}

/// Addresses of the six server roles (one listener per role; metadata
/// shards and providers are multiplexed onto their role's listener by
/// the request payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteTable {
    /// Version manager listener.
    pub vm: SocketAddr,
    /// Provider manager listener.
    pub pm: SocketAddr,
    /// Pattern-board listener.
    pub board: SocketAddr,
    /// Cluster-index listener.
    pub cluster: SocketAddr,
    /// Metadata listener (all shards).
    pub meta: SocketAddr,
    /// Provider listener (all provider nodes).
    pub provider: SocketAddr,
}

impl RouteTable {
    /// Build a table from per-role addresses; every role must be present.
    pub fn from_roles(addrs: &HashMap<Role, SocketAddr>) -> Option<Self> {
        Some(Self {
            vm: *addrs.get(&Role::Vm)?,
            pm: *addrs.get(&Role::Pm)?,
            board: *addrs.get(&Role::Board)?,
            cluster: *addrs.get(&Role::Cluster)?,
            meta: *addrs.get(&Role::Meta)?,
            provider: *addrs.get(&Role::Provider)?,
        })
    }

    fn addr_of(&self, route: RouteKey) -> SocketAddr {
        match route.role() {
            Role::Vm => self.vm,
            Role::Pm => self.pm,
            Role::Board => self.board,
            Role::Cluster => self.cluster,
            Role::Meta => self.meta,
            Role::Provider => self.provider,
        }
    }
}

/// A pooled client connection: the stream plus its frame-staging
/// scratch buffer, so repeated exchanges on one connection write each
/// frame as a single syscall without re-allocating the staging space.
struct PooledConn {
    stream: TcpStream,
    scratch: Vec<u8>,
}

/// Real framed TCP: blocking I/O, per-address connection pool, one
/// request/response exchange per [`Transport::call`].
///
/// Every connection — pool miss, post-[`SocketTransport::set_routes`]
/// reconnect, and the dead-connection retry — goes through
/// [`SocketTransport::connect`], which sets `TCP_NODELAY`; no path
/// hands out a Nagle-enabled stream.
pub struct SocketTransport {
    routes: RwLock<RouteTable>,
    pool: Mutex<HashMap<SocketAddr, Vec<PooledConn>>>,
    counters: WireCounters,
}

impl SocketTransport {
    /// Connect lazily to the listeners in `routes`.
    pub fn new(routes: RouteTable) -> Self {
        Self {
            routes: RwLock::new(routes),
            pool: Mutex::new(HashMap::new()),
            counters: WireCounters::default(),
        }
    }

    /// Swap the route table (a restarted server process announces new
    /// ephemeral addresses). The connection pool is cleared: every
    /// pooled stream targets an address that may no longer answer.
    pub fn set_routes(&self, routes: RouteTable) {
        *self.routes.write() = routes;
        self.pool.lock().clear();
    }

    fn checkout(&self, addr: SocketAddr) -> Result<PooledConn, WireError> {
        if let Some(conn) = self.pool.lock().get_mut(&addr).and_then(Vec::pop) {
            return Ok(conn);
        }
        self.connect(addr)
    }

    fn connect(&self, addr: SocketAddr) -> Result<PooledConn, WireError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(PooledConn {
            stream,
            scratch: Vec::new(),
        })
    }

    fn checkin(&self, addr: SocketAddr, conn: PooledConn) {
        self.pool.lock().entry(addr).or_default().push(conn);
    }

    fn exchange(conn: &mut PooledConn, frame: &[u8]) -> Result<Vec<u8>, WireError> {
        write_frame_with(&mut conn.stream, frame, &mut conn.scratch)?;
        read_frame(&mut conn.stream)
    }
}

impl Transport for SocketTransport {
    fn call(&self, route: RouteKey, frame: &[u8]) -> Result<Vec<u8>, WireError> {
        let addr = self.routes.read().addr_of(route);
        let mut conn = self.checkout(addr)?;
        match Self::exchange(&mut conn, frame) {
            Ok(reply) => {
                self.counters.note(frame.len(), reply.len());
                self.checkin(addr, conn);
                Ok(reply)
            }
            // A dead connection — typically one pooled across a server
            // restart — is indistinguishable from a dead server until a
            // fresh connect is tried: evict everything pooled for this
            // address and retry the exchange once on a new connection.
            // Codec-level errors (Truncated/BadTag/BadFrame) are NOT
            // retried: the bytes arrived fine and the reply was garbage,
            // so resending the same frame cannot help.
            Err(WireError::Closed) | Err(WireError::Io(_)) => {
                drop(conn);
                self.pool.lock().remove(&addr);
                let mut conn = self.connect(addr)?;
                let reply = Self::exchange(&mut conn, frame)?;
                self.counters.note(frame.len(), reply.len());
                self.checkin(addr, conn);
                Ok(reply)
            }
            Err(e) => Err(e),
        }
    }

    fn wire_stats(&self) -> WireStats {
        self.counters.snapshot()
    }
}

/// Write one `u32`-LE length-prefixed frame.
///
/// Convenience wrapper over [`write_frame_with`] that allocates a fresh
/// staging buffer; hot paths (the connection pool, [`FrameServer`]
/// connection threads) keep a reusable one instead.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> Result<(), WireError> {
    write_frame_with(w, frame, &mut Vec::new())
}

/// Write one `u32`-LE length-prefixed frame as a **single** write.
///
/// The prefix and payload are staged contiguously in `scratch` and
/// issued as one `write_all` — on an unbuffered `TcpStream` the naive
/// prefix-then-payload sequence is two syscalls, and with Nagle off the
/// 4-byte prefix would go out as its own packet. `scratch` is cleared
/// and reused; callers that write many frames on one connection keep it
/// across calls to amortize the allocation.
pub fn write_frame_with(
    w: &mut impl Write,
    frame: &[u8],
    scratch: &mut Vec<u8>,
) -> Result<(), WireError> {
    if frame.len() > MAX_FRAME as usize {
        return Err(WireError::BadFrame);
    }
    scratch.clear();
    scratch.reserve(4 + frame.len());
    scratch.extend_from_slice(&(frame.len() as u32).to_le_bytes());
    scratch.extend_from_slice(frame);
    w.write_all(scratch)?;
    w.flush()?;
    Ok(())
}

/// Read one `u32`-LE length-prefixed frame.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, WireError> {
    let mut frame = Vec::new();
    read_frame_into(r, &mut frame)?;
    Ok(frame)
}

/// Read one `u32`-LE length-prefixed frame into `buf`, reusing its
/// capacity. `buf` is truncated/grown to exactly the frame length;
/// connection loops that process many requests keep one buffer across
/// frames instead of allocating per frame.
pub fn read_frame_into(r: &mut impl Read, buf: &mut Vec<u8>) -> Result<(), WireError> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(WireError::BadFrame);
    }
    buf.clear();
    buf.resize(len as usize, 0);
    r.read_exact(buf)?;
    Ok(())
}

/// One listening server role: an accept loop that feeds every incoming
/// frame to a [`FrameHandler`] and writes the reply back. Connections are
/// served on their own threads until the peer closes them. Dropping the
/// server stops the accept loop (a wake-up connection unblocks it),
/// shuts every live connection down, and **joins** every connection
/// thread — no handler can still be running against server state after
/// the drop returns.
pub struct FrameServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
    /// Live connection threads with a shutdown handle to each stream.
    /// Finished entries are reaped by the accept loop as it admits new
    /// connections, so the registry tracks concurrency, not history.
    conns: ConnRegistry,
}

impl FrameServer {
    /// Bind `127.0.0.1:0` for `route` and serve frames with `handler`.
    pub fn start(route: RouteKey, handler: FrameHandler) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let conns: ConnRegistry = Arc::new(Mutex::new(Vec::new()));
        let conns2 = Arc::clone(&conns);
        let accept = std::thread::Builder::new()
            .name(format!("bff-{}-listener", route.role().name()))
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop2.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(conn) = conn else { continue };
                    conn.set_nodelay(true).ok();
                    let handler = Arc::clone(&handler);
                    // A try_clone failure leaves no shutdown handle for
                    // Drop; refuse the connection rather than leak an
                    // unstoppable thread.
                    let Ok(shutdown_handle) = conn.try_clone() else {
                        continue;
                    };
                    let thread = std::thread::spawn(move || serve_connection(conn, route, handler));
                    let mut live = conns2.lock();
                    live.retain(|(_, t)| !t.is_finished());
                    live.push((shutdown_handle, thread));
                }
            })?;
        Ok(Self {
            addr,
            stop,
            accept: Some(accept),
            conns,
        })
    }

    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for FrameServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop so it observes the stop flag. (The
        // wake-up connection is never registered: the loop re-checks
        // the flag before spawning a connection thread.)
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // The accept thread is gone, so the registry is final: shut
        // every live stream down (unblocking its read) and join the
        // thread, so no handler outlives the server.
        let drained = std::mem::take(&mut *self.conns.lock());
        for (stream, thread) in drained {
            let _ = stream.shutdown(std::net::Shutdown::Both);
            let _ = thread.join();
        }
    }
}

fn serve_connection(mut conn: TcpStream, route: RouteKey, handler: FrameHandler) {
    // Per-connection scratch: the request buffer and the reply staging
    // buffer are reused across frames, and each reply goes out as one
    // write (prefix + payload staged contiguously).
    let mut frame = Vec::new();
    let mut scratch = Vec::new();
    loop {
        if read_frame_into(&mut conn, &mut frame).is_err() {
            return; // peer closed (or corrupt stream): stop serving it
        }
        let reply = match handler(route, &frame) {
            Ok(r) => r,
            Err(_) => return, // undecodable request: drop the connection
        };
        if write_frame_with(&mut conn, &reply, &mut scratch).is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
    }

    #[test]
    fn framed_write_is_a_single_write_call() {
        /// Counts `write` calls; fails the test if a frame arrives split.
        struct CountingSink {
            writes: usize,
            bytes: Vec<u8>,
        }
        impl Write for CountingSink {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.writes += 1;
                self.bytes.extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = CountingSink {
            writes: 0,
            bytes: Vec::new(),
        };
        let mut scratch = Vec::new();
        write_frame_with(&mut sink, b"hello", &mut scratch).unwrap();
        assert_eq!(sink.writes, 1, "prefix and payload must go out together");
        write_frame_with(&mut sink, b"worlds!", &mut scratch).unwrap();
        assert_eq!(sink.writes, 2);
        // Both frames decode back, reusing one read buffer.
        let mut r = &sink.bytes[..];
        let mut buf = Vec::new();
        read_frame_into(&mut r, &mut buf).unwrap();
        assert_eq!(buf, b"hello");
        read_frame_into(&mut r, &mut buf).unwrap();
        assert_eq!(buf, b"worlds!");
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap_err(), WireError::BadFrame);
    }

    #[test]
    fn truncated_frame_is_closed_not_panic() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap_err(), WireError::Closed);
    }

    #[test]
    fn socket_echo_end_to_end() {
        let handler: FrameHandler = Arc::new(|route, frame| {
            assert_eq!(route, RouteKey::Vm);
            let mut out = frame.to_vec();
            out.reverse();
            Ok(out)
        });
        let server = FrameServer::start(RouteKey::Vm, handler).unwrap();
        let table = RouteTable {
            vm: server.addr(),
            pm: server.addr(),
            board: server.addr(),
            cluster: server.addr(),
            meta: server.addr(),
            provider: server.addr(),
        };
        let t = SocketTransport::new(table);
        let reply = t.call(RouteKey::Vm, b"abc").unwrap();
        assert_eq!(reply, b"cba");
        // The pooled connection serves a second call.
        let reply = t.call(RouteKey::Vm, b"xy").unwrap();
        assert_eq!(reply, b"yx");
        let stats = t.wire_stats();
        assert_eq!(stats.calls, 2);
        assert_eq!(stats.bytes_sent, 5);
        assert_eq!(stats.bytes_received, 5);
    }

    #[test]
    fn codec_transport_counts_bytes() {
        let handler: FrameHandler = Arc::new(|_route, frame| Ok(frame.to_vec()));
        let t = CodecTransport::new(handler);
        t.call(RouteKey::Pm, &[1, 2, 3]).unwrap();
        assert_eq!(
            t.wire_stats(),
            WireStats {
                calls: 1,
                bytes_sent: 3,
                bytes_received: 3
            }
        );
    }
}
