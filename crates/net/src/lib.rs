//! # bff-net
//!
//! Node identities, the [`Fabric`] trait, and transfer accounting.
//!
//! Every distributed component in the workspace (BlobSeer providers, PVFS
//! servers, the mirroring module, broadcast trees) is written against
//! [`Fabric`]: an interface that *charges* for network transfers, RPCs,
//! disk accesses and CPU time. The protocol logic is therefore identical in
//! both execution modes:
//!
//! * [`LocalFabric`] — costs are free (calls return immediately) but fully
//!   accounted; used by the in-process stack that operates on real bytes
//!   and real files (examples, correctness tests).
//! * `bff_sim::SimFabric` — costs advance a deterministic virtual clock and
//!   contend on modelled NICs and disks; used by the testbed-scale
//!   experiments that regenerate the paper's figures.
//!
//! Because all byte movement goes through a `Fabric`, the "total network
//! traffic" series of the paper's Fig. 4(d) is simply a [`TrafficStats`]
//! snapshot — no experiment-specific instrumentation is needed.

pub mod stats;
pub mod thread_fabric;
pub mod transport;

pub use stats::{NodeTraffic, TrafficStats};
pub use thread_fabric::{ThreadDiskParams, ThreadFabric, ThreadParams};
pub use transport::{
    CodecTransport, DirectTransport, FrameHandler, FrameServer, Role, RouteKey, RouteTable,
    SocketTransport, Transport, WireError, WireStats,
};

use std::fmt;
use std::sync::Arc;

/// Identifier of a machine in the (real or simulated) cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index form, for dense per-node tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A single point-to-point bulk transfer request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Sender.
    pub src: NodeId,
    /// Receiver.
    pub dst: NodeId,
    /// Payload size in bytes (headers are modelled separately by the
    /// implementation's per-message overhead parameter).
    pub bytes: u64,
}

/// Errors surfaced by fabric operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The target (or source) node is marked failed.
    NodeDown(NodeId),
    /// The simulation was torn down while the operation was in flight.
    Cancelled,
    /// A transport-level failure (encoding, framing, or socket I/O).
    /// Carried inside `NetError` so broken connections flow down the same
    /// per-chunk failover paths as fail-stop node failures.
    Wire(transport::WireError),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::NodeDown(n) => write!(f, "{n} is down"),
            NetError::Cancelled => write!(f, "operation cancelled"),
            NetError::Wire(e) => write!(f, "wire failure: {e}"),
        }
    }
}

impl From<transport::WireError> for NetError {
    fn from(e: transport::WireError) -> Self {
        NetError::Wire(e)
    }
}

impl std::error::Error for NetError {}

/// The cost-accounting substrate all distributed logic is written against.
///
/// Implementations must be safe to call from many threads (the in-process
/// stack uses real threads; the simulator uses coroutine processes).
pub trait Fabric: Send + Sync {
    /// Current time in microseconds. Virtual time for simulators; a
    /// monotonic wall clock (or 0) for local fabrics.
    fn now_us(&self) -> u64;

    /// Move `bytes` from `src` to `dst`, blocking the caller until the
    /// transfer completes. Self-transfers (src == dst) are free except for
    /// accounting done by the implementation.
    fn transfer(&self, src: NodeId, dst: NodeId, bytes: u64) -> Result<(), NetError>;

    /// Perform several transfers concurrently, returning when all have
    /// completed. This is the primitive behind the paper's parallel chunk
    /// fetches (§3.1.3): the chunks that cover a read are pulled from their
    /// providers simultaneously and contend for the reader's ingress NIC.
    fn transfer_all(&self, xfers: &[Transfer]) -> Result<(), NetError>;

    /// A control-plane round trip (`req_bytes` there, `resp_bytes` back),
    /// used for metadata lookups and provider-manager calls.
    fn rpc(
        &self,
        src: NodeId,
        dst: NodeId,
        req_bytes: u64,
        resp_bytes: u64,
    ) -> Result<(), NetError>;

    /// Charge a local-disk read of `bytes` at `node`.
    fn disk_read(&self, node: NodeId, bytes: u64) -> Result<(), NetError>;

    /// Charge a local-disk write of `bytes` at `node`, written through to
    /// the medium (FIFO with reads). This is how hypervisor direct writes
    /// behave in the paper's baseline configurations.
    fn disk_write(&self, node: NodeId, bytes: u64) -> Result<(), NetError>;

    /// Charge a *write-back* disk write: absorbed at memory speed while
    /// the page cache is under its dirty limit, throttled above it. This
    /// is the mirroring module's mmap strategy (§4.2) and BlobSeer's
    /// asynchronous provider writes (§5.3).
    fn disk_write_cached(&self, node: NodeId, bytes: u64) -> Result<(), NetError>;

    /// Block until all cached dirty bytes at `node` have reached the disk
    /// (fsync barrier).
    fn disk_sync(&self, node: NodeId) -> Result<(), NetError>;

    /// Burn `micros` of CPU time at `node` (boot-phase compute interludes,
    /// hypervisor overheads, FUSE context switches).
    fn compute(&self, node: NodeId, micros: u64);

    /// Run independent tasks to completion, concurrently where the fabric
    /// supports it. This is the structured-concurrency primitive behind
    /// parallel chunk fetches that involve per-provider disk + network
    /// stages. Tasks must be `'static` (share state via `Arc`); they are
    /// all finished when this returns. The default implementation runs
    /// tasks sequentially, which is semantically equivalent for
    /// independent tasks on a cost-free fabric.
    fn par_join(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'static>>) {
        for t in tasks {
            t();
        }
    }

    /// Start `task` as *background* work: the caller continues
    /// immediately and does not observe the task's completion — the
    /// primitive behind asynchronous read-ahead, where transfers must
    /// overlap the initiator's own timeline instead of extending it. On
    /// a simulator this spawns a concurrent process whose costs contend
    /// normally on the modelled resources; the simulation still runs it
    /// to completion. The default (used by cost-free fabrics, where
    /// "overlap" moves no clock) runs the task inline.
    fn spawn_detached(&self, task: Box<dyn FnOnce() + Send + 'static>) {
        task();
    }

    /// Block until all work started with [`Fabric::spawn_detached`] has
    /// finished. Sweeps call this before snapshotting [`TrafficStats`] so
    /// detached read-ahead cannot mutate counters mid-read. Fabrics whose
    /// `spawn_detached` runs inline (or inside a simulation that is driven
    /// to completion anyway) have nothing to drain: the default is a no-op.
    fn quiesce(&self) {}

    /// Whether a node is marked failed (fail-stop model).
    fn is_down(&self, _node: NodeId) -> bool {
        false
    }

    /// Aggregate traffic statistics.
    fn stats(&self) -> &TrafficStats;
}

/// A zero-latency, infinite-bandwidth fabric for in-process use.
///
/// All operations complete immediately but are fully accounted in
/// [`TrafficStats`], and fail-stop node failures are honoured, so
/// correctness tests (including failure injection) run against the exact
/// protocol logic the simulator exercises.
pub struct LocalFabric {
    stats: TrafficStats,
    down: parking_lot::RwLock<Vec<bool>>,
}

impl LocalFabric {
    /// Create a fabric for `nodes` machines.
    pub fn new(nodes: usize) -> Arc<Self> {
        Arc::new(Self {
            stats: TrafficStats::new(nodes),
            down: parking_lot::RwLock::new(vec![false; nodes]),
        })
    }

    /// Mark a node failed; subsequent operations touching it error.
    pub fn fail_node(&self, node: NodeId) {
        self.down.write()[node.index()] = true;
    }

    /// Bring a failed node back.
    pub fn recover_node(&self, node: NodeId) {
        self.down.write()[node.index()] = false;
    }

    fn check(&self, n: NodeId) -> Result<(), NetError> {
        if self.is_down(n) {
            Err(NetError::NodeDown(n))
        } else {
            Ok(())
        }
    }
}

impl Fabric for LocalFabric {
    fn now_us(&self) -> u64 {
        0
    }

    fn transfer(&self, src: NodeId, dst: NodeId, bytes: u64) -> Result<(), NetError> {
        self.check(src)?;
        self.check(dst)?;
        if src != dst {
            self.stats.record_transfer(src, dst, bytes);
        }
        Ok(())
    }

    fn transfer_all(&self, xfers: &[Transfer]) -> Result<(), NetError> {
        for x in xfers {
            self.transfer(x.src, x.dst, x.bytes)?;
        }
        Ok(())
    }

    fn rpc(
        &self,
        src: NodeId,
        dst: NodeId,
        req_bytes: u64,
        resp_bytes: u64,
    ) -> Result<(), NetError> {
        self.check(src)?;
        self.check(dst)?;
        if src != dst {
            self.stats.record_rpc(src, dst, req_bytes, resp_bytes);
        }
        Ok(())
    }

    fn disk_read(&self, node: NodeId, bytes: u64) -> Result<(), NetError> {
        self.check(node)?;
        self.stats.record_disk_read(node, bytes);
        Ok(())
    }

    fn disk_write(&self, node: NodeId, bytes: u64) -> Result<(), NetError> {
        self.check(node)?;
        self.stats.record_disk_write(node, bytes);
        Ok(())
    }

    fn disk_write_cached(&self, node: NodeId, bytes: u64) -> Result<(), NetError> {
        self.check(node)?;
        self.stats.record_disk_write(node, bytes);
        Ok(())
    }

    fn disk_sync(&self, node: NodeId) -> Result<(), NetError> {
        self.check(node)
    }

    fn compute(&self, _node: NodeId, _micros: u64) {}

    fn is_down(&self, node: NodeId) -> bool {
        self.down.read().get(node.index()).copied().unwrap_or(false)
    }

    fn stats(&self) -> &TrafficStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_fabric_accounts_transfers() {
        let f = LocalFabric::new(4);
        f.transfer(NodeId(0), NodeId(1), 1000).unwrap();
        f.transfer(NodeId(1), NodeId(2), 500).unwrap();
        // Self transfer is free.
        f.transfer(NodeId(3), NodeId(3), 999).unwrap();
        assert_eq!(f.stats().total_network_bytes(), 1500);
        assert_eq!(f.stats().node(NodeId(1)).sent, 500);
        assert_eq!(f.stats().node(NodeId(1)).received, 1000);
    }

    #[test]
    fn rpc_counts_both_directions() {
        let f = LocalFabric::new(2);
        f.rpc(NodeId(0), NodeId(1), 100, 300).unwrap();
        assert_eq!(f.stats().total_network_bytes(), 400);
        assert_eq!(f.stats().node(NodeId(0)).sent, 100);
        assert_eq!(f.stats().node(NodeId(0)).received, 300);
    }

    #[test]
    fn failed_node_errors() {
        let f = LocalFabric::new(3);
        f.fail_node(NodeId(2));
        assert_eq!(
            f.transfer(NodeId(0), NodeId(2), 10),
            Err(NetError::NodeDown(NodeId(2)))
        );
        assert_eq!(
            f.disk_read(NodeId(2), 10),
            Err(NetError::NodeDown(NodeId(2)))
        );
        f.recover_node(NodeId(2));
        assert!(f.transfer(NodeId(0), NodeId(2), 10).is_ok());
    }

    #[test]
    fn transfer_all_accounts_everything() {
        let f = LocalFabric::new(4);
        let xs = [
            Transfer {
                src: NodeId(0),
                dst: NodeId(1),
                bytes: 10,
            },
            Transfer {
                src: NodeId(2),
                dst: NodeId(1),
                bytes: 20,
            },
        ];
        f.transfer_all(&xs).unwrap();
        assert_eq!(f.stats().total_network_bytes(), 30);
        assert_eq!(f.stats().node(NodeId(1)).received, 30);
    }
}
