//! Traffic and disk accounting shared by all fabric implementations.
//!
//! Counters are lock-free atomics so the in-process stack can hammer them
//! from many threads; the simulator only touches them from its single
//! running coroutine, where the atomics cost nothing contended.

use crate::NodeId;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-node traffic snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeTraffic {
    /// Bytes this node pushed onto the network.
    pub sent: u64,
    /// Bytes this node pulled from the network.
    pub received: u64,
    /// Bytes read from the local disk.
    pub disk_read: u64,
    /// Bytes written to the local disk.
    pub disk_written: u64,
}

#[derive(Debug, Default)]
struct NodeCounters {
    sent: AtomicU64,
    received: AtomicU64,
    disk_read: AtomicU64,
    disk_written: AtomicU64,
}

/// Aggregate traffic statistics for a fabric.
#[derive(Debug)]
pub struct TrafficStats {
    nodes: Vec<NodeCounters>,
    network_bytes: AtomicU64,
    transfers: AtomicU64,
    rpcs: AtomicU64,
}

impl TrafficStats {
    /// Counters for `nodes` machines.
    pub fn new(nodes: usize) -> Self {
        Self {
            nodes: (0..nodes).map(|_| NodeCounters::default()).collect(),
            network_bytes: AtomicU64::new(0),
            transfers: AtomicU64::new(0),
            rpcs: AtomicU64::new(0),
        }
    }

    /// Number of nodes the stats were sized for.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Record a bulk transfer.
    pub fn record_transfer(&self, src: NodeId, dst: NodeId, bytes: u64) {
        self.network_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.transfers.fetch_add(1, Ordering::Relaxed);
        self.nodes[src.index()]
            .sent
            .fetch_add(bytes, Ordering::Relaxed);
        self.nodes[dst.index()]
            .received
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record an RPC round trip.
    pub fn record_rpc(&self, src: NodeId, dst: NodeId, req: u64, resp: u64) {
        self.network_bytes.fetch_add(req + resp, Ordering::Relaxed);
        self.rpcs.fetch_add(1, Ordering::Relaxed);
        self.nodes[src.index()]
            .sent
            .fetch_add(req, Ordering::Relaxed);
        self.nodes[src.index()]
            .received
            .fetch_add(resp, Ordering::Relaxed);
        self.nodes[dst.index()]
            .received
            .fetch_add(req, Ordering::Relaxed);
        self.nodes[dst.index()]
            .sent
            .fetch_add(resp, Ordering::Relaxed);
    }

    /// Record a local disk read.
    pub fn record_disk_read(&self, node: NodeId, bytes: u64) {
        self.nodes[node.index()]
            .disk_read
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record a local disk write.
    pub fn record_disk_write(&self, node: NodeId, bytes: u64) {
        self.nodes[node.index()]
            .disk_written
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Total bytes moved over the network (the paper's Fig. 4(d) metric).
    pub fn total_network_bytes(&self) -> u64 {
        self.network_bytes.load(Ordering::Relaxed)
    }

    /// Number of bulk transfers performed.
    pub fn transfer_count(&self) -> u64 {
        self.transfers.load(Ordering::Relaxed)
    }

    /// Number of RPC round trips performed.
    pub fn rpc_count(&self) -> u64 {
        self.rpcs.load(Ordering::Relaxed)
    }

    /// Snapshot of one node's counters.
    pub fn node(&self, node: NodeId) -> NodeTraffic {
        let c = &self.nodes[node.index()];
        NodeTraffic {
            sent: c.sent.load(Ordering::Relaxed),
            received: c.received.load(Ordering::Relaxed),
            disk_read: c.disk_read.load(Ordering::Relaxed),
            disk_written: c.disk_written.load(Ordering::Relaxed),
        }
    }

    /// Reset all counters (between experiment repetitions).
    pub fn reset(&self) {
        self.network_bytes.store(0, Ordering::Relaxed);
        self.transfers.store(0, Ordering::Relaxed);
        self.rpcs.store(0, Ordering::Relaxed);
        for c in &self.nodes {
            c.sent.store(0, Ordering::Relaxed);
            c.received.store(0, Ordering::Relaxed);
            c.disk_read.store(0, Ordering::Relaxed);
            c.disk_written.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let s = TrafficStats::new(3);
        s.record_transfer(NodeId(0), NodeId(1), 100);
        s.record_rpc(NodeId(1), NodeId(2), 10, 20);
        assert_eq!(s.total_network_bytes(), 130);
        assert_eq!(s.transfer_count(), 1);
        assert_eq!(s.rpc_count(), 1);
        assert_eq!(s.node(NodeId(1)).sent, 10);
        assert_eq!(s.node(NodeId(1)).received, 120);
    }

    #[test]
    fn reset_zeroes() {
        let s = TrafficStats::new(2);
        s.record_transfer(NodeId(0), NodeId(1), 100);
        s.record_disk_write(NodeId(0), 7);
        s.reset();
        assert_eq!(s.total_network_bytes(), 0);
        assert_eq!(s.node(NodeId(0)), NodeTraffic::default());
    }

    #[test]
    fn disk_counters_are_per_node() {
        let s = TrafficStats::new(2);
        s.record_disk_read(NodeId(0), 5);
        s.record_disk_write(NodeId(1), 9);
        assert_eq!(s.node(NodeId(0)).disk_read, 5);
        assert_eq!(s.node(NodeId(0)).disk_written, 0);
        assert_eq!(s.node(NodeId(1)).disk_written, 9);
        // Disk traffic is not network traffic.
        assert_eq!(s.total_network_bytes(), 0);
    }
}
