//! A real-concurrency [`Fabric`]: OS threads, a wall clock, and modelled
//! resource costs paid by *sleeping*.
//!
//! [`ThreadFabric`] is the third execution mode of the stack, between the
//! cost-free [`LocalFabric`](crate::LocalFabric) and the deterministic
//! virtual-time `bff_sim::SimFabric`:
//!
//! * time is a **monotonic wall clock** (scaled by
//!   [`ThreadParams::time_scale`] so experiments compress hours of modelled
//!   serving into seconds of wall time);
//! * `transfer`/`transfer_all` are charged through **per-node NIC
//!   reservations** (one egress and one ingress lane per node, FIFO at the
//!   link bandwidth), so concurrent clients genuinely contend for
//!   bandwidth instead of being serialized by a scheduler;
//! * disk costs reuse the simulator's write-back/dirty-limit semantics
//!   ([`ThreadDiskParams`] mirrors `bff_sim::DiskParams` formula for
//!   formula), paid in wall time;
//! * `par_join` fans out on scoped OS threads and `spawn_detached` runs on
//!   a small shared worker pool that [`Fabric::quiesce`] drains.
//!
//! Because callers *sleep through* their modelled costs while other
//! threads keep running, lock contention inside the protocol stack shows
//! up as real wall-clock loss here — which is exactly what the simulator
//! structurally cannot see and what `load_sweep` measures.

use crate::{Fabric, NetError, NodeId, TrafficStats, Transfer};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::thread;
use std::time::{Duration, Instant};

/// Disk + page-cache parameters, mirroring `bff_sim::DiskParams` (bff-net
/// cannot depend on bff-sim; a conformance test in `crates/sim` pins the
/// two models to each other).
#[derive(Debug, Clone, Copy)]
pub struct ThreadDiskParams {
    /// Sequential bandwidth, bytes per modelled microsecond (== MB/s).
    pub bandwidth: f64,
    /// Per-request positioning cost, modelled microseconds.
    pub access_us: u64,
    /// Memory-copy bandwidth for cache-absorbed writes, bytes/us.
    pub mem_bandwidth: f64,
    /// Dirty-bytes ceiling before write-back throttles to disk speed.
    pub dirty_limit: u64,
}

impl Default for ThreadDiskParams {
    fn default() -> Self {
        Self {
            bandwidth: 55.0,
            access_us: 8_000,
            mem_bandwidth: 2_000.0,
            dirty_limit: 256 << 20,
        }
    }
}

/// Parameters of a [`ThreadFabric`].
#[derive(Debug, Clone, Copy)]
pub struct ThreadParams {
    /// Number of nodes.
    pub nodes: usize,
    /// Per-link NIC bandwidth, bytes per modelled microsecond.
    pub nic_bw: f64,
    /// One-way link latency, modelled microseconds.
    pub link_latency_us: u64,
    /// Fixed per-message framing overhead, bytes.
    pub msg_overhead_bytes: u64,
    /// Fixed software overhead of an RPC round trip, modelled us.
    pub rpc_overhead_us: u64,
    /// Per-node disk model.
    pub disk: ThreadDiskParams,
    /// Modelled microseconds per real microsecond. `1.0` runs in real
    /// time; `200.0` compresses 200 modelled seconds into one wall
    /// second. Protocol-internal CPU work (lock waits, hashing) is *not*
    /// compressed, so high scales make software overhead loom larger —
    /// useful for contention studies, unfair for absolute latency claims.
    pub time_scale: f64,
    /// Worker threads backing [`Fabric::spawn_detached`].
    pub pool_threads: usize,
    /// Emulate the first, unoptimized fabric: one global lane mutex
    /// held across every modelled network/disk delay, so concurrent
    /// operations serialize in *real* time instead of overlapping
    /// their sleeps. Modelled costs and stats are identical — only
    /// wall-clock concurrency differs. `load_sweep` uses this as its
    /// unoptimized baseline; leave it off everywhere else.
    pub coarse_lanes: bool,
}

impl ThreadParams {
    /// The simulator's Grid'5000 testbed profile (§5.1) in real time:
    /// 1 Gbit/s links, 55 MB/s disks.
    pub fn grid5000(nodes: usize) -> Self {
        Self {
            nodes,
            nic_bw: 117.5,
            link_latency_us: 100,
            msg_overhead_bytes: 512,
            rpc_overhead_us: 150,
            disk: ThreadDiskParams::default(),
            time_scale: 1.0,
            pool_threads: 2,
            coarse_lanes: false,
        }
    }

    /// A near-free profile for correctness tests: huge bandwidth, zero
    /// latency, heavy time compression — modelled costs round to
    /// microsecond-scale sleeps so real thread interleaving is exercised
    /// without slowing the suite down.
    pub fn fast(nodes: usize) -> Self {
        Self {
            nodes,
            nic_bw: 1e7,
            link_latency_us: 0,
            msg_overhead_bytes: 0,
            rpc_overhead_us: 0,
            disk: ThreadDiskParams {
                bandwidth: 1e7,
                access_us: 0,
                mem_bandwidth: 1e7,
                dirty_limit: u64::MAX / 4,
            },
            time_scale: 1e4,
            pool_threads: 2,
            coarse_lanes: false,
        }
    }

    /// The `load_sweep` serving profile: Grid'5000-shaped cost ratios,
    /// compressed 20× so hundreds of boots finish in seconds while
    /// modelled delays stay tens-to-hundreds of real microseconds —
    /// long enough that overlapping (or failing to overlap) them
    /// dominates wall-clock throughput.
    pub fn serving(nodes: usize) -> Self {
        Self {
            time_scale: 20.0,
            ..Self::grid5000(nodes)
        }
    }
}

/// Wall-time port of the simulator's `DiskState` (same formulas, the
/// caller supplies `now` from the modelled clock).
#[derive(Debug)]
struct DiskLane {
    params: ThreadDiskParams,
    next_free: u64,
    dirty: f64,
    dirty_as_of: u64,
}

impl DiskLane {
    fn new(params: ThreadDiskParams) -> Self {
        Self {
            params,
            next_free: 0,
            dirty: 0.0,
            dirty_as_of: 0,
        }
    }

    fn settle(&mut self, now: u64) {
        let dt = now.saturating_sub(self.dirty_as_of) as f64;
        if dt > 0.0 {
            self.dirty = (self.dirty - dt * self.params.bandwidth).max(0.0);
            self.dirty_as_of = now;
        }
    }

    fn fifo(&mut self, now: u64, bytes: u64) -> u64 {
        let start = self.next_free.max(now);
        let service = self.params.access_us as f64 + bytes as f64 / self.params.bandwidth;
        let done = start + service.ceil() as u64;
        self.next_free = done;
        done
    }

    fn write_back(&mut self, now: u64, bytes: u64) -> u64 {
        self.settle(now);
        let over = (self.dirty + bytes as f64) - self.params.dirty_limit as f64;
        self.dirty += bytes as f64;
        let absorb = (bytes as f64 / self.params.mem_bandwidth).ceil() as u64;
        if over <= 0.0 {
            now + absorb.max(1)
        } else {
            let throttle = (over / self.params.bandwidth).ceil() as u64;
            now + absorb.max(1) + throttle
        }
    }

    fn sync_done(&mut self, now: u64) -> u64 {
        self.settle(now);
        now + (self.dirty / self.params.bandwidth).ceil() as u64
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<Job>,
    /// Jobs queued or currently running.
    pending: usize,
    shutdown: bool,
}

struct PoolShared {
    state: StdMutex<PoolState>,
    work: Condvar,
    idle: Condvar,
}

impl PoolShared {
    fn state(&self) -> StdMutexGuard<'_, PoolState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Fixed-size worker pool behind `spawn_detached`, drainable by
/// `quiesce`. Built on `std::sync` (the vendored parking_lot shim has no
/// condvar).
struct WorkPool {
    shared: Arc<PoolShared>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl WorkPool {
    fn new(threads: usize) -> Self {
        let shared = Arc::new(PoolShared {
            state: StdMutex::new(PoolState {
                queue: VecDeque::new(),
                pending: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
        });
        let workers = (0..threads.max(1))
            .map(|_| {
                let sh = Arc::clone(&shared);
                thread::spawn(move || loop {
                    let job = {
                        let mut st = sh.state();
                        loop {
                            if let Some(j) = st.queue.pop_front() {
                                break j;
                            }
                            if st.shutdown {
                                return;
                            }
                            st = sh.work.wait(st).unwrap_or_else(|e| e.into_inner());
                        }
                    };
                    // A panicking job must not wedge quiesce(): swallow the
                    // unwind and still decrement the pending count.
                    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                    let mut st = sh.state();
                    st.pending -= 1;
                    if st.pending == 0 {
                        sh.idle.notify_all();
                    }
                })
            })
            .collect();
        Self { shared, workers }
    }

    fn submit(&self, job: Job) {
        let mut st = self.shared.state();
        st.pending += 1;
        st.queue.push_back(job);
        drop(st);
        self.shared.work.notify_one();
    }

    fn drain(&self) {
        let mut st = self.shared.state();
        while st.pending > 0 {
            st = self.shared.idle.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl Drop for WorkPool {
    fn drop(&mut self) {
        self.shared.state().shutdown = true;
        self.shared.work.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Real-threaded fabric: wall clock, NIC reservations, modelled disks.
pub struct ThreadFabric {
    params: ThreadParams,
    origin: Instant,
    stats: TrafficStats,
    down: parking_lot::RwLock<Vec<bool>>,
    /// Per-node NIC lanes: modelled time at which the lane is next free.
    egress: Vec<parking_lot::Mutex<u64>>,
    ingress: Vec<parking_lot::Mutex<u64>>,
    disks: Vec<parking_lot::Mutex<DiskLane>>,
    /// The [`ThreadParams::coarse_lanes`] global lock. Only acquired in
    /// coarse mode, where it is deliberately held across the modelled
    /// delay — the contention bug the tuned fabric exists to avoid.
    naive_gate: parking_lot::Mutex<()>,
    pool: WorkPool,
}

impl ThreadFabric {
    /// Create a fabric for `params.nodes` machines.
    pub fn new(params: ThreadParams) -> Arc<Self> {
        assert!(params.nic_bw > 0.0, "nic_bw must be positive");
        assert!(params.time_scale > 0.0, "time_scale must be positive");
        Arc::new(Self {
            params,
            origin: Instant::now(),
            stats: TrafficStats::new(params.nodes),
            down: parking_lot::RwLock::new(vec![false; params.nodes]),
            egress: (0..params.nodes)
                .map(|_| parking_lot::Mutex::new(0))
                .collect(),
            ingress: (0..params.nodes)
                .map(|_| parking_lot::Mutex::new(0))
                .collect(),
            disks: (0..params.nodes)
                .map(|_| parking_lot::Mutex::new(DiskLane::new(params.disk)))
                .collect(),
            naive_gate: parking_lot::Mutex::new(()),
            pool: WorkPool::new(params.pool_threads),
        })
    }

    /// The parameters this fabric was built with.
    pub fn params(&self) -> &ThreadParams {
        &self.params
    }

    /// Mark a node failed; subsequent operations touching it error.
    pub fn fail_node(&self, node: NodeId) {
        self.down.write()[node.index()] = true;
    }

    /// Bring a failed node back.
    pub fn recover_node(&self, node: NodeId) {
        self.down.write()[node.index()] = false;
    }

    fn check(&self, n: NodeId) -> Result<(), NetError> {
        if self.is_down(n) {
            Err(NetError::NodeDown(n))
        } else {
            Ok(())
        }
    }

    fn now_model(&self) -> u64 {
        (self.origin.elapsed().as_secs_f64() * 1e6 * self.params.time_scale) as u64
    }

    /// Sleep until the modelled clock reaches `target`.
    fn sleep_until_model(&self, target: u64) {
        let target_real = Duration::from_secs_f64(target as f64 / self.params.time_scale / 1e6);
        loop {
            let elapsed = self.origin.elapsed();
            if elapsed >= target_real {
                return;
            }
            thread::sleep(target_real - elapsed);
        }
    }

    /// In coarse-lanes mode, the global lock every operation holds
    /// across its delay; `None` (free) otherwise.
    fn lane_gate(&self) -> Option<parking_lot::MutexGuard<'_, ()>> {
        if self.params.coarse_lanes {
            Some(self.naive_gate.lock())
        } else {
            None
        }
    }

    fn xfer_cost(&self, bytes: u64) -> u64 {
        ((bytes + self.params.msg_overhead_bytes) as f64 / self.params.nic_bw).ceil() as u64
    }

    /// Reserve `cost` modelled us on src's egress and dst's ingress lane,
    /// FIFO behind earlier reservations; returns the finish time. Lock
    /// order is globally egress-then-ingress, so no cycle can form.
    fn reserve(&self, src: NodeId, dst: NodeId, cost: u64) -> u64 {
        let now = self.now_model();
        let mut e = self.egress[src.index()].lock();
        let mut i = self.ingress[dst.index()].lock();
        let start = now.max(*e).max(*i);
        let finish = start + cost;
        *e = finish;
        *i = finish;
        finish
    }
}

impl Fabric for ThreadFabric {
    fn now_us(&self) -> u64 {
        self.now_model()
    }

    fn transfer(&self, src: NodeId, dst: NodeId, bytes: u64) -> Result<(), NetError> {
        self.check(src)?;
        self.check(dst)?;
        if src == dst {
            return Ok(());
        }
        self.stats.record_transfer(src, dst, bytes);
        let _gate = self.lane_gate();
        let finish = self.reserve(src, dst, self.xfer_cost(bytes));
        self.sleep_until_model(finish + self.params.link_latency_us);
        Ok(())
    }

    fn transfer_all(&self, xfers: &[Transfer]) -> Result<(), NetError> {
        for x in xfers {
            self.check(x.src)?;
            self.check(x.dst)?;
        }
        // Reserve every lane pair up front (the transfers are in flight
        // concurrently and contend), then wait out the slowest.
        let _gate = self.lane_gate();
        let mut deadline = 0u64;
        for x in xfers {
            if x.src == x.dst {
                continue;
            }
            self.stats.record_transfer(x.src, x.dst, x.bytes);
            let finish = self.reserve(x.src, x.dst, self.xfer_cost(x.bytes));
            deadline = deadline.max(finish + self.params.link_latency_us);
        }
        if deadline > 0 {
            self.sleep_until_model(deadline);
        }
        Ok(())
    }

    fn rpc(
        &self,
        src: NodeId,
        dst: NodeId,
        req_bytes: u64,
        resp_bytes: u64,
    ) -> Result<(), NetError> {
        self.check(src)?;
        self.check(dst)?;
        if src == dst {
            return Ok(());
        }
        self.stats.record_rpc(src, dst, req_bytes, resp_bytes);
        // Control plane: round-trip latency plus serialization at line
        // rate, but no NIC reservation — RPCs are small and latency-bound,
        // and modelling them through the bulk lanes would serialize every
        // metadata lookup behind multi-megabyte chunk transfers.
        let wire = req_bytes + resp_bytes + 2 * self.params.msg_overhead_bytes;
        let cost = 2 * self.params.link_latency_us
            + self.params.rpc_overhead_us
            + (wire as f64 / self.params.nic_bw).ceil() as u64;
        let _gate = self.lane_gate();
        self.sleep_until_model(self.now_model() + cost);
        Ok(())
    }

    fn disk_read(&self, node: NodeId, bytes: u64) -> Result<(), NetError> {
        self.check(node)?;
        self.stats.record_disk_read(node, bytes);
        let _gate = self.lane_gate();
        let done = self.disks[node.index()]
            .lock()
            .fifo(self.now_model(), bytes);
        self.sleep_until_model(done);
        Ok(())
    }

    fn disk_write(&self, node: NodeId, bytes: u64) -> Result<(), NetError> {
        self.check(node)?;
        self.stats.record_disk_write(node, bytes);
        let _gate = self.lane_gate();
        let done = self.disks[node.index()]
            .lock()
            .fifo(self.now_model(), bytes);
        self.sleep_until_model(done);
        Ok(())
    }

    fn disk_write_cached(&self, node: NodeId, bytes: u64) -> Result<(), NetError> {
        self.check(node)?;
        self.stats.record_disk_write(node, bytes);
        let _gate = self.lane_gate();
        let done = self.disks[node.index()]
            .lock()
            .write_back(self.now_model(), bytes);
        self.sleep_until_model(done);
        Ok(())
    }

    fn disk_sync(&self, node: NodeId) -> Result<(), NetError> {
        self.check(node)?;
        let _gate = self.lane_gate();
        let done = self.disks[node.index()].lock().sync_done(self.now_model());
        self.sleep_until_model(done);
        Ok(())
    }

    fn compute(&self, _node: NodeId, micros: u64) {
        self.sleep_until_model(self.now_model() + micros);
    }

    fn par_join(&self, mut tasks: Vec<Box<dyn FnOnce() + Send + 'static>>) {
        match tasks.len() {
            0 => {}
            1 => (tasks.pop().unwrap())(),
            _ => {
                let first = tasks.remove(0);
                thread::scope(|s| {
                    for t in tasks {
                        s.spawn(t);
                    }
                    // Run one task on the caller's thread: no idle joiner,
                    // and a pool-starvation deadlock is impossible.
                    first();
                });
            }
        }
    }

    fn spawn_detached(&self, task: Box<dyn FnOnce() + Send + 'static>) {
        self.pool.submit(task);
    }

    fn quiesce(&self) {
        self.pool.drain();
    }

    fn is_down(&self, node: NodeId) -> bool {
        self.down.read().get(node.index()).copied().unwrap_or(false)
    }

    fn stats(&self) -> &TrafficStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Cheap params: 1000 B/us links, no latency/overhead, 1000× time
    /// compression => a 1 MB transfer models ~1049 us, sleeps ~1 us real.
    fn params(nodes: usize) -> ThreadParams {
        ThreadParams {
            nodes,
            nic_bw: 1000.0,
            link_latency_us: 0,
            msg_overhead_bytes: 0,
            rpc_overhead_us: 0,
            disk: ThreadDiskParams {
                bandwidth: 1000.0,
                access_us: 0,
                mem_bandwidth: 10_000.0,
                dirty_limit: 1 << 20,
            },
            time_scale: 1000.0,
            pool_threads: 2,
            coarse_lanes: false,
        }
    }

    #[test]
    fn clock_is_monotonic_and_advances() {
        let f = ThreadFabric::new(params(2));
        let a = f.now_us();
        f.compute(NodeId(0), 500);
        let b = f.now_us();
        assert!(b >= a + 500, "compute must advance the modelled clock");
    }

    #[test]
    fn transfers_serialize_on_the_ingress_lane() {
        let f = ThreadFabric::new(params(3));
        // Two 1 MB pushes into the same receiver: the second queues
        // behind the first, so both cost ~1049 modelled us each.
        f.transfer(NodeId(0), NodeId(2), 1 << 20).unwrap();
        f.transfer(NodeId(1), NodeId(2), 1 << 20).unwrap();
        assert!(
            f.now_us() >= 2 * (1 << 20) / 1000,
            "ingress lane must serialize: now {}",
            f.now_us()
        );
        assert_eq!(f.stats().total_network_bytes(), 2 << 20);
        assert_eq!(f.stats().node(NodeId(2)).received, 2 << 20);
    }

    #[test]
    fn transfer_all_waits_for_the_slowest_and_accounts_everything() {
        let f = ThreadFabric::new(params(4));
        let xs = [
            Transfer {
                src: NodeId(0),
                dst: NodeId(1),
                bytes: 500_000,
            },
            Transfer {
                src: NodeId(2),
                dst: NodeId(1),
                bytes: 500_000,
            },
            Transfer {
                src: NodeId(3),
                dst: NodeId(3),
                bytes: 999,
            },
        ];
        f.transfer_all(&xs).unwrap();
        // Both hit node 1's ingress: 500 + 500 modelled us end-to-end.
        assert!(f.now_us() >= 1000, "shared ingress: now {}", f.now_us());
        assert_eq!(f.stats().total_network_bytes(), 1_000_000);
    }

    #[test]
    fn self_transfers_are_free_and_unrecorded() {
        let f = ThreadFabric::new(params(2));
        f.transfer(NodeId(1), NodeId(1), 123_456).unwrap();
        f.rpc(NodeId(0), NodeId(0), 100, 100).unwrap();
        assert_eq!(f.stats().total_network_bytes(), 0);
    }

    #[test]
    fn failed_node_errors_until_recovered() {
        let f = ThreadFabric::new(params(3));
        f.fail_node(NodeId(2));
        assert_eq!(
            f.transfer(NodeId(0), NodeId(2), 10),
            Err(NetError::NodeDown(NodeId(2)))
        );
        assert_eq!(
            f.disk_read(NodeId(2), 10),
            Err(NetError::NodeDown(NodeId(2)))
        );
        f.recover_node(NodeId(2));
        assert!(f.transfer(NodeId(0), NodeId(2), 10).is_ok());
    }

    #[test]
    fn coarse_lanes_serialize_real_time_but_not_modelled_accounting() {
        // Two transfers on disjoint lane pairs, issued concurrently.
        // The tuned fabric overlaps their real sleeps; the coarse
        // fabric's global gate is held across each delay, so real wall
        // time roughly doubles. Stats are identical either way.
        fn run(coarse: bool) -> (Duration, u64) {
            let mut p = params(4);
            // ~20 ms real per transfer: long enough that scheduler
            // noise cannot blur serialized vs overlapped.
            p.coarse_lanes = coarse;
            let f = ThreadFabric::new(p);
            let bytes = 20_000_000_000; // 20e6 modelled us / 1000 scale
            let started = Instant::now();
            thread::scope(|s| {
                let fa = Arc::clone(&f);
                s.spawn(move || fa.transfer(NodeId(0), NodeId(1), bytes).unwrap());
                f.transfer(NodeId(2), NodeId(3), bytes).unwrap();
            });
            (started.elapsed(), f.stats().total_network_bytes())
        }
        let (tuned, tuned_bytes) = run(false);
        let (coarse, coarse_bytes) = run(true);
        assert_eq!(tuned_bytes, coarse_bytes, "accounting must not differ");
        assert!(
            coarse.as_secs_f64() > tuned.as_secs_f64() * 1.5,
            "global gate must serialize: coarse {coarse:?} vs tuned {tuned:?}"
        );
    }

    #[test]
    fn par_join_runs_every_task() {
        let f = ThreadFabric::new(params(2));
        let hits = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..8)
            .map(|_| {
                let hits = Arc::clone(&hits);
                Box::new(move || {
                    hits.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        f.par_join(tasks);
        assert_eq!(hits.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn quiesce_drains_detached_work() {
        let f = ThreadFabric::new(params(2));
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let hits = Arc::clone(&hits);
            let fab = Arc::clone(&f);
            f.spawn_detached(Box::new(move || {
                fab.compute(NodeId(0), 50);
                hits.fetch_add(1, Ordering::SeqCst);
            }));
        }
        f.quiesce();
        assert_eq!(
            hits.load(Ordering::SeqCst),
            32,
            "quiesce must join all jobs"
        );
    }

    #[test]
    fn disk_lane_matches_the_simulator_formulas() {
        // Same numbers as the bff-sim disk tests: bw 100 B/us, access
        // 10us, mem 1000 B/us, dirty limit 10_000 B.
        let p = ThreadDiskParams {
            bandwidth: 100.0,
            access_us: 10,
            mem_bandwidth: 1000.0,
            dirty_limit: 10_000,
        };
        let mut lane = DiskLane::new(p);
        assert_eq!(lane.fifo(0, 1000), 20);
        assert_eq!(lane.fifo(0, 1000), 40, "FIFO queues in order");
        assert_eq!(lane.fifo(100, 1000), 120, "idle disk starts at once");

        let mut lane = DiskLane::new(p);
        assert_eq!(lane.write_back(0, 10_000), 10, "absorbed at mem speed");
        assert_eq!(lane.write_back(0, 5_000), 55, "throttled over the limit");

        let mut lane = DiskLane::new(p);
        lane.write_back(0, 5_000);
        assert_eq!(lane.sync_done(0), 50);
        assert_eq!(lane.sync_done(30), 50, "partial drain shortens the sync");
    }

    #[test]
    fn rpc_charges_latency_and_serialization() {
        let mut p = params(2);
        p.link_latency_us = 100;
        p.rpc_overhead_us = 50;
        let f = ThreadFabric::new(p);
        f.rpc(NodeId(0), NodeId(1), 1000, 1000).unwrap();
        assert!(f.now_us() >= 2 * 100 + 50 + 2, "round trip: {}", f.now_us());
        assert_eq!(f.stats().total_network_bytes(), 2000);
        assert_eq!(f.stats().rpc_count(), 1);
    }
}
