//! Fig. 5: multisnapshotting with ~15 MB of local modifications per
//! instance — average snapshot time per instance (a) and completion time
//! (b). Pass `--mini` for a CI-sized run.

use bff_bench::{f3, RunScale, Table};
use bff_cloud::experiments::fig5;
use bff_cloud::params::Calibration;

fn main() {
    let scale = RunScale::from_args();
    let cal = Calibration::default();
    let diff = match scale {
        RunScale::Paper => 15 << 20, // the paper's ~15 MB diffs
        RunScale::Mini => 512 << 10,
    };
    let rows = fig5::run(&scale.sweep(), scale.exp_scale(), cal, diff);

    let mut a = Table::new(
        "fig5a_avg_snapshot_time",
        &["instances", "qcow2_over_pvfs_s", "our_approach_s"],
    );
    let mut b = Table::new(
        "fig5b_total_snapshot_time",
        &["instances", "qcow2_over_pvfs_s", "our_approach_s"],
    );
    for row in &rows {
        a.row(&[&row.n, &f3(row.qcow.avg_s()), &f3(row.mirror.avg_s())]);
        b.row(&[&row.n, &f3(row.qcow.total_s), &f3(row.mirror.total_s)]);
    }
    a.emit();
    b.emit();
}
