//! Regenerate every figure of the paper in one run (CSV + tables under
//! `target/paper/`). Pass `--mini` for a CI-sized run.

use std::process::Command;

fn main() {
    let mini = std::env::args().any(|a| a == "--mini");
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    for fig in ["fig4", "fig5", "fig6", "fig7", "fig8", "ablations"] {
        println!("\n########## {fig} ##########");
        let mut cmd = Command::new(exe_dir.join(fig));
        if mini {
            cmd.arg("--mini");
        }
        let status = cmd
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {fig}: {e}"));
        assert!(status.success(), "{fig} failed");
    }
    println!("\nAll figures regenerated; CSVs in target/paper/.");
}
