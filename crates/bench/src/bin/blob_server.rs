//! Standalone server-role host: runs a group of BlobSeer server roles
//! (version manager, provider manager, metadata shards, chunk
//! providers, pattern board, cluster dedup index) as a real OS process
//! serving the typed wire protocol over framed TCP on loopback.
//!
//! One process can host any subset of roles (`--roles vm,pm,...`); a
//! multi-process cluster is several `blob_server`s over the same
//! topology, each serving its slice. The board and cluster roles must
//! be colocated in one process — a board purge evicts freed chunks from
//! the cluster index atomically with dropping the patterns.
//!
//! Protocol with the parent (`load_sweep --transport socket`):
//!
//! 1. bind one listener per role, print `<role> <addr>` per line;
//! 2. print `READY` and flush;
//! 3. serve until stdin reaches EOF (the parent dropping the pipe is
//!    the shutdown signal — no orphaned servers if the parent dies).
//!
//! The server roles are passive state machines: every modelled cost is
//! charged client-side by the parent's fabric, so this process needs no
//! fabric at all — it just holds state and answers frames.

use bff_blobseer::{BlobConfig, BlobTopology, Placement, ServerState};
use bff_net::transport::{FrameHandler, FrameServer, Role, RouteKey};
use bff_net::NodeId;
use std::io::{BufRead, Write};
use std::sync::Arc;

struct Args {
    roles: Vec<Role>,
    nodes: u32,
    service: u32,
    chunk_size: u64,
    dedup: bool,
    cluster_dedup: bool,
    prefetch: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        roles: Vec::new(),
        nodes: 8,
        service: 8,
        chunk_size: 64 << 10,
        dedup: false,
        cluster_dedup: false,
        prefetch: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--roles" => {
                let list = it.next().expect("--roles needs a comma-separated list");
                args.roles = list
                    .split(',')
                    .map(|s| Role::parse(s).unwrap_or_else(|| panic!("unknown role {s}")))
                    .collect();
            }
            "--nodes" => args.nodes = it.next().expect("--nodes N").parse().expect("node count"),
            "--service" => args.service = it.next().expect("--service N").parse().expect("node id"),
            "--chunk-size" => {
                args.chunk_size = it
                    .next()
                    .expect("--chunk-size BYTES")
                    .parse()
                    .expect("chunk size")
            }
            "--dedup" => args.dedup = true,
            "--cluster-dedup" => args.cluster_dedup = true,
            "--prefetch" => args.prefetch = true,
            other => panic!("unknown argument {other}"),
        }
    }
    assert!(!args.roles.is_empty(), "--roles is required");
    let hosts_board = args.roles.contains(&Role::Board);
    let hosts_cluster = args.roles.contains(&Role::Cluster);
    assert_eq!(
        hosts_board, hosts_cluster,
        "board and cluster must be colocated (a purge touches both)"
    );
    args
}

fn main() {
    let args = parse_args();
    let compute: Vec<NodeId> = (0..args.nodes).map(NodeId).collect();
    let topo = BlobTopology::colocated(&compute, NodeId(args.service));
    let cfg = BlobConfig::builder()
        .chunk_size(args.chunk_size)
        .dedup(args.dedup)
        .cluster_dedup(args.cluster_dedup)
        .prefetch(args.prefetch)
        .build();
    let state = Arc::new(ServerState::new(&cfg, &topo, Placement::RoundRobin));

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut servers = Vec::with_capacity(args.roles.len());
    for &role in &args.roles {
        let route = match role {
            Role::Vm => RouteKey::Vm,
            Role::Pm => RouteKey::Pm,
            Role::Board => RouteKey::Board,
            Role::Cluster => RouteKey::Cluster,
            Role::Meta => RouteKey::Meta(0),
            Role::Provider => RouteKey::Provider(topo.providers[0]),
        };
        let state = Arc::clone(&state);
        let handler: FrameHandler = Arc::new(move |route, frame| state.handle_frame(route, frame));
        let server = FrameServer::start(route, handler).expect("bind loopback listener");
        writeln!(out, "{} {}", role.name(), server.addr()).expect("announce role");
        servers.push(server);
    }
    writeln!(out, "READY").expect("announce ready");
    out.flush().expect("flush announcements");
    drop(out);

    // Serve until the parent closes our stdin (EOF) — the listener
    // threads do the work; this thread just waits for the signal.
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}
