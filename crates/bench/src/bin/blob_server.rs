//! Standalone server-role host: runs a group of BlobSeer server roles
//! (version manager, provider manager, metadata shards, chunk
//! providers, pattern board, cluster dedup index) as a real OS process
//! serving the typed wire protocol over framed TCP on loopback.
//!
//! One process can host any subset of roles (`--roles vm,pm,...`); a
//! multi-process cluster is several `blob_server`s over the same
//! topology, each serving its slice. The board and cluster roles must
//! be colocated in one process — a board purge evicts freed chunks from
//! the cluster index atomically with dropping the patterns.
//!
//! With `--data-dir DIR` (or `BFF_DATA_DIR`) the process is **durable**:
//! providers store chunks in log-structured segment files and every
//! manager mutation goes through a journal, both fsynced on the acks
//! that promise durability. On start the process replays whatever the
//! directory holds — an empty directory is a cold start, a populated
//! one is crash recovery — and reports what it restored on stderr
//! *before* announcing `READY`, so the parent's recovery-time clock
//! includes the replay. Each process must own its directory
//! exclusively; two writers would truncate each other's live appends.
//!
//! Protocol with the parent (`load_sweep --transport socket`):
//!
//! 1. bind one listener per role, print `<role> <addr>` per line;
//! 2. print `READY` and flush;
//! 3. serve until stdin reaches EOF (the parent dropping the pipe is
//!    the shutdown signal — no orphaned servers if the parent dies).
//!
//! A parent that closes stdout early (crashed or killed mid-handshake)
//! makes the announce writes fail; that is an orderly shutdown signal,
//! not a bug, so the process exits nonzero without unwinding.
//!
//! The server roles are passive state machines: every modelled cost is
//! charged client-side by the parent's fabric, so this process needs no
//! fabric at all — it just holds state and answers frames.

use bff_blobseer::{BlobConfig, BlobTopology, Placement, ServerState};
use bff_net::transport::{FrameHandler, FrameServer, Role, RouteKey};
use bff_net::NodeId;
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::sync::Arc;

struct Args {
    roles: Vec<Role>,
    nodes: u32,
    service: u32,
    chunk_size: u64,
    dedup: bool,
    cluster_dedup: bool,
    prefetch: bool,
    data_dir: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        roles: Vec::new(),
        nodes: 8,
        service: 8,
        chunk_size: 64 << 10,
        dedup: false,
        cluster_dedup: false,
        prefetch: false,
        data_dir: std::env::var_os("BFF_DATA_DIR").map(PathBuf::from),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--roles" => {
                let list = it.next().expect("--roles needs a comma-separated list");
                args.roles = list
                    .split(',')
                    .map(|s| Role::parse(s).unwrap_or_else(|| panic!("unknown role {s}")))
                    .collect();
            }
            "--nodes" => args.nodes = it.next().expect("--nodes N").parse().expect("node count"),
            "--service" => args.service = it.next().expect("--service N").parse().expect("node id"),
            "--chunk-size" => {
                args.chunk_size = it
                    .next()
                    .expect("--chunk-size BYTES")
                    .parse()
                    .expect("chunk size")
            }
            "--data-dir" => args.data_dir = Some(PathBuf::from(it.next().expect("--data-dir DIR"))),
            "--dedup" => args.dedup = true,
            "--cluster-dedup" => args.cluster_dedup = true,
            "--prefetch" => args.prefetch = true,
            other => panic!("unknown argument {other}"),
        }
    }
    assert!(!args.roles.is_empty(), "--roles is required");
    let hosts_board = args.roles.contains(&Role::Board);
    let hosts_cluster = args.roles.contains(&Role::Cluster);
    assert_eq!(
        hosts_board, hosts_cluster,
        "board and cluster must be colocated (a purge touches both)"
    );
    args
}

/// Exit nonzero without unwinding: the parent closed the announcement
/// pipe (it crashed or killed us mid-handshake), so there is nobody to
/// serve — a panic here would just produce a scary backtrace for an
/// orderly condition.
fn announce_failed(what: &str) -> ! {
    eprintln!("blob_server: parent closed stdout before {what}; exiting");
    std::process::exit(1);
}

fn main() {
    let args = parse_args();
    let compute: Vec<NodeId> = (0..args.nodes).map(NodeId).collect();
    let topo = BlobTopology::colocated(&compute, NodeId(args.service));
    let cfg = BlobConfig::builder()
        .chunk_size(args.chunk_size)
        .dedup(args.dedup)
        .cluster_dedup(args.cluster_dedup)
        .prefetch(args.prefetch)
        .build();
    let state = match &args.data_dir {
        None => ServerState::new(&cfg, &topo, Placement::RoundRobin),
        Some(dir) => {
            let (state, report) = ServerState::recover(&cfg, &topo, Placement::RoundRobin, dir)
                .unwrap_or_else(|e| {
                    eprintln!("blob_server: cannot recover {}: {e}", dir.display());
                    std::process::exit(1);
                });
            // Stderr, never stdout: the parent parses stdout as exactly
            // `<role> <addr>` lines followed by `READY`.
            eprintln!(
                "blob_server: recovered {} ({} journal records{}, {} chunks / {} bytes{})",
                dir.display(),
                report.journal_records,
                if report.journal_torn {
                    ", torn tail"
                } else {
                    ""
                },
                report.chunks,
                report.chunk_bytes,
                if report.torn_files > 0 {
                    ", torn segment files"
                } else {
                    ""
                },
            );
            state
        }
    };
    let state = Arc::new(state);

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut servers = Vec::with_capacity(args.roles.len());
    for &role in &args.roles {
        let route = match role {
            Role::Vm => RouteKey::Vm,
            Role::Pm => RouteKey::Pm,
            Role::Board => RouteKey::Board,
            Role::Cluster => RouteKey::Cluster,
            Role::Meta => RouteKey::Meta(0),
            Role::Provider => RouteKey::Provider(topo.providers[0]),
        };
        let state = Arc::clone(&state);
        let handler: FrameHandler = Arc::new(move |route, frame| state.handle_frame(route, frame));
        let server = FrameServer::start(route, handler).expect("bind loopback listener");
        if writeln!(out, "{} {}", role.name(), server.addr()).is_err() {
            announce_failed("role announcement");
        }
        servers.push(server);
    }
    if writeln!(out, "READY").is_err() || out.flush().is_err() {
        announce_failed("READY");
    }
    drop(out);

    // Serve until the parent closes our stdin (EOF) — the listener
    // threads do the work; this thread just waits for the signal.
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}
