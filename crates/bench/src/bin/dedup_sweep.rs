//! Dedup sweep: the snapshot-heavy Monte-Carlo suspend/resume workload
//! (§5.5) with content-addressed write dedup off vs on, plus the
//! *cross-node* contextualization scenario with the cluster-wide dedup
//! index off vs on and snapshot garbage collection on top.
//!
//! **Suspend/resume.** Eight workers (two co-located per node — the
//! multideployment pattern) boot from one base image, checkpoint their
//! intermediate results every round and snapshot after every
//! checkpoint. Halfway through, all of them are suspended and resumed
//! on *different* nodes (nothing local survives), reload their state
//! and finish. Checkpoints rewrite the same temporary file, so
//! consecutive snapshots carry identical dirty content — exactly the
//! §3.1.3 situation where commits should grow the repository by dirty
//! *unique* bytes only.
//!
//! **Cross-node contextualization.** Sixteen VMs (two per node, eight
//! nodes) deploy one image and each commit the *same* contextualization
//! payload plus a small private divergence — identical bytes from
//! *different* nodes, where the node-local digest index cannot help but
//! the cluster index collapses every copy to one stored chunk. Then all
//! but one instance terminate: snapshot GC must reclaim the bytes only
//! the dead lineages referenced (measured against a replay that only
//! ever ran the survivor) while the survivor and the base image stay
//! byte-identical — asserted, not sampled.
//!
//! Emits `target/paper/dedup_sweep.{csv,json}` (the per-mode tables),
//! `target/paper/dedup_summary.json` (gated against the `BENCH_3.json`
//! floors) and `target/paper/cluster_summary.json` (gated against the
//! `BENCH_5.json` floors) for the `bench_regression` CI gate.
//!
//! The binary is CI-sized by default (seconds); `--mini` is accepted for
//! symmetry with the figure binaries and changes nothing.

use bff_bench::{f3, output_dir, Table};
use bff_cloud::backend::ImageBackend;
use bff_cloud::middleware::Cloud;
use bff_cloud::params::Calibration;
use bff_cloud::vm::vm_write_payload;
use bff_data::Payload;
use bff_net::{Fabric, LocalFabric, NodeId};
use std::fmt::Write as _;

const NODES: u32 = 4;
const VMS: usize = 8; // two co-located per node
const IMG: u64 = 4 << 20;
const CHUNK: u64 = 64 << 10;
const STATE_BYTES: u64 = 256 << 10; // the worker's intermediate results
const STATE_OFFSET: u64 = 1 << 20;
const BOOT_READ: u64 = 1 << 20;
/// Checkpoint+snapshot rounds before and after the suspend/resume.
const ROUNDS: usize = 3;

#[derive(Debug, Clone, Copy)]
struct ModeOutcome {
    stored_mb: f64,
    committed_mb: f64,
    reused_mb: f64,
    network_mb: f64,
    hit_rate: f64,
}

fn run_mode(dedup: bool) -> ModeOutcome {
    let fabric = LocalFabric::new(NODES as usize + 1);
    let compute: Vec<NodeId> = (0..NODES).map(NodeId).collect();
    let cloud = Cloud::new(
        fabric.clone(),
        compute,
        NodeId(NODES),
        bff_blobseer::BlobConfig {
            chunk_size: CHUNK,
            dedup,
            // Pinned, not inherited from BFF_CLUSTER_DEDUP: the
            // BENCH_3 numbers record the full shipping pipeline (node
            // + cluster index), so the sweep must measure the same
            // thing no matter the caller's environment.
            cluster_dedup: dedup,
            ..Default::default()
        },
        Calibration::default(),
    );
    let (blob, version) = cloud
        .upload_image(Payload::synth(0x5EED, 0, IMG))
        .expect("upload");
    let stored_base = cloud.store().total_stored_bytes();
    fabric.stats().reset();

    let node_of = |vm: usize, resumed: bool| -> NodeId {
        // Two VMs per node; resume shifts every worker to another node.
        let shift = if resumed { 2 } else { 0 };
        NodeId(((vm + shift) % NODES as usize) as u32)
    };

    let mut committed = 0u64;
    // Phase 1: deploy, boot-read, checkpoint+snapshot ROUNDS times.
    let mut snaps = Vec::with_capacity(VMS);
    for vm in 0..VMS {
        let mut handle = cloud
            .add_instance(blob, version, node_of(vm, false))
            .expect("deploy");
        handle.backend.read(0..BOOT_READ).expect("boot read");
        for _ in 0..ROUNDS {
            let state = vm_write_payload(vm as u64, STATE_OFFSET, STATE_BYTES);
            handle
                .backend
                .write(STATE_OFFSET, state)
                .expect("checkpoint");
            committed += handle.backend.snapshot().expect("snapshot");
        }
        snaps.push(handle.snapshot().expect("snapshot identity"));
    }

    // Phase 2: resume every snapshot on a different node, reload the
    // saved state, finish the remaining rounds.
    for (vm, &(sblob, sver)) in snaps.iter().enumerate() {
        let mut handle = cloud
            .add_instance(sblob, sver, node_of(vm, true))
            .expect("resume");
        handle
            .backend
            .read(STATE_OFFSET..STATE_OFFSET + STATE_BYTES)
            .expect("reload state");
        for _ in 0..ROUNDS {
            let state = vm_write_payload(vm as u64, STATE_OFFSET, STATE_BYTES);
            handle
                .backend
                .write(STATE_OFFSET, state)
                .expect("checkpoint");
            committed += handle.backend.snapshot().expect("snapshot");
        }
    }

    let stats = cloud.metrics().cache;
    ModeOutcome {
        stored_mb: (cloud.store().total_stored_bytes() - stored_base) as f64 / 1e6,
        committed_mb: committed as f64 / 1e6,
        reused_mb: stats.dedup_reused_bytes as f64 / 1e6,
        network_mb: fabric.stats().total_network_bytes() as f64 / 1e6,
        hit_rate: stats.hit_rate(),
    }
}

// --- Cross-node contextualization scenario --------------------------

const X_NODES: u32 = 8;
const X_VMS: usize = 16; // two co-located per node
const X_IMG: u64 = 4 << 20;
const X_CTX_BYTES: u64 = 1 << 20; // the shared contextualization payload
const X_CTX_OFFSET: u64 = 1 << 20;
const X_PRIV_BYTES: u64 = 64 << 10; // one chunk of per-VM divergence
const X_PRIV_BASE: u64 = 2 << 20;

#[derive(Debug, Clone, Copy)]
struct CrossOutcome {
    /// Provider bytes the deployment's commits added over the base.
    stored_mb: f64,
    network_mb: f64,
    /// Provider bytes after the GC pass (cluster mode only; equals
    /// `stored_mb` when no GC ran).
    stored_after_gc_mb: f64,
    reclaimed_mb: f64,
}

/// Deploy `vms` instances (two per node), commit the shared
/// contextualization payload + a private chunk each, snapshot — then,
/// when `gc`, terminate every instance but VM 0 and let snapshot GC
/// reclaim the dead lineages' storage. Byte-identity of the survivor
/// and the base image across the GC pass is asserted.
fn run_cross(cluster: bool, vms: usize, gc: bool) -> CrossOutcome {
    let fabric = LocalFabric::new(X_NODES as usize + 1);
    let compute: Vec<NodeId> = (0..X_NODES).map(NodeId).collect();
    let cloud = Cloud::new(
        fabric.clone(),
        compute,
        NodeId(X_NODES),
        bff_blobseer::BlobConfig {
            chunk_size: CHUNK,
            dedup: true,
            cluster_dedup: cluster,
            ..Default::default()
        },
        Calibration::default(),
    );
    let image = Payload::synth(0xC0DE, 0, X_IMG);
    let (blob, version) = cloud.upload_image(image.clone()).expect("upload");
    let stored_base = cloud.store().total_stored_bytes();
    fabric.stats().reset();

    // The shared contextualization payload — byte-identical on every VM.
    let ctx = Payload::synth(0xC1C, 0, X_CTX_BYTES);
    let mut handles = Vec::with_capacity(vms);
    let mut snaps = Vec::with_capacity(vms);
    for vm in 0..vms {
        let node = NodeId((vm % X_NODES as usize) as u32);
        let mut handle = cloud.add_instance(blob, version, node).expect("deploy");
        handle
            .backend
            .write(X_CTX_OFFSET, ctx.clone())
            .expect("ctx");
        handle
            .backend
            .write(
                X_PRIV_BASE + vm as u64 * X_PRIV_BYTES,
                vm_write_payload(vm as u64, 0, X_PRIV_BYTES),
            )
            .expect("private divergence");
        snaps.push(handle.snapshot().expect("snapshot"));
        handles.push(handle);
    }
    let stored = cloud.store().total_stored_bytes() - stored_base;
    let network = fabric.stats().total_network_bytes();

    let mut stored_after_gc = stored;
    if gc {
        // Byte-identity witnesses before the release storm.
        let survivor = snaps[0];
        let before_survivor = cloud
            .download_image(survivor.0, survivor.1)
            .expect("survivor pre-GC");
        // Terminate everything but VM 0: 15 release storms.
        let keep = handles.remove(0);
        for handle in handles {
            cloud.terminate_instance(handle).expect("terminate");
        }
        drop(keep);
        stored_after_gc = cloud.store().total_stored_bytes() - stored_base;
        let after_survivor = cloud
            .download_image(survivor.0, survivor.1)
            .expect("survivor post-GC");
        assert!(
            after_survivor.content_eq(&before_survivor),
            "GC corrupted the surviving snapshot"
        );
        let base = cloud.download_image(blob, version).expect("base post-GC");
        assert!(base.content_eq(&image), "GC corrupted the base image");
    }
    CrossOutcome {
        stored_mb: stored as f64 / 1e6,
        network_mb: network as f64 / 1e6,
        stored_after_gc_mb: stored_after_gc as f64 / 1e6,
        reclaimed_mb: (stored - stored_after_gc) as f64 / 1e6,
    }
}

fn main() {
    let off = run_mode(false);
    let on = run_mode(true);

    let mut t = Table::new(
        "dedup_sweep",
        &[
            "dedup",
            "committed_mb",
            "stored_mb",
            "reused_by_reference_mb",
            "network_mb",
            "desc_hit_rate",
        ],
    );
    for (label, m) in [("off", off), ("on", on)] {
        t.row(&[
            &label,
            &f3(m.committed_mb),
            &f3(m.stored_mb),
            &f3(m.reused_mb),
            &f3(m.network_mb),
            &f3(m.hit_rate),
        ]);
    }
    t.emit();

    let stored_reduction = off.stored_mb / on.stored_mb.max(1e-9);
    let network_reduction = off.network_mb / on.network_mb.max(1e-9);
    println!(
        "\nprovider bytes written: {:.1} MB -> {:.1} MB ({stored_reduction:.2}x reduction); \
         network {:.1} MB -> {:.1} MB ({network_reduction:.2}x); \
         desc-cache hit rate {:.0}%",
        off.stored_mb,
        on.stored_mb,
        off.network_mb,
        on.network_mb,
        100.0 * on.hit_rate
    );

    // Flat summary for the CI perf gate (compared against BENCH_3.json).
    let mut summary = String::from("{\n");
    let _ = writeln!(
        summary,
        "  \"dedup_stored_reduction\": {stored_reduction:.3},"
    );
    let _ = writeln!(
        summary,
        "  \"dedup_network_reduction\": {network_reduction:.3},"
    );
    let _ = writeln!(summary, "  \"desc_hit_rate\": {:.3},", on.hit_rate);
    let _ = writeln!(summary, "  \"dedup_reused_mb\": {:.3}", on.reused_mb);
    summary.push('}');
    summary.push('\n');
    let path = output_dir().join("dedup_summary.json");
    std::fs::write(&path, summary).expect("write summary");
    println!("[written {}]", path.display());

    // --- Cross-node contextualization + snapshot GC -----------------
    let node_local = run_cross(false, X_VMS, false);
    let clustered = run_cross(true, X_VMS, true);
    // The survivor-only replay: what the repository would hold had the
    // terminated instances never existed. GC's target, measured rather
    // than assumed — the deterministic fabric makes the replay exact.
    let survivor_only = run_cross(true, 1, false);

    let mut t = Table::new(
        "cluster_dedup_sweep",
        &[
            "dedup_index",
            "stored_mb",
            "network_mb",
            "stored_after_gc_mb",
            "gc_reclaimed_mb",
        ],
    );
    for (label, m) in [("node_local", node_local), ("cluster", clustered)] {
        t.row(&[
            &label,
            &f3(m.stored_mb),
            &f3(m.network_mb),
            &f3(m.stored_after_gc_mb),
            &f3(m.reclaimed_mb),
        ]);
    }
    t.emit();

    let cluster_stored_reduction = node_local.stored_mb / clustered.stored_mb.max(1e-9);
    let cluster_network_reduction = node_local.network_mb / clustered.network_mb.max(1e-9);
    // Bytes only the dead lineages referenced, per the replay; the
    // fraction of them GC actually handed back.
    let unique_to_deleted = clustered.stored_mb - survivor_only.stored_mb;
    let gc_reclaimed_fraction = clustered.reclaimed_mb / unique_to_deleted.max(1e-9);
    println!(
        "\ncross-node contextualization ({X_VMS} VMs / {X_NODES} nodes): provider bytes \
         {:.1} MB node-local -> {:.1} MB cluster ({cluster_stored_reduction:.2}x); \
         network {:.1} MB -> {:.1} MB ({cluster_network_reduction:.2}x); \
         GC reclaimed {:.2} of {:.2} MB unique to terminated instances \
         ({:.0}%)",
        node_local.stored_mb,
        clustered.stored_mb,
        node_local.network_mb,
        clustered.network_mb,
        clustered.reclaimed_mb,
        unique_to_deleted,
        100.0 * gc_reclaimed_fraction,
    );

    // Flat summary for the CI perf gate (compared against BENCH_5.json).
    let mut summary = String::from("{\n");
    let _ = writeln!(
        summary,
        "  \"cluster_stored_reduction\": {cluster_stored_reduction:.3},"
    );
    let _ = writeln!(
        summary,
        "  \"cluster_network_reduction\": {cluster_network_reduction:.3},"
    );
    let _ = writeln!(
        summary,
        "  \"gc_reclaimed_fraction\": {gc_reclaimed_fraction:.3},"
    );
    let _ = writeln!(
        summary,
        "  \"gc_reclaimed_mb\": {:.3},",
        clustered.reclaimed_mb
    );
    let _ = writeln!(
        summary,
        "  \"cluster_stored_mb\": {:.3},",
        clustered.stored_mb
    );
    let _ = writeln!(
        summary,
        "  \"node_local_stored_mb\": {:.3}",
        node_local.stored_mb
    );
    summary.push('}');
    summary.push('\n');
    let path = output_dir().join("cluster_summary.json");
    std::fs::write(&path, summary).expect("write cluster summary");
    println!("[written {}]", path.display());
}
