//! Dedup sweep: the snapshot-heavy Monte-Carlo suspend/resume workload
//! (§5.5) with content-addressed write dedup off vs on.
//!
//! Eight workers (two co-located per node — the multideployment
//! pattern) boot from one base image, checkpoint their intermediate
//! results every round and snapshot after every checkpoint. Halfway
//! through, all of them are suspended and resumed on *different* nodes
//! (nothing local survives), reload their state and finish. Checkpoints
//! rewrite the same temporary file, so consecutive snapshots carry
//! identical dirty content — exactly the §3.1.3 situation where commits
//! should grow the repository by dirty *unique* bytes only.
//!
//! Emits `target/paper/dedup_sweep.{csv,json}` (the per-mode table) and
//! `target/paper/dedup_summary.json` — the flat file the
//! `bench_regression` CI gate compares against the `BENCH_3.json`
//! floors.
//!
//! The binary is CI-sized by default (seconds); `--mini` is accepted for
//! symmetry with the figure binaries and changes nothing.

use bff_bench::{f3, output_dir, Table};
use bff_cloud::backend::ImageBackend;
use bff_cloud::middleware::Cloud;
use bff_cloud::params::Calibration;
use bff_cloud::vm::vm_write_payload;
use bff_data::Payload;
use bff_net::{Fabric, LocalFabric, NodeId};
use std::fmt::Write as _;

const NODES: u32 = 4;
const VMS: usize = 8; // two co-located per node
const IMG: u64 = 4 << 20;
const CHUNK: u64 = 64 << 10;
const STATE_BYTES: u64 = 256 << 10; // the worker's intermediate results
const STATE_OFFSET: u64 = 1 << 20;
const BOOT_READ: u64 = 1 << 20;
/// Checkpoint+snapshot rounds before and after the suspend/resume.
const ROUNDS: usize = 3;

#[derive(Debug, Clone, Copy)]
struct ModeOutcome {
    stored_mb: f64,
    committed_mb: f64,
    reused_mb: f64,
    network_mb: f64,
    hit_rate: f64,
}

fn run_mode(dedup: bool) -> ModeOutcome {
    let fabric = LocalFabric::new(NODES as usize + 1);
    let compute: Vec<NodeId> = (0..NODES).map(NodeId).collect();
    let cloud = Cloud::new(
        fabric.clone(),
        compute,
        NodeId(NODES),
        bff_blobseer::BlobConfig {
            chunk_size: CHUNK,
            dedup,
            ..Default::default()
        },
        Calibration::default(),
    );
    let (blob, version) = cloud
        .upload_image(Payload::synth(0x5EED, 0, IMG))
        .expect("upload");
    let stored_base = cloud.store().total_stored_bytes();
    fabric.stats().reset();

    let node_of = |vm: usize, resumed: bool| -> NodeId {
        // Two VMs per node; resume shifts every worker to another node.
        let shift = if resumed { 2 } else { 0 };
        NodeId(((vm + shift) % NODES as usize) as u32)
    };

    let mut committed = 0u64;
    // Phase 1: deploy, boot-read, checkpoint+snapshot ROUNDS times.
    let mut snaps = Vec::with_capacity(VMS);
    for vm in 0..VMS {
        let mut handle = cloud
            .add_instance(blob, version, node_of(vm, false))
            .expect("deploy");
        handle.backend.read(0..BOOT_READ).expect("boot read");
        for _ in 0..ROUNDS {
            let state = vm_write_payload(vm as u64, STATE_OFFSET, STATE_BYTES);
            handle
                .backend
                .write(STATE_OFFSET, state)
                .expect("checkpoint");
            committed += handle.backend.snapshot().expect("snapshot");
        }
        snaps.push(handle.snapshot().expect("snapshot identity"));
    }

    // Phase 2: resume every snapshot on a different node, reload the
    // saved state, finish the remaining rounds.
    for (vm, &(sblob, sver)) in snaps.iter().enumerate() {
        let mut handle = cloud
            .add_instance(sblob, sver, node_of(vm, true))
            .expect("resume");
        handle
            .backend
            .read(STATE_OFFSET..STATE_OFFSET + STATE_BYTES)
            .expect("reload state");
        for _ in 0..ROUNDS {
            let state = vm_write_payload(vm as u64, STATE_OFFSET, STATE_BYTES);
            handle
                .backend
                .write(STATE_OFFSET, state)
                .expect("checkpoint");
            committed += handle.backend.snapshot().expect("snapshot");
        }
    }

    let stats = cloud.cache_stats();
    ModeOutcome {
        stored_mb: (cloud.store().total_stored_bytes() - stored_base) as f64 / 1e6,
        committed_mb: committed as f64 / 1e6,
        reused_mb: stats.dedup_reused_bytes as f64 / 1e6,
        network_mb: fabric.stats().total_network_bytes() as f64 / 1e6,
        hit_rate: stats.hit_rate(),
    }
}

fn main() {
    let off = run_mode(false);
    let on = run_mode(true);

    let mut t = Table::new(
        "dedup_sweep",
        &[
            "dedup",
            "committed_mb",
            "stored_mb",
            "reused_by_reference_mb",
            "network_mb",
            "desc_hit_rate",
        ],
    );
    for (label, m) in [("off", off), ("on", on)] {
        t.row(&[
            &label,
            &f3(m.committed_mb),
            &f3(m.stored_mb),
            &f3(m.reused_mb),
            &f3(m.network_mb),
            &f3(m.hit_rate),
        ]);
    }
    t.emit();

    let stored_reduction = off.stored_mb / on.stored_mb.max(1e-9);
    let network_reduction = off.network_mb / on.network_mb.max(1e-9);
    println!(
        "\nprovider bytes written: {:.1} MB -> {:.1} MB ({stored_reduction:.2}x reduction); \
         network {:.1} MB -> {:.1} MB ({network_reduction:.2}x); \
         desc-cache hit rate {:.0}%",
        off.stored_mb,
        on.stored_mb,
        off.network_mb,
        on.network_mb,
        100.0 * on.hit_rate
    );

    // Flat summary for the CI perf gate (compared against BENCH_3.json).
    let mut summary = String::from("{\n");
    let _ = writeln!(
        summary,
        "  \"dedup_stored_reduction\": {stored_reduction:.3},"
    );
    let _ = writeln!(
        summary,
        "  \"dedup_network_reduction\": {network_reduction:.3},"
    );
    let _ = writeln!(summary, "  \"desc_hit_rate\": {:.3},", on.hit_rate);
    let _ = writeln!(summary, "  \"dedup_reused_mb\": {:.3}", on.reused_mb);
    summary.push('}');
    summary.push('\n');
    let path = output_dir().join("dedup_summary.json");
    std::fs::write(&path, summary).expect("write summary");
    println!("[written {}]", path.display());
}
