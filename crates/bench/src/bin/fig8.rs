//! Fig. 8: Monte Carlo π on 100 VM instances — completion time,
//! uninterrupted (all three strategies) and with a suspend/resume cycle
//! (our approach vs qcow2-over-PVFS). Pass `--mini` for a CI-sized run.

use bff_bench::{f1, RunScale, Table};
use bff_cloud::experiments::fig8::{run_one, Setting};
use bff_cloud::experiments::Strategy;
use bff_cloud::params::Calibration;
use bff_workloads::montecarlo::WorkerPlan;

fn main() {
    let scale = RunScale::from_args();
    let cal = Calibration::default();
    let (n, plan) = match scale {
        RunScale::Paper => (100, WorkerPlan::paper()),
        RunScale::Mini => (
            4,
            WorkerPlan {
                compute_us: 2_000_000,
                checkpoint_every_us: 500_000,
                state_bytes: 256 << 10,
                state_offset: 1 << 20,
            },
        ),
    };
    let exp = scale.exp_scale();
    let seed = 0xF168;

    let mut t = Table::new(
        "fig8_montecarlo",
        &[
            "setting",
            "pre_propagation_s",
            "qcow2_over_pvfs_s",
            "our_approach_s",
        ],
    );
    let pre = run_one(
        Strategy::Prepropagation,
        Setting::Uninterrupted,
        n,
        exp,
        cal,
        plan,
        seed,
    );
    let qcow = run_one(
        Strategy::QcowOverPvfs,
        Setting::Uninterrupted,
        n,
        exp,
        cal,
        plan,
        seed,
    );
    let ours = run_one(
        Strategy::Mirror,
        Setting::Uninterrupted,
        n,
        exp,
        cal,
        plan,
        seed,
    );
    t.row(&[&"Uninterrupted", &f1(pre), &f1(qcow), &f1(ours)]);

    let qcow_sr = run_one(
        Strategy::QcowOverPvfs,
        Setting::SuspendResume,
        n,
        exp,
        cal,
        plan,
        seed,
    );
    let ours_sr = run_one(
        Strategy::Mirror,
        Setting::SuspendResume,
        n,
        exp,
        cal,
        plan,
        seed,
    );
    t.row(&[&"Suspend/Resume", &"n/a", &f1(qcow_sr), &f1(ours_sr)]);
    t.emit();

    let gain = 100.0 * (qcow_sr - ours_sr) / qcow_sr;
    println!("suspend/resume advantage of our approach vs qcow2: {gain:.1}%");
}
