//! Ablation benches for the design choices called out in DESIGN.md §3:
//! chunk size (A1), the two §3.3 access strategies (A2, A3), replication
//! (A4), asynchronous commit (A5) and the broadcast execution mode (A6).
//! Pass `--mini` for a CI-sized run (also the default here: ablations are
//! about relative effects, which the mini scale already shows; pass
//! `--paper` to sweep at full scale).

use bff_bench::{f3, Table};
use bff_blobseer::{BlobConfig, BlobStore, BlobTopology, Client as BlobClient};
use bff_cloud::experiments::{fig5, run_deployment, ExpScale, Strategy, IMAGE_SEED};
use bff_cloud::params::Calibration;
use bff_core::{MemStore, MirrorConfig, MirroredImage};
use bff_data::Payload;
use bff_net::{Fabric, LocalFabric, NodeId};
use bff_sim::SimCluster;
use bff_workloads::boottrace::BootProfile;
use std::sync::Arc;

fn paper_scale() -> bool {
    std::env::args().any(|a| a == "--paper")
}

/// A1: chunk-size trade-off (false sharing vs per-chunk overhead) on a
/// multideployment.
fn ablation_chunk_size() {
    let mut t = Table::new(
        "ablation_chunk_size",
        &["chunk_kb", "avg_boot_s", "total_s", "traffic_gb"],
    );
    let (n, image_len) = if paper_scale() {
        (40, 2u64 << 30)
    } else {
        (6, 8u64 << 20)
    };
    let kbs: &[u64] = if paper_scale() {
        &[64, 256, 1024, 4096]
    } else {
        &[16, 64, 256]
    };
    for &kb in kbs {
        let scale = ExpScale {
            image_len,
            chunk_size: kb << 10,
        };
        let out = run_deployment(
            Strategy::Mirror,
            n,
            scale,
            Calibration::default(),
            None,
            0xAB1,
        );
        t.row(&[
            &kb,
            &f3(out.avg_boot_s()),
            &f3(out.total_s),
            &f3(out.traffic_gb),
        ]);
    }
    t.emit();
}

/// A2/A3: the §3.3 strategies — whole-chunk prefetch and gap-filling —
/// measured on remote-fetch volume, fetch-op count and fragmentation.
/// The workload is a boot trace followed by a burst of scattered small
/// writes (log appends, config touch-ups: the §2.3 "random small reads
/// and writes"), which is what makes the fragmentation bound matter.
fn ablation_strategies() {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut t = Table::new(
        "ablation_access_strategies",
        &[
            "prefetch",
            "gap_fill",
            "remote_fetch_ops",
            "remote_mb",
            "fragments",
        ],
    );
    for (prefetch, gap_fill) in [(true, true), (true, false), (false, true), (false, false)] {
        let fabric = LocalFabric::new(5);
        let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
        let topo = BlobTopology::colocated(&nodes, NodeId(4));
        let cfg = BlobConfig {
            chunk_size: 64 << 10,
            ..Default::default()
        };
        let store = BlobStore::new(cfg, topo, fabric as Arc<dyn Fabric>);
        let client = BlobClient::new(store, NodeId(0));
        let image_len = 8u64 << 20;
        let (blob, v) = client
            .upload(Payload::synth(IMAGE_SEED, 0, image_len))
            .unwrap();
        let mcfg = MirrorConfig {
            prefetch_whole_chunks: prefetch,
            gap_fill,
            ..MirrorConfig::default()
        };
        let mut img = MirroredImage::open(
            client.clone(),
            blob,
            v,
            Box::new(MemStore::new(image_len)),
            mcfg,
        )
        .unwrap();
        for op in BootProfile::scaled(image_len).generate(7) {
            match op {
                bff_workloads::VmOp::Read { offset, len } => {
                    img.read(offset..offset + len).unwrap();
                }
                bff_workloads::VmOp::Write { offset, len } => {
                    img.write(offset, Payload::synth(9, offset, len)).unwrap();
                }
                bff_workloads::VmOp::Cpu { .. } => {}
            }
        }
        // Application phase: 2000 scattered 64-512 B writes.
        let mut rng = SmallRng::seed_from_u64(0xAB3);
        for _ in 0..2000 {
            let len = rng.gen_range(64..512u64);
            let offset = rng.gen_range(0..image_len - len);
            img.write(offset, Payload::synth(10, offset, len)).unwrap();
        }
        let s = img.stats();
        t.row(&[
            &prefetch,
            &gap_fill,
            &s.remote_fetches,
            &f3(s.remote_bytes as f64 / 1e6),
            &img.chunk_map().fragmentation(),
        ]);
    }
    t.emit();
}

/// A4: replication degree vs storage cost and surviving provider loss.
fn ablation_replication() {
    let mut t = Table::new(
        "ablation_replication",
        &["replicas", "stored_mb", "reads_ok_after_one_failure"],
    );
    for replication in 1..=3usize {
        let fabric = LocalFabric::new(5);
        let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
        let topo = BlobTopology::colocated(&nodes, NodeId(4));
        let cfg = BlobConfig {
            chunk_size: 64 << 10,
            replication,
            ..Default::default()
        };
        let store = BlobStore::new(cfg, topo, fabric.clone() as Arc<dyn Fabric>);
        let client = BlobClient::new(store, NodeId(0));
        let image_len = 4u64 << 20;
        let (blob, v) = client
            .upload(Payload::synth(IMAGE_SEED, 0, image_len))
            .unwrap();
        let stored = client.store().total_stored_bytes();
        fabric.fail_node(NodeId(2));
        let ok = client.read(blob, v, 0..image_len).is_ok();
        t.row(&[&replication, &f3(stored as f64 / 1e6), &ok]);
    }
    t.emit();
}

/// A5: asynchronous vs synchronous provider writes on snapshot latency.
fn ablation_async_commit() {
    let mut t = Table::new(
        "ablation_async_commit",
        &["async_writes", "avg_snapshot_s", "total_snapshot_s"],
    );
    let scale = if paper_scale() {
        ExpScale::paper()
    } else {
        ExpScale::mini()
    };
    let n = if paper_scale() { 40 } else { 6 };
    let diff = if paper_scale() {
        15u64 << 20
    } else {
        512 << 10
    };
    // The async flag lives in BlobConfig; fig5's driver uses the default
    // (async). For the sync variant we emulate by doubling the provider
    // write cost through a sync-flagged run below.
    for async_writes in [true, false] {
        let out = fig5::run_one_with_async(
            Strategy::Mirror,
            n,
            scale,
            Calibration::default(),
            diff,
            async_writes,
        );
        t.row(&[&async_writes, &f3(out.avg_s()), &f3(out.total_s)]);
    }
    t.emit();
}

/// A6: store-and-forward (what deployment tools do) vs block-pipelined
/// broadcast (a Frisbee-style optimum) for the prepropagation baseline.
fn ablation_broadcast() {
    use bff_bcast::{BroadcastMode, SignalTable, TreeBroadcast};
    use bff_cloud::simsignals::SimSignals;
    let mut t = Table::new("ablation_broadcast_mode", &["mode", "arity", "makespan_s"]);
    let (n, bytes) = if paper_scale() {
        (110, 2u64 << 30)
    } else {
        (8, 64u64 << 20)
    };
    for (label, mode) in [
        ("store-and-forward", BroadcastMode::StoreAndForward),
        ("pipelined-1MB", BroadcastMode::Pipelined { block: 1 << 20 }),
    ] {
        for arity in [2usize, 4] {
            let cal = Calibration::default();
            let cluster = SimCluster::new(cal.cluster(n));
            let fabric: Arc<dyn Fabric> = cluster.fabric();
            let targets: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
            let source = NodeId(n as u32);
            let state = Arc::clone(cluster.sim().state());
            let fabric2 = Arc::clone(&fabric);
            let makespan: Arc<parking_lot::Mutex<u64>> = Arc::new(parking_lot::Mutex::new(0));
            let mk = Arc::clone(&makespan);
            cluster.sim().spawn("bcast", move |_env| {
                let signals: Arc<dyn SignalTable> = SimSignals::new(state);
                let bc = TreeBroadcast {
                    arity,
                    mode,
                    write_to_disk: true,
                };
                let out = bc.run(&fabric2, &signals, source, &targets, bytes).unwrap();
                *mk.lock() = out.makespan_us;
            });
            cluster.run();
            let s = *makespan.lock() as f64 / 1e6;
            t.row(&[&label, &arity, &f3(s)]);
        }
    }
    t.emit();
}

fn main() {
    ablation_chunk_size();
    ablation_strategies();
    ablation_replication();
    ablation_async_commit();
    ablation_broadcast();
}
