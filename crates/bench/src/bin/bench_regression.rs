//! CI perf-regression gate: compare the criterion read/write pipeline
//! benches against the committed `BENCH_*.json` baseline, and the
//! `dedup_sweep` summary against the `BENCH_3.json` floors.
//!
//! Usage:
//!
//! ```text
//! bench_regression --results bench-results.jsonl --baseline BENCH_2.json \
//!     [--dedup-results target/paper/dedup_summary.json --dedup-baseline BENCH_3.json] \
//!     [--prefetch-results target/paper/prefetch_summary.json --prefetch-baseline BENCH_4.json] \
//!     [--cluster-results target/paper/cluster_summary.json --cluster-baseline BENCH_5.json] \
//!     [--loadgen-results target/paper/load_summary.json --loadgen-baseline BENCH_6.json] \
//!     [--transport-results target/paper/transport_summary.json --transport-baseline BENCH_7.json] \
//!     [--recovery-results target/paper/recovery_summary.json --recovery-baseline BENCH_8.json] \
//!     [--durable-results target/paper/durable_summary.json --durable-baseline BENCH_9.json]
//! ```
//!
//! On failure the gate ends with a `FAILED METRICS` block naming, for
//! every tripped check, the exact metric key, the measured value, the
//! recorded baseline, and the floor/threshold that tripped — so a red
//! CI run reads off what regressed without grepping the JSON by hand.
//!
//! `--results` is the `BFF_BENCH_JSON` jsonl the criterion shim appends
//! (pass it several times to merge files). The gate checks *speedup
//! ratios* (sequential reference ÷ batched pipeline), not absolute
//! nanoseconds, so it is immune to runner hardware differences; within a
//! run it uses each bench's `min_ns` — the least-interference estimator
//! on noisy shared CI machines. A check fails when a ratio drops more
//! than `regression_tolerance` below the baseline ratio, or below the
//! corresponding hard floor recorded in the baseline.
//!
//! The dedup checks work the same way on deterministic byte ratios
//! (provider-bytes-written reduction, network reduction, cache hit
//! rate), so they are noise-free: a failure means the dedup or
//! node-shared-cache pipeline itself regressed. The prefetch checks
//! gate the `prefetch_sweep` summary against the `BENCH_4.json` floors:
//! virtual-time boot throughput, read-ahead hit rate, traffic reduction
//! and the pipelined-chain latency win — all measured on the
//! deterministic simulator, so they are noise-free too.

use std::process::ExitCode;

/// Extract the first number following `"key":` in a JSON text. Good for
/// the flat objects the criterion shim emits and the top-level scalar
/// fields of `BENCH_*.json` — not a general JSON parser.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// `min_ns` of the named bench across all results lines.
fn min_ns(lines: &[String], bench: &str) -> Option<f64> {
    let needle = format!("\"bench\":\"{bench}\"");
    lines
        .iter()
        .filter(|l| l.contains(&needle))
        .filter_map(|l| json_number(l, "min_ns"))
        .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.min(v))))
}

struct Check {
    name: &'static str,
    /// Ratio: reference bench ÷ pipeline bench (higher is better).
    reference: &'static str,
    pipeline: &'static str,
    /// Baseline key holding the recorded ratio.
    baseline_key: &'static str,
    /// Baseline key holding the hard floor.
    floor_key: &'static str,
}

const CHECKS: &[Check] = &[
    Check {
        name: "read: vectored read_multi vs per-run reads",
        reference: "cold_boot_sweep/per_run_reads",
        pipeline: "cold_boot_sweep/read_multi",
        baseline_key: "cold_boot_sweep_speedup",
        floor_key: "cold_boot_sweep_floor",
    },
    Check {
        name: "write: fan-out batched vs sequential pushes",
        reference: "cold_write_sweep/sequential_push",
        pipeline: "cold_write_sweep/fanout_batched",
        baseline_key: "cold_write_sweep_speedup_fanout",
        floor_key: "cold_write_sweep_floor",
    },
    Check {
        name: "write: chain batched vs sequential pushes",
        reference: "cold_write_sweep/sequential_push",
        pipeline: "cold_write_sweep/chain_batched",
        baseline_key: "cold_write_sweep_speedup_chain",
        floor_key: "cold_write_sweep_floor",
    },
];

/// Measured-value keys checked between a dedup summary and `BENCH_3.json`
/// (each `<key>` needs a `<key minus suffix>_floor` in the baseline).
const DEDUP_CHECKS: &[(&str, &str, &str)] = &[
    (
        "dedup: provider bytes written, off ÷ on",
        "dedup_stored_reduction",
        "dedup_stored_floor",
    ),
    (
        "dedup: network bytes, off ÷ on",
        "dedup_network_reduction",
        "dedup_network_floor",
    ),
    (
        "node cache: descriptor hit rate",
        "desc_hit_rate",
        "desc_hit_rate_floor",
    ),
];

/// Measured-value keys checked between the cluster-dedup summary and
/// `BENCH_5.json`.
const CLUSTER_CHECKS: &[(&str, &str, &str)] = &[
    (
        "cluster dedup: provider bytes, node-local ÷ cluster index",
        "cluster_stored_reduction",
        "cluster_stored_floor",
    ),
    (
        "cluster dedup: network bytes, node-local ÷ cluster index",
        "cluster_network_reduction",
        "cluster_network_floor",
    ),
    (
        "snapshot GC: fraction of deleted-unique bytes reclaimed",
        "gc_reclaimed_fraction",
        "gc_reclaimed_floor",
    ),
];

/// Confidence-filter keys checked between the *prefetch* summary and
/// `BENCH_5.json` (the filter shipped with the cluster-dedup PR).
const CONFIDENCE_CHECKS: &[(&str, &str, &str)] = &[(
    "prefetch confidence: unused read-aheads saved vs unfiltered",
    "confidence_waste_saved",
    "confidence_waste_saved_floor",
)];

/// Measured-value keys checked between the `load_sweep` summary and
/// `BENCH_6.json`. These are *wall-clock* numbers from real OS threads,
/// so every gate is a throughput ratio between locking disciplines
/// replaying the identical workload (never an absolute time) and the
/// baseline carries a wide tolerance — the gate survives slow or noisy
/// runners, but still trips if a contention fix stops paying for
/// itself.
const LOADGEN_CHECKS: &[(&str, &str, &str)] = &[
    (
        "loadgen: wall-clock boot throughput, all-fixes ÷ naive fabric",
        "loadgen_boot_speedup",
        "loadgen_boot_speedup_floor",
    ),
    (
        "loadgen: wall-clock boot throughput, lane fix alone ÷ naive fabric",
        "loadgen_lane_fix_speedup",
        "loadgen_lane_fix_speedup_floor",
    ),
    (
        "loadgen: p99 boot latency, naive ÷ all-fixes",
        "loadgen_p99_speedup",
        "loadgen_p99_speedup_floor",
    ),
];

/// Measured-value keys checked between a transport summary
/// (`load_sweep --transport all`) and `BENCH_7.json`. Only the
/// codec÷direct throughput ratio is gated — both transports run
/// in-process over the identical workload, so the ratio isolates the
/// wire codec + dispatch overhead from runner speed. Socket absolutes
/// are recorded in the summary but not gated: they measure kernel
/// round-trips and vary wildly with runner hardware.
const TRANSPORT_CHECKS: &[(&str, &str, &str)] = &[(
    "transport: codec boots/s retention vs direct",
    "transport_codec_retention",
    "transport_codec_retention_floor",
)];

/// Measured-value keys checked between the `recovery_sweep` summary and
/// `BENCH_8.json`. Survivor identity is a correctness property — its
/// floor is exactly 1.0 and the baseline records 1.0, so any lost or
/// corrupted snapshot trips the gate. The margin (bound ÷ slowest
/// recovery) is a wall-clock absolute, so the baseline clamps its
/// recorded value to the floor: the gate only requires recoveries to
/// finish inside the bound, never to match a fast runner's timing.
const RECOVERY_CHECKS: &[(&str, &str, &str)] = &[
    (
        "recovery: acknowledged snapshots byte-identical after kill -9",
        "recovery_survivor_identity",
        "recovery_survivor_identity_floor",
    ),
    (
        "recovery: restart-time margin under the bound",
        "recovery_margin",
        "recovery_margin_floor",
    ),
];

/// Measured-value keys checked between the `load_sweep --durable all`
/// summary and `BENCH_9.json`. Both gated metrics are ratios over the
/// identical in-process-socket workload, so runner speed cancels:
/// `durable_retention` (group-commit durable boots/s ÷ non-durable
/// boots/s — how much throughput surviving kill -9 costs) and
/// `acks_per_fsync` (the batching claim itself: under concurrent load
/// one leader fsync must cover more than one acked mutation; the
/// per-ack baseline measures exactly 1.0).
const DURABLE_CHECKS: &[(&str, &str, &str)] = &[
    (
        "durable: group-commit boots/s retention vs non-durable socket",
        "durable_retention",
        "durable_retention_floor",
    ),
    (
        "durable: acked mutations per fsync under concurrency",
        "acks_per_fsync",
        "acks_per_fsync_floor",
    ),
];

/// Measured-value keys checked between a prefetch summary and
/// `BENCH_4.json`.
const PREFETCH_CHECKS: &[(&str, &str, &str)] = &[
    (
        "prefetch: cold concurrent boot throughput, on ÷ off",
        "prefetch_boot_speedup",
        "prefetch_boot_floor",
    ),
    (
        "prefetch: read-ahead hit rate",
        "prefetch_hit_rate",
        "prefetch_hit_rate_floor",
    ),
    (
        "prefetch: boot network bytes, off ÷ on",
        "prefetch_network_reduction",
        "prefetch_network_floor",
    ),
    (
        "chain: batched ÷ pipelined commit latency",
        "chain_pipeline_speedup",
        "chain_pipeline_floor",
    ),
];

/// One tripped check, carrying everything the failure report needs.
struct Failure {
    /// The summary's metric key (what you would grep for).
    metric: String,
    /// Measured value, `None` when the key was missing entirely.
    current: Option<f64>,
    recorded: f64,
    floor: f64,
    threshold: f64,
    baseline_path: String,
}

impl Failure {
    fn describe(&self) -> String {
        match self.current {
            Some(v) => format!(
                "metric {} = {v:.3} tripped threshold {:.3} \
                 (floor {:.3}, recorded {:.3} in {})",
                self.metric, self.threshold, self.floor, self.recorded, self.baseline_path
            ),
            None => format!(
                "metric {} missing from results (baseline {})",
                self.metric, self.baseline_path
            ),
        }
    }
}

/// Gate a flat summary against a baseline's recorded values + floors,
/// returning every tripped check.
fn check_summary(
    label: &str,
    checks: &[(&str, &str, &str)],
    summary: &str,
    baseline: &str,
    baseline_path: &str,
) -> Vec<Failure> {
    let tolerance = json_number(baseline, "regression_tolerance").unwrap_or(0.25);
    let mut failures = Vec::new();
    println!("{label} gate vs {baseline_path} (tolerance {tolerance})");
    for (name, key, floor_key) in checks {
        let recorded =
            json_number(baseline, key).unwrap_or_else(|| panic!("baseline missing {key}"));
        let floor = json_number(baseline, floor_key)
            .unwrap_or_else(|| panic!("baseline missing {floor_key}"));
        let threshold = (recorded * (1.0 - tolerance)).max(floor);
        let Some(current) = json_number(summary, key) else {
            println!("FAIL {name}: {key} missing from summary");
            failures.push(Failure {
                metric: key.to_string(),
                current: None,
                recorded,
                floor,
                threshold,
                baseline_path: baseline_path.to_string(),
            });
            continue;
        };
        let ok = current >= threshold;
        println!(
            "{} {name}: {current:.2} (baseline {recorded:.2}, threshold {threshold:.2}, floor {floor:.2})",
            if ok { "ok  " } else { "FAIL" },
        );
        if !ok {
            failures.push(Failure {
                metric: key.to_string(),
                current: Some(current),
                recorded,
                floor,
                threshold,
                baseline_path: baseline_path.to_string(),
            });
        }
    }
    failures
}

/// Print the final failure report: one line per tripped metric naming
/// the key, measured value, and the floor/threshold that tripped.
fn report_failures(failures: &[Failure]) -> ExitCode {
    if failures.is_empty() {
        println!("all gated metrics within tolerance");
        return ExitCode::SUCCESS;
    }
    println!("\nFAILED METRICS ({}):", failures.len());
    for f in failures {
        println!("  {}", f.describe());
    }
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut results: Vec<String> = Vec::new();
    let mut baseline_path = String::from("BENCH_2.json");
    let mut dedup_results: Option<String> = None;
    let mut dedup_baseline = String::from("BENCH_3.json");
    let mut prefetch_results: Option<String> = None;
    let mut prefetch_baseline = String::from("BENCH_4.json");
    let mut cluster_results: Option<String> = None;
    let mut cluster_baseline = String::from("BENCH_5.json");
    let mut loadgen_results: Option<String> = None;
    let mut loadgen_baseline = String::from("BENCH_6.json");
    let mut transport_results: Option<String> = None;
    let mut transport_baseline = String::from("BENCH_7.json");
    let mut recovery_results: Option<String> = None;
    let mut recovery_baseline = String::from("BENCH_8.json");
    let mut durable_results: Option<String> = None;
    let mut durable_baseline = String::from("BENCH_9.json");
    while let Some(a) = args.next() {
        match a.as_str() {
            "--results" => {
                let path = args.next().expect("--results needs a path");
                let text =
                    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
                results.extend(text.lines().map(str::to_string));
            }
            "--baseline" => baseline_path = args.next().expect("--baseline needs a path"),
            "--dedup-results" => {
                let path = args.next().expect("--dedup-results needs a path");
                dedup_results = Some(
                    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}")),
                );
            }
            "--dedup-baseline" => {
                dedup_baseline = args.next().expect("--dedup-baseline needs a path")
            }
            "--prefetch-results" => {
                let path = args.next().expect("--prefetch-results needs a path");
                prefetch_results = Some(
                    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}")),
                );
            }
            "--prefetch-baseline" => {
                prefetch_baseline = args.next().expect("--prefetch-baseline needs a path")
            }
            "--cluster-results" => {
                let path = args.next().expect("--cluster-results needs a path");
                cluster_results = Some(
                    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}")),
                );
            }
            "--cluster-baseline" => {
                cluster_baseline = args.next().expect("--cluster-baseline needs a path")
            }
            "--loadgen-results" => {
                let path = args.next().expect("--loadgen-results needs a path");
                loadgen_results = Some(
                    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}")),
                );
            }
            "--loadgen-baseline" => {
                loadgen_baseline = args.next().expect("--loadgen-baseline needs a path")
            }
            "--transport-results" => {
                let path = args.next().expect("--transport-results needs a path");
                transport_results = Some(
                    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}")),
                );
            }
            "--transport-baseline" => {
                transport_baseline = args.next().expect("--transport-baseline needs a path")
            }
            "--recovery-results" => {
                let path = args.next().expect("--recovery-results needs a path");
                recovery_results = Some(
                    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}")),
                );
            }
            "--recovery-baseline" => {
                recovery_baseline = args.next().expect("--recovery-baseline needs a path")
            }
            "--durable-results" => {
                let path = args.next().expect("--durable-results needs a path");
                durable_results = Some(
                    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}")),
                );
            }
            "--durable-baseline" => {
                durable_baseline = args.next().expect("--durable-baseline needs a path")
            }
            other => panic!("unknown argument {other}"),
        }
    }
    assert!(
        !results.is_empty()
            || dedup_results.is_some()
            || prefetch_results.is_some()
            || cluster_results.is_some()
            || loadgen_results.is_some()
            || transport_results.is_some()
            || recovery_results.is_some()
            || durable_results.is_some(),
        "no --results, --dedup-results, --prefetch-results, --cluster-results, \
         --loadgen-results, --transport-results, --recovery-results or \
         --durable-results provided"
    );
    let mut failures: Vec<Failure> = Vec::new();
    if let Some(summary) = &dedup_results {
        let baseline = std::fs::read_to_string(&dedup_baseline)
            .unwrap_or_else(|e| panic!("read baseline {dedup_baseline}: {e}"));
        failures.extend(check_summary(
            "dedup-sweep",
            DEDUP_CHECKS,
            summary,
            &baseline,
            &dedup_baseline,
        ));
    }
    if let Some(summary) = &prefetch_results {
        let baseline = std::fs::read_to_string(&prefetch_baseline)
            .unwrap_or_else(|e| panic!("read baseline {prefetch_baseline}: {e}"));
        failures.extend(check_summary(
            "prefetch-sweep",
            PREFETCH_CHECKS,
            summary,
            &baseline,
            &prefetch_baseline,
        ));
    }
    if let Some(summary) = &cluster_results {
        let baseline = std::fs::read_to_string(&cluster_baseline)
            .unwrap_or_else(|e| panic!("read baseline {cluster_baseline}: {e}"));
        failures.extend(check_summary(
            "cluster-dedup",
            CLUSTER_CHECKS,
            summary,
            &baseline,
            &cluster_baseline,
        ));
        // The confidence-filter metrics live in the prefetch summary
        // but are gated by the same BENCH_5 baseline as the rest of
        // this PR's floors.
        if let Some(prefetch) = &prefetch_results {
            failures.extend(check_summary(
                "prefetch-confidence",
                CONFIDENCE_CHECKS,
                prefetch,
                &baseline,
                &cluster_baseline,
            ));
        }
    }
    if let Some(summary) = &loadgen_results {
        let baseline = std::fs::read_to_string(&loadgen_baseline)
            .unwrap_or_else(|e| panic!("read baseline {loadgen_baseline}: {e}"));
        failures.extend(check_summary(
            "load-sweep",
            LOADGEN_CHECKS,
            summary,
            &baseline,
            &loadgen_baseline,
        ));
    }
    if let Some(summary) = &transport_results {
        let baseline = std::fs::read_to_string(&transport_baseline)
            .unwrap_or_else(|e| panic!("read baseline {transport_baseline}: {e}"));
        failures.extend(check_summary(
            "transport-sweep",
            TRANSPORT_CHECKS,
            summary,
            &baseline,
            &transport_baseline,
        ));
    }
    if let Some(summary) = &recovery_results {
        let baseline = std::fs::read_to_string(&recovery_baseline)
            .unwrap_or_else(|e| panic!("read baseline {recovery_baseline}: {e}"));
        failures.extend(check_summary(
            "recovery-sweep",
            RECOVERY_CHECKS,
            summary,
            &baseline,
            &recovery_baseline,
        ));
    }
    if let Some(summary) = &durable_results {
        let baseline = std::fs::read_to_string(&durable_baseline)
            .unwrap_or_else(|e| panic!("read baseline {durable_baseline}: {e}"));
        failures.extend(check_summary(
            "durable-sweep",
            DURABLE_CHECKS,
            summary,
            &baseline,
            &durable_baseline,
        ));
    }
    if !results.is_empty() {
        let baseline = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
        let tolerance = json_number(&baseline, "regression_tolerance").unwrap_or(0.25);
        println!("perf-regression gate vs {baseline_path} (tolerance {tolerance})");
        for check in CHECKS {
            let recorded = json_number(&baseline, check.baseline_key)
                .unwrap_or_else(|| panic!("baseline missing {}", check.baseline_key));
            let floor = json_number(&baseline, check.floor_key)
                .unwrap_or_else(|| panic!("baseline missing {}", check.floor_key));
            let threshold = (recorded * (1.0 - tolerance)).max(floor);
            let (Some(refr), Some(pipe)) = (
                min_ns(&results, check.reference),
                min_ns(&results, check.pipeline),
            ) else {
                println!("FAIL {}: benches missing from results", check.name);
                failures.push(Failure {
                    metric: check.baseline_key.to_string(),
                    current: None,
                    recorded,
                    floor,
                    threshold,
                    baseline_path: baseline_path.clone(),
                });
                continue;
            };
            let current = refr / pipe;
            let ok = current >= threshold;
            println!(
                "{} {}: {:.2}x (baseline {recorded:.2}x, threshold {threshold:.2}x, floor {floor:.2}x)",
                if ok { "ok  " } else { "FAIL" },
                check.name,
                current,
            );
            if !ok {
                failures.push(Failure {
                    metric: check.baseline_key.to_string(),
                    current: Some(current),
                    recorded,
                    floor,
                    threshold,
                    baseline_path: baseline_path.clone(),
                });
            }
        }
    }
    report_failures(&failures)
}
