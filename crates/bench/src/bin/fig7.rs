//! Fig. 7: Bonnie++ operations per second (RndSeek / CreatF / DelF) on a
//! local raw image vs the mirroring module. Pass `--mini` for a CI-sized
//! run.

use bff_bench::{f1, RunScale, Table};
use bff_cloud::experiments::fig67;
use bff_cloud::params::Calibration;
use bff_workloads::bonnie::BonnieConfig;

fn main() {
    let scale = RunScale::from_args();
    let cfg = match scale {
        RunScale::Paper => BonnieConfig::paper(),
        RunScale::Mini => BonnieConfig::scaled(scale.exp_scale().image_len),
    };
    let results = fig67::run(scale.exp_scale(), Calibration::default(), cfg);
    let mut t = Table::new(
        "fig7_bonnie_ops",
        &[
            "operation_type",
            "local_ops_per_s",
            "our_approach_ops_per_s",
        ],
    );
    for r in results.iter().filter(|r| !r.is_throughput) {
        t.row(&[&r.phase.label(), &f1(r.local), &f1(r.mirror)]);
    }
    t.emit();
}
