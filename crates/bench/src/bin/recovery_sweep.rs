//! Crash-recovery scenario (BENCH_8): kill -9 and restart real server
//! processes mid-workload, then hard-assert that everything the cluster
//! acknowledged before each crash is still there, byte for byte.
//!
//! The cluster is two durable `blob_server` processes over loopback TCP
//! — one hosting the managers, board and metadata (`vm,pm,board,
//! cluster,meta`), one the chunk providers — each owning a `--data-dir`
//! under `target/paper/recovery_data/`. Client threads run the
//! rotating-snapshot storm (boot latest snapshot, write, snapshot,
//! publish or terminate-for-GC) the whole time; whenever a call dies
//! with the cluster, the client sleeps briefly and retries the round.
//! While the storm runs, the orchestrator:
//!
//! 1. SIGKILLs the provider process, waits out a dead window, respawns
//!    it on the *same* data directory, and times spawn→`READY` — the
//!    child replays its segment files and ref log before announcing, so
//!    that interval is the full recovery time;
//! 2. swaps the new ephemeral addresses into the shared
//!    [`SocketTransport`] via `set_routes` (the pool of dead
//!    connections is dropped with the old table);
//! 3. repeats both steps for the manager process, whose journal replay
//!    rebuilds the version trees, snapshot refcounts and id allocators.
//!
//! Every snapshot whose publish *and* readback were acknowledged is
//! recorded as `(blob, version, sha256)` in a survivor registry. After
//! the storm, a **fresh** client stack (empty caches, new connections)
//! re-downloads every survivor and compares digests; one mismatch or
//! unreadable snapshot fails the run. A final upload/download proves
//! the cluster still accepts writes after both restarts.
//!
//! Durability features are pinned to the paths under test (local dedup
//! on, speculative prefetch and the soft-state cluster index off — they
//! are caches, not durable state, and their background traffic would
//! only add noise to the dead windows).
//!
//! Emits `target/paper/recovery_summary.json`; gated against
//! `BENCH_8.json` by `bench_regression --recovery-results`. The gated
//! metrics are survivor identity (floor 1.0 — recovery is correctness,
//! not a ratio to tune) and the recovery-time margin against
//! [`BOUND_S`]. `--mini` shrinks the storm for CI smoke runs;
//! `BFF_RECOVERY_THREADS` pins the client count.

use bff_bench::procs::ServerSpec;
use bff_bench::{output_dir, RunScale};
use bff_blobseer::{BlobConfig, BlobId, BlobStore, BlobTopology, TransportMode, Version};
use bff_cloud::backend::{BackendError, ImageBackend};
use bff_cloud::middleware::Cloud;
use bff_cloud::params::Calibration;
use bff_cloud::vm::vm_write_payload;
use bff_data::{Payload, Sha256Digest};
use bff_net::transport::{RouteTable, SocketTransport, Transport};
use bff_net::{Fabric, NodeId, ThreadFabric, ThreadParams};
use parking_lot::Mutex;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const NODES: u32 = 4;
const IMG: u64 = 1 << 20;
const CHUNK: u64 = 64 << 10;
const BOOT_STRIDE: u64 = 256 << 10;
const STATE_OFFSET: u64 = 512 << 10;
const SHARED_BYTES: u64 = 32 << 10;
const PRIV_BYTES: u64 = 32 << 10;

/// How many recently published snapshots stay bootable.
const ROTATION: usize = 16;

/// Hard recovery-time bound, seconds: spawn→READY of a respawned
/// process, including its full replay. Generous on purpose — the gate
/// is "recovery is bounded", not a latency benchmark.
const BOUND_S: f64 = 20.0;

/// Client back-off between retries while the cluster is (partly) dead.
const RETRY_SLEEP: Duration = Duration::from_millis(25);

/// A client failing for this long means the cluster never came back.
const FAIL_DEADLINE: Duration = Duration::from_secs(30);

/// Deterministic xorshift64* (same generator as `load_sweep`).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Storm pacing per scale.
struct Phases {
    /// Storm time before the first kill (also bounded by the
    /// wait-for-published-snapshots loop).
    warmup: Duration,
    /// How long a killed process stays dead (clients fail into retries).
    dead: Duration,
    /// Storm time between the provider and manager restarts.
    mid: Duration,
    /// Storm time after the last restart before the storm stops.
    settle: Duration,
}

fn phases(scale: RunScale) -> Phases {
    match scale {
        RunScale::Paper => Phases {
            warmup: Duration::from_millis(2000),
            dead: Duration::from_millis(400),
            mid: Duration::from_millis(2000),
            settle: Duration::from_millis(1000),
        },
        RunScale::Mini => Phases {
            warmup: Duration::from_millis(800),
            dead: Duration::from_millis(250),
            mid: Duration::from_millis(800),
            settle: Duration::from_millis(600),
        },
    }
}

fn client_threads(scale: RunScale) -> usize {
    if let Ok(v) = std::env::var("BFF_RECOVERY_THREADS") {
        return v.parse().expect("BFF_RECOVERY_THREADS must be an integer");
    }
    match scale {
        RunScale::Paper => 12,
        RunScale::Mini => 6,
    }
}

/// The latest published snapshots, bootable by any client. Doomed
/// (to-be-terminated) lineages are never published here, so a rotation
/// entry is never deleted.
struct Rotation {
    recent: Mutex<Vec<(BlobId, Version)>>,
}

impl Rotation {
    fn new(base: (BlobId, Version)) -> Self {
        Self {
            recent: Mutex::new(vec![base]),
        }
    }

    fn pick(&self, rng: &mut Rng) -> (BlobId, Version) {
        let recent = self.recent.lock();
        recent[(rng.next() % recent.len() as u64) as usize]
    }

    fn publish(&self, snap: (BlobId, Version)) {
        let mut recent = self.recent.lock();
        if recent.len() == ROTATION {
            recent.remove(1); // keep the base at slot 0 forever
        }
        recent.push(snap);
    }
}

/// Acknowledged snapshots the cluster must still serve byte-identically
/// after every crash: `(blob, version, sha256 at publish time)`.
type Registry = Mutex<Vec<(BlobId, Version, Sha256Digest)>>;

#[derive(Default)]
struct Tally {
    boots: usize,
    published: usize,
    terminated: usize,
    retries: usize,
}

/// One storm round: boot a rotation snapshot, read the full image in
/// guest-sized strides, commit a partly-shared payload, snapshot, then
/// publish (recording the survivor digest) or terminate for GC. Any
/// error aborts the round; the caller retries a fresh one.
fn run_round(
    cloud: &Cloud,
    rotation: &Rotation,
    registry: &Registry,
    node: NodeId,
    rng: &mut Rng,
    worker: usize,
    round: usize,
) -> Result<(bool, bool), BackendError> {
    let (blob, version) = rotation.pick(rng);
    let mut handle = cloud.add_instance(blob, version, node)?;
    let mut off = 0;
    while off < IMG {
        handle.backend.read(off..(off + BOOT_STRIDE).min(IMG))?;
        off += BOOT_STRIDE;
    }
    let shared = vm_write_payload(1_000 + round as u64, 0, SHARED_BYTES);
    handle.backend.write(STATE_OFFSET, shared)?;
    let private = vm_write_payload(7_919 * worker as u64 + round as u64, 0, PRIV_BYTES);
    handle.backend.write(STATE_OFFSET + SHARED_BYTES, private)?;
    let snap = handle.snapshot()?;
    if round % 4 == 3 {
        // A doomed lineage: snapshot GC interleaves with the storm and
        // the recoveries. Never published, never registered.
        cloud.terminate_instance(handle)?;
        return Ok((false, true));
    }
    // Record the survivor digest *before* exposing the snapshot to other
    // clients: the round only counts as published once its bytes have
    // been read back and fingerprinted.
    let img = cloud.download_image(snap.0, snap.1)?;
    registry.lock().push((snap.0, snap.1, img.digest_sha256()));
    rotation.publish(snap);
    Ok((true, false))
}

/// One client's storm loop: rounds until `stop`, retrying after any
/// error (a dead window looks like a burst of retries).
fn run_client(
    cloud: &Cloud,
    rotation: &Rotation,
    registry: &Registry,
    stop: &AtomicBool,
    worker: usize,
) -> Tally {
    let node = NodeId(worker as u32 % NODES);
    let mut rng = Rng::new(0x9E37_79B9_7F4A_7C15 ^ worker as u64);
    let mut tally = Tally::default();
    let mut failing_since: Option<Instant> = None;
    let mut round = 0;
    while !stop.load(Ordering::Relaxed) {
        match run_round(cloud, rotation, registry, node, &mut rng, worker, round) {
            Ok((published, terminated)) => {
                failing_since = None;
                round += 1;
                tally.boots += 1;
                tally.published += published as usize;
                tally.terminated += terminated as usize;
            }
            Err(e) => {
                let since = *failing_since.get_or_insert_with(Instant::now);
                assert!(
                    since.elapsed() < FAIL_DEADLINE,
                    "client {worker} failing for {:?}: cluster never recovered ({e:?})",
                    since.elapsed(),
                );
                tally.retries += 1;
                std::thread::sleep(RETRY_SLEEP);
            }
        }
    }
    tally
}

fn blob_cfg() -> BlobConfig {
    BlobConfig {
        chunk_size: CHUNK,
        dedup: true,
        transport: TransportMode::Socket,
        ..Default::default()
    }
}

fn main() {
    let scale = RunScale::from_args();
    let workers = client_threads(scale);
    let ph = phases(scale);
    let data_root = output_dir().join("recovery_data");
    let _ = std::fs::remove_dir_all(&data_root);
    std::fs::create_dir_all(&data_root).expect("create recovery data root");

    // Each process owns its directory exclusively; a respawn reuses it.
    let mut mgr_spec = ServerSpec::new("vm,pm,board,cluster,meta", NODES, CHUNK);
    mgr_spec.dedup = true;
    mgr_spec.data_dir = Some(data_root.join("managers"));
    let mut prov_spec = ServerSpec::new("provider", NODES, CHUNK);
    prov_spec.dedup = true;
    prov_spec.data_dir = Some(data_root.join("provider"));

    println!(
        "recovery_sweep: {workers} client threads over {NODES} nodes; \
         kill -9 + restart of the provider and manager processes mid-storm \
         (bound {BOUND_S}s per recovery)"
    );
    let (mgr, mut addrs) = mgr_spec.spawn();
    let (prov, prov_addrs) = prov_spec.spawn();
    addrs.extend(prov_addrs);
    let mut mgr_proc = Some(mgr);
    let mut prov_proc = Some(prov);

    let mut params = ThreadParams::serving(NODES as usize + 1);
    params.coarse_lanes = false;
    let fabric = ThreadFabric::new(params);
    let compute: Vec<NodeId> = (0..NODES).map(NodeId).collect();
    let transport = Arc::new(SocketTransport::new(
        RouteTable::from_roles(&addrs).expect("every role announced"),
    ));
    let store = BlobStore::remote(
        blob_cfg(),
        BlobTopology::colocated(&compute, NodeId(NODES)),
        fabric.clone() as Arc<dyn Fabric>,
        Arc::clone(&transport) as Arc<dyn Transport>,
    );
    let cloud = Cloud::with_store(
        store,
        fabric.clone() as Arc<dyn Fabric>,
        compute.clone(),
        NodeId(NODES),
        Calibration::default(),
    );

    let base_image = Payload::synth(0x5EED, 0, IMG);
    let base = cloud.upload_image(base_image.clone()).expect("upload base");
    let registry: Registry = Mutex::new(vec![(base.0, base.1, base_image.digest_sha256())]);
    let rotation = Rotation::new(base);
    let stop = AtomicBool::new(false);

    let mut provider_recovery_s = 0.0f64;
    let mut manager_recovery_s = 0.0f64;
    let mut tally = Tally::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                let (cloud, rotation, registry, stop) = (&cloud, &rotation, &registry, &stop);
                scope.spawn(move || run_client(cloud, rotation, registry, stop, worker))
            })
            .collect();

        // Let the storm build a population of published snapshots before
        // the first crash — otherwise there is nothing to survive.
        std::thread::sleep(ph.warmup);
        let waiting = Instant::now();
        while registry.lock().len() < 4 {
            assert!(
                waiting.elapsed() < Duration::from_secs(60),
                "storm published no snapshots in 60s"
            );
            std::thread::sleep(Duration::from_millis(50));
        }

        let survivors_at_kill = registry.lock().len();
        println!("  kill -9 provider process ({survivors_at_kill} snapshots published)");
        prov_proc.take().expect("provider alive").kill9();
        std::thread::sleep(ph.dead);
        let clock = Instant::now();
        let (proc_, new_addrs) = prov_spec.spawn();
        provider_recovery_s = clock.elapsed().as_secs_f64();
        prov_proc = Some(proc_);
        addrs.extend(new_addrs);
        transport.set_routes(RouteTable::from_roles(&addrs).expect("provider re-announced"));
        println!("  provider recovered in {provider_recovery_s:.3}s");

        std::thread::sleep(ph.mid);

        let survivors_at_kill = registry.lock().len();
        println!("  kill -9 manager process ({survivors_at_kill} snapshots published)");
        mgr_proc.take().expect("managers alive").kill9();
        std::thread::sleep(ph.dead);
        let clock = Instant::now();
        let (proc_, new_addrs) = mgr_spec.spawn();
        manager_recovery_s = clock.elapsed().as_secs_f64();
        mgr_proc = Some(proc_);
        addrs.extend(new_addrs);
        transport.set_routes(RouteTable::from_roles(&addrs).expect("managers re-announced"));
        println!("  managers recovered in {manager_recovery_s:.3}s");

        std::thread::sleep(ph.settle);
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            let t = h.join().expect("client thread");
            tally.boots += t.boots;
            tally.published += t.published;
            tally.terminated += t.terminated;
            tally.retries += t.retries;
        }
    });
    fabric.quiesce();

    // Post-restart write liveness: the recovered cluster must still
    // accept and serve brand-new data.
    let live_image = Payload::synth(0xA11CE, 0, IMG);
    let live = cloud
        .upload_image(live_image.clone())
        .expect("post-recovery upload");
    registry
        .lock()
        .push((live.0, live.1, live_image.digest_sha256()));

    // Survivor verification through a *fresh* client stack: new
    // connections, empty descriptor/chunk caches — every byte comes off
    // the recovered processes, not from anything this process cached.
    let verify_store = BlobStore::remote(
        blob_cfg(),
        BlobTopology::colocated(&compute, NodeId(NODES)),
        fabric.clone() as Arc<dyn Fabric>,
        Arc::new(SocketTransport::new(
            RouteTable::from_roles(&addrs).expect("final route table"),
        )) as Arc<dyn Transport>,
    );
    let verify_cloud = Cloud::with_store(
        verify_store,
        fabric.clone() as Arc<dyn Fabric>,
        compute.clone(),
        NodeId(NODES),
        Calibration::default(),
    );
    let snapshots = registry.into_inner();
    let mut matched = 0usize;
    for &(blob, version, want) in &snapshots {
        let img = verify_cloud
            .download_image(blob, version)
            .unwrap_or_else(|e| {
                panic!("survivor {blob:?} v{version:?} unreadable after recovery: {e:?}")
            });
        if img.digest_sha256() == want {
            matched += 1;
        } else {
            eprintln!("survivor {blob:?} v{version:?} content diverged after recovery");
        }
    }
    let identity = matched as f64 / snapshots.len() as f64;
    let slowest = provider_recovery_s.max(manager_recovery_s);
    let margin = BOUND_S / slowest.max(1e-9);
    println!(
        "\n{} boots ({} published, {} terminated, {} retried rounds); \
         {}/{} survivors byte-identical; recovery provider {:.3}s / managers {:.3}s \
         (bound {BOUND_S}s, margin {:.1}x)",
        tally.boots,
        tally.published,
        tally.terminated,
        tally.retries,
        matched,
        snapshots.len(),
        provider_recovery_s,
        manager_recovery_s,
        margin,
    );

    // Flat summary for the CI gate (compared against BENCH_8.json).
    let mut summary = String::from("{\n");
    let _ = writeln!(summary, "  \"recovery_survivor_identity\": {identity:.4},");
    let _ = writeln!(summary, "  \"recovery_snapshots\": {},", snapshots.len());
    let _ = writeln!(
        summary,
        "  \"recovery_provider_s\": {provider_recovery_s:.3},"
    );
    let _ = writeln!(
        summary,
        "  \"recovery_manager_s\": {manager_recovery_s:.3},"
    );
    let _ = writeln!(summary, "  \"recovery_margin\": {margin:.3},");
    let _ = writeln!(summary, "  \"recovery_bound_s\": {BOUND_S},");
    let _ = writeln!(summary, "  \"recovery_boots\": {},", tally.boots);
    let _ = writeln!(summary, "  \"recovery_retries\": {},", tally.retries);
    let _ = writeln!(summary, "  \"recovery_threads\": {workers}");
    summary.push('}');
    summary.push('\n');
    let path = output_dir().join("recovery_summary.json");
    std::fs::write(&path, summary).expect("write recovery summary");
    println!("[written {}]", path.display());

    // Hard asserts: recovery is a correctness property, not a trend.
    assert_eq!(
        matched,
        snapshots.len(),
        "every acknowledged snapshot must survive byte-identically"
    );
    assert!(
        slowest <= BOUND_S,
        "recovery took {slowest:.3}s, bound is {BOUND_S}s"
    );
    drop(prov_proc);
    drop(mgr_proc);
}
