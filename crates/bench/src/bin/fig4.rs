//! Fig. 4: multideployment. Regenerates the four panels as tables:
//! average boot time per instance (a), completion time (b), speedup (c)
//! and total network traffic (d). Pass `--mini` for a CI-sized run.

use bff_bench::{f1, f3, RunScale, Table};
use bff_cloud::experiments::fig4;
use bff_cloud::params::Calibration;

fn main() {
    let scale = RunScale::from_args();
    let cal = Calibration::default();
    let rows = fig4::run(&scale.sweep(), scale.exp_scale(), cal, 0xF1604);

    let mut a = Table::new(
        "fig4a_avg_boot_time",
        &[
            "instances",
            "taktuk_prepropagation_s",
            "qcow2_over_pvfs_s",
            "our_approach_s",
        ],
    );
    let mut b = Table::new(
        "fig4b_total_boot_time",
        &[
            "instances",
            "taktuk_prepropagation_s",
            "qcow2_over_pvfs_s",
            "our_approach_s",
        ],
    );
    let mut c = Table::new(
        "fig4c_speedup",
        &["instances", "speedup_vs_taktuk", "speedup_vs_qcow2"],
    );
    let mut d = Table::new(
        "fig4d_network_traffic",
        &[
            "instances",
            "taktuk_prepropagation_gb",
            "qcow2_over_pvfs_gb",
            "our_approach_gb",
        ],
    );
    for row in &rows {
        let [pre, qcow, ours] = &row.outcomes;
        a.row(&[
            &row.n,
            &f3(pre.avg_boot_s()),
            &f3(qcow.avg_boot_s()),
            &f3(ours.avg_boot_s()),
        ]);
        b.row(&[
            &row.n,
            &f1(pre.total_s),
            &f1(qcow.total_s),
            &f1(ours.total_s),
        ]);
        c.row(&[
            &row.n,
            &f1(row.speedup_vs_taktuk()),
            &f3(row.speedup_vs_qcow()),
        ]);
        d.row(&[
            &row.n,
            &f3(pre.traffic_gb),
            &f3(qcow.traffic_gb),
            &f3(ours.traffic_gb),
        ]);
    }
    a.emit();
    b.emit();
    c.emit();
    d.emit();
}
