//! Prefetch sweep: cold concurrent multideployment boot with the
//! adaptive cross-VM prefetching pipeline off vs on, plus the pipelined
//! chain-replication latency comparison — the two perf artifacts of the
//! anticipatory-I/O PR, gated by `bench_regression` against
//! `BENCH_4.json`.
//!
//! **Boot sweep.** The §3.2 "dynamically adding compute nodes" shape: a
//! small seed wave boots the image first (cold, on demand — with
//! prefetching on it also publishes its first-touch chunk order to the
//! cluster `PatternBoard`); then the main wave — two co-located VMs per
//! node across the whole cluster — boots concurrently. With
//! `BFF_PREFETCH=0` every main-wave chunk is fetched strictly on
//! demand, serial with the guest's compute bursts. With prefetching on,
//! the main wave pulls the cohort's predicted window as *background*
//! read-ahead during guest CPU bursts, so transfers hide behind
//! compute, and co-located VMs share each other's fetched chunks
//! through the node cache. The headline number is the main wave's *cold
//! concurrent boot throughput*: instances per simulated second of mean
//! per-instance boot time under full concurrency — the Fig. 4(a)
//! metric, which averages over the per-instance noise (each VM's
//! private cold reads) that a makespan would max over. Target ≥ 1.5×
//! over on-demand; the wave makespan is reported alongside.
//!
//! **Chain pipeline.** A full-image commit with 3 replicas through
//! batched chain replication (whole batch store-and-forwarded hop by
//! hop) vs the chunk-granular pipelined chain (hop n+1 streams while
//! hop n transfers). Virtual-time commit latency, same bytes moved.
//!
//! Emits `target/paper/prefetch_sweep.{csv,json}` and
//! `target/paper/prefetch_summary.json` — the flat file the CI gate
//! compares against the `BENCH_4.json` floors.
//!
//! CI-sized by default (seconds); `--mini` is accepted for symmetry
//! with the figure binaries and changes nothing.

use bff_bench::{f3, output_dir, Table};
use bff_blobseer::{
    BlobConfig, BlobStore, BlobTopology, Client as BlobClient, ReplicationMode, Version,
};
use bff_cloud::backend::MirrorBackend;
use bff_cloud::params::Calibration;
use bff_cloud::vm::run_vm_trace;
use bff_data::Payload;
use bff_net::{Fabric, NodeId};
use bff_sim::SimCluster;
use bff_workloads::boottrace::BootProfile;
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::sync::Arc;

const NODES: u32 = 8;
const VMS_PER_NODE: usize = 2; // the co-located multideployment pattern
const SEED_VMS: usize = 2; // wave 1: the cohort that publishes the pattern
const IMG: u64 = 8 << 20;
const CHUNK: u64 = 64 << 10;
const RUN_SEED: u64 = 0xB007;
/// Main-wave start: well after the seed wave finished booting.
const WAVE2_AT_US: u64 = 1_500_000;
/// Main-wave hypervisor start skew: one middleware command launches the
/// wave, so instances start within a few tens of ms (§3.1.3 puts the
/// boot-sector access skew at the 100 ms order *including* the boot
/// path; the launch skew itself is smaller).
const WAVE2_SKEW_US: u64 = 25_000;

/// The sweep's boot profile. `BootProfile::scaled` shrinks a 2 GB boot
/// to the mini image but keeps the full 9.5 s of guest CPU scaled to
/// 50 ms — far more CPU per fetched byte than the paper-scale regime,
/// where 110 instances over shared GbE make boots I/O-bound (Fig. 4a:
/// ~10 s local vs ~25 s+ concurrent mirror boots). A 16-instance mini
/// sweep must keep that I/O:CPU ratio representative, so this profile
/// touches ~25% of the image per instance against a 25 ms CPU budget.
fn sweep_profile() -> BootProfile {
    BootProfile {
        image_len: IMG,
        kernel_bytes: 512 << 10,
        kernel_read: 16 << 10,
        random_read_bytes: 2 << 20,
        random_read_size: (512, 8 << 10),
        hot_fraction: 0.35,
        write_bytes: 8 << 10,
        write_size: (256, 1024),
        cpu_total_us: 20_000,
        shared_fraction: 0.95,
    }
}

#[derive(Debug, Clone, Copy)]
struct BootOutcome {
    /// Main-wave window: first instance start → last instance done,
    /// seconds (virtual).
    wave_s: f64,
    /// Mean per-instance main-wave boot time, seconds.
    avg_boot_s: f64,
    /// Cold concurrent boot throughput of the main wave: instances per
    /// second of mean concurrent boot time (`main_vms / avg_boot_s` ÷
    /// `main_vms` = `1 / avg_boot_s`, scaled to the wave size).
    boots_per_s: f64,
    /// Total network traffic, MB (both waves).
    network_mb: f64,
    /// Prefetched chunks that served a demand read.
    hits: u64,
    /// Prefetched chunks evicted unused.
    wasted: u64,
    /// Chunks prefetched in total.
    prefetched: u64,
}

fn run_boot(prefetch: bool, min_publishers: usize) -> BootOutcome {
    let cal = Calibration::default();
    let n = NODES as usize;
    let cluster = SimCluster::new(cal.cluster(n));
    let fabric: Arc<dyn Fabric> = cluster.fabric();
    let compute: Vec<NodeId> = (0..NODES).map(NodeId).collect();
    let service = NodeId(NODES);
    let cfg = BlobConfig {
        chunk_size: CHUNK,
        prefetch,
        // A wide in-flight budget: one background step pulls the whole
        // predicted pattern as per-provider batches, outrunning the
        // guest's demand stream instead of racing it chunk for chunk.
        prefetch_window: 32,
        // The confidence filter under test: chunks reported by fewer
        // distinct publishers are not read ahead (1 = filter off).
        prefetch_min_publishers: min_publishers,
        ..Default::default()
    };
    let topo = BlobTopology::colocated(&compute, service);
    let store = BlobStore::new(cfg, topo, Arc::clone(&fabric));
    let uploader = BlobClient::new(Arc::clone(&store), service);
    let (blob, version) = uploader
        .upload(Payload::synth(0x1A6E, 0, IMG))
        .expect("pre-staging upload");
    store.drop_provider_caches(); // image staged long before; caches cold
    fabric.stats().reset();

    let profile = sweep_profile();
    let boot = |vm: usize, node: NodeId, start_base: u64, skew: u64| {
        let store = Arc::clone(&store);
        let fabric = Arc::clone(&fabric);
        move |env: &bff_sim::Env| {
            let mut rng =
                SmallRng::seed_from_u64(RUN_SEED ^ (vm as u64).wrapping_mul(0x9e3779b97f4a7c15));
            // The middleware attaches the instance's image at the wave
            // launch (Cloud::deploy opens every backend up front); the
            // hypervisor then starts within the launch skew. Deploy-time
            // read-ahead uses exactly that gap.
            env.sleep_us(start_base);
            let client = BlobClient::new(store, node);
            let cal = Calibration::default();
            let mut backend =
                MirrorBackend::open(client, blob, version, &cal).expect("open mirror");
            env.sleep_us(rng.gen_range(0..skew.max(1)));
            let start = env.now_us();
            let ops = profile.generate(RUN_SEED ^ vm as u64);
            run_vm_trace(&fabric, node, &mut backend, vm as u64, &ops).expect("vm trace");
            (start, env.now_us())
        }
    };

    // Wave 1: the seed cohort boots cold and (with prefetching on)
    // publishes its first-touch order to the board.
    for vm in 0..SEED_VMS {
        let node = NodeId((vm % n) as u32);
        let run = boot(vm, node, 0, cal.start_skew_us);
        cluster.sim().spawn(format!("seed{vm}"), move |env| {
            run(&env);
        });
    }
    // Wave 2: the main deployment joins the running application.
    let main_vms = n * VMS_PER_NODE;
    let spans: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(vec![(0, 0); main_vms]));
    for vm in 0..main_vms {
        let node = NodeId((vm % n) as u32);
        let run = boot(SEED_VMS + vm, node, WAVE2_AT_US, WAVE2_SKEW_US);
        let spans = Arc::clone(&spans);
        cluster.sim().spawn(format!("vm{vm}"), move |env| {
            spans.lock()[vm] = run(&env);
        });
    }
    cluster.run();

    let spans = spans.lock();
    let per_vm_s: Vec<f64> = spans.iter().map(|(s, e)| (e - s) as f64 / 1e6).collect();
    let first = spans.iter().map(|(s, _)| *s).min().unwrap_or(0);
    let last = spans.iter().map(|(_, e)| *e).max().unwrap_or(0);
    let wave_s = (last - first) as f64 / 1e6;
    if std::env::var("DEBUG_SPANS").is_ok() {
        let mut v: Vec<(usize, u64, u64)> = spans
            .iter()
            .enumerate()
            .map(|(i, (s, e))| (i, *s, *e))
            .collect();
        v.sort_by_key(|&(_, _, e)| e);
        for (i, s, e) in v {
            eprintln!(
                "vm{i:02} node{} start {s:>7} end {e:>7} boot {:>6}us",
                i % 8,
                e - s
            );
        }
    } // DEBUG_SPANS
    let (mut hits, mut wasted, mut prefetched) = (0u64, 0u64, 0u64);
    for &node in &compute {
        let s = store.node_context(node).prefetch_stats();
        hits += s.hits;
        wasted += s.wasted_chunks;
        prefetched += s.prefetched_chunks;
    }
    let avg_boot_s = per_vm_s.iter().sum::<f64>() / per_vm_s.len() as f64;
    BootOutcome {
        wave_s,
        avg_boot_s,
        boots_per_s: main_vms as f64 / avg_boot_s.max(1e-9),
        network_mb: fabric.stats().total_network_bytes() as f64 / 1e6,
        hits,
        wasted,
        prefetched,
    }
}

/// Virtual-time latency of one full-image commit (3 replicas) through a
/// replication mode on the simulated fabric.
fn chain_commit_latency_s(mode: ReplicationMode) -> f64 {
    let cal = Calibration::default();
    let n = NODES as usize;
    let cluster = SimCluster::new(cal.cluster(n));
    let fabric: Arc<dyn Fabric> = cluster.fabric();
    let compute: Vec<NodeId> = (0..NODES).map(NodeId).collect();
    let service = NodeId(NODES);
    let cfg = BlobConfig {
        chunk_size: CHUNK,
        replication: 3,
        replication_mode: mode,
        dedup: false, // measure the push pipeline, not the digest probe
        ..Default::default()
    };
    let store = BlobStore::new(cfg, BlobTopology::colocated(&compute, service), fabric);
    let updates: Vec<(u64, Payload)> = (0..IMG / CHUNK)
        .map(|i| (i, Payload::synth(0xC0117 + i, 0, CHUNK)))
        .collect();
    let done = Arc::new(Mutex::new(0u64));
    let done2 = Arc::clone(&done);
    cluster.sim().spawn("committer", move |env| {
        let client = BlobClient::new(store, service);
        let blob = client.create_blob(IMG).expect("create");
        let t0 = env.now_us();
        client
            .write_chunks(blob, Version(0), updates)
            .expect("commit");
        *done2.lock() = env.now_us() - t0;
    });
    cluster.run();
    let us = *done.lock();
    us as f64 / 1e6
}

fn main() {
    let off = run_boot(false, 1);
    // The shipping default: cohort-confirmed chunks only (min 2
    // publishers once ≥2 exist). The unfiltered run isolates what the
    // confidence filter saves in wasted read-ahead.
    let on = run_boot(true, 2);
    let on_unfiltered = run_boot(true, 1);

    let mut t = Table::new(
        "prefetch_sweep",
        &[
            "prefetch",
            "wave_s",
            "avg_boot_s",
            "boots_per_s",
            "network_mb",
            "prefetched_chunks",
            "hits",
            "wasted",
        ],
    );
    for (label, m) in [("off", off), ("on", on), ("on_unfiltered", on_unfiltered)] {
        t.row(&[
            &label,
            &f3(m.wave_s),
            &f3(m.avg_boot_s),
            &f3(m.boots_per_s),
            &f3(m.network_mb),
            &m.prefetched,
            &m.hits,
            &m.wasted,
        ]);
    }
    t.emit();

    let boot_speedup = on.boots_per_s / off.boots_per_s.max(1e-9);
    let hit_rate = if on.prefetched == 0 {
        0.0
    } else {
        on.hits as f64 / on.prefetched as f64
    };

    let seq_s = chain_commit_latency_s(ReplicationMode::Sequential);
    let chain_s = chain_commit_latency_s(ReplicationMode::Chain);
    let pipe_s = chain_commit_latency_s(ReplicationMode::ChainPipelined);
    let chain_speedup = chain_s / pipe_s.max(1e-9);
    let mut t = Table::new(
        "chain_pipeline",
        &["mode", "commit_latency_s", "vs_sequential"],
    );
    for (label, s) in [
        ("sequential", seq_s),
        ("chain", chain_s),
        ("chain_pipelined", pipe_s),
    ] {
        t.row(&[&label, &f3(s), &f3(seq_s / s.max(1e-9))]);
    }
    t.emit();

    // Waste = read-ahead transfers no demand read ever consumed
    // (`prefetched − hits`; the evicted-unused counter alone misses
    // unused chunks still parked in the cache). The confidence filter's
    // value is the drop in that number between the unfiltered and the
    // default (cohort-confirmed) run.
    let unused = |m: &BootOutcome| m.prefetched.saturating_sub(m.hits);
    let waste_saved = unused(&on_unfiltered).saturating_sub(unused(&on));
    println!(
        "\ncold concurrent boot wave: {:.2}s -> {:.2}s ({boot_speedup:.2}x throughput); \
         prefetch hit rate {:.0}% ({} hits / {} wasted of {} prefetched); \
         confidence filter saved {waste_saved} unused read-aheads \
         ({} unfiltered -> {}); \
         chain commit latency {:.3}s -> {:.3}s pipelined ({chain_speedup:.2}x)",
        off.wave_s,
        on.wave_s,
        100.0 * hit_rate,
        on.hits,
        on.wasted,
        on.prefetched,
        unused(&on_unfiltered),
        unused(&on),
        chain_s,
        pipe_s,
    );

    // Flat summary for the CI perf gate (compared against BENCH_4.json).
    let mut summary = String::from("{\n");
    let network_reduction = off.network_mb / on.network_mb.max(1e-9);
    let _ = writeln!(summary, "  \"prefetch_boot_speedup\": {boot_speedup:.3},");
    let _ = writeln!(summary, "  \"prefetch_hit_rate\": {hit_rate:.3},");
    let _ = writeln!(
        summary,
        "  \"prefetch_network_reduction\": {network_reduction:.3},"
    );
    let _ = writeln!(summary, "  \"chain_pipeline_speedup\": {chain_speedup:.3},");
    let _ = writeln!(summary, "  \"prefetch_network_mb\": {:.3},", on.network_mb);
    let _ = writeln!(summary, "  \"confidence_waste_saved\": {waste_saved}.0,");
    let _ = writeln!(
        summary,
        "  \"confidence_unused_filtered\": {}.0,",
        unused(&on)
    );
    let _ = writeln!(
        summary,
        "  \"confidence_unused_unfiltered\": {}.0,",
        unused(&on_unfiltered)
    );
    let _ = writeln!(summary, "  \"prefetch_boot_wave_s\": {:.3}", on.wave_s);
    summary.push('}');
    summary.push('\n');
    let path = output_dir().join("prefetch_summary.json");
    std::fs::write(&path, summary).expect("write summary");
    println!("[written {}]", path.display());
}
