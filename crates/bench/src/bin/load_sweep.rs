//! Wall-clock serving-mode load generator: hundreds of concurrent
//! boot/snapshot/GC clients hammering one repository deployment on a
//! [`bff_net::ThreadFabric`] — real OS threads, real locks, modelled
//! network/disk costs compressed 20× (`ThreadParams::serving`).
//!
//! The sweep replays the same workload under five configurations,
//! cumulatively enabling this PR's contention fixes, worst first:
//!
//! | run | fabric lanes | pattern board | chunk-cache consult | cluster probe |
//! |---|---|---|---|---|
//! | `naive-fabric` | one global lock held *across* every modelled delay | one exclusive mutex | one lock per chunk | write lock per key |
//! | `lane-fix`     | per-node lanes, waits outside the locks | one exclusive mutex | one lock per chunk | write lock per key |
//! | `board-fix`    | per-node lanes | 16 rwlock shards | one lock per chunk | write lock per key |
//! | `+cache-fix`   | per-node lanes | 16 rwlock shards | one lock per read | write lock per key |
//! | `all-fixes`    | per-node lanes | 16 rwlock shards | one lock per read | one read lock per batch |
//!
//! Every configuration is logically identical — the coarse modes are
//! the pre-fix code paths kept behind `ThreadParams::coarse_lanes` and
//! the `BlobConfig::coarse_*` toggles — so throughput differences are
//! pure locking discipline. The dominant fix by far is the fabric
//! lane fix (don't hold the lane lock across the modelled delay: the
//! fabric-layer twin of the store's "locks are never held across
//! fabric calls" invariant). The store-lock fixes contribute lower
//! lock-handoff latency; on many-core runners they also add wall-clock
//! throughput, while on a single-core runner they show up in the
//! contention counters and p50 boot latency instead.
//!
//! The workload is rotating-snapshot serving (the paper's
//! multideployment + multisnapshotting storm, §5): every client boots
//! the *latest published snapshots*, not just the base image, so fresh
//! versions keep arriving — metadata fetches, pattern publishes and
//! dirty-chunk transfers never go quiet. On a fixed schedule clients
//! commit a partly-shared payload (cluster-dedup probes from different
//! nodes), publish the snapshot for others to boot, or terminate their
//! instance so snapshot GC interleaves with the boot storm.
//! Inter-arrival gaps are heavy-tailed (Pareto), so bursts and lulls
//! both occur.
//!
//! Reported per run: wall-clock boot throughput, p50/p99 boot latency,
//! and the per-lock contention counters ([`bff_blobseer::lockstat`]).
//! Emits `target/paper/load_sweep.{csv,json}` and
//! `target/paper/load_summary.json`, gated against the `BENCH_6.json`
//! floors by `bench_regression --loadgen-results`.
//!
//! `--transport direct|codec|socket|all` runs the transport axis
//! (`transport_summary.json`, gated against `BENCH_7.json`) and
//! `--durable mem|sync|group|all` the durability axis: the same storm
//! over the in-process socket transport with in-memory providers,
//! fsync-per-ack durable providers, and group-commit durable providers
//! (`durable_summary.json`, gated against `BENCH_9.json`).
//!
//! `--mini` shrinks the client count for CI smoke runs;
//! `BFF_LOADGEN_THREADS` pins the client count explicitly (CI uses it
//! so runner core counts don't change the workload).

use bff_bench::procs::ServerSpec;
use bff_bench::{f1, f3, output_dir, RunScale, Table};
use bff_blobseer::{BlobId, BlobStore, BlobTopology, LockContention, TransportMode, Version};
use bff_cloud::backend::ImageBackend;
use bff_cloud::middleware::Cloud;
use bff_cloud::params::Calibration;
use bff_cloud::vm::vm_write_payload;
use bff_data::Payload;
use bff_net::transport::{RouteTable, SocketTransport, WireStats};
use bff_net::{Fabric, NodeId, ThreadFabric, ThreadParams};
use parking_lot::Mutex;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

const NODES: u32 = 8;
const IMG: u64 = 2 << 20;
const CHUNK: u64 = 64 << 10;
/// Boot reads issue one `read_multi` per this many bytes (4 chunks) —
/// guest-sized requests, so each boot crosses the board/cache locks
/// many times, like the real FUSE read path would.
const BOOT_STRIDE: u64 = 256 << 10;
/// Offset of the contextualization write.
const STATE_OFFSET: u64 = 1 << 20;
/// The shared part of each commit — identical bytes from every client
/// at the same round, so the cluster dedup index gets probed from
/// different nodes concurrently.
const SHARED_BYTES: u64 = 128 << 10;
/// The private part — unique per client, so GC has bytes to reclaim.
const PRIV_BYTES: u64 = 64 << 10;

/// Boots per client thread.
const BOOTS: usize = 6;

/// How many recently published snapshots stay bootable.
const ROTATION: usize = 32;

/// Heavy-tailed inter-arrival gaps: Pareto(alpha) scaled to `BASE_US`,
/// capped so one unlucky draw cannot stall a worker for the whole run.
const ARRIVAL_BASE_US: u64 = 40;
const ARRIVAL_CAP_US: u64 = 4_000;
const PARETO_ALPHA: f64 = 1.5;

/// Deterministic xorshift64* — no rand dependency, same arrival pattern
/// every run so the five configurations replay identical schedules.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in (0, 1].
    fn unit(&mut self) -> f64 {
        ((self.next() >> 11) as f64 + 1.0) / (1u64 << 53) as f64
    }

    fn pareto_us(&mut self) -> u64 {
        let draw = ARRIVAL_BASE_US as f64 * self.unit().powf(-1.0 / PARETO_ALPHA);
        (draw as u64).min(ARRIVAL_CAP_US)
    }
}

fn client_threads(scale: RunScale) -> usize {
    if let Ok(v) = std::env::var("BFF_LOADGEN_THREADS") {
        return v.parse().expect("BFF_LOADGEN_THREADS must be an integer");
    }
    match scale {
        RunScale::Paper => 192,
        RunScale::Mini => 64,
    }
}

#[derive(Clone, Copy)]
struct Discipline {
    label: &'static str,
    coarse_lanes: bool,
    coarse_board: bool,
    coarse_cache: bool,
    coarse_cluster: bool,
}

const DISCIPLINES: &[Discipline] = &[
    Discipline {
        label: "naive-fabric",
        coarse_lanes: true,
        coarse_board: true,
        coarse_cache: true,
        coarse_cluster: true,
    },
    Discipline {
        label: "lane-fix",
        coarse_lanes: false,
        coarse_board: true,
        coarse_cache: true,
        coarse_cluster: true,
    },
    Discipline {
        label: "board-fix",
        coarse_lanes: false,
        coarse_board: false,
        coarse_cache: true,
        coarse_cluster: true,
    },
    Discipline {
        label: "+cache-fix",
        coarse_lanes: false,
        coarse_board: false,
        coarse_cache: false,
        coarse_cluster: true,
    },
    Discipline {
        label: "all-fixes",
        coarse_lanes: false,
        coarse_board: false,
        coarse_cache: false,
        coarse_cluster: false,
    },
];

struct RunOutcome {
    boots: usize,
    wall_s: f64,
    boots_per_s: f64,
    p50_ms: f64,
    p99_ms: f64,
    board: LockContention,
    cluster: LockContention,
    cache: LockContention,
}

fn percentile(sorted_us: &[u64], p: f64) -> f64 {
    assert!(!sorted_us.is_empty());
    let idx = ((p / 100.0) * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[idx] as f64 / 1e3
}

/// The latest published snapshots, bootable by any client. Never holds
/// a GC-doomed lineage: clients that will terminate their instance do
/// not publish it here, so a rotation entry is never deleted.
struct Rotation {
    recent: Mutex<Vec<(BlobId, Version)>>,
}

impl Rotation {
    fn new(base: (BlobId, Version)) -> Self {
        Self {
            recent: Mutex::new(vec![base]),
        }
    }

    fn pick(&self, rng: &mut Rng) -> (BlobId, Version) {
        let recent = self.recent.lock();
        recent[(rng.next() % recent.len() as u64) as usize]
    }

    fn publish(&self, snap: (BlobId, Version)) {
        let mut recent = self.recent.lock();
        if recent.len() == ROTATION {
            recent.remove(1); // keep the base at slot 0 forever
        }
        recent.push(snap);
    }
}

/// One client's life: `BOOTS` deploy→boot-read cycles against rotating
/// snapshots, with heavy-tailed gaps; every third boot commits a
/// partly-shared payload and snapshots, then either publishes the
/// snapshot for other clients to boot or terminates the instance so
/// snapshot GC interleaves with the boot storm. Returns per-boot wall
/// latencies (deploy + full image read).
fn run_client(cloud: &Cloud, rotation: &Rotation, worker: usize) -> Vec<u64> {
    let node = NodeId((worker % NODES as usize) as u32);
    let mut rng = Rng::new(0x9E37_79B9_7F4A_7C15 ^ worker as u64);
    let mut latencies = Vec::with_capacity(BOOTS);
    for boot in 0..BOOTS {
        std::thread::sleep(std::time::Duration::from_micros(rng.pareto_us()));
        let (blob, version) = rotation.pick(&mut rng);
        let started = Instant::now();
        let mut handle = cloud.add_instance(blob, version, node).expect("deploy");
        let mut off = 0;
        while off < IMG {
            handle
                .backend
                .read(off..(off + BOOT_STRIDE).min(IMG))
                .expect("boot read");
            off += BOOT_STRIDE;
        }
        latencies.push(started.elapsed().as_micros() as u64);
        if boot % 3 == 1 {
            // Identical bytes from every client this round (cluster
            // dedup probes from different nodes) plus a private chunk
            // (bytes GC can actually reclaim).
            let shared = vm_write_payload(1_000 + boot as u64, 0, SHARED_BYTES);
            handle.backend.write(STATE_OFFSET, shared).expect("ctx");
            let private = vm_write_payload(7_919 * worker as u64 + boot as u64, 0, PRIV_BYTES);
            handle
                .backend
                .write(STATE_OFFSET + SHARED_BYTES, private)
                .expect("private write");
            let snap = handle.snapshot().expect("snapshot");
            if boot % 6 == 1 {
                // A doomed lineage: never published to the rotation.
                cloud.terminate_instance(handle).expect("terminate");
            } else {
                rotation.publish(snap);
            }
        }
    }
    latencies
}

fn run_discipline(d: Discipline, workers: usize) -> RunOutcome {
    let mut params = ThreadParams::serving(NODES as usize + 1);
    params.coarse_lanes = d.coarse_lanes;
    let fabric = ThreadFabric::new(params);
    let compute: Vec<NodeId> = (0..NODES).map(NodeId).collect();
    let cloud = Cloud::new(
        fabric.clone() as Arc<dyn Fabric>,
        compute.clone(),
        NodeId(NODES),
        bff_blobseer::BlobConfig {
            chunk_size: CHUNK,
            // Pinned, not inherited from the BFF_* environment: the
            // BENCH_6 numbers record the full pipeline (dedup + cluster
            // index + prefetch) under every locking discipline.
            dedup: true,
            cluster_dedup: true,
            prefetch: true,
            coarse_board_lock: d.coarse_board,
            coarse_cache_locks: d.coarse_cache,
            coarse_cluster_probe: d.coarse_cluster,
            ..Default::default()
        },
        Calibration::default(),
    );
    let base = cloud
        .upload_image(Payload::synth(0x5EED, 0, IMG))
        .expect("upload");
    let rotation = Rotation::new(base);

    let started = Instant::now();
    let mut latencies: Vec<u64> = Vec::with_capacity(workers * BOOTS);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                let cloud = &cloud;
                let rotation = &rotation;
                scope.spawn(move || run_client(cloud, rotation, worker))
            })
            .collect();
        for h in handles {
            latencies.extend(h.join().expect("client thread"));
        }
    });
    // Detached prefetch work may still be in flight: drain it before
    // stopping the clock or snapshotting any counters.
    fabric.quiesce();
    let wall_s = started.elapsed().as_secs_f64();

    latencies.sort_unstable();
    let metrics = cloud.metrics();
    let cache = compute
        .iter()
        .map(|&n| cloud.node_context(n).chunk_cache_contention())
        .fold(LockContention::default(), |acc, c| LockContention {
            acquires: acc.acquires + c.acquires,
            contended: acc.contended + c.contended,
        });
    RunOutcome {
        boots: latencies.len(),
        wall_s,
        boots_per_s: latencies.len() as f64 / wall_s,
        p50_ms: percentile(&latencies, 50.0),
        p99_ms: percentile(&latencies, 99.0),
        board: metrics.board_contention,
        cluster: metrics.cluster_contention,
        cache,
    }
}

// ---------------------------------------------------------------------------
// Transport sweep (`--transport direct|codec|socket|all`)
// ---------------------------------------------------------------------------

/// Spec for one `blob_server` child of this sweep's cluster: all the
/// feature toggles on, no data directory (transport numbers measure the
/// wire, not the disk).
fn server_spec(roles: &str) -> ServerSpec {
    let mut spec = ServerSpec::new(roles, NODES, CHUNK);
    spec.dedup = true;
    spec.cluster_dedup = true;
    spec.prefetch = true;
    spec
}

struct TransportOutcome {
    mode: TransportMode,
    boots: usize,
    wall_s: f64,
    boots_per_s: f64,
    p50_ms: f64,
    p99_ms: f64,
    wire: WireStats,
}

impl TransportOutcome {
    fn wire_mb(&self) -> f64 {
        (self.wire.bytes_sent + self.wire.bytes_received) as f64 / 1e6
    }
}

/// The all-fixes workload of [`run_discipline`] under one transport.
/// Socket mode runs the server roles as two real child processes (one
/// hosting the managers, board and metadata, one the providers) and
/// attaches over loopback TCP; the server-side contention counters live
/// in those processes, so only wall-clock numbers and wire traffic are
/// reported for transports.
fn run_transport(mode: TransportMode, workers: usize) -> TransportOutcome {
    let mut params = ThreadParams::serving(NODES as usize + 1);
    params.coarse_lanes = false;
    let fabric = ThreadFabric::new(params);
    let compute: Vec<NodeId> = (0..NODES).map(NodeId).collect();
    let cfg = bff_blobseer::BlobConfig {
        chunk_size: CHUNK,
        dedup: true,
        cluster_dedup: true,
        prefetch: true,
        transport: mode,
        ..Default::default()
    };
    let mut servers = Vec::new();
    let cloud = if mode == TransportMode::Socket {
        let (managers, mut addrs) = server_spec("vm,pm,board,cluster,meta").spawn();
        let (providers, prov_addrs) = server_spec("provider").spawn();
        addrs.extend(prov_addrs);
        servers.push(managers);
        servers.push(providers);
        let table = RouteTable::from_roles(&addrs).expect("every role announced");
        let topo = BlobTopology::colocated(&compute, NodeId(NODES));
        let store = BlobStore::remote(
            cfg,
            topo,
            fabric.clone() as Arc<dyn Fabric>,
            Arc::new(SocketTransport::new(table)),
        );
        Cloud::with_store(
            store,
            fabric.clone() as Arc<dyn Fabric>,
            compute,
            NodeId(NODES),
            Calibration::default(),
        )
    } else {
        Cloud::new(
            fabric.clone() as Arc<dyn Fabric>,
            compute,
            NodeId(NODES),
            cfg,
            Calibration::default(),
        )
    };

    let base = cloud
        .upload_image(Payload::synth(0x5EED, 0, IMG))
        .expect("upload");
    let rotation = Rotation::new(base);
    let started = Instant::now();
    let mut latencies: Vec<u64> = Vec::with_capacity(workers * BOOTS);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                let cloud = &cloud;
                let rotation = &rotation;
                scope.spawn(move || run_client(cloud, rotation, worker))
            })
            .collect();
        for h in handles {
            latencies.extend(h.join().expect("client thread"));
        }
    });
    fabric.quiesce();
    let wall_s = started.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let wire = cloud.store().wire_stats();
    drop(cloud);
    drop(servers); // EOF on stdin, then reap
    TransportOutcome {
        mode,
        boots: latencies.len(),
        wall_s,
        boots_per_s: latencies.len() as f64 / wall_s,
        p50_ms: percentile(&latencies, 50.0),
        p99_ms: percentile(&latencies, 99.0),
        wire,
    }
}

/// `--transport <mode>` runs the rotating-snapshot workload under one
/// transport (CI smoke); `--transport all` compares the three and emits
/// `transport_summary.json` for the `BENCH_7.json` gate.
fn run_transport_sweep(which: &str, workers: usize) {
    let modes: Vec<TransportMode> = if which == "all" {
        vec![
            TransportMode::Direct,
            TransportMode::Codec,
            TransportMode::Socket,
        ]
    } else {
        vec![TransportMode::parse(which)
            .unwrap_or_else(|| panic!("--transport takes direct|codec|socket|all, got {which:?}"))]
    };
    println!(
        "load_sweep transports ({which}): {workers} client threads x {BOOTS} boots \
         over {NODES} nodes, all-fixes locking"
    );
    let mut outcomes = Vec::with_capacity(modes.len());
    for mode in modes {
        let out = run_transport(mode, workers);
        println!(
            "  {:<7} {:>4} boots in {:.2}s -> {:.1} boots/s \
             (p50 {:.2} ms, p99 {:.2} ms; wire {} calls, {:.3} MB)",
            mode.name(),
            out.boots,
            out.wall_s,
            out.boots_per_s,
            out.p50_ms,
            out.p99_ms,
            out.wire.calls,
            out.wire_mb(),
        );
        outcomes.push(out);
    }
    if which != "all" {
        return;
    }

    let mut t = Table::new(
        "transport_sweep",
        &[
            "transport",
            "boots",
            "wall_s",
            "boots_per_s",
            "p50_ms",
            "p99_ms",
            "wire_calls",
            "wire_mb",
        ],
    );
    for out in &outcomes {
        t.row(&[
            &out.mode.name(),
            &out.boots,
            &f3(out.wall_s),
            &f1(out.boots_per_s),
            &f3(out.p50_ms),
            &f3(out.p99_ms),
            &out.wire.calls,
            &f3(out.wire_mb()),
        ]);
    }
    t.emit();

    let direct = &outcomes[0];
    let codec = &outcomes[1];
    let socket = &outcomes[2];
    let retention = codec.boots_per_s / direct.boots_per_s.max(1e-9);
    println!(
        "\ncodec keeps {:.0}% of direct throughput ({:.1} vs {:.1} boots/s); \
         the 2-process socket cluster serves {:.1} boots/s (p99 {:.2} ms) \
         over {:.3} MB on the wire",
        100.0 * retention,
        codec.boots_per_s,
        direct.boots_per_s,
        socket.boots_per_s,
        socket.p99_ms,
        socket.wire_mb(),
    );

    // Flat summary for the CI perf gate (compared against BENCH_7.json).
    // Only the codec/direct ratio is gated: both run in-process, so the
    // ratio isolates pure encode/decode overhead from runner speed. The
    // socket numbers ride along as absolutes for the artifact trail.
    let mut summary = String::from("{\n");
    let _ = writeln!(summary, "  \"transport_codec_retention\": {retention:.3},");
    let _ = writeln!(
        summary,
        "  \"transport_direct_boots_per_s\": {:.3},",
        direct.boots_per_s
    );
    let _ = writeln!(
        summary,
        "  \"transport_codec_boots_per_s\": {:.3},",
        codec.boots_per_s
    );
    let _ = writeln!(
        summary,
        "  \"transport_socket_boots_per_s\": {:.3},",
        socket.boots_per_s
    );
    let _ = writeln!(
        summary,
        "  \"transport_socket_p50_ms\": {:.3},",
        socket.p50_ms
    );
    let _ = writeln!(
        summary,
        "  \"transport_socket_p99_ms\": {:.3},",
        socket.p99_ms
    );
    let _ = writeln!(
        summary,
        "  \"transport_socket_wire_calls\": {},",
        socket.wire.calls
    );
    let _ = writeln!(
        summary,
        "  \"transport_socket_wire_mb\": {:.3},",
        socket.wire_mb()
    );
    let _ = writeln!(summary, "  \"transport_threads\": {workers}");
    summary.push('}');
    summary.push('\n');
    let path = output_dir().join("transport_summary.json");
    std::fs::write(&path, summary).expect("write transport summary");
    println!("[written {}]", path.display());
}

// ---------------------------------------------------------------------------
// Durable sweep (`--durable mem|sync|group|all`)
// ---------------------------------------------------------------------------

/// One durability configuration of the durable-socket axis. All three
/// run the same rotating-snapshot storm over the in-process socket
/// transport (six loopback listeners, framed TCP), so the only variable
/// is what happens between an append and its ack.
#[derive(Clone, Copy, PartialEq, Eq)]
enum DurableMode {
    /// In-memory providers, no journal: the ceiling the durable runs
    /// are measured against.
    Mem,
    /// Durable, fsync-per-ack: every acked mutation pays its own
    /// `fdatasync` under the shard/journal lock (the pre-group-commit
    /// discipline, kept measurable as the baseline).
    Sync,
    /// Durable, group commit: concurrent committers share one leader's
    /// `fdatasync` (`BFF_GROUP_COMMIT` semantics, forced on here).
    Group,
}

impl DurableMode {
    const ALL: [DurableMode; 3] = [DurableMode::Mem, DurableMode::Sync, DurableMode::Group];

    fn name(self) -> &'static str {
        match self {
            DurableMode::Mem => "mem-socket",
            DurableMode::Sync => "per-ack",
            DurableMode::Group => "group",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "mem" => Some(DurableMode::Mem),
            "sync" => Some(DurableMode::Sync),
            "group" => Some(DurableMode::Group),
            _ => None,
        }
    }
}

struct DurableOutcome {
    mode: DurableMode,
    boots: usize,
    wall_s: f64,
    boots_per_s: f64,
    p50_ms: f64,
    p99_ms: f64,
    durability: bff_blobseer::DurabilityCounters,
}

/// The rotating-snapshot storm under one durability configuration,
/// in-process socket transport throughout. Durable runs recover from
/// (and journal into) a scratch directory that is wiped before and
/// after, so every run starts cold.
fn run_durable(mode: DurableMode, workers: usize) -> DurableOutcome {
    let mut params = ThreadParams::serving(NODES as usize + 1);
    params.coarse_lanes = false;
    let fabric = ThreadFabric::new(params);
    let compute: Vec<NodeId> = (0..NODES).map(NodeId).collect();
    let cfg = bff_blobseer::BlobConfig {
        chunk_size: CHUNK,
        dedup: true,
        cluster_dedup: true,
        prefetch: true,
        transport: TransportMode::Socket,
        group_commit: mode == DurableMode::Group,
        ..Default::default()
    };
    let topo = BlobTopology::colocated(&compute, NodeId(NODES));
    let scratch = std::env::temp_dir().join(format!(
        "bff-load-durable-{}-{}",
        std::process::id(),
        mode.name()
    ));
    let _ = std::fs::remove_dir_all(&scratch);
    let cloud = if mode == DurableMode::Mem {
        Cloud::new(
            fabric.clone() as Arc<dyn Fabric>,
            compute,
            NodeId(NODES),
            cfg,
            Calibration::default(),
        )
    } else {
        std::fs::create_dir_all(&scratch).expect("durable scratch dir");
        let (store, _report) = BlobStore::durable(
            cfg,
            topo,
            fabric.clone() as Arc<dyn Fabric>,
            bff_blobseer::Placement::RoundRobin,
            &scratch,
        )
        .expect("durable deployment");
        Cloud::with_store(
            store,
            fabric.clone() as Arc<dyn Fabric>,
            compute,
            NodeId(NODES),
            Calibration::default(),
        )
    };

    let base = cloud
        .upload_image(Payload::synth(0x5EED, 0, IMG))
        .expect("upload");
    let rotation = Rotation::new(base);
    let started = Instant::now();
    let mut latencies: Vec<u64> = Vec::with_capacity(workers * BOOTS);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                let cloud = &cloud;
                let rotation = &rotation;
                scope.spawn(move || run_client(cloud, rotation, worker))
            })
            .collect();
        for h in handles {
            latencies.extend(h.join().expect("client thread"));
        }
    });
    fabric.quiesce();
    let wall_s = started.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let durability = cloud.store().durability();
    drop(cloud);
    let _ = std::fs::remove_dir_all(&scratch);
    DurableOutcome {
        mode,
        boots: latencies.len(),
        wall_s,
        boots_per_s: latencies.len() as f64 / wall_s,
        p50_ms: percentile(&latencies, 50.0),
        p99_ms: percentile(&latencies, 99.0),
        durability,
    }
}

/// `--durable <mode>` runs the storm under one durability configuration
/// (CI smoke); `--durable all` compares the three and emits
/// `durable_summary.json` for the `BENCH_9.json` gate.
fn run_durable_sweep(which: &str, workers: usize) {
    let modes: Vec<DurableMode> = if which == "all" {
        DurableMode::ALL.to_vec()
    } else {
        vec![DurableMode::parse(which)
            .unwrap_or_else(|| panic!("--durable takes mem|sync|group|all, got {which:?}"))]
    };
    println!(
        "load_sweep durable ({which}): {workers} client threads x {BOOTS} boots \
         over {NODES} nodes, in-process socket transport"
    );
    let mut outcomes = Vec::with_capacity(modes.len());
    for mode in modes {
        let out = run_durable(mode, workers);
        println!(
            "  {:<10} {:>4} boots in {:.2}s -> {:.1} boots/s \
             (p50 {:.2} ms, p99 {:.2} ms; {} fsyncs / {} acks = {:.2} acks/fsync, \
             max wait {} us)",
            out.mode.name(),
            out.boots,
            out.wall_s,
            out.boots_per_s,
            out.p50_ms,
            out.p99_ms,
            out.durability.fsyncs,
            out.durability.acks,
            out.durability.acks_per_fsync,
            out.durability.max_wait_us,
        );
        outcomes.push(out);
    }
    if which != "all" {
        return;
    }

    let mut t = Table::new(
        "durable_sweep",
        &[
            "mode",
            "boots",
            "wall_s",
            "boots_per_s",
            "p50_ms",
            "p99_ms",
            "fsyncs",
            "acks",
            "acks_per_fsync",
            "max_wait_us",
        ],
    );
    for out in &outcomes {
        t.row(&[
            &out.mode.name(),
            &out.boots,
            &f3(out.wall_s),
            &f1(out.boots_per_s),
            &f3(out.p50_ms),
            &f3(out.p99_ms),
            &out.durability.fsyncs,
            &out.durability.acks,
            &f3(out.durability.acks_per_fsync),
            &out.durability.max_wait_us,
        ]);
    }
    t.emit();

    let mem = &outcomes[0];
    let sync = &outcomes[1];
    let group = &outcomes[2];
    let retention = group.boots_per_s / mem.boots_per_s.max(1e-9);
    let vs_sync = group.boots_per_s / sync.boots_per_s.max(1e-9);
    println!(
        "\ngroup commit keeps {:.0}% of the non-durable socket throughput \
         ({:.1} vs {:.1} boots/s) and is {:.2}x the per-ack baseline \
         ({:.1} boots/s); {:.2} acks per fsync vs {:.2} per-ack",
        100.0 * retention,
        group.boots_per_s,
        mem.boots_per_s,
        vs_sync,
        sync.boots_per_s,
        group.durability.acks_per_fsync,
        sync.durability.acks_per_fsync,
    );

    // Flat summary for the CI perf gate (compared against BENCH_9.json).
    // Gated: durable_retention (group-commit durable socket vs
    // non-durable socket — both in-process, so the ratio isolates the
    // durability cost from runner speed) and acks_per_fsync (> 1.0 is
    // the batching claim itself). The rest rides along for the artifact
    // trail.
    let mut summary = String::from("{\n");
    let _ = writeln!(summary, "  \"durable_retention\": {retention:.3},");
    let _ = writeln!(
        summary,
        "  \"acks_per_fsync\": {:.3},",
        group.durability.acks_per_fsync
    );
    let _ = writeln!(
        summary,
        "  \"durable_group_boots_per_s\": {:.3},",
        group.boots_per_s
    );
    let _ = writeln!(
        summary,
        "  \"durable_sync_boots_per_s\": {:.3},",
        sync.boots_per_s
    );
    let _ = writeln!(
        summary,
        "  \"durable_mem_boots_per_s\": {:.3},",
        mem.boots_per_s
    );
    let _ = writeln!(
        summary,
        "  \"durable_group_speedup_vs_sync\": {vs_sync:.3},"
    );
    let _ = writeln!(
        summary,
        "  \"durable_group_fsyncs\": {},",
        group.durability.fsyncs
    );
    let _ = writeln!(
        summary,
        "  \"durable_group_acks\": {},",
        group.durability.acks
    );
    let _ = writeln!(
        summary,
        "  \"durable_group_max_wait_us\": {},",
        group.durability.max_wait_us
    );
    let _ = writeln!(
        summary,
        "  \"durable_sync_acks_per_fsync\": {:.3},",
        sync.durability.acks_per_fsync
    );
    let _ = writeln!(summary, "  \"durable_group_p50_ms\": {:.3},", group.p50_ms);
    let _ = writeln!(summary, "  \"durable_group_p99_ms\": {:.3},", group.p99_ms);
    let _ = writeln!(summary, "  \"durable_threads\": {workers}");
    summary.push('}');
    summary.push('\n');
    let path = output_dir().join("durable_summary.json");
    std::fs::write(&path, summary).expect("write durable summary");
    println!("[written {}]", path.display());
}

fn durable_arg() -> Option<String> {
    let mut it = std::env::args();
    while let Some(a) = it.next() {
        if a == "--durable" {
            return Some(
                it.next()
                    .expect("--durable needs a mode (mem|sync|group|all)"),
            );
        }
    }
    None
}

fn transport_arg() -> Option<String> {
    let mut it = std::env::args();
    while let Some(a) = it.next() {
        if a == "--transport" {
            return Some(
                it.next()
                    .expect("--transport needs a mode (direct|codec|socket|all)"),
            );
        }
    }
    None
}

fn main() {
    let scale = RunScale::from_args();
    let workers = client_threads(scale);
    if let Some(which) = transport_arg() {
        run_transport_sweep(&which, workers);
        return;
    }
    if let Some(which) = durable_arg() {
        run_durable_sweep(&which, workers);
        return;
    }
    println!(
        "load_sweep: {workers} client threads x {BOOTS} boots over {NODES} nodes \
         (ThreadFabric serving profile, 20x time compression)"
    );

    let mut outcomes = Vec::with_capacity(DISCIPLINES.len());
    for &d in DISCIPLINES {
        let out = run_discipline(d, workers);
        println!(
            "  {:<12} {:>4} boots in {:.2}s -> {:.1} boots/s \
             (p50 {:.2} ms, p99 {:.2} ms; contended board {}/{} cache {}/{} cluster {}/{})",
            d.label,
            out.boots,
            out.wall_s,
            out.boots_per_s,
            out.p50_ms,
            out.p99_ms,
            out.board.contended,
            out.board.acquires,
            out.cache.contended,
            out.cache.acquires,
            out.cluster.contended,
            out.cluster.acquires,
        );
        outcomes.push((d, out));
    }

    let mut t = Table::new(
        "load_sweep",
        &[
            "locking",
            "boots",
            "wall_s",
            "boots_per_s",
            "p50_ms",
            "p99_ms",
            "board_contended",
            "board_frac",
            "cluster_contended",
            "cluster_frac",
            "cache_contended",
            "cache_frac",
        ],
    );
    for (d, out) in &outcomes {
        t.row(&[
            &d.label,
            &out.boots,
            &f3(out.wall_s),
            &f1(out.boots_per_s),
            &f3(out.p50_ms),
            &f3(out.p99_ms),
            &out.board.contended,
            &f3(out.board.contended_frac()),
            &out.cluster.contended,
            &f3(out.cluster.contended_frac()),
            &out.cache.contended,
            &f3(out.cache.contended_frac()),
        ]);
    }
    t.emit();

    let naive = &outcomes[0].1;
    let lane = &outcomes[1].1;
    let board = &outcomes[2].1;
    let cache = &outcomes[3].1;
    let tuned = &outcomes[4].1;
    let boot_speedup = tuned.boots_per_s / naive.boots_per_s.max(1e-9);
    let p99_speedup = naive.p99_ms / tuned.p99_ms.max(1e-9);
    println!(
        "\ncontention fixes: {:.1} -> {:.1} boots/s ({boot_speedup:.2}x wall-clock \
         throughput); p99 boot latency {:.2} -> {:.2} ms ({p99_speedup:.2}x); \
         board {:.1}% -> {:.1}% contended, cache {:.1}% -> {:.1}%, cluster {:.1}% -> {:.1}%",
        naive.boots_per_s,
        tuned.boots_per_s,
        naive.p99_ms,
        tuned.p99_ms,
        100.0 * naive.board.contended_frac(),
        100.0 * tuned.board.contended_frac(),
        100.0 * naive.cache.contended_frac(),
        100.0 * tuned.cache.contended_frac(),
        100.0 * naive.cluster.contended_frac(),
        100.0 * tuned.cluster.contended_frac(),
    );

    // Flat summary for the CI perf gate (compared against BENCH_6.json).
    let mut summary = String::from("{\n");
    let _ = writeln!(summary, "  \"loadgen_boot_speedup\": {boot_speedup:.3},");
    let _ = writeln!(summary, "  \"loadgen_p99_speedup\": {p99_speedup:.3},");
    let _ = writeln!(
        summary,
        "  \"loadgen_lane_fix_speedup\": {:.3},",
        lane.boots_per_s / naive.boots_per_s.max(1e-9)
    );
    let _ = writeln!(
        summary,
        "  \"loadgen_board_fix_speedup\": {:.3},",
        board.boots_per_s / lane.boots_per_s.max(1e-9)
    );
    let _ = writeln!(
        summary,
        "  \"loadgen_cache_fix_speedup\": {:.3},",
        cache.boots_per_s / board.boots_per_s.max(1e-9)
    );
    let _ = writeln!(
        summary,
        "  \"loadgen_cluster_fix_speedup\": {:.3},",
        tuned.boots_per_s / cache.boots_per_s.max(1e-9)
    );
    let _ = writeln!(
        summary,
        "  \"loadgen_boots_per_s\": {:.3},",
        tuned.boots_per_s
    );
    let _ = writeln!(summary, "  \"loadgen_p50_ms\": {:.3},", tuned.p50_ms);
    let _ = writeln!(summary, "  \"loadgen_p99_ms\": {:.3},", tuned.p99_ms);
    let _ = writeln!(
        summary,
        "  \"loadgen_board_contended_frac\": {:.4},",
        tuned.board.contended_frac()
    );
    let _ = writeln!(
        summary,
        "  \"loadgen_cache_contended_frac\": {:.4},",
        tuned.cache.contended_frac()
    );
    let _ = writeln!(
        summary,
        "  \"loadgen_cluster_contended_frac\": {:.4},",
        tuned.cluster.contended_frac()
    );
    let _ = writeln!(summary, "  \"loadgen_threads\": {workers},");
    let _ = writeln!(summary, "  \"loadgen_boots\": {}", tuned.boots);
    summary.push('}');
    summary.push('\n');
    let path = output_dir().join("load_summary.json");
    std::fs::write(&path, summary).expect("write load summary");
    println!("[written {}]", path.display());
}
