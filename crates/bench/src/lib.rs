//! # bff-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (§5). Each figure has a binary printing the same
//! rows/series the paper reports, and `paper` runs everything, writing
//! CSV files under `target/paper/`.
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig4` | Fig. 4(a-d): multideployment sweep |
//! | `fig5` | Fig. 5(a-b): multisnapshotting sweep |
//! | `fig6` | Fig. 6: Bonnie++ throughput |
//! | `fig7` | Fig. 7: Bonnie++ operations/s |
//! | `fig8` | Fig. 8: Monte Carlo application |
//! | `ablations` | Design-choice sweeps from DESIGN.md §3 |
//! | `paper` | All of the above |
//!
//! Criterion microbenches (`cargo bench`) cover the hot data structures:
//! segment-tree shadowing, range sets, payload ropes, the max-min flow
//! network, chunk maps and the qcow2 mapping path.

pub mod procs;

use std::fmt::Display;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Scale selector for figure binaries: `--mini` runs the test-sized
/// configuration (seconds), default runs paper scale (minutes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunScale {
    /// Paper-scale: 2 GB image, up to 110 instances.
    Paper,
    /// Miniature (CI-sized) run exercising identical code paths.
    Mini,
}

impl RunScale {
    /// Parse from argv: `--mini` selects the miniature scale.
    pub fn from_args() -> RunScale {
        if std::env::args().any(|a| a == "--mini") {
            RunScale::Mini
        } else {
            RunScale::Paper
        }
    }

    /// The experiment scale object.
    pub fn exp_scale(self) -> bff_cloud::experiments::ExpScale {
        match self {
            RunScale::Paper => bff_cloud::experiments::ExpScale::paper(),
            RunScale::Mini => bff_cloud::experiments::ExpScale::mini(),
        }
    }

    /// Instance-count sweep matching the figure x-axes.
    pub fn sweep(self) -> Vec<usize> {
        match self {
            RunScale::Paper => vec![1, 20, 40, 60, 80, 100, 110],
            RunScale::Mini => vec![2, 4, 8],
        }
    }
}

/// Where CSV outputs go.
pub fn output_dir() -> PathBuf {
    let dir = Path::new("target").join("paper");
    fs::create_dir_all(&dir).expect("create output dir");
    dir
}

/// A simple fixed-width table printer that doubles as a CSV writer.
pub struct Table {
    name: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with column headers.
    pub fn new(name: &str, headers: &[&str]) -> Self {
        Self {
            name: name.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows
            .push(cells.iter().map(|c| format!("{c}")).collect());
    }

    /// Print to stdout and write `<name>.csv` under [`output_dir`].
    pub fn emit(&self) {
        let widths: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain([h.len()])
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        println!("\n== {} ==", self.name);
        let header: Vec<String> = self
            .headers
            .iter()
            .zip(&widths)
            .map(|(h, w)| format!("{h:>w$}"))
            .collect();
        println!("{}", header.join("  "));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            println!("{}", line.join("  "));
        }
        // CSV.
        let path = output_dir().join(format!("{}.csv", self.name));
        let mut f = fs::File::create(&path).expect("create csv");
        writeln!(f, "{}", self.headers.join(",")).expect("write csv");
        for row in &self.rows {
            writeln!(f, "{}", row.join(",")).expect("write csv");
        }
        println!("[written {}]", path.display());
        // JSON (one object per row) — the format CI uploads as artifacts.
        let path = output_dir().join(format!("{}.json", self.name));
        fs::write(&path, self.to_json()).expect("write json");
        println!("[written {}]", path.display());
    }

    /// The table as a JSON array of row objects (cells as strings).
    pub fn to_json(&self) -> String {
        let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|row| {
                let fields: Vec<String> = self
                    .headers
                    .iter()
                    .zip(row)
                    .map(|(h, c)| format!("\"{}\":\"{}\"", escape(h), escape(c)))
                    .collect();
                format!("  {{{}}}", fields.join(","))
            })
            .collect();
        format!("[\n{}\n]\n", rows.join(",\n"))
    }
}

/// Format a float with 3 decimals (display helper for tables).
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a float with 1 decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new("unit-test-table", &["a", "b"]);
        t.row(&[&1, &f3(2.5)]);
        t.emit();
        let csv = fs::read_to_string(output_dir().join("unit-test-table.csv")).unwrap();
        assert_eq!(csv, "a,b\n1,2.500\n");
        let json = fs::read_to_string(output_dir().join("unit-test-table.json")).unwrap();
        assert_eq!(json, "[\n  {\"a\":\"1\",\"b\":\"2.500\"}\n]\n");
    }

    #[test]
    fn scales_parse() {
        assert_eq!(RunScale::Paper.sweep().last(), Some(&110));
        assert!(RunScale::Mini.sweep().len() >= 2);
    }
}
