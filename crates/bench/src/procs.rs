//! Child-process management for multi-process benchmark clusters:
//! spawning `blob_server` role hosts, collecting their `<role> <addr>`
//! announcements, and — for the recovery scenarios — killing them with
//! SIGKILL and respawning them on the same data directory.

use bff_net::transport::Role;
use std::collections::HashMap;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::PathBuf;

/// Everything needed to (re)spawn one `blob_server` child. Kept as a
/// value so a recovery scenario can kill a process and later spawn an
/// identical replacement pointed at the same data directory.
#[derive(Clone)]
pub struct ServerSpec {
    /// Comma-separated role list (`--roles`).
    pub roles: String,
    /// Compute-node count (`--nodes`).
    pub nodes: u32,
    /// Service node id (`--service`).
    pub service: u32,
    /// Chunk size in bytes (`--chunk-size`).
    pub chunk_size: u64,
    /// Enable local write dedup (`--dedup`).
    pub dedup: bool,
    /// Enable the cluster dedup index (`--cluster-dedup`).
    pub cluster_dedup: bool,
    /// Enable pattern-driven prefetch (`--prefetch`).
    pub prefetch: bool,
    /// Durable data directory (`--data-dir`); `None` keeps the child
    /// purely in-memory. Each child must own its directory exclusively —
    /// two writers would truncate each other's live appends.
    pub data_dir: Option<PathBuf>,
}

impl ServerSpec {
    /// Spec hosting `roles` with all feature toggles off and the service
    /// node colocated after the compute nodes (id `nodes`).
    pub fn new(roles: &str, nodes: u32, chunk_size: u64) -> Self {
        Self {
            roles: roles.to_string(),
            nodes,
            service: nodes,
            chunk_size,
            dedup: false,
            cluster_dedup: false,
            prefetch: false,
            data_dir: None,
        }
    }

    /// Spawn `blob_server` from next to the current binary and collect
    /// its `<role> <addr>` announcements up to the `READY` line. The
    /// ports are ephemeral, so a respawned process announces *new*
    /// addresses — feed them to `SocketTransport::set_routes`.
    pub fn spawn(&self) -> (ServerProc, HashMap<Role, SocketAddr>) {
        let bin = std::env::current_exe()
            .expect("current exe")
            .parent()
            .expect("exe dir")
            .join("blob_server");
        let mut cmd = std::process::Command::new(&bin);
        cmd.args(["--roles", &self.roles])
            .args(["--nodes", &self.nodes.to_string()])
            .args(["--service", &self.service.to_string()])
            .args(["--chunk-size", &self.chunk_size.to_string()]);
        if self.dedup {
            cmd.arg("--dedup");
        }
        if self.cluster_dedup {
            cmd.arg("--cluster-dedup");
        }
        if self.prefetch {
            cmd.arg("--prefetch");
        }
        if let Some(dir) = &self.data_dir {
            cmd.arg("--data-dir").arg(dir);
        }
        let mut child = cmd
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .spawn()
            .unwrap_or_else(|e| panic!("spawn {}: {e} (build the blob_server bin)", bin.display()));
        let mut lines = BufReader::new(child.stdout.take().expect("child stdout"));
        let mut addrs = HashMap::new();
        loop {
            let mut line = String::new();
            let n = lines.read_line(&mut line).expect("read announcement");
            assert!(n > 0, "blob_server exited before READY");
            let line = line.trim();
            if line == "READY" {
                break;
            }
            let (role, addr) = line.split_once(' ').expect("`<role> <addr>` line");
            addrs.insert(
                Role::parse(role).expect("known role"),
                addr.parse().expect("socket address"),
            );
        }
        (ServerProc { child }, addrs)
    }
}

/// One `blob_server` child process hosting a slice of the server roles.
/// Dropping it closes the child's stdin — the server's shutdown signal —
/// and reaps the process.
pub struct ServerProc {
    child: std::process::Child,
}

impl ServerProc {
    /// SIGKILL the child and reap it — the crash half of a recovery
    /// scenario. No shutdown handshake runs: whatever the process had
    /// not fsynced is gone, which is exactly the point.
    pub fn kill9(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        drop(self.child.stdin.take()); // EOF tells the server to exit
        let _ = self.child.wait();
    }
}
