//! The write-pipeline benches behind the perf trajectory (`BENCH_*.json`):
//! a cold-write sweep through the commit path, comparing the sequential
//! per-chunk replica-push reference against the batched fan-out and chain
//! replication pipelines.
//!
//! The sweep models what multisnapshotting does at COMMIT time (§3.2):
//! a full set of dirty chunks published as one snapshot, every chunk
//! replicated. Sequentially, every `(chunk, replica)` pair is its own
//! transfer + provider put + disk write; batched, each provider (fan-out)
//! or chain hop receives its whole group as one transfer, one shard
//! acquisition and one disk write.

use bff_blobseer::{BlobConfig, BlobStore, BlobTopology, Client, ReplicationMode, Version};
use bff_data::Payload;
use bff_net::{Fabric, LocalFabric, NodeId};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::sync::Arc;

/// Deploy a repository configured for `mode` and hand back a client on
/// the service node (all pushes cross the network).
fn deploy(chunk_size: u64, nodes: u32, replication: usize, mode: ReplicationMode) -> Client {
    let fabric = LocalFabric::new(nodes as usize + 1);
    let compute: Vec<NodeId> = (0..nodes).map(NodeId).collect();
    let topo = BlobTopology::colocated(&compute, NodeId(nodes));
    let cfg = BlobConfig {
        chunk_size,
        replication,
        replication_mode: mode,
        // This bench measures the replication push pipeline; with dedup
        // on, every iteration after the first would commit the identical
        // plan by reference and measure nothing but the digest probe.
        dedup: false,
        ..Default::default()
    };
    let store = BlobStore::new(cfg, topo, fabric as Arc<dyn Fabric>);
    Client::new(store, NodeId(nodes))
}

/// The commit payload: every chunk of the image, as whole-chunk updates
/// (the COMMIT fast path the mirroring module uses).
fn updates(image_bytes: u64, chunk_size: u64) -> Vec<(u64, Payload)> {
    (0..image_bytes / chunk_size)
        .map(|i| (i, Payload::synth(0xC0117 + i, 0, chunk_size)))
        .collect()
}

fn bench_cold_write_sweep(c: &mut Criterion) {
    // 4 MiB image in 4 KiB chunks = 1024 chunks over 16 providers,
    // 3 replicas: 3072 replica pushes per commit.
    let (img, cs) = (4 << 20, 4 << 10);
    let plan = updates(img, cs);

    let mut group = c.benchmark_group("cold_write_sweep");
    group.throughput(Throughput::Bytes(img));
    for (name, mode) in [
        ("sequential_push", ReplicationMode::Sequential),
        ("fanout_batched", ReplicationMode::Fanout),
        ("chain_batched", ReplicationMode::Chain),
        // Wall-clock tracking only: pipelining trades messages for
        // latency, so its *win* is virtual-time commit latency on the
        // simulated fabric — measured and gated by `prefetch_sweep` /
        // BENCH_4.json, not here.
        ("chain_pipelined", ReplicationMode::ChainPipelined),
    ] {
        let client = deploy(cs, 16, 3, mode);
        group.bench_function(name, |b| {
            b.iter_batched(
                // A fresh blob and update set per iteration: cold
                // commit, nothing shared, clones outside the timing.
                || (client.create_blob(img).expect("create"), plan.clone()),
                |(blob, plan)| {
                    client
                        .write_chunks(blob, Version(0), plan)
                        .expect("write_chunks")
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_paper_scale_commit(c: &mut Criterion) {
    // The paper's geometry: committing a full 2 GB image in 256 KB
    // chunks (8192 chunks) over 32 providers, 3 replicas. Synthetic
    // payloads keep this O(1) memory; the measured cost is the push
    // plan + provider/metadata plane, exactly what batching attacks.
    let (img, cs) = (2u64 << 30, 256 << 10);
    let plan = updates(img, cs);

    let mut group = c.benchmark_group("paper_scale_2gb_commit");
    for (name, mode) in [
        ("sequential_push", ReplicationMode::Sequential),
        ("fanout_batched", ReplicationMode::Fanout),
    ] {
        let client = deploy(cs, 32, 3, mode);
        group.bench_function(name, |b| {
            b.iter_batched(
                || (client.create_blob(img).expect("create"), plan.clone()),
                |(blob, plan)| {
                    client
                        .write_chunks(blob, Version(0), plan)
                        .expect("write_chunks")
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cold_write_sweep, bench_paper_scale_commit);
criterion_main!(benches);
