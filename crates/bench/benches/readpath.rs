//! The read-pipeline benches behind the perf trajectory (`BENCH_*.json`):
//! a cold-boot read sweep through the mirror-to-provider path, comparing
//! the per-run read loop against the vectored `read_multi` pipeline, plus
//! the warm descriptor-cache re-read.
//!
//! The cold sweep models what a booting VM does right after deployment
//! (§3.1.2): many scattered reads against a snapshot none of whose chunk
//! descriptors are known locally yet. Per-run, every read descends the
//! segment tree; vectored, the whole plan costs one descent and batched
//! per-provider transfers.

use bff_blobseer::{BlobConfig, BlobId, BlobStore, BlobTopology, Client, NodeContext, Version};
use bff_data::Payload;
use bff_net::{Fabric, LocalFabric, NodeId};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::ops::Range;
use std::sync::Arc;

/// One deployed repository holding an uploaded image.
struct Repo {
    store: Arc<BlobStore>,
    blob: BlobId,
    version: Version,
}

fn deploy(image_bytes: u64, chunk_size: u64, nodes: u32) -> Repo {
    let fabric = LocalFabric::new(nodes as usize + 1);
    let compute: Vec<NodeId> = (0..nodes).map(NodeId).collect();
    let topo = BlobTopology::colocated(&compute, NodeId(nodes));
    let cfg = BlobConfig {
        chunk_size,
        ..Default::default()
    };
    let store = BlobStore::new(cfg, topo, fabric as Arc<dyn Fabric>);
    let uploader = Client::new(Arc::clone(&store), NodeId(0));
    let (blob, version) = uploader
        .upload(Payload::synth(0xB00, 0, image_bytes))
        .expect("upload");
    Repo {
        store,
        blob,
        version,
    }
}

impl Repo {
    /// A client with genuinely cold caches. `Client::new` attaches to
    /// the node's *shared* context (which stays warm across iterations),
    /// so cold-path benches must bring their own fresh one.
    fn cold_client(&self, node: NodeId) -> Client {
        let ctx = Arc::new(NodeContext::new(self.store.config()));
        Client::with_context(Arc::clone(&self.store), node, ctx)
    }
}

/// The boot-like sweep plan: every other chunk, as disjoint runs.
fn sweep_plan(image_bytes: u64, chunk_size: u64) -> Vec<Range<u64>> {
    (0..image_bytes / chunk_size)
        .step_by(2)
        .map(|i| i * chunk_size..(i + 1) * chunk_size)
        .collect()
}

fn bench_cold_boot_sweep(c: &mut Criterion) {
    // 4 MiB image in 4 KiB chunks = 1024 chunks (span 1024, depth 11);
    // the sweep reads 512 disjoint runs.
    let (img, cs) = (4 << 20, 4 << 10);
    let repo = deploy(img, cs, 16);
    let plan = sweep_plan(img, cs);
    let swept: u64 = plan.iter().map(|r| r.end - r.start).sum();

    let mut group = c.benchmark_group("cold_boot_sweep");
    group.throughput(Throughput::Bytes(swept));
    group.bench_function("per_run_reads", |b| {
        b.iter_batched(
            // A fresh client per iteration: cold node + descriptor caches.
            || repo.cold_client(NodeId(1)),
            |client| {
                for r in &plan {
                    client
                        .read(repo.blob, repo.version, r.clone())
                        .expect("read");
                }
                client
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("read_multi", |b| {
        b.iter_batched(
            || repo.cold_client(NodeId(1)),
            |client| {
                client
                    .read_multi(repo.blob, repo.version, &plan)
                    .expect("read_multi");
                client
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_paper_scale_image(c: &mut Criterion) {
    // The paper's geometry: a 2 GB image in 256 KB chunks (8192 chunks).
    // Synthetic payloads keep this O(1) memory; the cost measured is the
    // metadata plane + plan assembly, which is exactly what the vectored
    // pipeline attacks.
    let (img, cs) = (2u64 << 30, 256 << 10);
    let repo = deploy(img, cs, 32);
    let plan = sweep_plan(img, cs); // 4096 runs

    let mut group = c.benchmark_group("paper_scale_2gb");
    group.bench_function("cold_read_multi_full_sweep", |b| {
        b.iter_batched(
            || repo.cold_client(NodeId(2)),
            |client| {
                client
                    .read_multi(repo.blob, repo.version, &plan)
                    .expect("read_multi");
                client
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("warm_desc_cache_resweep", |b| {
        // One client keeps its descriptor cache across iterations: after
        // the first sweep the metadata plane is never touched again.
        let client = Client::new(Arc::clone(&repo.store), NodeId(3));
        client
            .read_multi(repo.blob, repo.version, &plan)
            .expect("warm-up sweep");
        b.iter(|| {
            client
                .read_multi(repo.blob, repo.version, &plan)
                .expect("read_multi")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_cold_boot_sweep, bench_paper_scale_image);
criterion_main!(benches);
