//! Criterion microbenchmarks for the hot data structures and algorithms:
//! segment-tree shadowing, range sets, payload ropes, chunk-map planning,
//! the max-min flow network, and the qcow2 mapping path.

use bff_blobseer::segtree::{build_new_tree, collect_leaves, NodeIo};
use bff_blobseer::{BlobError, BlobResult, ChunkDesc, ChunkId, NodeKey, TreeNode};
use bff_core::ChunkMap;
use bff_data::{Payload, RangeSet};
use bff_net::NodeId;
use bff_qcow2::{MemBacking, MemBlockDev, Qcow2Image};
use bff_sim::FlowNet;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::collections::HashMap;
use std::ops::Range;

/// In-memory NodeIo for isolated segment-tree benchmarking.
#[derive(Default)]
struct MemIo {
    nodes: HashMap<NodeKey, TreeNode>,
    next: u64,
}

impl NodeIo for MemIo {
    fn fetch(&mut self, keys: &[NodeKey]) -> BlobResult<Vec<TreeNode>> {
        keys.iter()
            .map(|k| {
                self.nodes
                    .get(k)
                    .cloned()
                    .ok_or(BlobError::MetadataMissing(*k))
            })
            .collect()
    }
    fn reserve(&mut self, n: u64) -> BlobResult<Range<u64>> {
        let s = self.next.max(1);
        self.next = s + n;
        Ok(s..s + n)
    }
    fn store(&mut self, nodes: Vec<(NodeKey, TreeNode)>) -> BlobResult<()> {
        self.nodes.extend(nodes);
        Ok(())
    }
}

fn full_tree(io: &mut MemIo, span: u64) -> NodeKey {
    let updates: bff_data::FastMap<u64, ChunkDesc> = (0..span)
        .map(|i| {
            (
                i,
                ChunkDesc {
                    id: ChunkId(i + 1),
                    replicas: [NodeId((i % 8) as u32)].into(),
                },
            )
        })
        .collect();
    build_new_tree(io, NodeKey::NULL, span, &updates).expect("build")
}

fn bench_segtree(c: &mut Criterion) {
    // The paper's geometry: 2 GB image, 256 KB chunks => span 8192.
    let span = 8192u64;
    let mut group = c.benchmark_group("segtree");
    group.bench_function("shadow_commit_60_chunks", |b| {
        let mut io = MemIo::default();
        let root = full_tree(&mut io, span);
        let updates: bff_data::FastMap<u64, ChunkDesc> = (0..60u64)
            .map(|i| {
                (
                    i * 136,
                    ChunkDesc {
                        id: ChunkId(100_000 + i),
                        replicas: [NodeId(0)].into(),
                    },
                )
            })
            .collect();
        b.iter(|| build_new_tree(&mut io, root, span, &updates).expect("commit"));
    });
    group.bench_function("descend_boot_read", |b| {
        let mut io = MemIo::default();
        let root = full_tree(&mut io, span);
        b.iter(|| collect_leaves(&mut io, root, span, &(4000..4002)).expect("read"));
    });
    group.finish();
}

fn bench_rangeset(c: &mut Criterion) {
    let mut group = c.benchmark_group("rangeset");
    group.bench_function("insert_scattered_1k", |b| {
        b.iter_batched(
            RangeSet::new,
            |mut set| {
                for i in 0..1000u64 {
                    let at = (i * 7919) % 100_000;
                    set.insert(at..at + 16);
                }
                set
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("gap_query_fragmented", |b| {
        let mut set = RangeSet::new();
        for i in 0..1000u64 {
            set.insert(i * 100..i * 100 + 50);
        }
        b.iter(|| set.gaps_within(&(0..100_000)).len());
    });
    group.finish();
}

fn bench_payload(c: &mut Criterion) {
    let mut group = c.benchmark_group("payload");
    group.throughput(Throughput::Bytes(256 << 10));
    group.bench_function("materialize_synth_chunk", |b| {
        let p = Payload::synth(7, 0, 256 << 10);
        b.iter(|| p.materialize());
    });
    group.bench_function("digest_synth_chunk", |b| {
        let p = Payload::synth(7, 0, 256 << 10);
        b.iter(|| p.digest());
    });
    group.finish();
}

fn bench_chunkmap(c: &mut Criterion) {
    let mut group = c.benchmark_group("chunkmap");
    group.bench_function("boot_plan_sequence", |b| {
        b.iter_batched(
            || ChunkMap::new(2 << 30, 256 << 10),
            |mut map| {
                for i in 0..500u64 {
                    let at = (i * 104_729) % ((2 << 30) - 65_536);
                    for r in map.plan_read(&(at..at + 4096), true) {
                        map.note_fetched(r);
                    }
                }
                map
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("serialize_roundtrip", |b| {
        let mut map = ChunkMap::new(2 << 30, 256 << 10);
        for i in 0..200u64 {
            map.note_written(i * 10_000_000..i * 10_000_000 + 8192, true);
        }
        b.iter(|| ChunkMap::deserialize(&map.serialize()).expect("roundtrip"));
    });
    group.finish();
}

fn bench_flownet(c: &mut Criterion) {
    let mut group = c.benchmark_group("flownet");
    group.bench_function("recompute_110_flows", |b| {
        let mut net = FlowNet::uniform(111, 117.5);
        for i in 0..110u32 {
            net.start_flow(
                0,
                i,
                (i + 37) % 111,
                1 << 20,
                bff_sim::CompletionId(i as u64),
            );
        }
        b.iter(|| net.recompute());
    });
    group.finish();
}

fn bench_qcow2(c: &mut Criterion) {
    let mut group = c.benchmark_group("qcow2");
    group.throughput(Throughput::Bytes(64 << 10));
    group.bench_function("cow_cluster_write", |b| {
        b.iter_batched(
            || {
                Qcow2Image::create(
                    MemBlockDev::new(),
                    64 << 20,
                    16,
                    Some(Box::new(MemBacking::new(Payload::synth(1, 0, 64 << 20)))),
                )
                .expect("create")
            },
            |mut img| {
                img.write(1 << 20, Payload::synth(2, 0, 64 << 10))
                    .expect("write");
                img
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_segtree,
    bench_rangeset,
    bench_payload,
    bench_chunkmap,
    bench_flownet,
    bench_qcow2
);
criterion_main!(benches);
