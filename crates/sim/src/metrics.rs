//! Small statistics helpers for experiment harnesses: online summaries,
//! percentiles, and formatted table rows.

/// Summary statistics over a set of samples.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    samples: Vec<f64>,
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// From an iterator of samples.
    pub fn from_samples(it: impl IntoIterator<Item = f64>) -> Self {
        let mut s = Self::new();
        for v in it {
            s.add(v);
        }
        s
    }

    /// Record a sample.
    pub fn add(&mut self, v: f64) {
        self.samples.push(v);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean (0 for empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Population standard deviation (0 for empty).
    pub fn stddev(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var =
            self.samples.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / self.samples.len() as f64;
        var.sqrt()
    }

    /// Minimum sample (0 for empty).
    pub fn min(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .min(f64::INFINITY)
            .min(if self.samples.is_empty() {
                0.0
            } else {
                f64::INFINITY
            })
    }

    /// Maximum sample (0 for empty).
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }

    /// p-th percentile (nearest-rank; p in [0, 100]).
    pub fn percentile(&self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
        let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }
}

/// Convert microseconds to seconds.
pub fn us_to_s(us: u64) -> f64 {
    us as f64 / 1e6
}

/// Convert bytes to gigabytes (decimal, as in the paper's Fig. 4d).
pub fn bytes_to_gb(b: u64) -> f64 {
    b as f64 / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::from_samples([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert_eq!(s.max(), 4.0);
        assert!((s.stddev() - 1.118033988749895).abs() < 1e-9);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let s = Summary::from_samples((1..=100).map(|i| i as f64));
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(100.0), 100.0);
        assert_eq!(s.percentile(50.0), 51.0);
    }

    #[test]
    fn empty_summary_is_zeroes() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.percentile(50.0), 0.0);
    }

    #[test]
    fn unit_conversions() {
        assert_eq!(us_to_s(2_500_000), 2.5);
        assert_eq!(bytes_to_gb(220_000_000_000), 220.0);
    }
}
