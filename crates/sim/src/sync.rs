//! Synchronization helpers for simulated processes: mailbox channels,
//! barriers and countdown latches.
//!
//! These mirror what the cloud middleware needs: broadcasting CLONE/COMMIT
//! control messages to compute nodes, synchronizing snapshot start times
//! (§5.3: "the snapshotting process is synchronized to start at the same
//! time"), and waiting for all VM instances to reach a state.

use crate::engine::{CompletionId, Env, SimState};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// An unbounded FIFO channel between simulated processes.
pub struct SimChannel<T> {
    state: Arc<SimState>,
    inner: Mutex<ChannelInner<T>>,
}

struct ChannelInner<T> {
    queue: VecDeque<T>,
    /// Completions of parked receivers, woken FIFO.
    parked: VecDeque<CompletionId>,
    closed: bool,
}

impl<T: Send> SimChannel<T> {
    /// Create a channel bound to a simulation.
    pub fn new(state: Arc<SimState>) -> Arc<Self> {
        Arc::new(Self {
            state,
            inner: Mutex::new(ChannelInner {
                queue: VecDeque::new(),
                parked: VecDeque::new(),
                closed: false,
            }),
        })
    }

    /// Send a message (never blocks).
    pub fn send(&self, msg: T) {
        let waiter = {
            let mut inner = self.inner.lock();
            assert!(!inner.closed, "send on closed channel");
            inner.queue.push_back(msg);
            inner.parked.pop_front()
        };
        if let Some(cid) = waiter {
            self.state.complete(cid);
        }
    }

    /// Close the channel; parked and future receivers get `None` once the
    /// queue drains.
    pub fn close(&self) {
        let waiters: Vec<CompletionId> = {
            let mut inner = self.inner.lock();
            inner.closed = true;
            inner.parked.drain(..).collect()
        };
        for cid in waiters {
            self.state.complete(cid);
        }
    }

    /// Receive the next message, blocking the calling process until one is
    /// available. Returns `None` if the channel is closed and drained.
    pub fn recv(&self, env: &Env) -> Option<T> {
        loop {
            let cid = {
                let mut inner = self.inner.lock();
                if let Some(m) = inner.queue.pop_front() {
                    return Some(m);
                }
                if inner.closed {
                    return None;
                }
                let cid = self.state.new_completion();
                inner.parked.push_back(cid);
                cid
            };
            env.wait(cid);
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<T> {
        self.inner.lock().queue.pop_front()
    }
}

/// A reusable barrier for `n` simulated processes.
pub struct SimBarrier {
    state: Arc<SimState>,
    n: usize,
    inner: Mutex<BarrierInner>,
}

struct BarrierInner {
    arrived: usize,
    gate: CompletionId,
}

impl SimBarrier {
    /// Barrier for `n` participants.
    pub fn new(state: Arc<SimState>, n: usize) -> Arc<Self> {
        assert!(n > 0);
        let gate = state.new_completion();
        Arc::new(Self {
            state,
            n,
            inner: Mutex::new(BarrierInner { arrived: 0, gate }),
        })
    }

    /// Block until all `n` participants arrive. The last arrival releases
    /// everyone and resets the barrier for reuse.
    pub fn wait(&self, env: &Env) {
        let (gate, release) = {
            let mut inner = self.inner.lock();
            inner.arrived += 1;
            let gate = inner.gate;
            if inner.arrived == self.n {
                inner.arrived = 0;
                inner.gate = self.state.new_completion();
                (gate, true)
            } else {
                (gate, false)
            }
        };
        if release {
            self.state.complete(gate);
        } else {
            env.wait(gate);
        }
    }
}

/// A countdown latch: `n` `count_down()` calls release all waiters.
pub struct SimLatch {
    state: Arc<SimState>,
    inner: Mutex<LatchInner>,
}

struct LatchInner {
    remaining: usize,
    gate: CompletionId,
}

impl SimLatch {
    /// Latch requiring `n` countdowns.
    pub fn new(state: Arc<SimState>, n: usize) -> Arc<Self> {
        let gate = state.new_completion();
        if n == 0 {
            state.complete(gate);
        }
        Arc::new(Self {
            state,
            inner: Mutex::new(LatchInner { remaining: n, gate }),
        })
    }

    /// Record one completion; the final call opens the gate.
    pub fn count_down(&self) {
        let gate = {
            let mut inner = self.inner.lock();
            assert!(inner.remaining > 0, "latch counted down too many times");
            inner.remaining -= 1;
            if inner.remaining == 0 {
                Some(inner.gate)
            } else {
                None
            }
        };
        if let Some(g) = gate {
            self.state.complete(g);
        }
    }

    /// Block until the latch opens.
    pub fn wait(&self, env: &Env) {
        let gate = self.inner.lock().gate;
        env.wait(gate);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulation;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn channel_delivers_in_order() {
        let sim = Simulation::bare();
        let ch = SimChannel::new(Arc::clone(sim.state()));
        let got = Arc::new(Mutex::new(Vec::new()));
        let (ch2, got2) = (Arc::clone(&ch), Arc::clone(&got));
        sim.spawn("rx", move |env| {
            while let Some(v) = ch2.recv(&env) {
                got2.lock().push((env.now_us(), v));
            }
        });
        let ch3 = Arc::clone(&ch);
        sim.spawn("tx", move |env| {
            ch3.send(1);
            env.sleep_us(10);
            ch3.send(2);
            env.sleep_us(10);
            ch3.close();
        });
        sim.run();
        assert_eq!(*got.lock(), vec![(0, 1), (10, 2)]);
    }

    #[test]
    fn channel_blocks_until_message() {
        let sim = Simulation::bare();
        let ch = SimChannel::new(Arc::clone(sim.state()));
        let t = Arc::new(AtomicU64::new(0));
        let (ch2, t2) = (Arc::clone(&ch), Arc::clone(&t));
        sim.spawn("rx", move |env| {
            assert_eq!(ch2.recv(&env), Some(42));
            t2.store(env.now_us(), Ordering::Relaxed);
        });
        let ch3 = Arc::clone(&ch);
        sim.spawn("tx", move |env| {
            env.sleep_us(500);
            ch3.send(42);
            ch3.close();
        });
        sim.run();
        assert_eq!(t.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn barrier_releases_all_at_last_arrival() {
        let sim = Simulation::bare();
        let bar = SimBarrier::new(Arc::clone(sim.state()), 3);
        let max_t = Arc::new(AtomicU64::new(0));
        let min_t = Arc::new(AtomicU64::new(u64::MAX));
        for i in 0..3u64 {
            let (bar, max_t, min_t) = (Arc::clone(&bar), Arc::clone(&max_t), Arc::clone(&min_t));
            sim.spawn(format!("p{i}"), move |env| {
                env.sleep_us(i * 100);
                bar.wait(&env);
                max_t.fetch_max(env.now_us(), Ordering::Relaxed);
                min_t.fetch_min(env.now_us(), Ordering::Relaxed);
            });
        }
        sim.run();
        assert_eq!(max_t.load(Ordering::Relaxed), 200);
        assert_eq!(min_t.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn barrier_is_reusable() {
        let sim = Simulation::bare();
        let bar = SimBarrier::new(Arc::clone(sim.state()), 2);
        let rounds = Arc::new(AtomicUsize::new(0));
        for i in 0..2u64 {
            let (bar, rounds) = (Arc::clone(&bar), Arc::clone(&rounds));
            sim.spawn(format!("p{i}"), move |env| {
                for _ in 0..3 {
                    env.sleep_us(10 * (i + 1));
                    bar.wait(&env);
                    rounds.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        sim.run();
        assert_eq!(rounds.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn latch_opens_after_n_countdowns() {
        let sim = Simulation::bare();
        let latch = SimLatch::new(Arc::clone(sim.state()), 2);
        let t = Arc::new(AtomicU64::new(0));
        let (l2, t2) = (Arc::clone(&latch), Arc::clone(&t));
        sim.spawn("waiter", move |env| {
            l2.wait(&env);
            t2.store(env.now_us(), Ordering::Relaxed);
        });
        for i in 0..2u64 {
            let latch = Arc::clone(&latch);
            sim.spawn(format!("c{i}"), move |env| {
                env.sleep_us((i + 1) * 50);
                latch.count_down();
            });
        }
        sim.run();
        assert_eq!(t.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn zero_latch_is_open() {
        let sim = Simulation::bare();
        let latch = SimLatch::new(Arc::clone(sim.state()), 0);
        let ok = Arc::new(AtomicUsize::new(0));
        let ok2 = Arc::clone(&ok);
        sim.spawn("w", move |env| {
            latch.wait(&env);
            ok2.fetch_add(1, Ordering::Relaxed);
        });
        sim.run();
        assert_eq!(ok.load(Ordering::Relaxed), 1);
    }
}
