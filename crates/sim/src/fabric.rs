//! `SimFabric`: the [`Fabric`] implementation that charges virtual time.
//!
//! A [`SimCluster`] bundles a [`Simulation`] with a flow network and disk
//! bank configured from [`ClusterParams`] (defaults = the paper's
//! Grid'5000 Nancy testbed, §5.1). Storage-stack code holds an
//! `Arc<dyn Fabric>`; when it runs inside a simulated process, every
//! transfer becomes a flow contending on NICs, every disk access queues on
//! the node's FIFO disk, and every RPC pays round-trip latency. When the
//! same code runs *outside* a simulated process (experiment setup, e.g.
//! pre-loading the image repository before time zero), operations are
//! accounted but cost nothing — mirroring the paper's experiments, which
//! start with the initial image already stored.

use crate::disk::{DiskBank, DiskParams, WriteMode};
use crate::engine::{Env, SimState, Simulation};
use crate::flownet::FlowNet;
use bff_net::{Fabric, NetError, NodeId, TrafficStats, Transfer};
use parking_lot::RwLock;
use std::sync::Arc;

/// Cluster-wide model parameters.
///
/// Defaults reproduce the paper's testbed measurements (§5.1): Gigabit
/// Ethernet at 117.5 MB/s with ~0.1 ms latency, 55 MB/s local disks.
#[derive(Debug, Clone, Copy)]
pub struct ClusterParams {
    /// Number of machines (compute nodes plus any dedicated servers).
    pub nodes: usize,
    /// Per-NIC bandwidth, bytes/us (== MB/s). Paper: 117.5.
    pub nic_bw: f64,
    /// One-way link latency in us. Paper: ~100 (0.1 ms).
    pub link_latency_us: u64,
    /// Protocol overhead added to every bulk transfer, bytes. This is the
    /// "extra networking information encapsulated with each request" that
    /// makes many small reads expensive (§3.3).
    pub msg_overhead_bytes: u64,
    /// Extra fixed cost of a control-plane RPC beyond two link latencies,
    /// us (marshalling, handler dispatch).
    pub rpc_overhead_us: u64,
    /// Disk and page-cache parameters (identical on every node).
    pub disk: DiskParams,
}

impl Default for ClusterParams {
    fn default() -> Self {
        Self {
            nodes: 1,
            nic_bw: 117.5,
            link_latency_us: 100,
            msg_overhead_bytes: 512,
            rpc_overhead_us: 150,
            disk: DiskParams::default(),
        }
    }
}

impl ClusterParams {
    /// The paper's testbed with `nodes` machines.
    pub fn grid5000(nodes: usize) -> Self {
        Self {
            nodes,
            ..Self::default()
        }
    }
}

/// A simulation plus its fabric, ready to host storage stacks.
pub struct SimCluster {
    sim: Simulation,
    fabric: Arc<SimFabric>,
}

impl SimCluster {
    /// Build a cluster from parameters.
    pub fn new(params: ClusterParams) -> Self {
        let flownet = FlowNet::uniform(params.nodes, params.nic_bw);
        let disks = DiskBank::with_params(params.nodes, params.disk);
        let sim = Simulation::with_resources(flownet, disks);
        let fabric = Arc::new(SimFabric {
            state: Arc::clone(sim.state()),
            params,
            stats: TrafficStats::new(params.nodes),
            down: RwLock::new(vec![false; params.nodes]),
        });
        Self { sim, fabric }
    }

    /// The underlying simulation (spawn processes, run).
    pub fn sim(&self) -> &Simulation {
        &self.sim
    }

    /// The fabric to hand to storage components.
    pub fn fabric(&self) -> Arc<SimFabric> {
        Arc::clone(&self.fabric)
    }

    /// Override a single node's NIC bandwidth (e.g. the NFS server in the
    /// prepropagation baseline).
    pub fn set_node_bw(&self, node: NodeId, egress: f64, ingress: f64) {
        self.sim
            .state()
            .flownet
            .lock()
            .set_node_bw(node.index(), egress, ingress);
    }

    /// Run the simulation to completion; returns the virtual end time, us.
    pub fn run(&self) -> u64 {
        self.sim.run().end_time_us
    }
}

/// Fabric implementation backed by a [`Simulation`].
pub struct SimFabric {
    state: Arc<SimState>,
    params: ClusterParams,
    stats: TrafficStats,
    down: RwLock<Vec<bool>>,
}

impl SimFabric {
    fn check(&self, n: NodeId) -> Result<(), NetError> {
        if self.is_down(n) {
            Err(NetError::NodeDown(n))
        } else {
            Ok(())
        }
    }

    /// Mark a node failed (fail-stop).
    pub fn fail_node(&self, node: NodeId) {
        self.down.write()[node.index()] = true;
    }

    /// Recover a failed node.
    pub fn recover_node(&self, node: NodeId) {
        self.down.write()[node.index()] = false;
    }

    /// The cluster parameters this fabric was built with.
    pub fn params(&self) -> &ClusterParams {
        &self.params
    }

    /// Whether the calling thread is a simulated process (costs apply).
    fn charging(&self) -> Option<Env> {
        if Env::in_simulation() {
            Some(Env::current())
        } else {
            None
        }
    }

    fn start_flows(&self, env: &Env, xfers: &[Transfer]) -> Vec<crate::engine::CompletionId> {
        let now = self.state.now_us();
        let mut cids = Vec::with_capacity(xfers.len());
        {
            let mut net = self.state.flownet.lock();
            for x in xfers {
                if x.src == x.dst {
                    continue;
                }
                let cid = self.state.new_completion();
                net.start_flow(
                    now,
                    x.src.0,
                    x.dst.0,
                    x.bytes + self.params.msg_overhead_bytes,
                    cid,
                );
                cids.push(cid);
            }
        }
        let _ = env;
        self.state.flows_changed();
        cids
    }
}

impl Fabric for SimFabric {
    fn now_us(&self) -> u64 {
        self.state.now_us()
    }

    fn transfer(&self, src: NodeId, dst: NodeId, bytes: u64) -> Result<(), NetError> {
        self.check(src)?;
        self.check(dst)?;
        if src != dst {
            self.stats.record_transfer(src, dst, bytes);
        }
        let Some(env) = self.charging() else {
            return Ok(());
        };
        if src == dst {
            return Ok(());
        }
        env.sleep_us(self.params.link_latency_us);
        let cids = self.start_flows(&env, &[Transfer { src, dst, bytes }]);
        env.wait_all(&cids);
        self.check(src)?;
        self.check(dst)
    }

    fn transfer_all(&self, xfers: &[Transfer]) -> Result<(), NetError> {
        for x in xfers {
            self.check(x.src)?;
            self.check(x.dst)?;
            if x.src != x.dst {
                self.stats.record_transfer(x.src, x.dst, x.bytes);
            }
        }
        let Some(env) = self.charging() else {
            return Ok(());
        };
        env.sleep_us(self.params.link_latency_us);
        let cids = self.start_flows(&env, xfers);
        env.wait_all(&cids);
        for x in xfers {
            self.check(x.src)?;
            self.check(x.dst)?;
        }
        Ok(())
    }

    fn rpc(
        &self,
        src: NodeId,
        dst: NodeId,
        req_bytes: u64,
        resp_bytes: u64,
    ) -> Result<(), NetError> {
        self.check(src)?;
        self.check(dst)?;
        if src != dst {
            self.stats.record_rpc(src, dst, req_bytes, resp_bytes);
        }
        let Some(env) = self.charging() else {
            return Ok(());
        };
        if src == dst {
            return Ok(());
        }
        // Control messages are small; model them as pure latency plus a
        // serialization term at NIC speed, without occupying the flow
        // network (they ride on established connections).
        let ser = ((req_bytes + resp_bytes) as f64 / self.params.nic_bw).ceil() as u64;
        env.sleep_us(2 * self.params.link_latency_us + self.params.rpc_overhead_us + ser);
        self.check(src)?;
        self.check(dst)
    }

    fn disk_read(&self, node: NodeId, bytes: u64) -> Result<(), NetError> {
        self.check(node)?;
        self.stats.record_disk_read(node, bytes);
        let Some(env) = self.charging() else {
            return Ok(());
        };
        let done = {
            let mut disks = self.state.disks.lock();
            disks.read(node.index(), self.state.now_us(), bytes)
        };
        let cid = self.state.new_completion();
        self.state.complete_at(cid, done);
        env.wait(cid);
        self.check(node)
    }

    fn disk_write(&self, node: NodeId, bytes: u64) -> Result<(), NetError> {
        self.check(node)?;
        self.stats.record_disk_write(node, bytes);
        let Some(env) = self.charging() else {
            return Ok(());
        };
        let done = {
            let mut disks = self.state.disks.lock();
            disks.write(
                node.index(),
                self.state.now_us(),
                bytes,
                WriteMode::WriteThrough,
            )
        };
        let cid = self.state.new_completion();
        self.state.complete_at(cid, done);
        env.wait(cid);
        self.check(node)
    }

    fn disk_write_cached(&self, node: NodeId, bytes: u64) -> Result<(), NetError> {
        self.check(node)?;
        self.stats.record_disk_write(node, bytes);
        let Some(env) = self.charging() else {
            return Ok(());
        };
        let done = {
            let mut disks = self.state.disks.lock();
            disks.write(
                node.index(),
                self.state.now_us(),
                bytes,
                WriteMode::WriteBack,
            )
        };
        let cid = self.state.new_completion();
        self.state.complete_at(cid, done);
        env.wait(cid);
        self.check(node)
    }

    fn disk_sync(&self, node: NodeId) -> Result<(), NetError> {
        self.check(node)?;
        let Some(env) = self.charging() else {
            return Ok(());
        };
        let done = {
            let mut disks = self.state.disks.lock();
            disks.sync(node.index(), self.state.now_us())
        };
        let cid = self.state.new_completion();
        self.state.complete_at(cid, done);
        env.wait(cid);
        self.check(node)
    }

    fn compute(&self, _node: NodeId, micros: u64) {
        if let Some(env) = self.charging() {
            env.sleep_us(micros);
        }
    }

    fn par_join(&self, mut tasks: Vec<Box<dyn FnOnce() + Send + 'static>>) {
        // A single task needs no concurrency; run it inline on the calling
        // process (saves a thread spawn per single-chunk fetch).
        if tasks.len() == 1 {
            (tasks.pop().expect("len checked"))();
            return;
        }
        let Some(env) = self.charging() else {
            for t in tasks {
                t();
            }
            return;
        };
        let pids: Vec<_> = tasks
            .into_iter()
            .enumerate()
            .map(|(i, t)| env.spawn(format!("par{i}"), move |_e| t()))
            .collect();
        env.join_all(&pids);
    }

    fn spawn_detached(&self, task: Box<dyn FnOnce() + Send + 'static>) {
        let Some(env) = self.charging() else {
            task();
            return;
        };
        // A real concurrent process: its transfers and disk accesses
        // contend on the modelled resources while the spawner's own
        // timeline continues. The simulation drains it before finishing.
        env.spawn("detached", move |_e| task());
    }

    fn is_down(&self, node: NodeId) -> bool {
        self.down.read().get(node.index()).copied().unwrap_or(false)
    }

    fn stats(&self) -> &TrafficStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn cluster(nodes: usize) -> SimCluster {
        SimCluster::new(ClusterParams {
            nodes,
            nic_bw: 100.0,
            link_latency_us: 100,
            msg_overhead_bytes: 0,
            rpc_overhead_us: 0,
            disk: DiskParams {
                bandwidth: 50.0,
                access_us: 0,
                mem_bandwidth: 1000.0,
                dirty_limit: 1 << 30,
            },
        })
    }

    #[test]
    fn transfer_takes_latency_plus_bandwidth_time() {
        let c = cluster(2);
        let f = c.fabric();
        let t = Arc::new(AtomicU64::new(0));
        let t2 = Arc::clone(&t);
        c.sim().spawn("x", move |env| {
            f.transfer(NodeId(0), NodeId(1), 100_000).unwrap();
            t2.store(env.now_us(), Ordering::Relaxed);
        });
        c.run();
        // 100us latency + 100_000B / 100 B/us = 1000us.
        assert_eq!(t.load(Ordering::Relaxed), 1100);
    }

    #[test]
    fn concurrent_transfers_to_one_node_share_ingress() {
        let c = cluster(3);
        let done = Arc::new(AtomicU64::new(0));
        for src in [0u32, 1] {
            let f = c.fabric();
            let done = Arc::clone(&done);
            c.sim().spawn(format!("s{src}"), move |env| {
                f.transfer(NodeId(src), NodeId(2), 100_000).unwrap();
                done.fetch_max(env.now_us(), Ordering::Relaxed);
            });
        }
        c.run();
        // Two 100KB flows into one 100 B/us NIC: 2000us + latency.
        assert_eq!(done.load(Ordering::Relaxed), 2100);
    }

    #[test]
    fn disk_reads_queue_fifo() {
        let c = cluster(1);
        let done = Arc::new(AtomicU64::new(0));
        for i in 0..2 {
            let f = c.fabric();
            let done = Arc::clone(&done);
            c.sim().spawn(format!("r{i}"), move |env| {
                f.disk_read(NodeId(0), 50_000).unwrap();
                done.fetch_max(env.now_us(), Ordering::Relaxed);
            });
        }
        c.run();
        // Two 50KB reads at 50 B/us, FIFO: second finishes at 2000us.
        assert_eq!(done.load(Ordering::Relaxed), 2000);
    }

    #[test]
    fn operations_outside_simulation_are_free_but_accounted() {
        let c = cluster(2);
        let f = c.fabric();
        f.transfer(NodeId(0), NodeId(1), 12345).unwrap();
        assert_eq!(f.stats().total_network_bytes(), 12345);
        assert_eq!(f.now_us(), 0);
    }

    #[test]
    fn par_join_runs_tasks_concurrently_in_sim() {
        let c = cluster(4);
        let f = c.fabric();
        let end = Arc::new(AtomicU64::new(0));
        let end2 = Arc::clone(&end);
        let f2 = Arc::clone(&f);
        c.sim().spawn("parent", move |env| {
            let mut tasks: Vec<Box<dyn FnOnce() + Send + 'static>> = Vec::new();
            for src in 1..4u32 {
                let f = Arc::clone(&f2);
                tasks.push(Box::new(move || {
                    f.transfer(NodeId(src), NodeId(0), 100_000).unwrap();
                }));
            }
            f2.par_join(tasks);
            end2.store(env.now_us(), Ordering::Relaxed);
        });
        c.run();
        // Three 100KB flows share node 0's ingress (100 B/us): 3000us + latency.
        assert_eq!(end.load(Ordering::Relaxed), 3100);
    }

    #[test]
    fn failed_node_transfer_errors() {
        let c = cluster(2);
        let f = c.fabric();
        f.fail_node(NodeId(1));
        let f2 = Arc::clone(&f);
        let errs = Arc::new(AtomicU64::new(0));
        let errs2 = Arc::clone(&errs);
        c.sim().spawn("x", move |_env| {
            if f2.transfer(NodeId(0), NodeId(1), 100).is_err() {
                errs2.fetch_add(1, Ordering::Relaxed);
            }
        });
        c.run();
        assert_eq!(errs.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn cached_writes_absorb_then_throttle() {
        let c = SimCluster::new(ClusterParams {
            nodes: 1,
            nic_bw: 100.0,
            link_latency_us: 0,
            msg_overhead_bytes: 0,
            rpc_overhead_us: 0,
            disk: DiskParams {
                bandwidth: 50.0,
                access_us: 0,
                mem_bandwidth: 1000.0,
                dirty_limit: 100_000,
            },
        });
        let f = c.fabric();
        let t = Arc::new(AtomicU64::new(0));
        let t2 = Arc::clone(&t);
        c.sim().spawn("w", move |env| {
            // First write fills the cache at memory speed.
            f.disk_write_cached(NodeId(0), 100_000).unwrap();
            assert_eq!(env.now_us(), 100);
            // Sync barrier drains at disk speed.
            f.disk_sync(NodeId(0)).unwrap();
            t2.store(env.now_us(), Ordering::Relaxed);
        });
        c.run();
        // 100us absorb + ~100_000/50 drain (minus the 100us already drained).
        let end = t.load(Ordering::Relaxed);
        assert!((2000..=2200).contains(&end), "end={end}");
    }
}
