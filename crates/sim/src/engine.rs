//! The discrete-event engine: virtual clock, event queue, and coroutine
//! processes.
//!
//! The engine uses the *conductor* model: every simulated process is an OS
//! thread, but exactly one thread (either the scheduler or a single
//! process) runs at any moment. The scheduler pops the next event off a
//! `(time, sequence)`-ordered queue, hands the baton to the woken process,
//! and the process runs until it blocks again (sleep, wait on a
//! completion) or finishes. Because execution is serialized and the queue
//! order is total, simulations are fully deterministic: the same program
//! produces the same event trace, timings and metrics on every run.
//!
//! Blocking primitives are built on [`CompletionId`]s — one-shot events
//! that resources (flows, disks, channels, other processes) fire when an
//! operation finishes.

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::disk::DiskBank;
use crate::flownet::FlowNet;

/// Virtual time in microseconds since simulation start.
pub type SimTime = u64;

/// Identifier of a simulated process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcId(pub u32);

/// A one-shot event that can be waited on by any number of processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CompletionId(pub u64);

#[derive(Debug)]
pub(crate) enum EventKind {
    /// Resume a process.
    Wake(ProcId),
    /// Fire a completion scheduled in advance (disk ops, timers).
    Complete(CompletionId),
    /// Re-examine the flow network; stale if the generation moved on.
    FlowTick(u64),
}

struct Event {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

enum Resume {
    Go,
    Cancel,
}

enum YieldMsg {
    Blocked(ProcId, BlockReason),
    Done(ProcId),
    Panicked(ProcId, String),
}

enum BlockReason {
    Sleep(SimTime),
    Wait(CompletionId),
}

struct Completion {
    done: bool,
    waiters: Vec<ProcId>,
}

struct ProcSlot {
    name: String,
    resume_tx: Sender<Resume>,
    handle: Option<JoinHandle<()>>,
    done: bool,
    done_completion: CompletionId,
}

/// Panic payload used to unwind cancelled processes during teardown.
struct CancelToken;

/// Shared state of a running simulation.
pub struct SimState {
    clock: AtomicU64,
    seq: AtomicU64,
    queue: Mutex<BinaryHeap<Reverse<Event>>>,
    completions: Mutex<Vec<Completion>>,
    procs: Mutex<Vec<ProcSlot>>,
    yield_tx: Sender<YieldMsg>,
    /// Network flow state (shared with `SimFabric`).
    pub(crate) flownet: Mutex<FlowNet>,
    /// Disk bank (shared with `SimFabric`).
    pub(crate) disks: Mutex<DiskBank>,
}

impl SimState {
    /// Current virtual time.
    pub fn now_us(&self) -> SimTime {
        self.clock.load(Ordering::Relaxed)
    }

    fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Push an event at absolute time `time` (must be >= now).
    pub(crate) fn push_event_at(&self, time: SimTime, kind: EventKind) {
        debug_assert!(time >= self.now_us(), "event scheduled in the past");
        let ev = Event {
            time,
            seq: self.next_seq(),
            kind,
        };
        self.queue.lock().push(Reverse(ev));
    }

    /// Allocate a fresh completion.
    pub fn new_completion(&self) -> CompletionId {
        let mut cs = self.completions.lock();
        let id = CompletionId(cs.len() as u64);
        cs.push(Completion {
            done: false,
            waiters: Vec::new(),
        });
        id
    }

    /// Fire a completion now: wake all current waiters and satisfy all
    /// future ones. Idempotent.
    pub fn complete(&self, cid: CompletionId) {
        let waiters = {
            let mut cs = self.completions.lock();
            let c = &mut cs[cid.0 as usize];
            if c.done {
                return;
            }
            c.done = true;
            std::mem::take(&mut c.waiters)
        };
        let now = self.now_us();
        for pid in waiters {
            self.push_event_at(now, EventKind::Wake(pid));
        }
    }

    /// Schedule a completion to fire at absolute time `time`.
    pub fn complete_at(&self, cid: CompletionId, time: SimTime) {
        self.push_event_at(time.max(self.now_us()), EventKind::Complete(cid));
    }

    /// True if already fired. Otherwise registers `pid` as a waiter.
    fn check_or_register(&self, cid: CompletionId, pid: ProcId) -> bool {
        let mut cs = self.completions.lock();
        let c = &mut cs[cid.0 as usize];
        if c.done {
            true
        } else {
            c.waiters.push(pid);
            false
        }
    }

    /// Whether a completion has fired (non-blocking poll).
    pub fn is_complete(&self, cid: CompletionId) -> bool {
        self.completions.lock()[cid.0 as usize].done
    }

    /// Called by the flow network when its membership changed: advance
    /// flows to `now`, fire finished transfers, recompute rates and
    /// schedule the next tick.
    pub(crate) fn flows_changed(self: &Arc<Self>) {
        let now = self.now_us();
        let (finished, next) = {
            let mut fn_ = self.flownet.lock();
            let finished = fn_.advance(now);
            fn_.recompute();
            let next = fn_.next_event(now);
            (finished, next)
        };
        for cid in finished {
            self.complete(cid);
        }
        if let Some((time, gen)) = next {
            self.push_event_at(time, EventKind::FlowTick(gen));
        }
    }

    fn block_current(self: &Arc<Self>, env: &Env, reason: BlockReason) {
        // Notify the scheduler, then wait for the baton to come back on
        // this process's private resume channel.
        self.yield_tx
            .send(YieldMsg::Blocked(env.pid, reason))
            .expect("scheduler gone");
        match env.resume_rx.recv() {
            Ok(Resume::Go) => {}
            Ok(Resume::Cancel) | Err(_) => panic::panic_any(CancelToken),
        }
    }
}

/// Handle a process uses to interact with the simulation.
#[derive(Clone)]
pub struct Env {
    /// This process's id.
    pub pid: ProcId,
    state: Arc<SimState>,
    resume_rx: Receiver<Resume>,
}

thread_local! {
    static CURRENT_ENV: std::cell::RefCell<Option<Env>> = const { std::cell::RefCell::new(None) };
}

impl Env {
    /// The environment of the calling simulated process. Panics if the
    /// caller is not a simulated process thread.
    pub fn current() -> Env {
        CURRENT_ENV.with(|c| {
            c.borrow()
                .clone()
                .expect("Env::current() called outside a simulated process")
        })
    }

    /// Whether the calling thread is a simulated process.
    pub fn in_simulation() -> bool {
        CURRENT_ENV.with(|c| c.borrow().is_some())
    }

    /// Shared simulation state.
    pub fn state(&self) -> &Arc<SimState> {
        &self.state
    }

    /// Current virtual time in microseconds.
    pub fn now_us(&self) -> SimTime {
        self.state.now_us()
    }

    /// Suspend for `micros` of virtual time.
    pub fn sleep_us(&self, micros: u64) {
        if micros == 0 {
            return;
        }
        let until = self.now_us() + micros;
        self.state.block_current(self, BlockReason::Sleep(until));
    }

    /// Block until `cid` fires (returns immediately if it already has).
    pub fn wait(&self, cid: CompletionId) {
        if self.state.check_or_register(cid, self.pid) {
            return;
        }
        self.state.block_current(self, BlockReason::Wait(cid));
    }

    /// Block until all of `cids` have fired.
    pub fn wait_all(&self, cids: &[CompletionId]) {
        for &cid in cids {
            self.wait(cid);
        }
    }

    /// Spawn a child process that starts at the current virtual time.
    pub fn spawn(&self, name: impl Into<String>, f: impl FnOnce(Env) + Send + 'static) -> ProcId {
        spawn_process(&self.state, name.into(), f)
    }

    /// Block until process `pid` finishes.
    pub fn join(&self, pid: ProcId) {
        let cid = {
            let procs = self.state.procs.lock();
            procs[pid.0 as usize].done_completion
        };
        self.wait(cid);
    }

    /// Join every process in `pids`.
    pub fn join_all(&self, pids: &[ProcId]) {
        for &pid in pids {
            self.join(pid);
        }
    }
}

fn spawn_process(
    state: &Arc<SimState>,
    name: String,
    f: impl FnOnce(Env) + Send + 'static,
) -> ProcId {
    let (resume_tx, resume_rx) = bounded::<Resume>(1);
    let done_completion = state.new_completion();
    let pid = {
        let mut procs = state.procs.lock();
        let pid = ProcId(procs.len() as u32);
        procs.push(ProcSlot {
            name: name.clone(),
            resume_tx,
            handle: None,
            done: false,
            done_completion,
        });
        pid
    };
    let env = Env {
        pid,
        state: Arc::clone(state),
        resume_rx,
    };
    let thread_state = Arc::clone(state);
    let handle = std::thread::Builder::new()
        .name(format!("sim-{name}"))
        .stack_size(512 << 10)
        .spawn(move || {
            // Wait for the first baton handoff before running.
            match env.resume_rx.recv() {
                Ok(Resume::Go) => {}
                Ok(Resume::Cancel) | Err(_) => return,
            }
            CURRENT_ENV.with(|c| *c.borrow_mut() = Some(env.clone()));
            let result = panic::catch_unwind(AssertUnwindSafe(|| f(env.clone())));
            CURRENT_ENV.with(|c| *c.borrow_mut() = None);
            match result {
                Ok(()) => {
                    let _ = thread_state.yield_tx.send(YieldMsg::Done(pid));
                }
                Err(payload) => {
                    if payload.downcast_ref::<CancelToken>().is_some() {
                        // Teardown: exit silently; nobody is listening.
                        return;
                    }
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "<non-string panic>".to_string());
                    let _ = thread_state.yield_tx.send(YieldMsg::Panicked(pid, msg));
                }
            }
        })
        .expect("failed to spawn simulation process thread");
    state.procs.lock()[pid.0 as usize].handle = Some(handle);
    // First wake at the current time.
    state.push_event_at(state.now_us(), EventKind::Wake(pid));
    pid
}

/// Outcome of running a simulation to completion.
#[derive(Debug)]
pub struct SimReport {
    /// Virtual time at which the last event was processed.
    pub end_time_us: SimTime,
    /// Total number of events processed.
    pub events: u64,
}

/// A discrete-event simulation.
///
/// Construct with a [`crate::fabric::ClusterParams`]-derived builder (see
/// [`crate::fabric::SimCluster`]) or directly for engine-level tests.
pub struct Simulation {
    state: Arc<SimState>,
    yield_rx: Receiver<YieldMsg>,
}

impl Simulation {
    /// Create an empty simulation with the given network/disk resources.
    pub(crate) fn with_resources(flownet: FlowNet, disks: DiskBank) -> Self {
        let (yield_tx, yield_rx) = unbounded();
        let state = Arc::new(SimState {
            clock: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            queue: Mutex::new(BinaryHeap::new()),
            completions: Mutex::new(Vec::new()),
            procs: Mutex::new(Vec::new()),
            yield_tx,
            flownet: Mutex::new(flownet),
            disks: Mutex::new(disks),
        });
        Self { state, yield_rx }
    }

    /// Engine-only simulation (no network/disk modelling) for unit tests.
    pub fn bare() -> Self {
        Self::with_resources(FlowNet::new(0), DiskBank::new(0))
    }

    /// Shared state handle (used by fabrics and resources).
    pub fn state(&self) -> &Arc<SimState> {
        &self.state
    }

    /// Spawn a top-level process.
    pub fn spawn(&self, name: impl Into<String>, f: impl FnOnce(Env) + Send + 'static) -> ProcId {
        spawn_process(&self.state, name.into(), f)
    }

    /// Run until no events remain. Panics if a process panicked, or if
    /// processes remain blocked with an empty queue (deadlock).
    pub fn run(&self) -> SimReport {
        let mut events = 0u64;
        loop {
            let ev = { self.state.queue.lock().pop() };
            let Some(Reverse(ev)) = ev else { break };
            debug_assert!(ev.time >= self.state.now_us(), "time went backwards");
            self.state.clock.store(ev.time, Ordering::Relaxed);
            events += 1;
            match ev.kind {
                EventKind::Wake(pid) => self.step(pid),
                EventKind::Complete(cid) => self.state.complete(cid),
                EventKind::FlowTick(gen) => {
                    let current = self.state.flownet.lock().generation();
                    if gen == current {
                        self.state.flows_changed();
                    }
                }
            }
        }
        // Deadlock check: every process must have finished.
        let blocked: Vec<String> = {
            let procs = self.state.procs.lock();
            procs
                .iter()
                .filter(|p| !p.done)
                .map(|p| p.name.clone())
                .collect()
        };
        assert!(
            blocked.is_empty(),
            "simulation deadlock: queue empty but processes blocked: {blocked:?}"
        );
        SimReport {
            end_time_us: self.state.now_us(),
            events,
        }
    }

    fn step(&self, pid: ProcId) {
        {
            let procs = self.state.procs.lock();
            let slot = &procs[pid.0 as usize];
            if slot.done {
                return;
            }
            slot.resume_tx
                .send(Resume::Go)
                .expect("process thread gone");
        }
        match self
            .yield_rx
            .recv()
            .expect("process hung up without yielding")
        {
            YieldMsg::Blocked(p, BlockReason::Sleep(until)) => {
                self.state.push_event_at(until, EventKind::Wake(p));
            }
            YieldMsg::Blocked(p, BlockReason::Wait(cid)) => {
                // Between registration intent and now nothing ran, but the
                // completion may already be done (registration happened in
                // Env::wait before blocking) — handled there.
                let _ = (p, cid);
            }
            YieldMsg::Done(p) => {
                let (cid, handle) = {
                    let mut procs = self.state.procs.lock();
                    let slot = &mut procs[p.0 as usize];
                    slot.done = true;
                    (slot.done_completion, slot.handle.take())
                };
                if let Some(h) = handle {
                    let _ = h.join();
                }
                self.state.complete(cid);
            }
            YieldMsg::Panicked(p, msg) => {
                let name = self.state.procs.lock()[p.0 as usize].name.clone();
                panic!("simulated process '{name}' panicked: {msg}");
            }
        }
    }
}

impl Drop for Simulation {
    fn drop(&mut self) {
        // Cancel every unfinished process so its thread unwinds and exits.
        let mut handles = Vec::new();
        {
            let mut procs = self.state.procs.lock();
            for slot in procs.iter_mut() {
                if !slot.done {
                    let _ = slot.resume_tx.send(Resume::Cancel);
                }
                if let Some(h) = slot.handle.take() {
                    handles.push(h);
                }
            }
        }
        for h in handles {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn sleep_advances_virtual_time() {
        let sim = Simulation::bare();
        let state = Arc::clone(sim.state());
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = Arc::clone(&seen);
        sim.spawn("sleeper", move |env| {
            env.sleep_us(1500);
            seen2.store(env.now_us(), Ordering::Relaxed);
        });
        let report = sim.run();
        assert_eq!(seen.load(Ordering::Relaxed), 1500);
        assert_eq!(report.end_time_us, 1500);
        assert_eq!(state.now_us(), 1500);
    }

    #[test]
    fn processes_interleave_deterministically() {
        // Two processes appending to a log; order must be by wake time,
        // ties broken by spawn order.
        let log = Arc::new(Mutex::new(Vec::new()));
        let sim = Simulation::bare();
        for (i, delay) in [(0u32, 30u64), (1, 10), (2, 20)] {
            let log = Arc::clone(&log);
            sim.spawn(format!("p{i}"), move |env| {
                env.sleep_us(delay);
                log.lock().push((env.now_us(), i));
            });
        }
        sim.run();
        assert_eq!(*log.lock(), vec![(10, 1), (20, 2), (30, 0)]);
    }

    #[test]
    fn completions_wake_waiters() {
        let sim = Simulation::bare();
        let state = Arc::clone(sim.state());
        let cid = state.new_completion();
        let hits = Arc::new(AtomicUsize::new(0));
        for i in 0..3 {
            let hits = Arc::clone(&hits);
            sim.spawn(format!("w{i}"), move |env| {
                env.wait(cid);
                assert_eq!(env.now_us(), 500);
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        let st = Arc::clone(&state);
        sim.spawn("firer", move |env| {
            env.sleep_us(500);
            st.complete(cid);
        });
        sim.run();
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn wait_on_already_complete_returns_immediately() {
        let sim = Simulation::bare();
        let state = Arc::clone(sim.state());
        let cid = state.new_completion();
        state.complete(cid);
        let ok = Arc::new(AtomicUsize::new(0));
        let ok2 = Arc::clone(&ok);
        sim.spawn("w", move |env| {
            env.wait(cid);
            assert_eq!(env.now_us(), 0);
            ok2.fetch_add(1, Ordering::Relaxed);
        });
        sim.run();
        assert_eq!(ok.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn spawn_and_join_children() {
        let sim = Simulation::bare();
        let order = Arc::new(Mutex::new(Vec::new()));
        let order2 = Arc::clone(&order);
        sim.spawn("parent", move |env| {
            let mut pids = Vec::new();
            for i in 0..4u64 {
                let order = Arc::clone(&order2);
                pids.push(env.spawn(format!("c{i}"), move |e| {
                    e.sleep_us(100 - i * 10);
                    order.lock().push(i);
                }));
            }
            env.join_all(&pids);
            order2.lock().push(99);
            assert_eq!(env.now_us(), 100);
        });
        sim.run();
        assert_eq!(*order.lock(), vec![3, 2, 1, 0, 99]);
    }

    #[test]
    fn scheduled_completion_fires_at_time() {
        let sim = Simulation::bare();
        let state = Arc::clone(sim.state());
        let cid = state.new_completion();
        state.complete_at(cid, 2000);
        let t = Arc::new(AtomicU64::new(0));
        let t2 = Arc::clone(&t);
        sim.spawn("w", move |env| {
            env.wait(cid);
            t2.store(env.now_us(), Ordering::Relaxed);
        });
        sim.run();
        assert_eq!(t.load(Ordering::Relaxed), 2000);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected() {
        let sim = Simulation::bare();
        let state = Arc::clone(sim.state());
        let cid = state.new_completion(); // never completed
        sim.spawn("stuck", move |env| env.wait(cid));
        sim.run();
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn process_panics_propagate() {
        let sim = Simulation::bare();
        sim.spawn("bad", |_env| panic!("boom"));
        sim.run();
    }

    #[test]
    fn dropping_unfinished_simulation_does_not_hang() {
        let sim = Simulation::bare();
        let state = Arc::clone(sim.state());
        let cid = state.new_completion();
        sim.spawn("stuck", move |env| env.wait(cid));
        // Never run; drop must cancel the thread without hanging.
        drop(sim);
    }

    #[test]
    fn determinism_same_program_same_trace() {
        fn run_once() -> Vec<(u64, u32)> {
            let log = Arc::new(Mutex::new(Vec::new()));
            let sim = Simulation::bare();
            for i in 0..8u32 {
                let log = Arc::clone(&log);
                sim.spawn(format!("p{i}"), move |env| {
                    env.sleep_us(((i as u64 * 37) % 11) * 10);
                    log.lock().push((env.now_us(), i));
                    env.sleep_us(5);
                    log.lock().push((env.now_us(), i + 100));
                });
            }
            sim.run();
            let v = log.lock().clone();
            v
        }
        assert_eq!(run_once(), run_once());
    }
}
