//! # bff-sim
//!
//! A deterministic discrete-event cluster simulator: the stand-in for the
//! paper's Grid'5000 testbed (§5.1).
//!
//! ## What is modelled
//!
//! * **Virtual time** in microseconds with a totally ordered event queue;
//!   identical programs produce identical traces (bit-for-bit determinism).
//! * **Processes** as coroutine threads scheduled one at a time (the
//!   conductor model), so protocol code reads like straight-line blocking
//!   code — the same code that runs on the in-process stack.
//! * **Network**: a max-min fair fluid-flow model over per-node full-duplex
//!   NIC capacities (Gigabit Ethernet, 117.5 MB/s measured in the paper),
//!   plus per-transfer latency and message overhead.
//! * **Disks**: FIFO servers at 55 MB/s with per-access positioning costs,
//!   and a write-back page-cache model (dirty limit + background drain)
//!   that reproduces the paper's mmap write-back effects (Fig. 6) and
//!   asynchronous-commit degradation (Fig. 5a).
//!
//! ## What is *not* modelled
//!
//! Packet-level behaviour (we use fluid flows), CPU core contention
//! (compute is a pure delay), and switch oversubscription (the testbed's
//! cluster switch was non-blocking for these workloads).
//!
//! The bridge to storage code is [`fabric::SimFabric`], an implementation
//! of [`bff_net::Fabric`]; see that trait for the execution-mode contract.

pub mod disk;
pub mod engine;
pub mod fabric;
pub mod flownet;
pub mod metrics;
pub mod sync;

pub use disk::{DiskParams, WriteMode};
pub use engine::{CompletionId, Env, ProcId, SimReport, SimState, SimTime, Simulation};
pub use fabric::{ClusterParams, SimCluster, SimFabric};
pub use flownet::FlowNet;
pub use metrics::Summary;
pub use sync::{SimBarrier, SimChannel, SimLatch};
