//! A fluid-flow network model with max-min fair bandwidth sharing.
//!
//! Every node has an egress and an ingress capacity (its NIC, full
//! duplex). A transfer is a *flow* constrained by the sender's egress and
//! the receiver's ingress. Whenever the set of active flows changes, rates
//! are recomputed by progressive filling (water-filling), the classic
//! max-min fair allocation that closely models steady-state TCP sharing on
//! a non-blocking switch — the Grid'5000 cluster topology of the paper's
//! testbed (§5.1).
//!
//! The model is deterministic: rates are f64 (IEEE arithmetic is exact for
//! a fixed input sequence) and completion times are rounded up to whole
//! microseconds.

use crate::engine::{CompletionId, SimTime};
use std::collections::HashMap;

/// Bandwidth unit: bytes per microsecond. Numerically equal to MB/s.
pub type Bw = f64;

#[derive(Debug, Clone)]
struct Flow {
    src: u32,
    dst: u32,
    remaining: f64,
    rate: Bw,
    completion: CompletionId,
}

/// The flow network.
#[derive(Debug)]
pub struct FlowNet {
    out_cap: Vec<Bw>,
    in_cap: Vec<Bw>,
    flows: HashMap<u64, Flow>,
    next_id: u64,
    last_advance: SimTime,
    generation: u64,
}

impl FlowNet {
    /// A network of `nodes` with unset (infinite) capacities; use
    /// [`FlowNet::uniform`] for the usual homogeneous cluster.
    pub fn new(nodes: usize) -> Self {
        Self {
            out_cap: vec![f64::INFINITY; nodes],
            in_cap: vec![f64::INFINITY; nodes],
            flows: HashMap::new(),
            next_id: 0,
            last_advance: 0,
            generation: 0,
        }
    }

    /// Homogeneous cluster: every NIC has `bw` bytes/us in each direction.
    pub fn uniform(nodes: usize, bw: Bw) -> Self {
        Self {
            out_cap: vec![bw; nodes],
            in_cap: vec![bw; nodes],
            flows: HashMap::new(),
            next_id: 0,
            last_advance: 0,
            generation: 0,
        }
    }

    /// Override one node's NIC capacities (e.g. a slower NFS server).
    pub fn set_node_bw(&mut self, node: usize, egress: Bw, ingress: Bw) {
        self.out_cap[node] = egress;
        self.in_cap[node] = ingress;
    }

    /// Number of active flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Monotonic counter bumped on every membership change; used to drop
    /// stale scheduled ticks.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Register a new flow of `bytes` from `src` to `dst`, to fire
    /// `completion` when drained. Caller must then trigger a
    /// recompute/reschedule (see `SimState::flows_changed`).
    pub fn start_flow(
        &mut self,
        now: SimTime,
        src: u32,
        dst: u32,
        bytes: u64,
        completion: CompletionId,
    ) {
        assert_ne!(src, dst, "self-flows must be short-circuited by the fabric");
        self.settle_to(now);
        let id = self.next_id;
        self.next_id += 1;
        self.flows.insert(
            id,
            Flow {
                src,
                dst,
                remaining: bytes.max(1) as f64,
                rate: 0.0,
                completion,
            },
        );
        self.generation += 1;
    }

    fn settle_to(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_advance);
        let dt = (now - self.last_advance) as f64;
        if dt > 0.0 {
            for f in self.flows.values_mut() {
                f.remaining = (f.remaining - f.rate * dt).max(0.0);
            }
        }
        self.last_advance = now;
    }

    /// Advance flow progress to `now` and remove + return the completions
    /// of all drained flows. Bumps the generation if anything finished.
    pub fn advance(&mut self, now: SimTime) -> Vec<CompletionId> {
        self.settle_to(now);
        // Tolerance: a flow whose remaining work is under half a byte is
        // done (rounding of completion times can leave us epsilon short).
        let mut done: Vec<(u64, CompletionId)> = self
            .flows
            .iter()
            .filter(|(_, f)| f.remaining <= 0.5)
            .map(|(&id, f)| (id, f.completion))
            .collect();
        done.sort_by_key(|(id, _)| *id); // deterministic wake order
        if !done.is_empty() {
            self.generation += 1;
        }
        done.iter().for_each(|(id, _)| {
            self.flows.remove(id);
        });
        done.into_iter().map(|(_, c)| c).collect()
    }

    /// Recompute max-min fair rates by progressive filling.
    pub fn recompute(&mut self) {
        if self.flows.is_empty() {
            return;
        }
        let n = self.out_cap.len();
        let mut rem_out = self.out_cap.clone();
        let mut rem_in = self.in_cap.clone();
        let mut cnt_out = vec![0u32; n];
        let mut cnt_in = vec![0u32; n];
        // Deterministic iteration order: by flow id.
        let mut ids: Vec<u64> = self.flows.keys().copied().collect();
        ids.sort_unstable();
        for id in &ids {
            let f = &self.flows[id];
            cnt_out[f.src as usize] += 1;
            cnt_in[f.dst as usize] += 1;
        }
        let mut frozen: HashMap<u64, Bw> = HashMap::with_capacity(ids.len());
        let mut unfrozen: Vec<u64> = ids.clone();
        while !unfrozen.is_empty() {
            // Find the bottleneck resource: minimal fair share.
            let mut best: Option<(Bw, bool, usize)> = None; // (share, is_out, node)
            for node in 0..n {
                if cnt_out[node] > 0 {
                    let share = rem_out[node] / cnt_out[node] as f64;
                    if best.is_none_or(|(s, _, _)| share < s) {
                        best = Some((share, true, node));
                    }
                }
                if cnt_in[node] > 0 {
                    let share = rem_in[node] / cnt_in[node] as f64;
                    if best.is_none_or(|(s, _, _)| share < s) {
                        best = Some((share, false, node));
                    }
                }
            }
            let Some((share, is_out, node)) = best else {
                break;
            };
            if share.is_infinite() {
                // No finite capacities left: remaining flows are unbounded;
                // give them a very large finite rate to keep times sane.
                for id in &unfrozen {
                    frozen.insert(*id, 1e12);
                }
                break;
            }
            // Freeze every unfrozen flow crossing the bottleneck.
            let mut still = Vec::with_capacity(unfrozen.len());
            for id in unfrozen.drain(..) {
                let f = &self.flows[&id];
                let crosses = if is_out {
                    f.src as usize == node
                } else {
                    f.dst as usize == node
                };
                if crosses {
                    frozen.insert(id, share);
                    rem_out[f.src as usize] = (rem_out[f.src as usize] - share).max(0.0);
                    rem_in[f.dst as usize] = (rem_in[f.dst as usize] - share).max(0.0);
                    cnt_out[f.src as usize] -= 1;
                    cnt_in[f.dst as usize] -= 1;
                } else {
                    still.push(id);
                }
            }
            // The bottleneck resource must now be exhausted for accounting.
            if is_out {
                rem_out[node] = 0.0;
                debug_assert_eq!(cnt_out[node], 0);
            } else {
                rem_in[node] = 0.0;
                debug_assert_eq!(cnt_in[node], 0);
            }
            unfrozen = still;
        }
        for (id, rate) in frozen {
            self.flows.get_mut(&id).expect("flow present").rate = rate;
        }
    }

    /// The next time a flow will drain (absolute), with the generation to
    /// validate against, or `None` if no flows are active.
    pub fn next_event(&self, now: SimTime) -> Option<(SimTime, u64)> {
        debug_assert!(self.last_advance == now || self.flows.is_empty());
        let mut min_t: Option<f64> = None;
        for f in self.flows.values() {
            if f.rate <= 0.0 {
                continue;
            }
            let t = f.remaining / f.rate;
            min_t = Some(min_t.map_or(t, |m: f64| m.min(t)));
        }
        min_t.map(|dt| (now + (dt.ceil() as u64).max(1), self.generation))
    }

    /// Current rate of flow diagnostics: total allocated bandwidth.
    pub fn total_rate(&self) -> Bw {
        self.flows.values().map(|f| f.rate).sum()
    }

    #[cfg(test)]
    fn rates(&self) -> Vec<(u32, u32, Bw)> {
        let mut ids: Vec<u64> = self.flows.keys().copied().collect();
        ids.sort_unstable();
        ids.iter()
            .map(|id| {
                let f = &self.flows[id];
                (f.src, f.dst, f.rate)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CompletionId;

    fn cid(i: u64) -> CompletionId {
        CompletionId(i)
    }

    #[test]
    fn single_flow_gets_bottleneck_bandwidth() {
        let mut net = FlowNet::uniform(2, 100.0);
        net.start_flow(0, 0, 1, 1000, cid(0));
        net.recompute();
        assert_eq!(net.rates(), vec![(0, 1, 100.0)]);
        // 1000 bytes at 100 B/us => 10 us.
        assert_eq!(net.next_event(0), Some((10, net.generation())));
    }

    #[test]
    fn two_flows_share_receiver_ingress() {
        let mut net = FlowNet::uniform(3, 100.0);
        net.start_flow(0, 0, 2, 1000, cid(0));
        net.start_flow(0, 1, 2, 1000, cid(1));
        net.recompute();
        let rates = net.rates();
        assert_eq!(rates[0].2, 50.0);
        assert_eq!(rates[1].2, 50.0);
    }

    #[test]
    fn sender_bottleneck_frees_other_capacity() {
        // Node 0 sends to 1 and 2; node 3 sends to 2.
        // Egress(0)=100 split across two flows => 50 each.
        // Ingress(2) = 100: flow 0->2 has 50, so 3->2 gets the other 50...
        // but max-min: bottleneck order matters. Ingress(2) shared by two
        // flows (50 fair share) == egress(0) share; after freezing 0's
        // flows at 50, 3->2 can take remaining ingress = 50.
        let mut net = FlowNet::uniform(4, 100.0);
        net.start_flow(0, 0, 1, 1000, cid(0));
        net.start_flow(0, 0, 2, 1000, cid(1));
        net.start_flow(0, 3, 2, 1000, cid(2));
        net.recompute();
        let rates = net.rates();
        assert_eq!(rates[0].2, 50.0, "0->1");
        assert_eq!(rates[1].2, 50.0, "0->2");
        assert_eq!(rates[2].2, 50.0, "3->2");
    }

    #[test]
    fn asymmetric_capacity_water_filling() {
        // Slow sender (10) to a fast receiver shared with a fast sender.
        let mut net = FlowNet::uniform(3, 100.0);
        net.set_node_bw(0, 10.0, 10.0);
        net.start_flow(0, 0, 2, 1000, cid(0));
        net.start_flow(0, 1, 2, 1000, cid(1));
        net.recompute();
        let rates = net.rates();
        // Flow 0 frozen at 10 (its egress), flow 1 gets the rest: 90.
        assert_eq!(rates[0].2, 10.0);
        assert_eq!(rates[1].2, 90.0);
    }

    #[test]
    fn rates_never_exceed_capacity() {
        // Random-ish mesh; verify per-node conservation.
        let n = 6;
        let mut net = FlowNet::uniform(n, 117.5);
        let mut k = 0;
        for s in 0..n as u32 {
            for d in 0..n as u32 {
                if s != d && (s + 2 * d) % 3 == 0 {
                    net.start_flow(0, s, d, 10_000, cid(k));
                    k += 1;
                }
            }
        }
        net.recompute();
        let mut out = vec![0.0f64; n];
        let mut inn = vec![0.0f64; n];
        for (s, d, r) in net.rates() {
            out[s as usize] += r;
            inn[d as usize] += r;
            assert!(r > 0.0, "every flow must get bandwidth");
        }
        for i in 0..n {
            assert!(
                out[i] <= 117.5 + 1e-6,
                "egress {i} over capacity: {}",
                out[i]
            );
            assert!(
                inn[i] <= 117.5 + 1e-6,
                "ingress {i} over capacity: {}",
                inn[i]
            );
        }
    }

    #[test]
    fn advance_completes_drained_flows() {
        let mut net = FlowNet::uniform(2, 100.0);
        net.start_flow(0, 0, 1, 1000, cid(7));
        net.recompute();
        let (t, _) = net.next_event(0).unwrap();
        let done = net.advance(t);
        assert_eq!(done, vec![cid(7)]);
        assert_eq!(net.active_flows(), 0);
    }

    #[test]
    fn mid_flight_join_slows_first_flow() {
        let mut net = FlowNet::uniform(3, 100.0);
        net.start_flow(0, 0, 2, 1000, cid(0));
        net.recompute();
        // After 5us, 500 bytes remain; a second flow joins the ingress.
        assert!(net.advance(5).is_empty());
        net.start_flow(5, 1, 2, 500, cid(1));
        net.recompute();
        // Both now at 50 B/us; both complete 10us later.
        let (t, _) = net.next_event(5).unwrap();
        assert_eq!(t, 15);
        let done = net.advance(t);
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn generation_bumps_on_change() {
        let mut net = FlowNet::uniform(2, 10.0);
        let g0 = net.generation();
        net.start_flow(0, 0, 1, 100, cid(0));
        assert_ne!(net.generation(), g0);
    }
}
