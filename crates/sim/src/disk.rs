//! Local-disk and page-cache models.
//!
//! Each node has one disk modelled as a FIFO server: requests are serviced
//! in arrival order at the disk's sequential bandwidth, plus a per-request
//! positioning latency. This matches the paper's testbed description
//! (§5.1: "local disk storage of 250 GB (access speed ≃55 MB/s)").
//!
//! Writes can go through a *write-back page cache* model: they complete at
//! memory speed while the dirty set stays under a limit, and a background
//! drain empties dirty bytes at disk speed. This is the mechanism behind
//! two measured effects in the paper: the mirroring module's `mmap`-based
//! local writes outperform the hypervisor's direct writes almost 2× in
//! Bonnie++ (Fig. 6), and BlobSeer's asynchronous commit acknowledgements
//! gradually degrade toward synchronous speed as concurrent snapshots pile
//! up write pressure (§5.3, Fig. 5a).

use crate::engine::SimTime;

/// Bandwidth in bytes/us (== MB/s).
pub type Bw = f64;

/// Parameters of one disk + its page cache.
#[derive(Debug, Clone, Copy)]
pub struct DiskParams {
    /// Sequential bandwidth, bytes/us (paper: 55 MB/s).
    pub bandwidth: Bw,
    /// Per-request positioning cost, us (seek + rotational average).
    pub access_us: u64,
    /// Memory-copy bandwidth for cache-absorbed writes, bytes/us.
    pub mem_bandwidth: Bw,
    /// Dirty-bytes ceiling before write-back throttles to disk speed.
    pub dirty_limit: u64,
}

impl Default for DiskParams {
    fn default() -> Self {
        Self {
            bandwidth: 55.0,
            access_us: 8_000,
            mem_bandwidth: 2_000.0,
            dirty_limit: 256 << 20,
        }
    }
}

/// Whether a write is absorbed by the page cache or forced to disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteMode {
    /// Completes at memory speed while under the dirty limit; drained to
    /// disk in the background (the mirroring module's mmap strategy).
    WriteBack,
    /// Queued on the disk FIFO like a read (hypervisor direct writes).
    WriteThrough,
}

#[derive(Debug, Clone)]
struct DiskState {
    params: DiskParams,
    /// Time the disk head becomes free (FIFO queue tail).
    next_free: SimTime,
    /// Dirty bytes in the page cache, as of `dirty_as_of`.
    dirty: f64,
    dirty_as_of: SimTime,
}

impl DiskState {
    fn new(params: DiskParams) -> Self {
        Self {
            params,
            next_free: 0,
            dirty: 0.0,
            dirty_as_of: 0,
        }
    }

    /// Lazily drain the dirty counter at disk speed up to `now`.
    fn settle(&mut self, now: SimTime) {
        let dt = now.saturating_sub(self.dirty_as_of) as f64;
        if dt > 0.0 {
            self.dirty = (self.dirty - dt * self.params.bandwidth).max(0.0);
            self.dirty_as_of = now;
        }
    }

    /// FIFO service of `bytes`: returns the absolute completion time.
    fn fifo(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let start = self.next_free.max(now);
        let service = self.params.access_us as f64 + bytes as f64 / self.params.bandwidth;
        let done = start + service.ceil() as u64;
        self.next_free = done;
        done
    }

    fn read(&mut self, now: SimTime, bytes: u64) -> SimTime {
        self.fifo(now, bytes)
    }

    fn write(&mut self, now: SimTime, bytes: u64, mode: WriteMode) -> SimTime {
        match mode {
            WriteMode::WriteThrough => self.fifo(now, bytes),
            WriteMode::WriteBack => {
                self.settle(now);
                let over = (self.dirty + bytes as f64) - self.params.dirty_limit as f64;
                self.dirty += bytes as f64;
                // Absorption cost at memory speed...
                let absorb = (bytes as f64 / self.params.mem_bandwidth).ceil() as u64;
                if over <= 0.0 {
                    now + absorb.max(1)
                } else {
                    // ...plus throttling: the caller waits until the cache
                    // has drained back to the limit.
                    let throttle = (over / self.params.bandwidth).ceil() as u64;
                    now + absorb.max(1) + throttle
                }
            }
        }
    }

    /// Time at which all currently dirty bytes will have reached disk.
    fn sync_done(&mut self, now: SimTime) -> SimTime {
        self.settle(now);
        now + (self.dirty / self.params.bandwidth).ceil() as u64
    }
}

/// All disks of a simulated cluster.
#[derive(Debug)]
pub struct DiskBank {
    disks: Vec<DiskState>,
}

impl DiskBank {
    /// `nodes` disks with default parameters.
    pub fn new(nodes: usize) -> Self {
        Self::with_params(nodes, DiskParams::default())
    }

    /// `nodes` identical disks with the given parameters.
    pub fn with_params(nodes: usize, params: DiskParams) -> Self {
        Self {
            disks: (0..nodes).map(|_| DiskState::new(params)).collect(),
        }
    }

    /// Completion time of a read of `bytes` at `node`, queued FIFO.
    pub fn read(&mut self, node: usize, now: SimTime, bytes: u64) -> SimTime {
        self.disks[node].read(now, bytes)
    }

    /// Completion time of a write of `bytes` at `node` in `mode`.
    pub fn write(&mut self, node: usize, now: SimTime, bytes: u64, mode: WriteMode) -> SimTime {
        self.disks[node].write(now, bytes, mode)
    }

    /// Completion time of an fsync barrier at `node`.
    pub fn sync(&mut self, node: usize, now: SimTime) -> SimTime {
        self.disks[node].sync_done(now)
    }

    /// Dirty bytes currently buffered at `node` (diagnostic).
    pub fn dirty_bytes(&mut self, node: usize, now: SimTime) -> u64 {
        self.disks[node].settle(now);
        self.disks[node].dirty as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> DiskParams {
        DiskParams {
            bandwidth: 100.0,
            access_us: 10,
            mem_bandwidth: 1000.0,
            dirty_limit: 10_000,
        }
    }

    #[test]
    fn fifo_reads_queue_in_order() {
        let mut bank = DiskBank::with_params(1, params());
        // 1000 bytes: 10us access + 10us transfer = 20us.
        let t1 = bank.read(0, 0, 1000);
        assert_eq!(t1, 20);
        // Second request queued behind the first.
        let t2 = bank.read(0, 0, 1000);
        assert_eq!(t2, 40);
        // A request arriving later than the free time starts immediately.
        let t3 = bank.read(0, 100, 1000);
        assert_eq!(t3, 120);
    }

    #[test]
    fn writethrough_shares_the_fifo() {
        let mut bank = DiskBank::with_params(1, params());
        let r = bank.read(0, 0, 1000);
        let w = bank.write(0, 0, 1000, WriteMode::WriteThrough);
        assert_eq!(r, 20);
        assert_eq!(w, 40, "write must queue behind the read");
    }

    #[test]
    fn writeback_is_memory_speed_under_limit() {
        let mut bank = DiskBank::with_params(1, params());
        // 1000 bytes at mem speed 1000 B/us => 1us; no disk queueing.
        let t = bank.write(0, 0, 1000, WriteMode::WriteBack);
        assert_eq!(t, 1);
        assert_eq!(bank.dirty_bytes(0, 0), 1000);
    }

    #[test]
    fn writeback_throttles_over_limit() {
        let mut bank = DiskBank::with_params(1, params());
        // Fill the cache to its 10_000-byte limit.
        let t = bank.write(0, 0, 10_000, WriteMode::WriteBack);
        assert_eq!(t, 10);
        // 5_000 more: all of it over the limit => throttle 5000/100 = 50us.
        let t2 = bank.write(0, 0, 5_000, WriteMode::WriteBack);
        assert_eq!(t2, 5 + 50);
    }

    #[test]
    fn dirty_drains_over_time() {
        let mut bank = DiskBank::with_params(1, params());
        bank.write(0, 0, 10_000, WriteMode::WriteBack);
        // At 100 B/us the cache is empty after 100us.
        assert_eq!(bank.dirty_bytes(0, 50), 5_000);
        assert_eq!(bank.dirty_bytes(0, 100), 0);
    }

    #[test]
    fn sync_waits_for_drain() {
        let mut bank = DiskBank::with_params(1, params());
        bank.write(0, 0, 5_000, WriteMode::WriteBack);
        assert_eq!(bank.sync(0, 0), 50);
        // After partial drain the sync is shorter.
        assert_eq!(bank.sync(0, 30), 30 + 20);
    }

    #[test]
    fn disks_are_independent() {
        let mut bank = DiskBank::with_params(2, params());
        let a = bank.read(0, 0, 1000);
        let b = bank.read(1, 0, 1000);
        assert_eq!(a, b, "no cross-disk interference");
    }
}
