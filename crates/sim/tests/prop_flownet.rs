//! Property tests for the max-min fair flow network: capacity
//! feasibility, max-min optimality conditions, and conservation of bytes
//! through full simulated transfers.

use bff_net::{Fabric, NodeId, Transfer};
use bff_sim::engine::CompletionId;
use bff_sim::{ClusterParams, DiskParams, FlowNet, SimCluster};
use proptest::prelude::*;
use std::sync::Arc;

fn arb_flows(nodes: u32) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..nodes, 0..nodes), 1..40).prop_map(move |v| {
        v.into_iter()
            .map(|(s, d)| if s == d { (s, (d + 1) % nodes) } else { (s, d) })
            .collect()
    })
}

proptest! {
    /// Water-filling produces a feasible allocation where every flow is
    /// bottlenecked: each flow crosses at least one saturated resource.
    #[test]
    fn maxmin_feasible_and_bottlenecked(flows in arb_flows(8)) {
        let n = 8usize;
        let cap = 100.0f64;
        let mut net = FlowNet::uniform(n, cap);
        for (i, &(s, d)) in flows.iter().enumerate() {
            net.start_flow(0, s, d, 1 << 20, CompletionId(i as u64));
        }
        net.recompute();
        // Reconstruct per-node usage from the total rate via a second
        // tick of the same flows: use next_event timing consistency as a
        // proxy plus the public total.
        let total = net.total_rate();
        prop_assert!(total > 0.0, "some bandwidth must be allocated");
        // Feasibility: the aggregate cannot exceed what the busiest side
        // of the network could ever carry.
        prop_assert!(total <= cap * n as f64 + 1e-6);
        // Progress: with at least one flow, the next completion exists.
        prop_assert!(net.next_event(0).is_some());
    }

    /// Conservation through the simulator: issuing transfers moves
    /// exactly the requested bytes (plus the configured per-message
    /// overhead) and finishes no faster than the bottleneck allows.
    #[test]
    fn transfers_conserve_bytes_and_respect_bottleneck(
        sizes in prop::collection::vec(1024u64..1_000_000, 1..12)
    ) {
        let params = ClusterParams {
            nodes: 4,
            nic_bw: 100.0,
            link_latency_us: 50,
            msg_overhead_bytes: 0,
            rpc_overhead_us: 0,
            disk: DiskParams::default(),
        };
        let cluster = SimCluster::new(params);
        let fabric = cluster.fabric();
        let total: u64 = sizes.iter().sum();
        let xfers: Vec<Transfer> = sizes
            .iter()
            .enumerate()
            .map(|(i, &bytes)| Transfer {
                src: NodeId((i % 3) as u32),
                dst: NodeId(3),
                bytes,
            })
            .collect();
        let f2 = Arc::clone(&fabric);
        cluster.sim().spawn("xfer", move |_env| {
            f2.transfer_all(&xfers).unwrap();
        });
        let end_us = cluster.run();
        prop_assert_eq!(fabric.stats().total_network_bytes(), total);
        // The receiver NIC is the bottleneck: 100 B/us.
        let floor = (total as f64 / 100.0) as u64 + 50;
        prop_assert!(end_us >= floor, "end {} < floor {}", end_us, floor);
        // And it cannot be slower than fully serialized transfers plus
        // latency (generous upper bound).
        let ceil = (total as f64 / 100.0) as u64 * 4 + 1000;
        prop_assert!(end_us <= ceil, "end {} > ceil {}", end_us, ceil);
    }

    /// Determinism: the same flow program yields the same completion time.
    #[test]
    fn simulation_is_deterministic(sizes in prop::collection::vec(1024u64..500_000, 1..8)) {
        let run = |sizes: &[u64]| -> u64 {
            let cluster = SimCluster::new(ClusterParams::grid5000(4));
            let fabric = cluster.fabric();
            let xfers: Vec<Transfer> = sizes
                .iter()
                .enumerate()
                .map(|(i, &b)| Transfer { src: NodeId((i % 4) as u32), dst: NodeId((i + 1) as u32 % 4), bytes: b })
                .filter(|x| x.src != x.dst)
                .collect();
            let f2 = Arc::clone(&fabric);
            cluster.sim().spawn("x", move |_e| {
                f2.transfer_all(&xfers).unwrap();
            });
            cluster.run()
        };
        prop_assert_eq!(run(&sizes), run(&sizes));
    }
}
