//! Cross-fabric conformance: every [`Fabric`] implementation — the
//! cost-free [`LocalFabric`], the virtual-time `SimFabric` and the
//! wall-clock [`ThreadFabric`] — must account the *same* op sequence
//! identically in [`TrafficStats`]. The three fabrics may disagree on
//! when an operation completes, never on what moved. This is the
//! invariant that lets the sweeps compare logical traffic across
//! execution modes, and lets `load_sweep` trust that its locking
//! disciplines differ only in wall-clock behaviour.

use bff_net::{Fabric, LocalFabric, NodeId, NodeTraffic, ThreadFabric, ThreadParams, Transfer};
use bff_sim::{ClusterParams, SimCluster};
use std::sync::Arc;

const NODES: usize = 4;

/// One fixed op sequence exercising every accounting-relevant fabric
/// verb, including self-transfers (free), fan-in bulk transfers,
/// write-back disk writes, and work launched through `par_join` /
/// `spawn_detached`.
fn drive(fabric: &Arc<dyn Fabric>) {
    fabric.transfer(NodeId(0), NodeId(1), 100_000).unwrap();
    fabric.transfer(NodeId(2), NodeId(2), 5_000).unwrap(); // self: free
    fabric
        .transfer_all(&[
            Transfer {
                src: NodeId(0),
                dst: NodeId(2),
                bytes: 50_000,
            },
            Transfer {
                src: NodeId(1),
                dst: NodeId(2),
                bytes: 30_000,
            },
            Transfer {
                src: NodeId(3),
                dst: NodeId(0),
                bytes: 10_000,
            },
        ])
        .unwrap();
    fabric.rpc(NodeId(1), NodeId(3), 200, 400).unwrap();
    fabric.rpc(NodeId(2), NodeId(2), 100, 100).unwrap(); // self: free
    fabric.disk_read(NodeId(0), 64 << 10).unwrap();
    fabric.disk_write(NodeId(1), 32 << 10).unwrap();
    fabric.disk_write_cached(NodeId(2), 128 << 10).unwrap();
    fabric.disk_sync(NodeId(2)).unwrap();
    fabric.compute(NodeId(3), 50);
    let (a, b) = (Arc::clone(fabric), Arc::clone(fabric));
    fabric.par_join(vec![
        Box::new(move || a.transfer(NodeId(1), NodeId(0), 7_000).unwrap()),
        Box::new(move || b.rpc(NodeId(0), NodeId(2), 64, 128).unwrap()),
    ]);
    let c = Arc::clone(fabric);
    fabric.spawn_detached(Box::new(move || {
        c.transfer(NodeId(2), NodeId(3), 9_000).unwrap();
    }));
    fabric.quiesce();
}

/// Everything [`TrafficStats`] records, in comparable form.
fn snapshot(fabric: &Arc<dyn Fabric>) -> (u64, u64, u64, Vec<NodeTraffic>) {
    let s = fabric.stats();
    (
        s.total_network_bytes(),
        s.transfer_count(),
        s.rpc_count(),
        (0..NODES as u32).map(|n| s.node(NodeId(n))).collect(),
    )
}

#[test]
fn all_fabrics_account_the_same_sequence_identically() {
    // Cost-free in-process fabric.
    let local: Arc<dyn Fabric> = LocalFabric::new(NODES);
    drive(&local);
    let local_snap = snapshot(&local);
    assert!(
        local_snap.0 > 0 && local_snap.1 > 0 && local_snap.2 > 0,
        "the sequence must exercise transfers and rpcs: {local_snap:?}"
    );

    // Virtual-time simulator: the same sequence as a simulated process,
    // driven to completion (detached work included) by the engine.
    let cluster = SimCluster::new(ClusterParams::grid5000(NODES));
    let sim_fabric: Arc<dyn Fabric> = cluster.fabric();
    let driver = Arc::clone(&sim_fabric);
    cluster.sim().spawn("driver", move |_env| drive(&driver));
    let end_us = cluster.run();
    assert!(end_us > 0, "the modelled costs must consume virtual time");
    let sim_snap = snapshot(&sim_fabric);

    // Wall-clock fabric: real threads, real sleeps (fast profile so the
    // test stays quick), drained by quiesce inside drive().
    let threads: Arc<dyn Fabric> = ThreadFabric::new(ThreadParams::fast(NODES));
    drive(&threads);
    let thread_snap = snapshot(&threads);

    assert_eq!(
        local_snap, sim_snap,
        "SimFabric accounting diverged from LocalFabric"
    );
    assert_eq!(
        local_snap, thread_snap,
        "ThreadFabric accounting diverged from LocalFabric"
    );
}

#[test]
fn quiesce_is_a_barrier_for_detached_work_on_every_fabric() {
    // After quiesce, detached transfers must be visible in the stats —
    // on the thread fabric that means the pool actually drained; on the
    // others spawn_detached is inline or engine-driven.
    for (label, fabric) in [
        ("local", LocalFabric::new(NODES) as Arc<dyn Fabric>),
        (
            "threads",
            ThreadFabric::new(ThreadParams::fast(NODES)) as Arc<dyn Fabric>,
        ),
    ] {
        for i in 0..8u64 {
            let f = Arc::clone(&fabric);
            fabric.spawn_detached(Box::new(move || {
                f.transfer(NodeId(0), NodeId(1), 1_000 + i).unwrap();
            }));
        }
        fabric.quiesce();
        assert_eq!(
            fabric.stats().transfer_count(),
            8,
            "{label}: quiesce returned before detached work finished"
        );
    }
}
