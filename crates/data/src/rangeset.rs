//! A set of disjoint, coalesced byte ranges.
//!
//! This is the bookkeeping structure behind the mirroring module's
//! local-modification manager: which parts of the image are available
//! locally, which chunks have been written, and where the gaps are.
//! Rangesets are kept maximally coalesced (no two stored ranges touch or
//! overlap), so membership and gap queries are O(log n) in the number of
//! maximal runs.

use crate::range::ByteRange;
use std::collections::BTreeMap;

/// A set of `u64` positions represented as disjoint half-open ranges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RangeSet {
    /// start -> end, disjoint, non-adjacent, non-empty.
    runs: BTreeMap<u64, u64>,
    /// Maintained sum of run lengths, so [`Self::covered`] is O(1). The
    /// mirror stats path queries it per operation; recomputing by
    /// summation made every stats call O(runs).
    covered: u64,
}

impl RangeSet {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of maximal runs (diagnostic; the fragmentation metric from
    /// the paper's §3.3 discussion).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Total number of positions covered. O(1): the counter is maintained
    /// by `insert`/`remove`/`clear`.
    pub fn covered(&self) -> u64 {
        debug_assert_eq!(
            self.covered,
            self.runs.iter().map(|(s, e)| e - s).sum::<u64>(),
            "covered counter out of sync"
        );
        self.covered
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Insert a range, merging with any overlapping or adjacent runs.
    pub fn insert(&mut self, range: ByteRange) {
        if range.start >= range.end {
            return;
        }
        let mut start = range.start;
        let mut end = range.end;
        // A run that starts at or before `start` may absorb us.
        if let Some((&s, &e)) = self.runs.range(..=start).next_back() {
            if e >= start {
                start = s;
                end = end.max(e);
                self.runs.remove(&s);
                self.covered -= e - s;
            }
        }
        // Absorb every run that begins within [start, end].
        loop {
            let next = self.runs.range(start..=end).next().map(|(&s, &e)| (s, e));
            match next {
                Some((s, e)) => {
                    end = end.max(e);
                    self.runs.remove(&s);
                    self.covered -= e - s;
                }
                None => break,
            }
        }
        self.runs.insert(start, end);
        self.covered += end - start;
    }

    /// Remove a range from the set, splitting runs as needed.
    pub fn remove(&mut self, range: ByteRange) {
        if range.start >= range.end {
            return;
        }
        // Find the run (if any) containing range.start's left neighborhood.
        let mut to_add: Vec<(u64, u64)> = Vec::new();
        let mut to_remove: Vec<u64> = Vec::new();
        if let Some((&s, &e)) = self.runs.range(..range.start).next_back() {
            if e > range.start {
                to_remove.push(s);
                to_add.push((s, range.start));
                if e > range.end {
                    to_add.push((range.end, e));
                }
            }
        }
        for (&s, &e) in self.runs.range(range.start..range.end) {
            to_remove.push(s);
            if e > range.end {
                to_add.push((range.end, e));
            }
        }
        for s in to_remove {
            let e = self.runs.remove(&s).expect("run listed for removal exists");
            self.covered -= e - s;
        }
        for (s, e) in to_add {
            if s < e {
                self.runs.insert(s, e);
                self.covered += e - s;
            }
        }
    }

    /// Whether every position in `range` is in the set. Empty ranges are
    /// trivially contained.
    pub fn contains_range(&self, range: &ByteRange) -> bool {
        if range.start >= range.end {
            return true;
        }
        match self.runs.range(..=range.start).next_back() {
            Some((_, &e)) => e >= range.end,
            None => false,
        }
    }

    /// Whether position `pos` is in the set.
    pub fn contains(&self, pos: u64) -> bool {
        self.contains_range(&(pos..pos + 1))
    }

    /// Iterate over the maximal runs intersecting `range`, clamped to it.
    pub fn runs_within<'a>(&'a self, range: &ByteRange) -> impl Iterator<Item = ByteRange> + 'a {
        let (rs, re) = (range.start, range.end);
        let pred = self
            .runs
            .range(..rs)
            .next_back()
            .filter(move |(_, &e)| e > rs)
            .map(move |(&s, &e)| (s, e));
        pred.into_iter()
            .chain(self.runs.range(rs..re).map(|(&s, &e)| (s, e)))
            .map(move |(s, e)| s.max(rs)..e.min(re))
            .filter(|r| r.start < r.end)
    }

    /// The gaps: maximal sub-ranges of `range` NOT covered by the set.
    pub fn gaps_within(&self, range: &ByteRange) -> Vec<ByteRange> {
        let mut gaps = Vec::new();
        let mut cursor = range.start;
        for run in self.runs_within(range) {
            if run.start > cursor {
                gaps.push(cursor..run.start);
            }
            cursor = run.end;
        }
        if cursor < range.end {
            gaps.push(cursor..range.end);
        }
        gaps
    }

    /// Iterate over all maximal runs in order.
    pub fn iter(&self) -> impl Iterator<Item = ByteRange> + '_ {
        self.runs.iter().map(|(&s, &e)| s..e)
    }

    /// The smallest single range enclosing the whole set, if non-empty.
    pub fn span(&self) -> Option<ByteRange> {
        let first = self.runs.iter().next()?;
        let last = self.runs.iter().next_back()?;
        Some(*first.0..*last.1)
    }

    /// Clear the set.
    pub fn clear(&mut self) {
        self.runs.clear();
        self.covered = 0;
    }
}

impl FromIterator<ByteRange> for RangeSet {
    fn from_iter<T: IntoIterator<Item = ByteRange>>(iter: T) -> Self {
        let mut s = RangeSet::new();
        for r in iter {
            s.insert(r);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ranges: &[ByteRange]) -> RangeSet {
        ranges.iter().cloned().collect()
    }

    #[test]
    fn insert_disjoint() {
        let s = set(&[0..5, 10..15]);
        assert_eq!(s.run_count(), 2);
        assert_eq!(s.covered(), 10);
        assert!(s.contains_range(&(0..5)));
        assert!(!s.contains_range(&(0..6)));
        assert!(!s.contains(7));
    }

    #[test]
    fn insert_overlapping_merges() {
        let s = set(&[0..5, 3..8]);
        assert_eq!(s.run_count(), 1);
        assert!(s.contains_range(&(0..8)));
    }

    #[test]
    fn insert_adjacent_merges() {
        let s = set(&[0..5, 5..8]);
        assert_eq!(s.run_count(), 1);
        assert_eq!(s.span(), Some(0..8));
    }

    #[test]
    fn insert_bridging_merges_multiple() {
        let s = set(&[0..2, 4..6, 8..10, 1..9]);
        assert_eq!(s.run_count(), 1);
        assert_eq!(s.span(), Some(0..10));
    }

    #[test]
    fn empty_insert_is_noop() {
        let mut s = RangeSet::new();
        s.insert(5..5);
        assert!(s.is_empty());
        assert!(s.contains_range(&(3..3)));
    }

    #[test]
    fn gaps_within_reports_uncovered() {
        let s = set(&[2..4, 6..8]);
        assert_eq!(s.gaps_within(&(0..10)), vec![0..2, 4..6, 8..10]);
        assert_eq!(s.gaps_within(&(2..8)), vec![4..6]);
        assert_eq!(s.gaps_within(&(2..4)), Vec::<ByteRange>::new());
        assert_eq!(s.gaps_within(&(3..7)), vec![4..6]);
    }

    #[test]
    fn runs_within_clamps() {
        let s = set(&[0..100, 0..50]);
        let runs: Vec<_> = s.runs_within(&(10..20)).collect();
        assert_eq!(runs, vec![10..20]);
    }

    #[test]
    fn remove_splits_runs() {
        let mut s = set(&[0..4, 4..10]);
        s.remove(3..6);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0..3, 6..10]);
        s.remove(0..3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![6..10]);
        s.remove(5..20);
        assert!(s.is_empty());
    }

    #[test]
    fn remove_across_runs() {
        let mut s = set(&[0..4, 6..10, 12..16]);
        s.remove(2..13);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0..2, 13..16]);
    }

    #[test]
    fn covered_counter_tracks_all_mutations() {
        // Exercise every insert/remove code path and check the O(1)
        // counter against brute-force summation (the debug_assert in
        // covered() does the same check on every call).
        let mut s = RangeSet::new();
        assert_eq!(s.covered(), 0);
        s.insert(0..10); // fresh run
        assert_eq!(s.covered(), 10);
        s.insert(5..15); // absorbed by left neighbour
        assert_eq!(s.covered(), 15);
        s.insert(20..30);
        s.insert(12..25); // bridges two runs
        assert_eq!(s.covered(), 30);
        s.remove(5..8); // split one run
        assert_eq!(s.covered(), 27);
        s.remove(0..100); // remove everything
        assert_eq!(s.covered(), 0);
        s.insert(3..3); // no-op
        assert_eq!(s.covered(), 0);
        s.insert(1..2);
        s.clear();
        assert_eq!(s.covered(), 0);
    }
}
