//! Content digests used for cheap equality checks, and the bounded
//! [`DigestIndex`] behind content-addressed write deduplication.
//!
//! FNV-1a over 64 bits is sufficient here: digests are never used for
//! security, only to compare payloads without materializing both sides,
//! and collisions in test-sized inputs are vanishingly unlikely. Dedup
//! consumers additionally key by payload *length*, shrinking the
//! collision scope to equal-sized chunks.

use crate::FastMap;
use std::collections::VecDeque;

/// A 64-bit FNV-1a digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Digest(pub u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a hasher.
#[derive(Debug, Clone)]
pub struct Hasher {
    state: u64,
}

impl Default for Hasher {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher {
    /// Start a fresh digest.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Absorb bytes.
    #[inline]
    pub fn update(&mut self, data: &[u8]) {
        let mut s = self.state;
        for &b in data {
            s ^= b as u64;
            s = s.wrapping_mul(FNV_PRIME);
        }
        self.state = s;
    }

    /// Finish and produce the digest.
    pub fn finish(&self) -> Digest {
        Digest(self.state)
    }
}

impl Digest {
    /// Digest a byte slice in one call.
    pub fn of(data: &[u8]) -> Digest {
        let mut h = Hasher::new();
        h.update(data);
        h.finish()
    }
}

/// The digest half of a [`ContentKey`]: which hash identified the
/// content, and its value.
///
/// The two variants correspond to the dedup pipeline's two trust levels.
/// A [`ContentDigest::Weak`] (64-bit FNV-1a) hit is *advisory*: the
/// consumer must byte-verify the stored replica before reusing it,
/// because 64 bits are not collision-proof. A [`ContentDigest::Strong`]
/// (SHA-256) hit is collision-resistant, so the verification round can
/// be skipped — the trade a real deployment makes when the digest cost
/// is cheaper than the verify round trip. The variants never compare
/// equal, so a deployment switching modes mid-life simply re-indexes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContentDigest {
    /// 64-bit FNV-1a: cheap, advisory, requires byte verification.
    Weak(Digest),
    /// SHA-256: collision-resistant, trusted without verification.
    Strong(crate::sha256::Sha256Digest),
}

impl ContentDigest {
    /// Whether a hit on this digest can be trusted without a byte
    /// comparison against a stored replica.
    pub fn is_collision_resistant(&self) -> bool {
        matches!(self, ContentDigest::Strong(_))
    }
}

/// Content key of a payload for dedup purposes: `(length, digest)`.
/// Keying by length as well as digest confines hash collisions to
/// equal-sized payloads.
pub type ContentKey = (u64, ContentDigest);

/// A bounded content-addressed index: maps [`ContentKey`]s to arbitrary
/// values (e.g. chunk descriptors), evicting the oldest *live* entry
/// once the capacity is reached (insertion order; re-inserting a key
/// refreshes its position). Stale queue slots — left behind by
/// [`DigestIndex::remove`] or by re-inserts — are sequence-stamped so
/// they can never evict a live entry in their place.
#[derive(Debug)]
pub struct DigestIndex<V> {
    /// Live entries, each stamped with the sequence of the insert that
    /// produced it.
    map: FastMap<ContentKey, (u64, V)>,
    /// Insertion-order queue of `(key, seq)` slots; a slot is live iff
    /// its seq matches the map's current stamp for that key.
    order: VecDeque<(ContentKey, u64)>,
    seq: u64,
    cap: usize,
}

impl<V> DigestIndex<V> {
    /// An index holding at most `cap` entries (`cap == 0` disables it:
    /// every insert is dropped, every lookup misses).
    pub fn new(cap: usize) -> Self {
        Self {
            map: FastMap::default(),
            order: VecDeque::new(),
            seq: 0,
            cap,
        }
    }

    /// Number of entries currently indexed.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Look up a content key.
    pub fn get(&self, key: &ContentKey) -> Option<&V> {
        self.map.get(key).map(|(_, v)| v)
    }

    /// Whether a queue slot no longer corresponds to a live entry.
    fn is_stale(map: &FastMap<ContentKey, (u64, V)>, slot: &(ContentKey, u64)) -> bool {
        map.get(&slot.0).is_none_or(|(cur, _)| *cur != slot.1)
    }

    /// Insert (or replace) an entry, evicting the oldest live one if the
    /// index is full.
    pub fn insert(&mut self, key: ContentKey, value: V) {
        if self.cap == 0 {
            return;
        }
        self.seq += 1;
        self.map.insert(key, (self.seq, value));
        self.order.push_back((key, self.seq));
        while self.map.len() > self.cap {
            match self.order.pop_front() {
                Some(slot) => {
                    // Stale slots (removed or re-inserted keys) remove
                    // nothing; keep popping until a live entry leaves.
                    if !Self::is_stale(&self.map, &slot) {
                        self.map.remove(&slot.0);
                    }
                }
                None => break,
            }
        }
        // Drain the stale prefix, then compact the whole queue once
        // stale slots outnumber live entries. The prefix drain alone is
        // not enough: a live, never-refreshed key parked at the front
        // (e.g. content committed once, early) would shield an unbounded
        // tail of stale slots from every future re-insert. Compaction is
        // O(queue) but runs only after the queue doubles, so inserts
        // stay amortized O(1) and `order.len() ≤ max(2·len(), 8)`.
        while self
            .order
            .front()
            .is_some_and(|slot| Self::is_stale(&self.map, slot))
        {
            self.order.pop_front();
        }
        if self.order.len() > self.map.len().saturating_mul(2).max(8) {
            self.order.retain(|slot| !Self::is_stale(&self.map, slot));
        }
    }

    /// Drop an entry (e.g. after the consumer found it stale). The
    /// insertion-order queue keeps a stale slot that eviction skips.
    pub fn remove(&mut self, key: &ContentKey) -> Option<V> {
        self.map.remove(key).map(|(_, v)| v)
    }

    /// Drop every entry matching `pred`, returning how many left. This
    /// is the garbage-collection hook: when stored content is reclaimed
    /// (its chunk freed), the index entries that point at it must go —
    /// by *value* predicate, because the collector knows what it freed
    /// (a chunk id), not the content keys that mapped to it. O(len);
    /// collectors batch their evictions so the scan runs once per GC
    /// pass, not once per freed chunk.
    pub fn remove_matching(&mut self, mut pred: impl FnMut(&ContentKey, &V) -> bool) -> usize {
        let before = self.map.len();
        self.map.retain(|k, (_, v)| !pred(k, v));
        before - self.map.len()
    }

    /// Iterate the live entries (GC reverse-lookup and diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = (&ContentKey, &V)> {
        self.map.iter().map(|(k, (_, v))| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(Digest::of(b""), Digest(0xcbf29ce484222325));
        assert_eq!(Digest::of(b"a"), Digest(0xaf63dc4c8601ec8c));
        assert_eq!(Digest::of(b"foobar"), Digest(0x85944171f73967e8));
    }

    #[test]
    fn incremental_equals_oneshot() {
        let mut h = Hasher::new();
        h.update(b"hello ");
        h.update(b"world");
        assert_eq!(h.finish(), Digest::of(b"hello world"));
    }

    #[test]
    fn order_matters() {
        assert_ne!(Digest::of(b"ab"), Digest::of(b"ba"));
    }

    #[test]
    fn index_roundtrip_and_fifo_eviction() {
        let mut idx: DigestIndex<u32> = DigestIndex::new(2);
        let k = |n: u64| (n, ContentDigest::Weak(Digest(n)));
        idx.insert(k(1), 10);
        idx.insert(k(2), 20);
        assert_eq!(idx.get(&k(1)), Some(&10));
        // Third insert evicts the oldest (1), not the most recent.
        idx.insert(k(3), 30);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.get(&k(1)), None);
        assert_eq!(idx.get(&k(2)), Some(&20));
        assert_eq!(idx.get(&k(3)), Some(&30));
    }

    #[test]
    fn index_explicit_removal_leaves_queue_consistent() {
        let mut idx: DigestIndex<u32> = DigestIndex::new(2);
        let k = |n: u64| (n, ContentDigest::Weak(Digest(n)));
        idx.insert(k(1), 10);
        idx.insert(k(2), 20);
        assert_eq!(idx.remove(&k(1)), Some(10));
        // The freed slot is really free: inserting 3 must NOT evict the
        // live 2 (the stale queue slot for 1 does not count against the
        // capacity).
        idx.insert(k(3), 30);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.get(&k(2)), Some(&20));
        // One more insert overflows for real and evicts the oldest live
        // entry (2), never losing the newest.
        idx.insert(k(4), 40);
        assert!(idx.len() <= 2);
        assert_eq!(idx.get(&k(2)), None);
        assert_eq!(idx.get(&k(3)), Some(&30));
        assert_eq!(idx.get(&k(4)), Some(&40));
    }

    #[test]
    fn reinserted_key_survives_its_own_stale_slot() {
        // remove + re-insert leaves a stale queue slot for the same key;
        // a later overflow must evict the oldest *live* entry, never the
        // freshly re-inserted one (the dedup pipeline hits this via
        // digest_forget followed by digest_record of the same content).
        let mut idx: DigestIndex<u32> = DigestIndex::new(2);
        let k = |n: u64| (n, ContentDigest::Weak(Digest(n)));
        idx.insert(k(1), 10);
        idx.insert(k(2), 20);
        idx.remove(&k(1));
        idx.insert(k(1), 11); // re-insert: queue now holds a stale slot for 1
        idx.insert(k(3), 30); // overflow: 2 is the oldest live entry
        assert_eq!(idx.get(&k(1)), Some(&11), "re-insert must survive");
        assert_eq!(idx.get(&k(2)), None);
        assert_eq!(idx.get(&k(3)), Some(&30));
        assert!(idx.len() <= 2);
    }

    #[test]
    fn refresh_churn_keeps_queue_bounded() {
        // The dedup pipeline re-records every unique key on every
        // commit. A live key parked at the queue front (content
        // committed once, never again) must not shield the stale slots
        // that refreshes of *other* keys leave behind — the queue stays
        // proportional to the live entries, not the commit count.
        let mut idx: DigestIndex<u32> = DigestIndex::new(1 << 16);
        let k = |n: u64| (n, ContentDigest::Weak(Digest(n)));
        idx.insert(k(0), 0); // parked live front slot
        for round in 0..10_000u32 {
            idx.insert(k(1), round); // the same checkpoint key, refreshed
        }
        assert_eq!(idx.len(), 2);
        assert!(
            idx.order.len() <= 8,
            "queue grew to {} slots for 2 live entries",
            idx.order.len()
        );
        assert_eq!(idx.get(&k(0)), Some(&0));
        assert_eq!(idx.get(&k(1)), Some(&9_999));
    }

    #[test]
    fn zero_capacity_index_is_inert() {
        let mut idx: DigestIndex<u32> = DigestIndex::new(0);
        idx.insert((1, ContentDigest::Weak(Digest(1))), 10);
        assert!(idx.is_empty());
        assert_eq!(idx.get(&(1, ContentDigest::Weak(Digest(1)))), None);
    }

    #[test]
    fn reinsert_updates_value_without_growing() {
        let mut idx: DigestIndex<u32> = DigestIndex::new(4);
        idx.insert((1, ContentDigest::Weak(Digest(1))), 10);
        idx.insert((1, ContentDigest::Weak(Digest(1))), 11);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.get(&(1, ContentDigest::Weak(Digest(1)))), Some(&11));
    }
}
