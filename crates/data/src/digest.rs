//! Content digests used for cheap equality checks in tests and for
//! content-addressing diagnostics.
//!
//! FNV-1a over 64 bits is sufficient here: digests are never used for
//! security, only to compare payloads without materializing both sides,
//! and collisions in test-sized inputs are vanishingly unlikely.

/// A 64-bit FNV-1a digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Digest(pub u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a hasher.
#[derive(Debug, Clone)]
pub struct Hasher {
    state: u64,
}

impl Default for Hasher {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher {
    /// Start a fresh digest.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Absorb bytes.
    #[inline]
    pub fn update(&mut self, data: &[u8]) {
        let mut s = self.state;
        for &b in data {
            s ^= b as u64;
            s = s.wrapping_mul(FNV_PRIME);
        }
        self.state = s;
    }

    /// Finish and produce the digest.
    pub fn finish(&self) -> Digest {
        Digest(self.state)
    }
}

impl Digest {
    /// Digest a byte slice in one call.
    pub fn of(data: &[u8]) -> Digest {
        let mut h = Hasher::new();
        h.update(data);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(Digest::of(b""), Digest(0xcbf29ce484222325));
        assert_eq!(Digest::of(b"a"), Digest(0xaf63dc4c8601ec8c));
        assert_eq!(Digest::of(b"foobar"), Digest(0x85944171f73967e8));
    }

    #[test]
    fn incremental_equals_oneshot() {
        let mut h = Hasher::new();
        h.update(b"hello ");
        h.update(b"world");
        assert_eq!(h.finish(), Digest::of(b"hello world"));
    }

    #[test]
    fn order_matters() {
        assert_ne!(Digest::of(b"ab"), Digest::of(b"ba"));
    }
}
