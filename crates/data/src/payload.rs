//! The payload rope: a cheaply sliceable, concatenable byte sequence whose
//! segments are either literal [`bytes::Bytes`], synthetic extents, or
//! zero-fill.
//!
//! Every storage layer in the workspace moves `Payload` values instead of
//! `Vec<u8>`. For tests and real-file examples the segments hold literal
//! bytes; for testbed-scale simulations the segments are synthetic
//! descriptors (seed + stream offset) so a 2 GB image costs O(1) memory.
//! Either way the byte content is fully defined: `materialize`, `byte_at`,
//! `digest` and equality all agree regardless of representation.

use crate::digest::{Digest, Hasher};
use crate::synth::SynthSource;
use bytes::Bytes;
use std::fmt;

/// One segment of a payload rope.
#[derive(Debug, Clone)]
enum Seg {
    /// Literal bytes.
    Bytes(Bytes),
    /// `len` bytes of the synthetic stream `seed` starting at stream
    /// position `start`.
    Synth { seed: u64, start: u64, len: u64 },
    /// `len` zero bytes.
    Zero { len: u64 },
}

impl Seg {
    #[inline]
    fn len(&self) -> u64 {
        match self {
            Seg::Bytes(b) => b.len() as u64,
            Seg::Synth { len, .. } | Seg::Zero { len } => *len,
        }
    }

    /// Sub-slice of this segment; `range` is relative to the segment start
    /// and must be within bounds.
    fn slice(&self, start: u64, end: u64) -> Seg {
        debug_assert!(start <= end && end <= self.len());
        match self {
            Seg::Bytes(b) => Seg::Bytes(b.slice(start as usize..end as usize)),
            Seg::Synth {
                seed, start: s0, ..
            } => Seg::Synth {
                seed: *seed,
                start: s0 + start,
                len: end - start,
            },
            Seg::Zero { .. } => Seg::Zero { len: end - start },
        }
    }

    #[inline]
    fn byte_at(&self, pos: u64) -> u8 {
        debug_assert!(pos < self.len());
        match self {
            Seg::Bytes(b) => b[pos as usize],
            Seg::Synth { seed, start, .. } => SynthSource::new(*seed).byte_at(start + pos),
            Seg::Zero { .. } => 0,
        }
    }

    fn write_into(&self, out: &mut [u8]) {
        debug_assert_eq!(out.len() as u64, self.len());
        match self {
            Seg::Bytes(b) => out.copy_from_slice(b),
            Seg::Synth { seed, start, .. } => SynthSource::new(*seed).fill(*start, out),
            Seg::Zero { .. } => out.fill(0),
        }
    }

    /// Attempt to extend `self` with `other` if they are contiguous parts of
    /// the same underlying stream. Keeps rope length bounded under repeated
    /// appends of adjacent synthetic/zero extents.
    fn try_coalesce(&self, other: &Seg) -> Option<Seg> {
        match (self, other) {
            (Seg::Zero { len: a }, Seg::Zero { len: b }) => Some(Seg::Zero { len: a + b }),
            (
                Seg::Synth {
                    seed: s1,
                    start: st1,
                    len: l1,
                },
                Seg::Synth {
                    seed: s2,
                    start: st2,
                    len: l2,
                },
            ) if s1 == s2 && st1 + l1 == *st2 => Some(Seg::Synth {
                seed: *s1,
                start: *st1,
                len: l1 + l2,
            }),
            _ => None,
        }
    }
}

/// A borrowed view of one rope segment, exposing the payload's *structure*
/// without materializing it. Serializers use this so a synthetic 2 GB
/// extent costs a dozen bytes on the wire instead of 2 GB — the receiving
/// side rebuilds an equivalent rope and every content operation (digest,
/// equality, `materialize`) agrees because they are representation-
/// independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegView<'a> {
    /// Literal bytes.
    Bytes(&'a [u8]),
    /// `len` bytes of synthetic stream `seed` from stream position `start`.
    Synth {
        /// Stream seed.
        seed: u64,
        /// Stream position of the first byte.
        start: u64,
        /// Extent length.
        len: u64,
    },
    /// `len` zero bytes.
    Zero {
        /// Extent length.
        len: u64,
    },
}

/// A cheaply sliceable and concatenable byte sequence.
///
/// Cloning is O(number of segments); slicing shares underlying literal
/// buffers via [`Bytes`].
#[derive(Clone, Default)]
pub struct Payload {
    segs: Vec<Seg>,
    len: u64,
}

impl Payload {
    /// The empty payload.
    pub fn empty() -> Self {
        Self::default()
    }

    /// A payload of `len` zero bytes (O(1) memory).
    pub fn zeros(len: u64) -> Self {
        if len == 0 {
            return Self::empty();
        }
        Self {
            segs: vec![Seg::Zero { len }],
            len,
        }
    }

    /// A payload of `len` bytes of synthetic stream `seed`, starting at
    /// stream position `start` (O(1) memory).
    pub fn synth(seed: u64, start: u64, len: u64) -> Self {
        if len == 0 {
            return Self::empty();
        }
        Self {
            segs: vec![Seg::Synth { seed, start, len }],
            len,
        }
    }

    /// A payload holding literal bytes.
    pub fn from_bytes(data: impl Into<Bytes>) -> Self {
        let b: Bytes = data.into();
        if b.is_empty() {
            return Self::empty();
        }
        let len = b.len() as u64;
        Self {
            segs: vec![Seg::Bytes(b)],
            len,
        }
    }

    /// Total length in bytes.
    #[inline]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the payload is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of rope segments (diagnostic; tests assert coalescing works).
    pub fn segment_count(&self) -> usize {
        self.segs.len()
    }

    /// Iterate the rope structure as borrowed [`SegView`]s, in order.
    pub fn segments(&self) -> impl Iterator<Item = SegView<'_>> {
        self.segs.iter().map(|seg| match seg {
            Seg::Bytes(b) => SegView::Bytes(b),
            Seg::Synth { seed, start, len } => SegView::Synth {
                seed: *seed,
                start: *start,
                len: *len,
            },
            Seg::Zero { len } => SegView::Zero { len: *len },
        })
    }

    /// Append another payload, coalescing adjacent compatible segments.
    pub fn append(&mut self, other: Payload) {
        for seg in other.segs {
            self.push_seg(seg);
        }
    }

    /// Concatenate two payloads.
    pub fn concat(mut self, other: Payload) -> Payload {
        self.append(other);
        self
    }

    fn push_seg(&mut self, seg: Seg) {
        let l = seg.len();
        if l == 0 {
            return;
        }
        if let Some(last) = self.segs.last() {
            if let Some(merged) = last.try_coalesce(&seg) {
                *self.segs.last_mut().expect("non-empty") = merged;
                self.len += l;
                return;
            }
        }
        self.segs.push(seg);
        self.len += l;
    }

    /// Sub-payload covering `start..end` (must be within bounds).
    pub fn slice(&self, start: u64, end: u64) -> Payload {
        assert!(
            start <= end && end <= self.len,
            "slice {start}..{end} out of bounds (len {})",
            self.len
        );
        let mut out = Payload::empty();
        if start == end {
            return out;
        }
        let mut pos = 0u64;
        for seg in &self.segs {
            let sl = seg.len();
            let seg_start = pos;
            let seg_end = pos + sl;
            pos = seg_end;
            if seg_end <= start {
                continue;
            }
            if seg_start >= end {
                break;
            }
            let from = start.max(seg_start) - seg_start;
            let to = end.min(seg_end) - seg_start;
            out.push_seg(seg.slice(from, to));
        }
        debug_assert_eq!(out.len, end - start);
        out
    }

    /// The byte at position `pos`.
    pub fn byte_at(&self, pos: u64) -> u8 {
        assert!(
            pos < self.len,
            "byte_at {pos} out of bounds (len {})",
            self.len
        );
        let mut off = pos;
        for seg in &self.segs {
            if off < seg.len() {
                return seg.byte_at(off);
            }
            off -= seg.len();
        }
        unreachable!("position within len must fall in a segment")
    }

    /// Copy the full contents into `out` (whose length must equal `len()`).
    pub fn write_into(&self, out: &mut [u8]) {
        assert_eq!(out.len() as u64, self.len, "destination size mismatch");
        let mut off = 0usize;
        for seg in &self.segs {
            let l = seg.len() as usize;
            seg.write_into(&mut out[off..off + l]);
            off += l;
        }
    }

    /// Materialize the full contents as a vector.
    pub fn materialize(&self) -> Vec<u8> {
        let mut v = vec![0u8; self.len as usize];
        self.write_into(&mut v);
        v
    }

    /// Content digest, computed without allocating the whole payload at
    /// once (synthetic segments are streamed through a small buffer).
    pub fn digest(&self) -> Digest {
        let mut h = Hasher::new();
        let mut buf = [0u8; 4096];
        for seg in &self.segs {
            match seg {
                Seg::Bytes(b) => h.update(b),
                _ => {
                    let mut remaining = seg.len();
                    let mut at = 0u64;
                    while remaining > 0 {
                        let n = remaining.min(buf.len() as u64) as usize;
                        seg.slice(at, at + n as u64).write_into(&mut buf[..n]);
                        h.update(&buf[..n]);
                        at += n as u64;
                        remaining -= n as u64;
                    }
                }
            }
        }
        h.finish()
    }

    /// SHA-256 content digest, streamed like [`Payload::digest`] so
    /// synthetic segments never materialize whole.
    pub fn digest_sha256(&self) -> crate::sha256::Sha256Digest {
        let mut h = crate::sha256::Sha256::new();
        let mut buf = [0u8; 4096];
        for seg in &self.segs {
            match seg {
                Seg::Bytes(b) => h.update(b),
                _ => {
                    let mut remaining = seg.len();
                    let mut at = 0u64;
                    while remaining > 0 {
                        let n = remaining.min(buf.len() as u64) as usize;
                        seg.slice(at, at + n as u64).write_into(&mut buf[..n]);
                        h.update(&buf[..n]);
                        at += n as u64;
                        remaining -= n as u64;
                    }
                }
            }
        }
        h.finish()
    }

    /// The digest half of this payload's dedup [`crate::ContentKey`]:
    /// weak (FNV-64, consumer must byte-verify hits) or strong (SHA-256,
    /// hits trusted outright).
    pub fn content_digest(&self, strong: bool) -> crate::ContentDigest {
        if strong {
            crate::ContentDigest::Strong(self.digest_sha256())
        } else {
            crate::ContentDigest::Weak(self.digest())
        }
    }

    /// Whether the contents equal `other` byte-for-byte. Fast paths on
    /// structural equality of synthetic descriptors.
    pub fn content_eq(&self, other: &Payload) -> bool {
        if self.len != other.len {
            return false;
        }
        if self.len == 0 {
            return true;
        }
        // Structural fast path: identical single-segment descriptors.
        if let (Some(a), Some(b)) = (self.single_seg(), other.single_seg()) {
            match (a, b) {
                (Seg::Zero { .. }, Seg::Zero { .. }) => return true,
                (
                    Seg::Synth {
                        seed: s1,
                        start: t1,
                        ..
                    },
                    Seg::Synth {
                        seed: s2,
                        start: t2,
                        ..
                    },
                ) if s1 == s2 && t1 == t2 => return true,
                _ => {}
            }
        }
        self.digest() == other.digest()
    }

    fn single_seg(&self) -> Option<&Seg> {
        if self.segs.len() == 1 {
            self.segs.first()
        } else {
            None
        }
    }

    /// Overwrite the region `at..at + patch.len()` with `patch`, returning
    /// the new payload. Used by layers that maintain whole-object images
    /// (e.g. chunk read-modify-write).
    pub fn overwrite(&self, at: u64, patch: Payload) -> Payload {
        let mut out = self.clone();
        out.overwrite_in_place(at, patch);
        out
    }

    /// Overwrite the region `at..at + patch.len()` with `patch`, in place.
    ///
    /// Single pass over the segment rope: segments strictly before or
    /// after the patched window are kept (moved, not copied), boundary
    /// segments are split, and only the patch's own segments are inserted.
    /// The former `slice(0, at) + patch + slice(end, len)` rebuild scanned
    /// the rope twice from position zero per call, which made repeated
    /// chunk read-modify-writes quadratic in segment count.
    pub fn overwrite_in_place(&mut self, at: u64, patch: Payload) {
        let plen = patch.len();
        assert!(
            at + plen <= self.len,
            "overwrite {}..{} out of bounds (len {})",
            at,
            at + plen,
            self.len
        );
        if plen == 0 {
            return;
        }
        let end = at + plen;
        let total = self.len;
        let old = std::mem::take(self);
        self.segs.reserve(old.segs.len() + patch.segs.len());
        let mut pos = 0u64;
        let mut patch_done = false;
        for seg in old.segs {
            let sl = seg.len();
            let (seg_start, seg_end) = (pos, pos + sl);
            pos = seg_end;
            // Head piece (possibly the whole segment) before the window.
            if seg_start < at {
                let keep_to = at.min(seg_end);
                if keep_to == seg_end {
                    self.push_seg(seg);
                    continue;
                }
                self.push_seg(seg.slice(0, keep_to - seg_start));
            }
            // The patch goes in exactly once, when we first reach `at`.
            if !patch_done && seg_end > at {
                for p in &patch.segs {
                    self.push_seg(p.clone());
                }
                patch_done = true;
            }
            // Tail piece after the window.
            if seg_end > end {
                let from = end.max(seg_start);
                self.push_seg(seg.slice(from - seg_start, sl));
            }
        }
        debug_assert!(patch_done, "window within bounds implies insertion");
        debug_assert_eq!(self.len, total);
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Payload(len={}, segs=[", self.len)?;
        for (i, seg) in self.segs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match seg {
                Seg::Bytes(b) => write!(f, "bytes:{}", b.len())?,
                Seg::Synth { seed, start, len } => write!(f, "synth{{{seed:#x}@{start}+{len}}}")?,
                Seg::Zero { len } => write!(f, "zero:{len}")?,
            }
        }
        write!(f, "])")
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        self.content_eq(other)
    }
}
impl Eq for Payload {}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Self {
        Payload::from_bytes(v)
    }
}

impl From<&[u8]> for Payload {
    fn from(v: &[u8]) -> Self {
        Payload::from_bytes(Bytes::copy_from_slice(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_behaves() {
        let p = Payload::empty();
        assert_eq!(p.len(), 0);
        assert!(p.is_empty());
        assert_eq!(p.materialize(), Vec::<u8>::new());
        assert!(p.content_eq(&Payload::zeros(0)));
    }

    #[test]
    fn zeros_materialize() {
        assert_eq!(Payload::zeros(5).materialize(), vec![0; 5]);
    }

    #[test]
    fn literal_roundtrip() {
        let p = Payload::from(&b"hello world"[..]);
        assert_eq!(p.materialize(), b"hello world");
        assert_eq!(p.byte_at(4), b'o');
    }

    #[test]
    fn synth_slice_equals_stream_slice() {
        let p = Payload::synth(9, 100, 50);
        let s = p.slice(10, 30);
        assert_eq!(s.materialize(), SynthSource::new(9).materialize(110, 20));
    }

    #[test]
    fn concat_and_slice_roundtrip() {
        let a = Payload::from(&b"abc"[..]);
        let b = Payload::synth(1, 0, 4);
        let c = Payload::zeros(3);
        let whole = a.clone().concat(b.clone()).concat(c.clone());
        assert_eq!(whole.len(), 10);
        let mut expect = a.materialize();
        expect.extend(b.materialize());
        expect.extend(c.materialize());
        assert_eq!(whole.materialize(), expect);
        assert_eq!(whole.slice(2, 8).materialize(), &expect[2..8]);
    }

    #[test]
    fn adjacent_synth_segments_coalesce() {
        let mut p = Payload::synth(3, 0, 10);
        p.append(Payload::synth(3, 10, 10));
        assert_eq!(p.segment_count(), 1);
        assert_eq!(p.len(), 20);
        // Non-adjacent must not coalesce.
        p.append(Payload::synth(3, 100, 5));
        assert_eq!(p.segment_count(), 2);
        // Zeros coalesce with zeros.
        let mut z = Payload::zeros(4);
        z.append(Payload::zeros(6));
        assert_eq!(z.segment_count(), 1);
    }

    #[test]
    fn overwrite_patches_region() {
        let base = Payload::zeros(10);
        let patched = base.overwrite(3, Payload::from(&b"xyz"[..]));
        assert_eq!(patched.materialize(), b"\0\0\0xyz\0\0\0\0");
    }

    #[test]
    fn overwrite_in_place_matches_rebuild_everywhere() {
        // Sweep every (offset, length) against the naive slice+concat
        // reference, over a multi-segment rope.
        let base = Payload::from(&b"abcd"[..])
            .concat(Payload::synth(4, 8, 6))
            .concat(Payload::zeros(5));
        let len = base.len();
        for at in 0..len {
            for plen in 0..=(len - at) {
                let patch = Payload::synth(9, 100, plen);
                let reference = base
                    .slice(0, at)
                    .concat(patch.clone())
                    .concat(base.slice(at + plen, len));
                let mut got = base.clone();
                got.overwrite_in_place(at, patch);
                assert_eq!(got.len(), len);
                assert!(
                    got.content_eq(&reference),
                    "mismatch at={at} plen={plen}: {got:?} vs {reference:?}"
                );
            }
        }
    }

    #[test]
    fn overwrite_in_place_boundaries() {
        // Patch at 0, at the exact end, across segment boundaries, and
        // covering the whole payload.
        let mut p = Payload::zeros(4).concat(Payload::synth(1, 0, 4));
        p.overwrite_in_place(0, Payload::from(&b"ab"[..]));
        assert_eq!(&p.materialize()[..2], b"ab");
        p.overwrite_in_place(6, Payload::from(&b"yz"[..]));
        assert_eq!(&p.materialize()[6..], b"yz");
        p.overwrite_in_place(3, Payload::from(&b"mid"[..]));
        assert_eq!(&p.materialize()[3..6], b"mid");
        p.overwrite_in_place(0, Payload::synth(5, 0, 8));
        assert!(p.content_eq(&Payload::synth(5, 0, 8)));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn overwrite_in_place_oob_panics() {
        let mut p = Payload::zeros(4);
        p.overwrite_in_place(2, Payload::zeros(3));
    }

    #[test]
    fn content_eq_across_representations() {
        // A literal payload holding the same bytes as a synthetic one.
        let synth = Payload::synth(5, 32, 100);
        let lit = Payload::from(synth.materialize());
        assert!(synth.content_eq(&lit));
        assert_eq!(synth, lit);
        // Fast path: same descriptor.
        assert!(synth.content_eq(&Payload::synth(5, 32, 100)));
        // Different stream position differs (with overwhelming likelihood).
        assert!(!synth.content_eq(&Payload::synth(5, 33, 100)));
    }

    #[test]
    fn digest_is_representation_independent() {
        let p = Payload::synth(77, 0, 9000);
        let q = Payload::from(p.materialize());
        assert_eq!(p.digest(), q.digest());
        // And slicing + rejoining preserves it.
        let r = p.slice(0, 1234).concat(p.slice(1234, 9000));
        assert_eq!(r.digest(), p.digest());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        Payload::zeros(4).slice(2, 6);
    }
}
