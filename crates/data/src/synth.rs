//! Deterministic synthetic byte generation.
//!
//! A synthetic source is identified by a 64-bit seed; the byte at absolute
//! position `pos` is a pure function of `(seed, pos)`. This gives
//! position-addressable pseudo-random content: slicing a synthetic extent
//! anywhere yields exactly the bytes that materializing the whole extent
//! would have produced at those offsets, which is what lets [`crate::Payload`]
//! ropes be split and recombined freely.
//!
//! The mixer is SplitMix64 (Steele et al., "Fast splittable pseudorandom
//! number generators"), applied to `seed ^ (pos / 8)` and indexed by
//! `pos % 8`, so generation proceeds a word at a time when filling buffers.

/// A deterministic, position-addressable byte source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SynthSource {
    /// Seed identifying the content stream.
    pub seed: u64,
}

#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The byte at absolute position `pos` of the stream with the given seed.
#[inline]
pub fn synth_byte(seed: u64, pos: u64) -> u8 {
    let word = splitmix64(seed ^ (pos >> 3));
    (word >> ((pos & 7) * 8)) as u8
}

impl SynthSource {
    /// Create a source from a seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The byte at `pos`.
    #[inline]
    pub fn byte_at(&self, pos: u64) -> u8 {
        synth_byte(self.seed, pos)
    }

    /// Fill `buf` with the bytes at positions `start..start + buf.len()`.
    ///
    /// Works word-at-a-time on the aligned interior for throughput; the
    /// unaligned head and tail fall back to per-byte generation.
    pub fn fill(&self, start: u64, buf: &mut [u8]) {
        let mut pos = start;
        let mut i = 0usize;
        // Unaligned head.
        while i < buf.len() && pos & 7 != 0 {
            buf[i] = synth_byte(self.seed, pos);
            pos += 1;
            i += 1;
        }
        // Aligned interior, one u64 at a time.
        while i + 8 <= buf.len() {
            let word = splitmix64(self.seed ^ (pos >> 3));
            buf[i..i + 8].copy_from_slice(&word.to_le_bytes());
            pos += 8;
            i += 8;
        }
        // Tail.
        while i < buf.len() {
            buf[i] = synth_byte(self.seed, pos);
            pos += 1;
            i += 1;
        }
    }

    /// Materialize `len` bytes starting at `start`.
    pub fn materialize(&self, start: u64, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        self.fill(start, &mut v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_is_deterministic() {
        for pos in [0u64, 1, 7, 8, 9, 1 << 20, u64::MAX - 1] {
            assert_eq!(synth_byte(42, pos), synth_byte(42, pos));
        }
    }

    #[test]
    fn different_seeds_differ() {
        // Not a proof, but over 4 KiB identical streams would be absurd.
        let a = SynthSource::new(1).materialize(0, 4096);
        let b = SynthSource::new(2).materialize(0, 4096);
        assert_ne!(a, b);
    }

    #[test]
    fn fill_matches_per_byte_generation_at_all_alignments() {
        let src = SynthSource::new(0xdead_beef);
        for start in 0u64..16 {
            for len in 0usize..40 {
                let filled = src.materialize(start, len);
                let manual: Vec<u8> = (0..len as u64).map(|i| src.byte_at(start + i)).collect();
                assert_eq!(filled, manual, "start={start} len={len}");
            }
        }
    }

    #[test]
    fn slices_of_stream_are_consistent() {
        // materialize [0, 100) must equal materialize [0,50) ++ [50,100).
        let src = SynthSource::new(7);
        let whole = src.materialize(0, 100);
        let mut parts = src.materialize(0, 50);
        parts.extend(src.materialize(50, 50));
        assert_eq!(whole, parts);
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        // Chi-squared-ish sanity check: no byte value should be wildly
        // over- or under-represented in 64 KiB of output.
        let data = SynthSource::new(99).materialize(0, 65536);
        let mut counts = [0u32; 256];
        for b in data {
            counts[b as usize] += 1;
        }
        let expected = 65536.0 / 256.0;
        for (v, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) > expected * 0.5 && (c as f64) < expected * 1.5,
                "value {v} count {c} far from expected {expected}"
            );
        }
    }
}
