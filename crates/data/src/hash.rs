//! A fast hasher for small trusted integer keys (chunk ids, tree-node
//! keys, node ids).
//!
//! The storage hot paths hash millions of sequential `u64` identifiers
//! per run; SipHash's DoS resistance buys nothing against keys the
//! service allocates itself and costs ~10× per operation. This hasher is
//! a Fibonacci multiply with a final fold so both the low bits (bucket
//! index) and high bits (control bytes) carry entropy.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative hasher for integer keys. Not DoS-resistant — use only
/// for keys the service itself allocates.
#[derive(Debug, Default, Clone, Copy)]
pub struct U64Hasher(u64);

const FIB: u64 = 0x9e37_79b9_7f4a_7c15;

impl Hasher for U64Hasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Fold the high bits down: hash tables index buckets with the
        // low bits, where a bare multiply is weakest.
        self.0 ^ (self.0 >> 32)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (derived Hash on compound keys may emit raw
        // bytes, e.g. a length prefix): fold 8 bytes at a time.
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.write_u64(n as u64)
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.write_u64(n as u64)
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(FIB);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64)
    }
}

/// `BuildHasher` for [`U64Hasher`].
pub type U64BuildHasher = BuildHasherDefault<U64Hasher>;

/// A `HashMap` keyed by trusted integer-like keys.
pub type FastMap<K, V> = HashMap<K, V, U64BuildHasher>;

/// A `HashSet` of trusted integer-like keys.
pub type FastSet<K> = HashSet<K, U64BuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FastMap<u64, u64> = FastMap::default();
        for i in 0..10_000u64 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(m.get(&i), Some(&(i * 2)));
        }
    }

    #[test]
    fn sequential_keys_spread_low_bits() {
        // Bucket-index entropy: consecutive keys must not collide in the
        // low bits en masse.
        let mut low: FastSet<u64> = FastSet::default();
        for i in 0..256u64 {
            let mut h = U64Hasher::default();
            h.write_u64(i);
            low.insert(h.finish() & 0xFF);
        }
        assert!(low.len() > 128, "low-bit spread too weak: {}", low.len());
    }

    #[test]
    fn compound_keys_hash_consistently() {
        let mut m: FastMap<(u64, u64), u32> = FastMap::default();
        m.insert((1, 2), 7);
        assert_eq!(m.get(&(1, 2)), Some(&7));
        assert_eq!(m.get(&(2, 1)), None);
    }
}
