//! Byte-range arithmetic shared by every storage layer.
//!
//! A range is the half-open interval `start..end` over `u64` byte offsets.
//! Chunk arithmetic follows the paper's striping scheme: an image of length
//! `L` split into chunks of size `c` has `ceil(L / c)` chunks, chunk `i`
//! covering `i*c .. min((i+1)*c, L)`.

use std::ops::Range;

/// Alias used across the workspace for byte intervals.
pub type ByteRange = Range<u64>;

/// Intersection of two ranges; empty ranges are normalized to `0..0`.
#[inline]
pub fn intersect(a: &ByteRange, b: &ByteRange) -> ByteRange {
    let start = a.start.max(b.start);
    let end = a.end.min(b.end);
    if start >= end {
        0..0
    } else {
        start..end
    }
}

/// Whether two ranges share at least one byte. Empty ranges never overlap.
#[inline]
pub fn ranges_overlap(a: &ByteRange, b: &ByteRange) -> bool {
    a.start < a.end && b.start < b.end && a.start < b.end && b.start < a.end
}

/// The minimal set of chunk indices whose union covers `range`
/// (the paper's "full minimal set of chunks that cover the requested
/// region", §3.3 strategy 1). Returns an index range `first..last+1`.
#[inline]
pub fn chunk_cover(range: &ByteRange, chunk_size: u64) -> Range<u64> {
    assert!(chunk_size > 0, "chunk size must be positive");
    if range.start >= range.end {
        return 0..0;
    }
    let first = range.start / chunk_size;
    let last = (range.end - 1) / chunk_size;
    first..last + 1
}

/// The byte range covered by chunk `index`, clamped to an image of
/// `image_len` bytes.
#[inline]
pub fn chunk_range(index: u64, chunk_size: u64, image_len: u64) -> ByteRange {
    assert!(chunk_size > 0, "chunk size must be positive");
    let start = index * chunk_size;
    let end = (start + chunk_size).min(image_len);
    assert!(
        start < end,
        "chunk {index} out of bounds for image of {image_len} bytes"
    );
    start..end
}

/// Number of chunks needed to cover `image_len` bytes.
#[inline]
pub fn chunk_count(image_len: u64, chunk_size: u64) -> u64 {
    assert!(chunk_size > 0, "chunk size must be positive");
    image_len.div_ceil(chunk_size)
}

/// Length helper tolerating the `0..0` empty normalization.
#[inline]
pub fn range_len(r: &ByteRange) -> u64 {
    r.end.saturating_sub(r.start)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_basic() {
        assert_eq!(intersect(&(0..10), &(5..15)), 5..10);
        assert_eq!(intersect(&(0..10), &(10..15)), 0..0);
        assert_eq!(intersect(&(3..4), &(0..100)), 3..4);
        assert_eq!(intersect(&(0..0), &(0..100)), 0..0);
    }

    #[test]
    fn overlap_is_symmetric_and_strict() {
        assert!(ranges_overlap(&(0..10), &(9..11)));
        assert!(!ranges_overlap(&(0..10), &(10..11)));
        assert!(!ranges_overlap(&(10..11), &(0..10)));
        assert!(!ranges_overlap(&(5..5), &(0..10)));
    }

    #[test]
    fn chunk_cover_exact_boundaries() {
        // A read of exactly one chunk covers exactly that chunk.
        assert_eq!(chunk_cover(&(256..512), 256), 1..2);
        // A read of one byte past a boundary pulls in the next chunk.
        assert_eq!(chunk_cover(&(256..513), 256), 1..3);
        // A one-byte read.
        assert_eq!(chunk_cover(&(511..512), 256), 1..2);
        // Empty read covers nothing.
        assert_eq!(chunk_cover(&(512..512), 256), 0..0);
    }

    #[test]
    fn chunk_range_clamps_tail() {
        // 1000-byte image, 256-byte chunks: last chunk is short.
        assert_eq!(chunk_range(3, 256, 1000), 768..1000);
        assert_eq!(chunk_range(0, 256, 1000), 0..256);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn chunk_range_rejects_out_of_bounds() {
        chunk_range(4, 256, 1000);
    }

    #[test]
    fn chunk_count_rounding() {
        assert_eq!(chunk_count(0, 256), 0);
        assert_eq!(chunk_count(1, 256), 1);
        assert_eq!(chunk_count(256, 256), 1);
        assert_eq!(chunk_count(257, 256), 2);
        assert_eq!(chunk_count(2 << 30, 256 << 10), 8192);
    }

    #[test]
    fn cover_and_range_are_inverse() {
        let image_len = 10_000u64;
        let cs = 333u64;
        for i in 0..chunk_count(image_len, cs) {
            let r = chunk_range(i, cs, image_len);
            assert_eq!(chunk_cover(&r, cs), i..i + 1);
        }
    }
}
