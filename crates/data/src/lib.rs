//! # bff-data
//!
//! The shared data plane for the `bff` workspace: byte-range utilities,
//! disjoint range sets, extent maps, digests and a *payload rope* that can
//! represent either literal bytes or deterministically generated synthetic
//! content.
//!
//! Synthetic payloads are what make repository-scale experiments feasible:
//! a 2 GB VM image replicated across 110 simulated compute nodes would not
//! fit in memory as literal bytes, but as `(seed, offset, len)` descriptors
//! it occupies a few dozen bytes per extent while remaining *byte-accurate*:
//! every byte of a synthetic extent has a defined value that can be
//! materialized, compared, digested and sliced exactly like literal data.
//! All storage-stack code in the workspace (BlobSeer chunks, mirrored image
//! regions, qcow2 clusters, PVFS stripes) moves [`Payload`] values, so the
//! same code path is exercised whether the contents are real or synthetic.

pub mod digest;
pub mod extent;
pub mod hash;
pub mod log;
pub mod payload;
pub mod range;
pub mod rangeset;
pub mod sha256;
pub mod synth;

pub use digest::{ContentDigest, ContentKey, Digest, DigestIndex};
pub use extent::{ExtentMap, ExtentValue};
pub use hash::{FastMap, FastSet, U64BuildHasher, U64Hasher};
pub use log::RecordLog;
pub use payload::{Payload, SegView};
pub use range::{chunk_cover, chunk_range, intersect, ranges_overlap, ByteRange};
pub use rangeset::RangeSet;
pub use sha256::{Sha256, Sha256Digest};
pub use synth::{synth_byte, SynthSource};
