//! A minimal, dependency-free SHA-256 implementation (FIPS 180-4).
//!
//! This is the workspace's vendored cryptographic-digest shim: the build
//! environment has no registry access, so instead of pulling `sha2` we
//! carry the ~100 lines of the compression function ourselves. It exists
//! for the *strong* content-addressing mode of the dedup pipeline
//! ([`crate::digest::ContentDigest::Strong`]): with a collision-resistant
//! digest, an index hit can be trusted without the byte-verification
//! round the 64-bit FNV key requires.
//!
//! The implementation is the straightforward streaming one — incremental
//! `update` over a 64-byte block buffer — validated against the FIPS
//! test vectors in the unit tests below. Throughput is irrelevant here
//! (chunks are digested once per commit and the simulator charges no CPU
//! for it), so no effort is spent on unrolling or SIMD.

/// A SHA-256 digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sha256Digest(pub [u8; 32]);

impl std::fmt::Display for Sha256Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for b in self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Incremental SHA-256 hasher.
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Partial input block awaiting compression.
    block: [u8; 64],
    /// Bytes currently buffered in `block`.
    fill: usize,
    /// Total message length so far, bytes.
    len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Start a fresh digest.
    pub fn new() -> Self {
        Self {
            state: H0,
            block: [0u8; 64],
            fill: 0,
            len: 0,
        }
    }

    /// Absorb bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.len += data.len() as u64;
        if self.fill > 0 {
            let take = data.len().min(64 - self.fill);
            self.block[self.fill..self.fill + take].copy_from_slice(&data[..take]);
            self.fill += take;
            data = &data[take..];
            if self.fill == 64 {
                let block = self.block;
                self.compress(&block);
                self.fill = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            self.compress(block.try_into().expect("64-byte split"));
            data = rest;
        }
        if !data.is_empty() {
            self.block[..data.len()].copy_from_slice(data);
            self.fill = data.len();
        }
    }

    /// Finish and produce the digest.
    pub fn finish(mut self) -> Sha256Digest {
        let bit_len = self.len * 8;
        self.update(&[0x80]);
        while self.fill != 56 {
            self.update(&[0]);
        }
        // `update` counts padding into `len`; the captured bit length is
        // the real message length, appended big-endian per the spec.
        let block_fill = self.fill;
        self.block[block_fill..block_fill + 8].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.block;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        Sha256Digest(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }
}

impl Sha256Digest {
    /// Digest a byte slice in one call.
    pub fn of(data: &[u8]) -> Sha256Digest {
        let mut h = Sha256::new();
        h.update(data);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: Sha256Digest) -> String {
        d.to_string()
    }

    #[test]
    fn fips_vectors() {
        // FIPS 180-4 / NIST CAVP reference values.
        assert_eq!(
            hex(Sha256Digest::of(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(Sha256Digest::of(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(Sha256Digest::of(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_oneshot_across_block_boundaries() {
        let data: Vec<u8> = (0..300u32).map(|i| (i * 7 + 3) as u8).collect();
        for split in [0usize, 1, 55, 56, 63, 64, 65, 127, 128, 200, 300] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), Sha256Digest::of(&data), "split at {split}");
        }
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(Sha256Digest::of(b"ab"), Sha256Digest::of(b"ba"));
        assert_ne!(Sha256Digest::of(b"a"), Sha256Digest::of(b"a\0"));
    }
}
