//! Append-only record log with torn-tail recovery: the on-disk framing
//! shared by the durable chunk segments and the metadata journal.
//!
//! Every record travels as `[u32 len LE][u64 checksum LE][payload]`,
//! where the checksum is FNV-1a 64 over the payload bytes. A crash —
//! including `kill -9` mid-`write` — can leave at most a *torn tail*:
//! a prefix of a record at the end of the file. [`RecordLog::open`]
//! scans the file front to back, stops at the first record that is
//! short, oversized or checksum-corrupt, and truncates the file back to
//! the last good byte. Truncation matters: appending after an
//! untruncated torn tail would strand every later record behind
//! unparseable bytes, silently losing them on the *next* replay.
//!
//! The file is created lazily on first append, so opening a log that is
//! never written leaves no artifact on disk — a server process that
//! hosts only manager roles never materializes provider segment files.
//!
//! Policy split, matching the recovery model:
//! - **Replay never panics.** Any corruption maps to "discard the
//!   tail"; callers decide what a lost suffix means.
//! - **Live appends are fail-stop.** An I/O error while the process is
//!   the active writer means the durability contract can no longer be
//!   honored, so append/sync return the error and callers escalate.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

/// Framing overhead per record: u32 length + u64 checksum.
pub const RECORD_HEADER: u64 = 12;

/// Upper bound on a single record's payload. Anything larger in a
/// length header is treated as corruption, which stops a flipped
/// high bit from triggering a multi-gigabyte allocation during replay.
pub const MAX_RECORD: u32 = 256 << 20;

/// FNV-1a 64-bit over `data` — the record checksum. Not cryptographic;
/// it exists to catch torn writes and bit rot, not adversaries.
pub fn fnv64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One recovered record: its byte offset in the file (header included)
/// and its payload.
pub type Recovered = (u64, Vec<u8>);

/// An append-only checksummed record file.
#[derive(Debug)]
pub struct RecordLog {
    path: PathBuf,
    /// Open lazily: `None` until the first append (or if the file
    /// already existed at open).
    file: Option<File>,
    /// Byte length of the durable prefix (file size after truncation).
    len: u64,
    /// Whether bytes were appended since the last `sync`.
    dirty: bool,
}

impl RecordLog {
    /// Open (or prepare to create) the log at `path`, replaying every
    /// intact record. Returns the records in append order, the log
    /// positioned for appends, and whether a torn/corrupt tail was
    /// discarded.
    pub fn open(path: &Path) -> io::Result<(Vec<Recovered>, RecordLog, bool)> {
        let mut records = Vec::new();
        let mut torn = false;
        let mut good_end = 0u64;
        let file = match OpenOptions::new().read(true).write(true).open(path) {
            Ok(mut f) => {
                let mut buf = Vec::new();
                f.read_to_end(&mut buf)?;
                let mut pos = 0usize;
                loop {
                    let rest = &buf[pos..];
                    if rest.is_empty() {
                        break;
                    }
                    if rest.len() < RECORD_HEADER as usize {
                        torn = true;
                        break;
                    }
                    let len = u32::from_le_bytes(rest[0..4].try_into().unwrap());
                    let sum = u64::from_le_bytes(rest[4..12].try_into().unwrap());
                    let body_end = RECORD_HEADER as usize + len as usize;
                    if len > MAX_RECORD || rest.len() < body_end {
                        torn = true;
                        break;
                    }
                    let payload = &rest[RECORD_HEADER as usize..body_end];
                    if fnv64(payload) != sum {
                        torn = true;
                        break;
                    }
                    records.push((pos as u64, payload.to_vec()));
                    pos += body_end;
                    good_end = pos as u64;
                }
                if torn {
                    // Chop the tail so future appends extend a clean
                    // prefix instead of burying themselves behind it.
                    f.set_len(good_end)?;
                    f.sync_data()?;
                }
                f.seek(SeekFrom::Start(good_end))?;
                Some(f)
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => return Err(e),
        };
        let log = RecordLog {
            path: path.to_path_buf(),
            file,
            len: good_end,
            dirty: false,
        };
        Ok((records, log, torn))
    }

    /// The log's path on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Durable byte length (framing included).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether nothing has been appended (and nothing was recovered).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Framed size of a payload of `n` bytes.
    pub fn framed_len(n: usize) -> u64 {
        RECORD_HEADER + n as u64
    }

    fn ensure_file(&mut self) -> io::Result<&mut File> {
        if self.file.is_none() {
            if let Some(parent) = self.path.parent() {
                std::fs::create_dir_all(parent)?;
            }
            let f = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(false)
                .open(&self.path)?;
            self.file = Some(f);
        }
        Ok(self.file.as_mut().unwrap())
    }

    /// Append one record, returning the offset its frame starts at.
    /// The record is written with a single `write_all`, so the kernel
    /// sees header and payload together; durability still requires
    /// [`RecordLog::sync`].
    pub fn append(&mut self, payload: &[u8]) -> io::Result<u64> {
        assert!(
            payload.len() as u64 <= MAX_RECORD as u64,
            "record exceeds MAX_RECORD"
        );
        let off = self.len;
        let mut frame = Vec::with_capacity(RECORD_HEADER as usize + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv64(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        let file = self.ensure_file()?;
        file.write_all(&frame)?;
        self.len = off + frame.len() as u64;
        self.dirty = true;
        Ok(off)
    }

    /// Read back `len` payload bytes of the record whose frame starts at
    /// `off`, verifying the checksum. Returns `None` (never panics, never
    /// returns corrupt bytes) if the stored record fails verification —
    /// the caller treats that as data loss on this replica.
    pub fn read_record(&self, off: u64, len: u32) -> io::Result<Option<Vec<u8>>> {
        let Some(file) = self.file.as_ref() else {
            return Ok(None);
        };
        if off + Self::framed_len(len as usize) > self.len {
            return Ok(None);
        }
        let mut header = [0u8; RECORD_HEADER as usize];
        if file.read_exact_at(&mut header, off).is_err() {
            return Ok(None);
        }
        let stored_len = u32::from_le_bytes(header[0..4].try_into().unwrap());
        let sum = u64::from_le_bytes(header[4..12].try_into().unwrap());
        if stored_len != len {
            return Ok(None);
        }
        let mut payload = vec![0u8; len as usize];
        if file
            .read_exact_at(&mut payload, off + RECORD_HEADER)
            .is_err()
        {
            return Ok(None);
        }
        if fnv64(&payload) != sum {
            return Ok(None);
        }
        Ok(Some(payload))
    }

    /// Flush appended records to stable storage (`fdatasync`), holding
    /// on until the kernel confirms. No-op if nothing was appended since
    /// the last sync (or [`RecordLog::sync_handle`] claim). Returns
    /// whether an fdatasync was actually issued.
    pub fn sync(&mut self) -> io::Result<bool> {
        if !self.dirty {
            return Ok(false);
        }
        if let Some(f) = self.file.as_mut() {
            f.sync_data()?;
        }
        self.dirty = false;
        Ok(true)
    }

    /// Claim the pending appends for an *out-of-lock* fsync: returns an
    /// independently-owned handle (`try_clone`) to the underlying file
    /// and clears the dirty flag, or `None` when nothing was appended
    /// since the last sync. The caller must `sync_data` the handle
    /// before acking anything appended before this call — this is how a
    /// group-commit leader fsyncs the log while appenders keep the
    /// owning lock busy.
    ///
    /// Two caveats, both on the claimer:
    /// - the dirty flag is cleared *before* the fsync completes, so a
    ///   concurrent per-ack [`RecordLog::sync`] may no-op against an
    ///   in-flight claim — the two disciplines must not be mixed on one
    ///   log (a group-commit leader is exclusive by construction);
    /// - an fsync failure after the claim loses the flag; callers are
    ///   fail-stop on live sync errors, matching the module policy.
    pub fn sync_handle(&mut self) -> io::Result<Option<File>> {
        if !self.dirty {
            return Ok(None);
        }
        let f = self
            .file
            .as_ref()
            .expect("dirty log has an open file")
            .try_clone()?;
        self.dirty = false;
        Ok(Some(f))
    }

    /// `fdatasync` unconditionally, even when the dirty flag was claimed
    /// by an in-flight [`RecordLog::sync_handle`] holder. The seal
    /// barriers (segment rotation and compaction) use this so "sealed ⇒
    /// durable" holds regardless of what a concurrent group-commit
    /// leader has claimed but not yet flushed.
    pub fn sync_force(&mut self) -> io::Result<()> {
        if let Some(f) = self.file.as_mut() {
            f.sync_data()?;
        }
        self.dirty = false;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bff-log-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("test.log")
    }

    #[test]
    fn roundtrip_and_reopen() {
        let path = scratch("roundtrip");
        let (recs, mut log, torn) = RecordLog::open(&path).unwrap();
        assert!(recs.is_empty() && !torn);
        let o1 = log.append(b"alpha").unwrap();
        let o2 = log.append(b"beta-bytes").unwrap();
        log.sync().unwrap();
        assert_eq!(log.read_record(o1, 5).unwrap().unwrap(), b"alpha");
        drop(log);
        let (recs, log, torn) = RecordLog::open(&path).unwrap();
        assert!(!torn);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0], (o1, b"alpha".to_vec()));
        assert_eq!(recs[1], (o2, b"beta-bytes".to_vec()));
        assert_eq!(log.read_record(o2, 10).unwrap().unwrap(), b"beta-bytes");
    }

    #[test]
    fn unwritten_log_leaves_no_file() {
        let path = scratch("lazy");
        let (_, log, _) = RecordLog::open(&path).unwrap();
        drop(log);
        assert!(!path.exists());
    }

    #[test]
    fn torn_tail_truncated_on_reopen() {
        let path = scratch("torn");
        let (_, mut log, _) = RecordLog::open(&path).unwrap();
        log.append(b"keep-me").unwrap();
        log.append(b"lose-me").unwrap();
        log.sync().unwrap();
        let full = std::fs::metadata(&path).unwrap().len();
        drop(log);
        // Tear the second record three bytes short of complete.
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 3).unwrap();
        drop(f);
        let (recs, mut log, torn) = RecordLog::open(&path).unwrap();
        assert!(torn);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].1, b"keep-me");
        // Appends extend the clean prefix.
        log.append(b"after").unwrap();
        log.sync().unwrap();
        drop(log);
        let (recs, _, torn) = RecordLog::open(&path).unwrap();
        assert!(!torn);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].1, b"after");
    }

    #[test]
    fn corrupt_payload_rejected_on_read_and_replay() {
        let path = scratch("corrupt");
        let (_, mut log, _) = RecordLog::open(&path).unwrap();
        let off = log.append(b"pristine").unwrap();
        log.sync().unwrap();
        drop(log);
        // Flip a payload byte in place.
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.write_all_at(b"X", RECORD_HEADER + 2).unwrap();
        drop(f);
        let (recs, log, torn) = RecordLog::open(&path).unwrap();
        assert!(torn, "checksum mismatch discards the record");
        assert!(recs.is_empty());
        assert_eq!(log.read_record(off, 8).unwrap(), None);
    }

    #[test]
    fn absurd_length_header_is_corruption_not_alloc() {
        let path = scratch("hugelen");
        std::fs::write(&path, (u32::MAX).to_le_bytes()).unwrap();
        let (recs, _, torn) = RecordLog::open(&path).unwrap();
        assert!(torn);
        assert!(recs.is_empty());
    }
}
