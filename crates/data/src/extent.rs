//! An extent map: disjoint byte ranges each carrying a value, with
//! overwrite semantics (later inserts shadow earlier ones in the
//! overlapped region).
//!
//! This is the in-memory representation of sparse address spaces across the
//! workspace: the simulated local mirror file (offset → payload extents),
//! PVFS stripe contents, and provider chunk stores all build on it. Values
//! must implement [`ExtentValue`] so that partially overlapped extents can
//! be split without materializing anything.

use crate::range::ByteRange;
use std::collections::BTreeMap;

/// A value that can be split at a relative offset.
pub trait ExtentValue: Clone {
    /// Split into the parts before and after `at` (relative to the extent
    /// start, `0 < at < len`).
    fn split(&self, at: u64) -> (Self, Self);
}

impl ExtentValue for () {
    fn split(&self, _at: u64) -> ((), ()) {
        ((), ())
    }
}

impl ExtentValue for crate::payload::Payload {
    fn split(&self, at: u64) -> (Self, Self) {
        (self.slice(0, at), self.slice(at, self.len()))
    }
}

/// Disjoint ranges with values; inserts overwrite.
#[derive(Debug, Clone, Default)]
pub struct ExtentMap<V> {
    /// start -> (end, value); disjoint, non-empty.
    ents: BTreeMap<u64, (u64, V)>,
}

impl<V: ExtentValue> ExtentMap<V> {
    /// The empty map.
    pub fn new() -> Self {
        Self {
            ents: BTreeMap::new(),
        }
    }

    /// Number of stored extents.
    pub fn extent_count(&self) -> usize {
        self.ents.len()
    }

    /// Whether the map has no extents.
    pub fn is_empty(&self) -> bool {
        self.ents.is_empty()
    }

    /// Total bytes covered.
    pub fn covered(&self) -> u64 {
        self.ents.iter().map(|(s, (e, _))| e - s).sum()
    }

    /// Insert `value` for `range`, truncating/splitting whatever it
    /// overlaps. `value`'s logical length must equal the range length.
    pub fn insert(&mut self, range: ByteRange, value: V) {
        if range.start >= range.end {
            return;
        }
        // Handle a predecessor extent overlapping our start.
        if let Some((&s, &(e, _))) = self.ents.range(..range.start).next_back() {
            if e > range.start {
                let (_, (end, v)) = self.ents.remove_entry(&s).expect("present");
                let (left, rest) = v.split(range.start - s);
                self.ents.insert(s, (range.start, left));
                if end > range.end {
                    let (_, right) = rest.split(range.end - range.start);
                    self.ents.insert(range.end, (end, right));
                }
            }
        }
        // Handle extents starting within our range.
        loop {
            let next = self
                .ents
                .range(range.start..range.end)
                .next()
                .map(|(&s, &(e, _))| (s, e));
            match next {
                Some((s, e)) => {
                    let (_, (_, v)) = self.ents.remove_entry(&s).expect("present");
                    if e > range.end {
                        let (_, right) = v.split(range.end - s);
                        self.ents.insert(range.end, (e, right));
                    }
                }
                None => break,
            }
        }
        self.ents.insert(range.start, (range.end, value));
    }

    /// Remove all extents intersecting `range` (splitting at the borders).
    pub fn remove(&mut self, range: ByteRange) {
        if range.start >= range.end {
            return;
        }
        if let Some((&s, &(e, _))) = self.ents.range(..range.start).next_back() {
            if e > range.start {
                let (_, (end, v)) = self.ents.remove_entry(&s).expect("present");
                let (left, rest) = v.split(range.start - s);
                self.ents.insert(s, (range.start, left));
                if end > range.end {
                    let (_, right) = rest.split(range.end - range.start);
                    self.ents.insert(range.end, (end, right));
                }
            }
        }
        loop {
            let next = self
                .ents
                .range(range.start..range.end)
                .next()
                .map(|(&s, &(e, _))| (s, e));
            match next {
                Some((s, e)) => {
                    let (_, (_, v)) = self.ents.remove_entry(&s).expect("present");
                    if e > range.end {
                        let (_, right) = v.split(range.end - s);
                        self.ents.insert(range.end, (e, right));
                    }
                }
                None => break,
            }
        }
    }

    /// Iterate over `(range, value)` pieces intersecting `range`, clamped
    /// to it, in offset order. Gaps are skipped (see [`Self::read`] for a
    /// gap-reporting variant).
    pub fn pieces_within<'a>(
        &'a self,
        range: &ByteRange,
    ) -> impl Iterator<Item = (ByteRange, V)> + 'a {
        let (rs, re) = (range.start, range.end);
        let pred = self
            .ents
            .range(..rs)
            .next_back()
            .filter(move |(_, (e, _))| *e > rs)
            .map(|(&s, (e, v))| (s, *e, v));
        pred.into_iter()
            .chain(self.ents.range(rs..re).map(|(&s, (e, v))| (s, *e, v)))
            .filter_map(move |(s, e, v)| {
                let cs = s.max(rs);
                let ce = e.min(re);
                if cs >= ce {
                    return None;
                }
                // Clamp the value to the clamped range.
                let v = if cs > s { v.split(cs - s).1 } else { v.clone() };
                let v = if ce < e { v.split(ce - cs).0 } else { v };
                Some((cs..ce, v))
            })
    }

    /// Read `range` as a sequence of covered pieces and gaps.
    pub fn read(&self, range: &ByteRange) -> Vec<ExtentPiece<V>> {
        let mut out = Vec::new();
        let mut cursor = range.start;
        for (r, v) in self.pieces_within(range) {
            if r.start > cursor {
                out.push(ExtentPiece::Gap(cursor..r.start));
            }
            cursor = r.end;
            out.push(ExtentPiece::Data(r, v));
        }
        if cursor < range.end {
            out.push(ExtentPiece::Gap(cursor..range.end));
        }
        out
    }

    /// Iterate over all extents in offset order.
    pub fn iter(&self) -> impl Iterator<Item = (ByteRange, &V)> + '_ {
        self.ents.iter().map(|(&s, (e, v))| (s..*e, v))
    }
}

/// A piece of an extent-map read: data or a gap.
#[derive(Debug, Clone, PartialEq)]
pub enum ExtentPiece<V> {
    /// Covered range with its (clamped) value.
    Data(ByteRange, V),
    /// Uncovered hole.
    Gap(ByteRange),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::Payload;

    /// Reference model: byte-per-slot array of Option<tag>.
    fn check_against_model(ops: &[(ByteRange, u8)], probe: ByteRange) {
        const N: usize = 64;
        let mut model = [None::<u8>; N];
        let mut map: ExtentMap<TaggedLen> = ExtentMap::new();
        for (r, tag) in ops {
            for i in r.start..r.end {
                model[i as usize] = Some(*tag);
            }
            map.insert(
                r.clone(),
                TaggedLen {
                    tag: *tag,
                    len: r.end - r.start,
                },
            );
        }
        // Every piece returned must match the model bytes.
        for piece in map.read(&probe) {
            match piece {
                ExtentPiece::Data(r, v) => {
                    assert_eq!(v.len, r.end - r.start);
                    for i in r.start..r.end {
                        assert_eq!(model[i as usize], Some(v.tag), "at {i}");
                    }
                }
                ExtentPiece::Gap(r) => {
                    for i in r.start..r.end {
                        assert_eq!(model[i as usize], None, "at {i}");
                    }
                }
            }
        }
    }

    /// A value that knows its length and a tag, to validate splitting.
    #[derive(Debug, Clone, PartialEq)]
    struct TaggedLen {
        tag: u8,
        len: u64,
    }
    impl ExtentValue for TaggedLen {
        fn split(&self, at: u64) -> (Self, Self) {
            assert!(at <= self.len);
            (
                TaggedLen {
                    tag: self.tag,
                    len: at,
                },
                TaggedLen {
                    tag: self.tag,
                    len: self.len - at,
                },
            )
        }
    }

    #[test]
    fn overwrite_middle_splits() {
        check_against_model(&[(0..10, 1), (3..6, 2)], 0..12);
    }

    #[test]
    fn overwrite_spanning_many() {
        check_against_model(&[(0..4, 1), (6..10, 2), (12..16, 3), (2..14, 4)], 0..20);
    }

    #[test]
    fn exact_replacement() {
        check_against_model(&[(5..10, 1), (5..10, 2)], 0..16);
    }

    #[test]
    fn payload_extents_keep_content() {
        let mut m: ExtentMap<Payload> = ExtentMap::new();
        m.insert(0..10, Payload::synth(1, 0, 10));
        m.insert(4..6, Payload::from(&b"XY"[..]));
        let pieces = m.read(&(0..10));
        let mut assembled = Vec::new();
        for p in pieces {
            match p {
                ExtentPiece::Data(_, v) => assembled.extend(v.materialize()),
                ExtentPiece::Gap(r) => assembled.extend(vec![0u8; (r.end - r.start) as usize]),
            }
        }
        let mut expect = crate::synth::SynthSource::new(1).materialize(0, 10);
        expect[4] = b'X';
        expect[5] = b'Y';
        assert_eq!(assembled, expect);
    }

    #[test]
    fn remove_behaviour() {
        let mut m: ExtentMap<TaggedLen> = ExtentMap::new();
        m.insert(0..10, TaggedLen { tag: 1, len: 10 });
        m.remove(3..6);
        let pieces = m.read(&(0..10));
        assert_eq!(pieces.len(), 3);
        assert!(matches!(&pieces[1], ExtentPiece::Gap(r) if *r == (3..6)));
        assert_eq!(m.covered(), 7);
    }

    #[test]
    fn pieces_within_clamps_values() {
        let mut m: ExtentMap<Payload> = ExtentMap::new();
        m.insert(0..100, Payload::synth(2, 0, 100));
        let pieces: Vec<_> = m.pieces_within(&(10..20)).collect();
        assert_eq!(pieces.len(), 1);
        let (r, v) = &pieces[0];
        assert_eq!(*r, 10..20);
        assert_eq!(
            v.materialize(),
            crate::synth::SynthSource::new(2).materialize(10, 10)
        );
    }
}
