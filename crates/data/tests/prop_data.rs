//! Property-based tests for the data plane: payload rope algebra, range
//! sets and extent maps are each checked against brute-force reference
//! models over randomly generated operation sequences.

use bff_data::payload::Payload;
use bff_data::rangeset::RangeSet;
use bff_data::synth::SynthSource;
use bff_data::{chunk_cover, chunk_range, intersect, ExtentMap};
use proptest::prelude::*;

const UNIVERSE: u64 = 256;

fn arb_range() -> impl Strategy<Value = std::ops::Range<u64>> {
    (0..UNIVERSE, 0..UNIVERSE).prop_map(|(a, b)| {
        let (s, e) = if a <= b { (a, b) } else { (b, a) };
        s..e
    })
}

proptest! {
    /// RangeSet agrees with a bitset model under arbitrary insert/remove.
    #[test]
    fn rangeset_matches_bitset(ops in prop::collection::vec((arb_range(), any::<bool>()), 0..60),
                               probe in arb_range()) {
        let mut model = vec![false; UNIVERSE as usize];
        let mut set = RangeSet::new();
        for (r, is_insert) in &ops {
            if *is_insert {
                set.insert(r.clone());
                for i in r.clone() { model[i as usize] = true; }
            } else {
                set.remove(r.clone());
                for i in r.clone() { model[i as usize] = false; }
            }
        }
        // Per-position membership.
        for i in 0..UNIVERSE {
            prop_assert_eq!(set.contains(i), model[i as usize], "pos {}", i);
        }
        // contains_range is the conjunction.
        let expect_all = probe.clone().all(|i| model[i as usize]);
        prop_assert_eq!(set.contains_range(&probe), expect_all);
        // covered() counts the model.
        prop_assert_eq!(set.covered(), model.iter().filter(|&&b| b).count() as u64);
        // gaps + runs partition the probe range exactly.
        let mut cursor = probe.start;
        let mut pieces: Vec<(std::ops::Range<u64>, bool)> = Vec::new();
        for r in set.runs_within(&probe) { pieces.push((r, true)); }
        for g in set.gaps_within(&probe) { pieces.push((g, false)); }
        pieces.sort_by_key(|(r, _)| r.start);
        for (r, covered) in pieces {
            prop_assert_eq!(r.start, cursor, "pieces must tile the probe");
            for i in r.clone() {
                prop_assert_eq!(model[i as usize], covered, "pos {}", i);
            }
            cursor = r.end;
        }
        prop_assert_eq!(cursor.max(probe.start), probe.end.max(probe.start));
        // Runs are maximal: no two adjacent/overlapping runs.
        let runs: Vec<_> = set.iter().collect();
        for w in runs.windows(2) {
            prop_assert!(w[0].end < w[1].start, "runs must be disjoint and non-adjacent");
        }
    }

    /// Payload slicing/concatenation agrees with Vec<u8> semantics.
    #[test]
    fn payload_rope_algebra(seed in any::<u64>(),
                            cuts in prop::collection::vec(0..200u64, 0..8),
                            patch_at in 0..150u64,
                            patch_len in 0..50u64) {
        let len = 200u64;
        let base = Payload::synth(seed, 0, len);
        let model = SynthSource::new(seed).materialize(0, len as usize);
        prop_assert_eq!(base.materialize(), model.clone());

        // Slicing at arbitrary cut points and re-concatenating is identity.
        let mut sorted = cuts.clone();
        sorted.push(0); sorted.push(len);
        sorted.sort_unstable(); sorted.dedup();
        let mut rebuilt = Payload::empty();
        for w in sorted.windows(2) {
            rebuilt.append(base.slice(w[0], w[1]));
        }
        prop_assert_eq!(rebuilt.len(), len);
        prop_assert!(rebuilt.content_eq(&base));

        // Overwrite matches model splice.
        let patch_bytes: Vec<u8> = (0..patch_len).map(|i| (i * 7 + 13) as u8).collect();
        let patched = base.overwrite(patch_at, Payload::from(patch_bytes.clone()));
        let mut model2 = model;
        model2.splice(patch_at as usize..(patch_at + patch_len) as usize, patch_bytes);
        prop_assert_eq!(patched.materialize(), model2);
    }

    /// byte_at agrees with materialize for mixed ropes.
    #[test]
    fn payload_byte_at(seed in any::<u64>(), lens in prop::collection::vec(1..20u64, 1..6)) {
        let mut p = Payload::empty();
        for (i, l) in lens.iter().enumerate() {
            match i % 3 {
                0 => p.append(Payload::synth(seed, i as u64 * 100, *l)),
                1 => p.append(Payload::zeros(*l)),
                _ => p.append(Payload::from(vec![i as u8; *l as usize])),
            }
        }
        let m = p.materialize();
        for i in 0..p.len() {
            prop_assert_eq!(p.byte_at(i), m[i as usize]);
        }
        prop_assert_eq!(Payload::from(m.clone()).digest(), p.digest());
    }

    /// ExtentMap<Payload> read() returns exactly the last write at every
    /// position, with gaps where nothing was written.
    #[test]
    fn extent_map_matches_model(writes in prop::collection::vec((arb_range(), any::<u64>()), 0..30),
                                probe in arb_range()) {
        let mut model: Vec<Option<u8>> = vec![None; UNIVERSE as usize];
        let mut map: ExtentMap<Payload> = ExtentMap::new();
        for (r, seed) in &writes {
            if r.start >= r.end { continue; }
            let pl = Payload::synth(*seed, r.start, r.end - r.start);
            let bytes = pl.materialize();
            for (k, i) in (r.start..r.end).enumerate() {
                model[i as usize] = Some(bytes[k]);
            }
            map.insert(r.clone(), pl);
        }
        for piece in map.read(&probe) {
            match piece {
                bff_data::extent::ExtentPiece::Data(r, v) => {
                    prop_assert_eq!(v.len(), r.end - r.start);
                    let bytes = v.materialize();
                    for (k, i) in (r.start..r.end).enumerate() {
                        prop_assert_eq!(model[i as usize], Some(bytes[k]), "pos {}", i);
                    }
                }
                bff_data::extent::ExtentPiece::Gap(r) => {
                    for i in r.clone() {
                        prop_assert_eq!(model[i as usize], None, "pos {}", i);
                    }
                }
            }
        }
    }

    /// Chunk cover really is minimal and covering.
    #[test]
    fn chunk_cover_minimal(s in 0..10_000u64, l in 1..5_000u64, cs_pow in 4..12u32) {
        let cs = 1u64 << cs_pow;
        let image_len = 16_384u64;
        let e = (s + l).min(image_len);
        let s = s.min(e);
        if s == e { return Ok(()); }
        let cover = chunk_cover(&(s..e), cs);
        // Covering: the union of chunk ranges contains the request.
        let lo = chunk_range(cover.start, cs, image_len).start;
        let hi = chunk_range(cover.end - 1, cs, image_len).end;
        prop_assert!(lo <= s && e <= hi);
        // Minimal: first and last chunks intersect the request.
        prop_assert!(intersect(&chunk_range(cover.start, cs, image_len), &(s..e)).end > 0
                     || chunk_range(cover.start, cs, image_len).start == s);
        let first = chunk_range(cover.start, cs, image_len);
        let last = chunk_range(cover.end - 1, cs, image_len);
        prop_assert!(first.start < e && s < first.end, "first chunk must intersect");
        prop_assert!(last.start < e && s < last.end, "last chunk must intersect");
    }
}
