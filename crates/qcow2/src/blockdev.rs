//! Block-device and backing-image abstractions for the CoW format.

use bff_data::extent::ExtentPiece;
use bff_data::{ExtentMap, Payload};
use std::ops::Range;

/// A growable random-access byte device (the qcow2 file itself).
/// Unwritten regions read as zeros, like a sparse file.
pub trait BlockDev: Send {
    /// Read `range` (may extend past the written area; zeros there).
    fn read_at(&self, range: Range<u64>) -> Payload;
    /// Write `data` at `offset`, growing the device if needed.
    fn write_at(&mut self, offset: u64, data: &Payload);
    /// Bytes addressable so far (high-water mark of writes).
    fn len(&self) -> u64;
    /// Whether nothing has been written yet.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A read-only base image (raw format, e.g. a file striped in PVFS).
pub trait Backing: Send {
    /// Base image length.
    fn len(&self) -> u64;
    /// Whether the base image is zero-length.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Read `range` of the base image.
    fn read_at(&self, range: Range<u64>) -> Payload;
    /// Read several ranges as one vectored request, one payload per
    /// range. Remote backings (a file striped in PVFS) override this to
    /// batch their per-server transfers; the default is a per-range loop.
    fn read_multi(&self, ranges: &[Range<u64>]) -> Vec<Payload> {
        ranges.iter().map(|r| self.read_at(r.clone())).collect()
    }
    /// Access hint: the guest is touching `ranges` of the virtual disk
    /// (pre-CoW-translation, so the backing sees the full access
    /// pattern, including regions it will not be asked to serve because
    /// they are locally allocated). Purely advisory — a prefetching
    /// backing (one bound to the adaptive-prefetch repository) forwards
    /// it to its pattern tracker; the PVFS baseline deliberately ignores
    /// it, since exact-range, hint-free reads are its defining
    /// behavioural difference from the mirror (§5.2).
    fn hint_access(&self, _ranges: &[Range<u64>]) {}
}

/// In-memory sparse block device.
#[derive(Debug, Default)]
pub struct MemBlockDev {
    extents: ExtentMap<Payload>,
    len: u64,
}

impl MemBlockDev {
    /// Empty device.
    pub fn new() -> Self {
        Self::default()
    }

    /// Construct from raw contents (e.g. to reopen a serialized image).
    pub fn from_payload(data: Payload) -> Self {
        let mut d = Self::new();
        d.write_at(0, &data);
        d
    }

    /// Snapshot the full device contents.
    pub fn to_payload(&self) -> Payload {
        self.read_at(0..self.len)
    }
}

impl BlockDev for MemBlockDev {
    fn read_at(&self, range: Range<u64>) -> Payload {
        assert!(range.start <= range.end);
        let mut out = Payload::empty();
        for piece in self.extents.read(&range) {
            match piece {
                ExtentPiece::Data(_, p) => out.append(p),
                ExtentPiece::Gap(g) => out.append(Payload::zeros(g.end - g.start)),
            }
        }
        out
    }

    fn write_at(&mut self, offset: u64, data: &Payload) {
        if data.is_empty() {
            return;
        }
        self.extents
            .insert(offset..offset + data.len(), data.clone());
        self.len = self.len.max(offset + data.len());
    }

    fn len(&self) -> u64 {
        self.len
    }
}

/// An in-memory backing image.
#[derive(Debug, Clone)]
pub struct MemBacking {
    data: Payload,
}

impl MemBacking {
    /// Wrap a payload as a backing image.
    pub fn new(data: Payload) -> Self {
        Self { data }
    }
}

impl Backing for MemBacking {
    fn len(&self) -> u64 {
        self.data.len()
    }

    fn read_at(&self, range: Range<u64>) -> Payload {
        self.data.slice(range.start, range.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_dev_sparse_semantics() {
        let mut d = MemBlockDev::new();
        assert_eq!(d.len(), 0);
        d.write_at(100, &Payload::from(vec![1u8; 10]));
        assert_eq!(d.len(), 110);
        // Hole before the write reads zeros.
        let got = d.read_at(95..110).materialize();
        assert_eq!(&got[..5], &[0u8; 5]);
        assert_eq!(&got[5..], &[1u8; 10]);
        // Reads past the end read zeros.
        assert!(d.read_at(200..300).content_eq(&Payload::zeros(100)));
    }

    #[test]
    fn payload_roundtrip() {
        let mut d = MemBlockDev::new();
        d.write_at(0, &Payload::synth(1, 0, 64));
        d.write_at(32, &Payload::from(vec![7u8; 8]));
        let snap = d.to_payload();
        let d2 = MemBlockDev::from_payload(snap.clone());
        assert!(d2.to_payload().content_eq(&snap));
    }

    #[test]
    fn backing_slices() {
        let b = MemBacking::new(Payload::synth(2, 0, 100));
        assert_eq!(b.len(), 100);
        assert!(b.read_at(10..20).content_eq(&Payload::synth(2, 10, 10)));
    }
}
