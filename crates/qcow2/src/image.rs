//! The copy-on-write image engine: two-level cluster mapping with
//! backing-file fall-through.

use crate::blockdev::{Backing, BlockDev};
use crate::format::{Header, Qcow2Error, HEADER_BYTES};
use bff_data::{intersect, Payload};
use std::collections::HashMap;
use std::ops::Range;

/// An open CoW image over a block device, optionally backed by a base
/// image (§3.1.4: "using the initial raw VM image ... as the backing
/// image").
pub struct Qcow2Image<D: BlockDev> {
    dev: D,
    header: Header,
    backing: Option<Box<dyn Backing>>,
    /// L1 table, cached in memory, written through on update.
    l1: Vec<u64>,
    /// L2 tables cached by L1 index, written through on update.
    l2_cache: HashMap<u64, Vec<u64>>,
    /// Data clusters allocated since open (CoW volume metric).
    allocated_data_clusters: u64,
}

impl<D: BlockDev> Qcow2Image<D> {
    /// Create a fresh image of `virtual_size` bytes on `dev`.
    pub fn create(
        mut dev: D,
        virtual_size: u64,
        cluster_bits: u32,
        backing: Option<Box<dyn Backing>>,
    ) -> Result<Self, Qcow2Error> {
        if !(9..=22).contains(&cluster_bits) {
            return Err(Qcow2Error::BadHeader(format!(
                "cluster_bits {cluster_bits}"
            )));
        }
        if let Some(b) = &backing {
            if b.len() != virtual_size {
                return Err(Qcow2Error::BadHeader(
                    "backing image size must match virtual size".into(),
                ));
            }
        }
        let cs = 1u64 << cluster_bits;
        let l1_entries = Header::l1_entries_for(virtual_size, cluster_bits);
        let l1_offset = cs; // header occupies cluster 0
        let l1_bytes = l1_entries * 8;
        let l1_clusters = l1_bytes.div_ceil(cs);
        let header = Header {
            cluster_bits,
            virtual_size,
            l1_offset,
            l1_entries,
            next_free: l1_offset + l1_clusters * cs,
        };
        let l1 = vec![0u64; l1_entries as usize];
        dev.write_at(0, &Payload::from(header.encode()));
        dev.write_at(l1_offset, &Payload::zeros(l1_bytes));
        let mut img = Self {
            dev,
            header,
            backing,
            l1,
            l2_cache: HashMap::new(),
            allocated_data_clusters: 0,
        };
        img.flush_header();
        Ok(img)
    }

    /// Open an existing image from `dev`.
    pub fn open(dev: D, backing: Option<Box<dyn Backing>>) -> Result<Self, Qcow2Error> {
        let raw = dev.read_at(0..HEADER_BYTES).materialize();
        let header = Header::decode(&raw)?;
        if let Some(b) = &backing {
            if b.len() != header.virtual_size {
                return Err(Qcow2Error::BadHeader("backing size mismatch".into()));
            }
        }
        let l1_raw = dev
            .read_at(header.l1_offset..header.l1_offset + header.l1_entries * 8)
            .materialize();
        let l1: Vec<u64> = l1_raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect();
        for &e in &l1 {
            if e != 0 && (e >= header.next_free || e % header.cluster_size() != 0) {
                return Err(Qcow2Error::Corrupt(format!("L1 entry {e:#x} out of range")));
            }
        }
        Ok(Self {
            dev,
            header,
            backing,
            l1,
            l2_cache: HashMap::new(),
            allocated_data_clusters: 0,
        })
    }

    /// Virtual disk size.
    pub fn virtual_size(&self) -> u64 {
        self.header.virtual_size
    }

    /// Image header (geometry inspection).
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// Logical size of the image file (what a snapshot copy transfers).
    pub fn file_len(&self) -> u64 {
        self.header.next_free
    }

    /// Data clusters allocated through this handle since open.
    pub fn allocated_data_clusters(&self) -> u64 {
        self.allocated_data_clusters
    }

    /// Consume the image, returning the device (e.g. to copy the file).
    pub fn into_device(mut self) -> D {
        self.flush_header();
        self.dev
    }

    /// Borrow the device.
    pub fn device(&self) -> &D {
        &self.dev
    }

    fn flush_header(&mut self) {
        self.dev.write_at(0, &Payload::from(self.header.encode()));
    }

    fn alloc_cluster(&mut self) -> u64 {
        let off = self.header.next_free;
        self.header.next_free += self.header.cluster_size();
        off
    }

    /// Load (and cache) the L2 table for `l1_idx`, or None if absent.
    fn l2_table(&mut self, l1_idx: u64) -> Result<Option<&mut Vec<u64>>, Qcow2Error> {
        if self.l1[l1_idx as usize] == 0 {
            return Ok(None);
        }
        if !self.l2_cache.contains_key(&l1_idx) {
            let off = self.l1[l1_idx as usize];
            let raw = self
                .dev
                .read_at(off..off + self.header.cluster_size())
                .materialize();
            let table: Vec<u64> = raw
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
                .collect();
            self.l2_cache.insert(l1_idx, table);
        }
        Ok(self.l2_cache.get_mut(&l1_idx))
    }

    /// L2 table for `l1_idx`, creating it if absent.
    fn l2_table_mut(&mut self, l1_idx: u64) -> Result<u64, Qcow2Error> {
        if self.l1[l1_idx as usize] == 0 {
            let off = self.alloc_cluster();
            self.dev
                .write_at(off, &Payload::zeros(self.header.cluster_size()));
            self.l1[l1_idx as usize] = off;
            // Write-through the updated L1 entry and header.
            self.dev.write_at(
                self.header.l1_offset + l1_idx * 8,
                &Payload::from(off.to_le_bytes().to_vec()),
            );
            self.flush_header();
            self.l2_cache
                .insert(l1_idx, vec![0u64; self.header.l2_entries() as usize]);
        }
        Ok(self.l1[l1_idx as usize])
    }

    /// Where virtual cluster `vc` is mapped, if allocated.
    fn lookup(&mut self, vc: u64) -> Result<Option<u64>, Qcow2Error> {
        let per = self.header.l2_entries();
        let (l1_idx, l2_idx) = (vc / per, vc % per);
        if l1_idx >= self.header.l1_entries {
            return Err(Qcow2Error::Corrupt(format!(
                "virtual cluster {vc} beyond L1"
            )));
        }
        match self.l2_table(l1_idx)? {
            Some(t) => Ok(match t[l2_idx as usize] {
                0 => None,
                off => Some(off),
            }),
            None => Ok(None),
        }
    }

    fn backing_read(&self, range: Range<u64>) -> Payload {
        match &self.backing {
            Some(b) => b.read_at(range),
            None => Payload::zeros(range.end - range.start),
        }
    }

    /// Read `range` of the virtual disk. A thin wrapper over the
    /// vectored [`Qcow2Image::read_multi`] (one-range plan), so even a
    /// single range spanning several unallocated clusters batches its
    /// backing fall-through into one vectored backing request.
    pub fn read(&mut self, range: Range<u64>) -> Result<Payload, Qcow2Error> {
        Ok(self
            .read_multi(std::slice::from_ref(&range))?
            .pop()
            .expect("one payload per range"))
    }

    /// Vectored read: one payload per input range. Allocated clusters are
    /// served from the local qcow2 file; all backing fall-through pieces
    /// of the whole plan are gathered into a single
    /// [`Backing::read_multi`] request, which is what lets a remote
    /// backing (PVFS) batch its per-server transfers instead of paying one
    /// round trip per unallocated cluster.
    pub fn read_multi(&mut self, ranges: &[Range<u64>]) -> Result<Vec<Payload>, Qcow2Error> {
        for range in ranges {
            if range.start > range.end || range.end > self.header.virtual_size {
                return Err(Qcow2Error::OutOfBounds {
                    offset: range.start,
                    len: range.end.saturating_sub(range.start),
                    size: self.header.virtual_size,
                });
            }
        }
        // The guest's access pattern, pre-translation: a prefetching
        // backing learns what the cohort touches (see
        // [`Backing::hint_access`]); the PVFS baseline ignores it.
        if let Some(b) = &self.backing {
            b.hint_access(ranges);
        }
        let cs = self.header.cluster_size();
        // Walk the plan once, emitting local segments eagerly and backing
        // segments as placeholders resolved by one vectored request.
        enum Segment {
            Local(Payload),
            Backing(usize),
        }
        let mut segments: Vec<Segment> = Vec::new();
        let mut segment_of_range: Vec<Range<usize>> = Vec::with_capacity(ranges.len());
        let mut backing_wants: Vec<Range<u64>> = Vec::new();
        for range in ranges {
            let first = segments.len();
            for vc in bff_data::chunk_cover(range, cs) {
                let cr = bff_data::chunk_range(vc, cs, self.header.virtual_size);
                let want = intersect(&cr, range);
                if want.start >= want.end {
                    continue;
                }
                match self.lookup(vc)? {
                    Some(off) => {
                        let rel = want.start - cr.start..want.end - cr.start;
                        segments.push(Segment::Local(
                            self.dev.read_at(off + rel.start..off + rel.end),
                        ));
                    }
                    None => {
                        segments.push(Segment::Backing(backing_wants.len()));
                        backing_wants.push(want);
                    }
                }
            }
            segment_of_range.push(first..segments.len());
        }
        let mut backing_pieces: Vec<Option<Payload>> = match &self.backing {
            Some(b) if !backing_wants.is_empty() => {
                b.read_multi(&backing_wants).into_iter().map(Some).collect()
            }
            _ => backing_wants
                .iter()
                .map(|w| Some(Payload::zeros(w.end - w.start)))
                .collect(),
        };
        let mut out = Vec::with_capacity(ranges.len());
        for (range, span) in ranges.iter().zip(segment_of_range) {
            let mut payload = Payload::empty();
            for slot in span {
                match &mut segments[slot] {
                    Segment::Local(p) => payload.append(std::mem::replace(p, Payload::empty())),
                    Segment::Backing(i) => {
                        payload.append(backing_pieces[*i].take().expect("resolved above"))
                    }
                }
            }
            debug_assert_eq!(payload.len(), range.end - range.start);
            out.push(payload);
        }
        Ok(out)
    }

    /// Write `data` at `offset`. First writes to unallocated clusters
    /// copy the untouched remainder from the backing image (CoW).
    pub fn write(&mut self, offset: u64, data: Payload) -> Result<(), Qcow2Error> {
        let range = offset..offset + data.len();
        if range.end > self.header.virtual_size {
            return Err(Qcow2Error::OutOfBounds {
                offset,
                len: data.len(),
                size: self.header.virtual_size,
            });
        }
        if data.is_empty() {
            return Ok(());
        }
        let cs = self.header.cluster_size();
        let per = self.header.l2_entries();
        for vc in bff_data::chunk_cover(&range, cs) {
            let cr = bff_data::chunk_range(vc, cs, self.header.virtual_size);
            let want = intersect(&cr, &range);
            let piece = data.slice(want.start - offset, want.end - offset);
            let (l1_idx, l2_idx) = (vc / per, vc % per);
            match self.lookup(vc)? {
                Some(off) => {
                    // Already allocated: in-place cluster write.
                    self.dev.write_at(off + (want.start - cr.start), &piece);
                }
                None => {
                    // Copy-on-write: materialize the full cluster.
                    let full = if want == cr {
                        piece
                    } else {
                        let base = self.backing_read(cr.clone());
                        base.overwrite(want.start - cr.start, piece)
                    };
                    self.l2_table_mut(l1_idx)?;
                    let off = self.alloc_cluster();
                    self.dev.write_at(off, &full);
                    self.allocated_data_clusters += 1;
                    let table = self
                        .l2_cache
                        .get_mut(&l1_idx)
                        .expect("l2_table_mut populated the cache");
                    table[l2_idx as usize] = off;
                    // Write-through the L2 entry and header.
                    let l2_off = self.l1[l1_idx as usize];
                    self.dev.write_at(
                        l2_off + l2_idx * 8,
                        &Payload::from(off.to_le_bytes().to_vec()),
                    );
                    self.flush_header();
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blockdev::{MemBacking, MemBlockDev};

    const VSIZE: u64 = 64 << 10; // 64 KiB virtual disk
    const CBITS: u32 = 12; // 4 KiB clusters

    fn base_image() -> Payload {
        Payload::synth(0xBA5E, 0, VSIZE)
    }

    fn cow_image() -> Qcow2Image<MemBlockDev> {
        Qcow2Image::create(
            MemBlockDev::new(),
            VSIZE,
            CBITS,
            Some(Box::new(MemBacking::new(base_image()))),
        )
        .unwrap()
    }

    #[test]
    fn fresh_image_reads_backing() {
        let mut img = cow_image();
        let got = img.read(100..5000).unwrap();
        assert!(got.content_eq(&base_image().slice(100, 5000)));
        assert_eq!(img.allocated_data_clusters(), 0, "reads allocate nothing");
    }

    #[test]
    fn no_backing_reads_zeros() {
        let mut img = Qcow2Image::create(MemBlockDev::new(), VSIZE, CBITS, None).unwrap();
        assert!(img.read(0..1000).unwrap().content_eq(&Payload::zeros(1000)));
    }

    #[test]
    fn partial_cluster_write_cows_the_rest() {
        let mut img = cow_image();
        img.write(4096 + 100, Payload::from(vec![7u8; 50])).unwrap();
        assert_eq!(img.allocated_data_clusters(), 1);
        // The written bytes read back; the rest of the cluster is base.
        let got = img.read(4096..8192).unwrap();
        let expect = base_image()
            .slice(4096, 8192)
            .overwrite(100, Payload::from(vec![7u8; 50]));
        assert!(got.content_eq(&expect));
        // Neighbouring clusters untouched.
        let got = img.read(0..4096).unwrap();
        assert!(got.content_eq(&base_image().slice(0, 4096)));
    }

    #[test]
    fn overwrite_reuses_cluster() {
        let mut img = cow_image();
        img.write(0, Payload::from(vec![1u8; 4096])).unwrap();
        let before = img.file_len();
        img.write(0, Payload::from(vec![2u8; 4096])).unwrap();
        assert_eq!(img.file_len(), before, "no second allocation");
        assert_eq!(img.allocated_data_clusters(), 1);
        assert!(img
            .read(0..4096)
            .unwrap()
            .content_eq(&Payload::from(vec![2u8; 4096])));
    }

    #[test]
    fn write_spanning_clusters() {
        let mut img = cow_image();
        let patch = Payload::synth(7, 0, 10_000);
        img.write(1000, patch.clone()).unwrap();
        let got = img.read(0..VSIZE).unwrap();
        let expect = base_image().overwrite(1000, patch);
        assert!(got.content_eq(&expect));
        // 1000..11000 covers clusters 0..=2 -> 3 allocations.
        assert_eq!(img.allocated_data_clusters(), 3);
    }

    #[test]
    fn reopen_from_raw_bytes_preserves_content() {
        let mut img = cow_image();
        let patch = Payload::from(vec![9u8; 5000]);
        img.write(2000, patch.clone()).unwrap();
        // Serialize the device to raw bytes and reopen.
        let raw = img.into_device().to_payload();
        let dev = MemBlockDev::from_payload(raw);
        let mut img2 =
            Qcow2Image::open(dev, Some(Box::new(MemBacking::new(base_image())))).unwrap();
        let got = img2.read(0..VSIZE).unwrap();
        let expect = base_image().overwrite(2000, patch);
        assert!(got.content_eq(&expect));
    }

    #[test]
    fn file_grows_only_with_new_clusters() {
        let mut img = cow_image();
        let empty = img.file_len();
        // Metadata only: header + L1.
        assert!(empty <= 2 * img.header().cluster_size());
        img.write(0, Payload::from(vec![1u8; 100])).unwrap();
        // One L2 table + one data cluster.
        assert_eq!(img.file_len() - empty, 2 * img.header().cluster_size());
    }

    #[test]
    fn size_mismatch_with_backing_rejected() {
        let r = Qcow2Image::create(
            MemBlockDev::new(),
            VSIZE,
            CBITS,
            Some(Box::new(MemBacking::new(Payload::zeros(10)))),
        );
        assert!(r.is_err());
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut img = cow_image();
        assert!(img.read(0..VSIZE + 1).is_err());
        assert!(img.write(VSIZE - 10, Payload::zeros(20)).is_err());
    }

    #[test]
    fn open_rejects_corrupt_l1() {
        let img = cow_image();
        let mut raw = img.into_device().to_payload().materialize();
        // Poison the first L1 entry with a non-cluster-aligned offset.
        let l1_off = Header::decode(&raw).unwrap().l1_offset as usize;
        raw[l1_off..l1_off + 8].copy_from_slice(&0x1234u64.to_le_bytes());
        let dev = MemBlockDev::from_payload(Payload::from(raw));
        assert!(matches!(
            Qcow2Image::open(dev, None),
            Err(Qcow2Error::BadHeader(_)) | Err(Qcow2Error::Corrupt(_))
        ));
    }

    #[test]
    fn read_multi_equivalent_to_per_range_reads() {
        let mut img = cow_image();
        img.write(4096 + 100, Payload::from(vec![7u8; 50])).unwrap();
        img.write(20_000, Payload::from(vec![8u8; 3000])).unwrap();
        let plans: Vec<Vec<Range<u64>>> = vec![
            vec![0..VSIZE],
            vec![0..4096, 4096..8192, 60_000..VSIZE],
            vec![100..200, 150..4200, 300..300],
            vec![],
        ];
        for plan in plans {
            let multi = img.read_multi(&plan).unwrap();
            assert_eq!(multi.len(), plan.len());
            for (r, got) in plan.iter().zip(&multi) {
                let single = img.read(r.clone()).unwrap();
                assert!(got.content_eq(&single), "range {r:?} differs");
            }
        }
        assert!(img.read_multi(&[0..10, 0..VSIZE + 1]).is_err());
    }

    #[test]
    fn read_gathers_backing_fallthrough_into_one_vectored_request() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        struct CountingBacking {
            data: Payload,
            vectored_calls: Arc<AtomicU64>,
        }
        impl Backing for CountingBacking {
            fn len(&self) -> u64 {
                self.data.len()
            }
            fn read_at(&self, range: Range<u64>) -> Payload {
                self.data.slice(range.start, range.end)
            }
            fn read_multi(&self, ranges: &[Range<u64>]) -> Vec<Payload> {
                self.vectored_calls.fetch_add(1, Ordering::Relaxed);
                ranges.iter().map(|r| self.read_at(r.clone())).collect()
            }
        }

        let calls = Arc::new(AtomicU64::new(0));
        let mut img = Qcow2Image::create(
            MemBlockDev::new(),
            VSIZE,
            CBITS,
            Some(Box::new(CountingBacking {
                data: base_image(),
                vectored_calls: Arc::clone(&calls),
            })),
        )
        .unwrap();
        // Allocate a hole in the middle so the read interleaves local and
        // backing clusters.
        img.write(8192, Payload::from(vec![5u8; 4096])).unwrap();
        let got = img.read(0..VSIZE).unwrap();
        let expect = base_image().overwrite(8192, Payload::from(vec![5u8; 4096]));
        assert!(got.content_eq(&expect));
        // 15 unallocated clusters, one backing request.
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn backing_receives_guest_access_hints() {
        use parking_lot::Mutex;
        use std::sync::Arc;

        struct HintingBacking {
            data: Payload,
            hints: Arc<Mutex<Vec<Range<u64>>>>,
        }
        impl Backing for HintingBacking {
            fn len(&self) -> u64 {
                self.data.len()
            }
            fn read_at(&self, range: Range<u64>) -> Payload {
                self.data.slice(range.start, range.end)
            }
            fn hint_access(&self, ranges: &[Range<u64>]) {
                self.hints.lock().extend(ranges.iter().cloned());
            }
        }

        let hints = Arc::new(Mutex::new(Vec::new()));
        let mut img = Qcow2Image::create(
            MemBlockDev::new(),
            VSIZE,
            CBITS,
            Some(Box::new(HintingBacking {
                data: base_image(),
                hints: Arc::clone(&hints),
            })),
        )
        .unwrap();
        // A locally-allocated cluster: its reads never reach the backing
        // as data requests, but the hint still carries them — the full
        // guest pattern, pre-CoW-translation.
        img.write(8192, Payload::from(vec![5u8; 4096])).unwrap();
        img.read(8192..8292).unwrap();
        img.read_multi(&[100..200, 40_000..40_100]).unwrap();
        assert_eq!(
            *hints.lock(),
            vec![8192..8292, 100..200, 40_000..40_100],
            "every guest read range is hinted, local or not"
        );
    }

    #[test]
    fn random_writes_match_model() {
        // Deterministic pseudo-random write sequence vs a Vec<u8> model.
        let mut img = cow_image();
        let mut model = base_image().materialize();
        let mut x = 0x12345678u64;
        for _ in 0..40 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let off = x % (VSIZE - 600);
            let len = 1 + (x >> 32) % 600;
            let val = (x >> 16) as u8;
            let patch = vec![val; len as usize];
            img.write(off, Payload::from(patch.clone())).unwrap();
            model[off as usize..(off + len) as usize].copy_from_slice(&patch);
        }
        assert_eq!(img.read(0..VSIZE).unwrap().materialize(), model);
    }
}
