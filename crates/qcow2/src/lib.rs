//! # bff-qcow2
//!
//! A qcow2-like copy-on-write VM image format — the baseline image format
//! of the paper's §5.2/§5.3 comparison ("qcow2 over PVFS").
//!
//! The format follows qcow2's essential design: a two-level mapping
//! (L1 table → L2 tables → data clusters) over fixed-size clusters, with
//! unallocated clusters falling through to a read-only *backing image*.
//! The first write to a cluster allocates it and copies the untouched
//! remainder from the backing store (copy-on-write). Refcounts, internal
//! snapshots and compression are omitted: the baseline only exercises the
//! backing-file CoW path, which is implemented faithfully, including a
//! real on-disk layout that round-trips through raw bytes.
//!
//! Cost attribution is by construction: the image operates on a
//! [`BlockDev`] (the local image file) and a [`Backing`] (the base image
//! in PVFS); whoever provides those charges the respective local-disk and
//! network costs.

pub mod blockdev;
pub mod format;
pub mod image;

pub use blockdev::{Backing, BlockDev, MemBacking, MemBlockDev};
pub use format::{Header, Qcow2Error, MAGIC};
pub use image::Qcow2Image;
