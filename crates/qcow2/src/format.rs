//! On-disk layout of the CoW image format.
//!
//! ```text
//! offset 0              : header (one cluster reserved)
//! cluster 1..           : L1 table (ceil(l1_entries*8 / cluster) clusters)
//! after L1              : L2 tables and data clusters, bump-allocated
//! ```
//!
//! All integers are little-endian. Table entries are byte offsets into the
//! image file; 0 means unallocated (falls through to the backing image).

use std::fmt;

/// File magic: "BFQ2".
pub const MAGIC: [u8; 4] = *b"BFQ2";

/// Serialized header size in bytes (padded to its own cluster on disk).
pub const HEADER_BYTES: u64 = 48;

/// Format errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Qcow2Error {
    /// Not a BFQ2 image or unsupported version.
    BadHeader(String),
    /// Access beyond the virtual disk size.
    OutOfBounds {
        /// Requested start offset.
        offset: u64,
        /// Requested length.
        len: u64,
        /// Virtual disk size.
        size: u64,
    },
    /// Corrupt mapping tables.
    Corrupt(String),
}

impl fmt::Display for Qcow2Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Qcow2Error::BadHeader(m) => write!(f, "bad header: {m}"),
            Qcow2Error::OutOfBounds { offset, len, size } => {
                write!(f, "access {offset}+{len} beyond virtual size {size}")
            }
            Qcow2Error::Corrupt(m) => write!(f, "corrupt image: {m}"),
        }
    }
}

impl std::error::Error for Qcow2Error {}

/// The image header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// log2 of the cluster size (qcow2 default: 16 → 64 KiB).
    pub cluster_bits: u32,
    /// Virtual disk size in bytes.
    pub virtual_size: u64,
    /// Offset of the L1 table.
    pub l1_offset: u64,
    /// Number of L1 entries.
    pub l1_entries: u64,
    /// Bump-allocation pointer (also the file's logical size).
    pub next_free: u64,
}

impl Header {
    /// Cluster size in bytes.
    pub fn cluster_size(&self) -> u64 {
        1 << self.cluster_bits
    }

    /// L2 entries per table (one cluster of u64s).
    pub fn l2_entries(&self) -> u64 {
        self.cluster_size() / 8
    }

    /// Bytes mapped by one L2 table.
    pub fn bytes_per_l2(&self) -> u64 {
        self.l2_entries() * self.cluster_size()
    }

    /// Compute the L1 entry count for a virtual size.
    pub fn l1_entries_for(virtual_size: u64, cluster_bits: u32) -> u64 {
        let cs = 1u64 << cluster_bits;
        let per_l2 = (cs / 8) * cs;
        virtual_size.div_ceil(per_l2).max(1)
    }

    /// Serialize to `HEADER_BYTES` bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_BYTES as usize);
        out.extend(MAGIC);
        out.extend(1u32.to_le_bytes()); // version
        out.extend(self.cluster_bits.to_le_bytes());
        out.extend([0u8; 4]); // reserved / alignment
        out.extend(self.virtual_size.to_le_bytes());
        out.extend(self.l1_offset.to_le_bytes());
        out.extend(self.l1_entries.to_le_bytes());
        out.extend(self.next_free.to_le_bytes());
        debug_assert_eq!(out.len() as u64, HEADER_BYTES);
        out
    }

    /// Parse from raw bytes.
    pub fn decode(data: &[u8]) -> Result<Header, Qcow2Error> {
        if data.len() < HEADER_BYTES as usize {
            return Err(Qcow2Error::BadHeader("truncated".into()));
        }
        if data[0..4] != MAGIC {
            return Err(Qcow2Error::BadHeader("wrong magic".into()));
        }
        let u32_at = |o: usize| u32::from_le_bytes(data[o..o + 4].try_into().expect("4 bytes"));
        let u64_at = |o: usize| u64::from_le_bytes(data[o..o + 8].try_into().expect("8 bytes"));
        let version = u32_at(4);
        if version != 1 {
            return Err(Qcow2Error::BadHeader(format!(
                "unsupported version {version}"
            )));
        }
        let cluster_bits = u32_at(8);
        if !(9..=22).contains(&cluster_bits) {
            return Err(Qcow2Error::BadHeader(format!(
                "cluster_bits {cluster_bits}"
            )));
        }
        Ok(Header {
            cluster_bits,
            virtual_size: u64_at(16),
            l1_offset: u64_at(24),
            l1_entries: u64_at(32),
            next_free: u64_at(40),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Header {
        Header {
            cluster_bits: 16,
            virtual_size: 2 << 30,
            l1_offset: 1 << 16,
            l1_entries: 4,
            next_free: 3 << 16,
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let h = sample();
        let bytes = h.encode();
        assert_eq!(Header::decode(&bytes).unwrap(), h);
    }

    #[test]
    fn geometry() {
        let h = sample();
        assert_eq!(h.cluster_size(), 64 << 10);
        assert_eq!(h.l2_entries(), 8192);
        assert_eq!(h.bytes_per_l2(), 512 << 20);
        // A 2 GiB disk with 64 KiB clusters needs 4 L1 entries.
        assert_eq!(Header::l1_entries_for(2 << 30, 16), 4);
        // Tiny disks still get one entry.
        assert_eq!(Header::l1_entries_for(1, 16), 1);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Header::decode(b"shrt").is_err());
        let mut bad = sample().encode();
        bad[0] = b'X';
        assert!(matches!(
            Header::decode(&bad),
            Err(Qcow2Error::BadHeader(_))
        ));
        let mut badver = sample().encode();
        badver[4] = 9;
        assert!(Header::decode(&badver).is_err());
        let mut badbits = sample().encode();
        badbits[8] = 2;
        assert!(Header::decode(&badbits).is_err());
    }
}
