//! Property tests for the CoW image format: arbitrary write sequences
//! against a byte model, with the image serialized to raw bytes and
//! reopened at random points — the durability property a real image file
//! must have.

use bff_data::Payload;
use bff_qcow2::{MemBacking, MemBlockDev, Qcow2Image};
use proptest::prelude::*;

const VSIZE: u64 = 128 << 10;
const CBITS: u32 = 12; // 4 KiB clusters

fn base() -> Payload {
    Payload::synth(0xBA5E, 0, VSIZE)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Reads always reflect the latest writes, across serialize/reopen
    /// boundaries.
    #[test]
    fn writes_survive_reopen_cycles(
        ops in prop::collection::vec((0..VSIZE, 1..20_000u64, any::<u64>(), any::<bool>()), 1..25)
    ) {
        let mut img = Qcow2Image::create(
            MemBlockDev::new(),
            VSIZE,
            CBITS,
            Some(Box::new(MemBacking::new(base()))),
        )
        .unwrap();
        let mut model = base().materialize();
        for (off, len, seed, reopen) in ops {
            let off = off.min(VSIZE - 1);
            let len = len.min(VSIZE - off).max(1);
            let data = Payload::synth(seed, off, len);
            model.splice(off as usize..(off + len) as usize, data.materialize());
            img.write(off, data).unwrap();
            if reopen {
                // Serialize the device to raw bytes; reopen from scratch.
                let raw = img.into_device().to_payload();
                img = Qcow2Image::open(
                    MemBlockDev::from_payload(raw),
                    Some(Box::new(MemBacking::new(base()))),
                )
                .unwrap();
            }
            // Spot-check a window around the write plus the full image
            // every so often (full reads keep cases fast enough).
            let probe_start = off.saturating_sub(5000);
            let probe_end = (off + len + 5000).min(VSIZE);
            let got = img.read(probe_start..probe_end).unwrap();
            prop_assert_eq!(
                got.materialize(),
                &model[probe_start as usize..probe_end as usize]
            );
        }
        let full = img.read(0..VSIZE).unwrap();
        prop_assert_eq!(full.materialize(), model);
    }

    /// The file grows by at most one data cluster plus metadata per
    /// written cluster, and never shrinks (bump allocation).
    #[test]
    fn allocation_is_bounded_and_monotonic(
        ops in prop::collection::vec((0..VSIZE, 1..8_000u64), 1..20)
    ) {
        let mut img =
            Qcow2Image::create(MemBlockDev::new(), VSIZE, CBITS, None).unwrap();
        let cs = 1u64 << CBITS;
        let mut prev = img.file_len();
        let mut clusters_written = std::collections::HashSet::new();
        for (off, len) in ops {
            let off = off.min(VSIZE - 1);
            let len = len.min(VSIZE - off).max(1);
            for c in (off / cs)..=((off + len - 1) / cs) {
                clusters_written.insert(c);
            }
            img.write(off, Payload::synth(1, off, len)).unwrap();
            let now = img.file_len();
            prop_assert!(now >= prev, "file never shrinks");
            prev = now;
        }
        // Upper bound: data clusters + one L2 table per touched L1 slot +
        // header/L1 area.
        let meta_clusters = 2 + img.header().l1_entries;
        let bound = (clusters_written.len() as u64 + meta_clusters + 1) * cs;
        prop_assert!(
            img.file_len() <= bound,
            "file {} exceeds bound {}",
            img.file_len(),
            bound
        );
    }
}
