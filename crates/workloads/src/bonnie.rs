//! A Bonnie++-like filesystem benchmark plan (Figs. 6 and 7).
//!
//! Bonnie++ (Martin, ref.\[21] of the paper) writes a working set, reads it back, overwrites it, then
//! measures random seeks and file create/delete rates. The paper ran it
//! inside a VM with an 800 MB working set in 8 KB blocks out of the 2 GB
//! image (§5.4). The plan here is the op sequence; executors time each
//! phase separately to produce the per-phase bars of the figures.

use crate::VmOp;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The benchmark phases, in Bonnie++ order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BonniePhase {
    /// Sequential block writes of the working set.
    BlockWrite,
    /// Sequential block reads of the written data.
    BlockRead,
    /// Sequential read-modify-write of each block.
    BlockOverwrite,
    /// Random small reads (seek test).
    RandomSeek,
    /// File creation (metadata op burst).
    CreateFiles,
    /// File deletion (metadata op burst).
    DeleteFiles,
}

impl BonniePhase {
    /// Display label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            BonniePhase::BlockWrite => "BlockW",
            BonniePhase::BlockRead => "BlockR",
            BonniePhase::BlockOverwrite => "BlockO",
            BonniePhase::RandomSeek => "RndSeek",
            BonniePhase::CreateFiles => "CreatF",
            BonniePhase::DeleteFiles => "DelF",
        }
    }
}

/// Benchmark parameters.
#[derive(Debug, Clone, Copy)]
pub struct BonnieConfig {
    /// Image size (the file system the VM writes into lives here).
    pub image_len: u64,
    /// Offset of the working-set region inside the image.
    pub region_offset: u64,
    /// Working-set size (paper: 800 MB).
    pub working_set: u64,
    /// Block size (paper: 8 KB).
    pub block: u64,
    /// Number of random seeks.
    pub seeks: u64,
    /// Number of files created/deleted in the metadata phases.
    pub files: u64,
}

impl BonnieConfig {
    /// The paper's configuration: 800 MB of 2 GB in 8 KB blocks.
    pub fn paper() -> Self {
        Self {
            image_len: 2 << 30,
            region_offset: 512 << 20,
            working_set: 800 << 20,
            block: 8 << 10,
            seeks: 8_000,
            files: 16_384,
        }
    }

    /// A scaled-down configuration for tests. Keeps the paper's 8 KB
    /// block size (the per-op/throughput balance depends on it).
    pub fn scaled(image_len: u64) -> Self {
        Self {
            image_len,
            region_offset: image_len / 4,
            working_set: image_len / 2,
            block: 8 << 10,
            seeks: 64,
            files: 128,
        }
    }

    /// Generate the I/O ops of one phase. Metadata phases (create/delete)
    /// are tiny inode-sized writes, matching how a guest filesystem turns
    /// them into journal/inode updates in the image.
    pub fn phase_ops(&self, phase: BonniePhase, seed: u64) -> Vec<VmOp> {
        assert!(
            self.region_offset + self.working_set <= self.image_len,
            "region must fit"
        );
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xB0_11_1E_00);
        let blocks = self.working_set / self.block;
        match phase {
            BonniePhase::BlockWrite => (0..blocks)
                .map(|b| VmOp::Write {
                    offset: self.region_offset + b * self.block,
                    len: self.block,
                })
                .collect(),
            BonniePhase::BlockRead => (0..blocks)
                .map(|b| VmOp::Read {
                    offset: self.region_offset + b * self.block,
                    len: self.block,
                })
                .collect(),
            BonniePhase::BlockOverwrite => (0..blocks)
                .flat_map(|b| {
                    let offset = self.region_offset + b * self.block;
                    [
                        VmOp::Read {
                            offset,
                            len: self.block,
                        },
                        VmOp::Write {
                            offset,
                            len: self.block,
                        },
                    ]
                })
                .collect(),
            BonniePhase::RandomSeek => (0..self.seeks)
                .map(|_| {
                    let b = rng.gen_range(0..blocks);
                    VmOp::Read {
                        offset: self.region_offset + b * self.block,
                        len: 512.min(self.block),
                    }
                })
                .collect(),
            BonniePhase::CreateFiles => (0..self.files)
                .map(|i| VmOp::Write {
                    offset: self.region_offset + (i % blocks) * self.block,
                    len: 256,
                })
                .collect(),
            BonniePhase::DeleteFiles => (0..self.files)
                .map(|i| VmOp::Write {
                    offset: self.region_offset + (i % blocks) * self.block,
                    len: 128,
                })
                .collect(),
        }
    }

    /// All phases in Bonnie++ order.
    pub fn phases() -> [BonniePhase; 6] {
        [
            BonniePhase::BlockWrite,
            BonniePhase::BlockRead,
            BonniePhase::BlockOverwrite,
            BonniePhase::RandomSeek,
            BonniePhase::CreateFiles,
            BonniePhase::DeleteFiles,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::totals;

    #[test]
    fn paper_config_volume() {
        let c = BonnieConfig::paper();
        let w = totals(&c.phase_ops(BonniePhase::BlockWrite, 1));
        assert_eq!(w.write_bytes, 800 << 20);
        let r = totals(&c.phase_ops(BonniePhase::BlockRead, 1));
        assert_eq!(r.read_bytes, 800 << 20);
        let o = totals(&c.phase_ops(BonniePhase::BlockOverwrite, 1));
        assert_eq!(o.read_bytes, 800 << 20);
        assert_eq!(o.write_bytes, 800 << 20);
    }

    #[test]
    fn read_phase_reads_exactly_what_was_written() {
        let c = BonnieConfig::scaled(1 << 20);
        let writes = c.phase_ops(BonniePhase::BlockWrite, 1);
        let reads = c.phase_ops(BonniePhase::BlockRead, 1);
        assert_eq!(writes.len(), reads.len());
        for (w, r) in writes.iter().zip(&reads) {
            let (
                VmOp::Write {
                    offset: wo,
                    len: wl,
                },
                VmOp::Read {
                    offset: ro,
                    len: rl,
                },
            ) = (w, r)
            else {
                panic!("phase op kinds");
            };
            assert_eq!((wo, wl), (ro, rl));
        }
    }

    #[test]
    fn seeks_stay_in_region() {
        let c = BonnieConfig::scaled(1 << 20);
        for op in c.phase_ops(BonniePhase::RandomSeek, 2) {
            let VmOp::Read { offset, len } = op else {
                panic!("seeks read")
            };
            assert!(offset >= c.region_offset);
            assert!(offset + len <= c.region_offset + c.working_set);
        }
    }

    #[test]
    fn metadata_phases_are_small_ops() {
        let c = BonnieConfig::scaled(1 << 20);
        let create = c.phase_ops(BonniePhase::CreateFiles, 3);
        assert_eq!(create.len() as u64, c.files);
        assert!(create.iter().all(|op| op.write_bytes() <= 256));
    }

    #[test]
    fn labels_match_figures() {
        let labels: Vec<&str> = BonnieConfig::phases().iter().map(|p| p.label()).collect();
        assert_eq!(
            labels,
            ["BlockW", "BlockR", "BlockO", "RndSeek", "CreatF", "DelF"]
        );
    }
}
