//! # bff-workloads
//!
//! Synthetic workload generators for the paper's evaluation (§5):
//!
//! * [`boottrace`] — VM boot-phase I/O (§2.3: "random small reads and
//!   writes from/to the VM disk image"), calibrated so that a boot
//!   touches roughly the fraction of the 2 GB image the paper measured
//!   (~120 MB of remote fetches per instance in Fig. 4d).
//! * [`bonnie`] — a Bonnie++-like sequence: block write / read /
//!   overwrite phases plus random seeks and file create/delete metadata
//!   ops (Figs. 6 and 7).
//! * [`montecarlo`] — the Monte Carlo π application of §5.5: ~1000 s of
//!   compute per worker with periodic ~10 MB intermediate-result writes
//!   into the image.
//!
//! Generators are pure and deterministic (seeded); execution against an
//! image backend happens in `bff-cloud`.

pub mod bonnie;
pub mod boottrace;
pub mod montecarlo;

/// One I/O or compute step of a VM's life, replayed by the hypervisor
/// model against an image backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmOp {
    /// Burn CPU for the given microseconds.
    Cpu {
        /// Duration in microseconds.
        us: u64,
    },
    /// Read `len` bytes at `offset` from the image.
    Read {
        /// Byte offset.
        offset: u64,
        /// Length in bytes.
        len: u64,
    },
    /// Write `len` bytes at `offset` into the image (content is
    /// synthesized deterministically from the VM seed by the executor).
    Write {
        /// Byte offset.
        offset: u64,
        /// Length in bytes.
        len: u64,
    },
}

impl VmOp {
    /// Bytes read by this op.
    pub fn read_bytes(&self) -> u64 {
        match self {
            VmOp::Read { len, .. } => *len,
            _ => 0,
        }
    }

    /// Bytes written by this op.
    pub fn write_bytes(&self) -> u64 {
        match self {
            VmOp::Write { len, .. } => *len,
            _ => 0,
        }
    }

    /// CPU time consumed by this op.
    pub fn cpu_us(&self) -> u64 {
        match self {
            VmOp::Cpu { us } => *us,
            _ => 0,
        }
    }
}

/// One replay step after read-coalescing (see [`coalesce_reads`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmBatch {
    /// A compute or write op, replayed as-is.
    Op(VmOp),
    /// Consecutive reads issued as one vectored request.
    Reads(Vec<std::ops::Range<u64>>),
}

/// Coalesce consecutive `Read` ops into vectored batches of at most
/// `max_batch` requests — the virtual disk's queue-depth model: a guest
/// issuing back-to-back reads has them in flight together, and the
/// hypervisor submits the queue as one vectored request to the image
/// backend. Compute and write ops are ordering barriers (a read after a
/// write must observe it) and flush the pending batch.
pub fn coalesce_reads(ops: &[VmOp], max_batch: usize) -> Vec<VmBatch> {
    assert!(max_batch > 0, "queue depth must be positive");
    let mut out = Vec::new();
    let mut pending: Vec<std::ops::Range<u64>> = Vec::new();
    for op in ops {
        match *op {
            VmOp::Read { offset, len } => {
                pending.push(offset..offset + len);
                if pending.len() == max_batch {
                    out.push(VmBatch::Reads(std::mem::take(&mut pending)));
                }
            }
            other => {
                if !pending.is_empty() {
                    out.push(VmBatch::Reads(std::mem::take(&mut pending)));
                }
                out.push(VmBatch::Op(other));
            }
        }
    }
    if !pending.is_empty() {
        out.push(VmBatch::Reads(pending));
    }
    out
}

/// Totals over a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceTotals {
    /// Sum of read lengths.
    pub read_bytes: u64,
    /// Sum of write lengths.
    pub write_bytes: u64,
    /// Sum of compute time.
    pub cpu_us: u64,
    /// Number of ops.
    pub ops: usize,
}

/// Summarize a trace.
pub fn totals(trace: &[VmOp]) -> TraceTotals {
    let mut t = TraceTotals {
        ops: trace.len(),
        ..Default::default()
    };
    for op in trace {
        t.read_bytes += op.read_bytes();
        t.write_bytes += op.write_bytes();
        t.cpu_us += op.cpu_us();
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesce_batches_consecutive_reads_and_respects_barriers() {
        let trace = [
            VmOp::Read { offset: 0, len: 10 },
            VmOp::Read {
                offset: 10,
                len: 10,
            },
            VmOp::Write { offset: 5, len: 2 },
            VmOp::Read {
                offset: 20,
                len: 10,
            },
            VmOp::Cpu { us: 3 },
        ];
        let batches = coalesce_reads(&trace, 32);
        assert_eq!(
            batches,
            vec![
                VmBatch::Reads(vec![0..10, 10..20]),
                VmBatch::Op(VmOp::Write { offset: 5, len: 2 }),
                VmBatch::Reads(std::iter::once(20..30).collect()),
                VmBatch::Op(VmOp::Cpu { us: 3 }),
            ]
        );
    }

    #[test]
    fn coalesce_caps_batches_at_queue_depth() {
        let trace: Vec<VmOp> = (0..5)
            .map(|i| VmOp::Read {
                offset: i * 10,
                len: 10,
            })
            .collect();
        let batches = coalesce_reads(&trace, 2);
        assert_eq!(batches.len(), 3);
        let sizes: Vec<usize> = batches
            .iter()
            .map(|b| match b {
                VmBatch::Reads(r) => r.len(),
                _ => panic!("only reads"),
            })
            .collect();
        assert_eq!(sizes, vec![2, 2, 1]);
    }

    #[test]
    fn coalesce_preserves_op_order_and_volume() {
        let trace = [
            VmOp::Cpu { us: 1 },
            VmOp::Read { offset: 0, len: 7 },
            VmOp::Write { offset: 0, len: 3 },
        ];
        let batches = coalesce_reads(&trace, 1);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0], VmBatch::Op(VmOp::Cpu { us: 1 }));
        assert_eq!(batches[1], VmBatch::Reads(std::iter::once(0..7).collect()));
    }

    #[test]
    fn totals_add_up() {
        let trace = [
            VmOp::Cpu { us: 10 },
            VmOp::Read {
                offset: 0,
                len: 100,
            },
            VmOp::Write { offset: 5, len: 7 },
            VmOp::Read {
                offset: 100,
                len: 50,
            },
        ];
        let t = totals(&trace);
        assert_eq!(t.read_bytes, 150);
        assert_eq!(t.write_bytes, 7);
        assert_eq!(t.cpu_us, 10);
        assert_eq!(t.ops, 4);
    }
}
