//! # bff-workloads
//!
//! Synthetic workload generators for the paper's evaluation (§5):
//!
//! * [`boottrace`] — VM boot-phase I/O (§2.3: "random small reads and
//!   writes from/to the VM disk image"), calibrated so that a boot
//!   touches roughly the fraction of the 2 GB image the paper measured
//!   (~120 MB of remote fetches per instance in Fig. 4d).
//! * [`bonnie`] — a Bonnie++-like sequence: block write / read /
//!   overwrite phases plus random seeks and file create/delete metadata
//!   ops (Figs. 6 and 7).
//! * [`montecarlo`] — the Monte Carlo π application of §5.5: ~1000 s of
//!   compute per worker with periodic ~10 MB intermediate-result writes
//!   into the image.
//!
//! Generators are pure and deterministic (seeded); execution against an
//! image backend happens in `bff-cloud`.

pub mod bonnie;
pub mod boottrace;
pub mod montecarlo;

/// One I/O or compute step of a VM's life, replayed by the hypervisor
/// model against an image backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmOp {
    /// Burn CPU for the given microseconds.
    Cpu {
        /// Duration in microseconds.
        us: u64,
    },
    /// Read `len` bytes at `offset` from the image.
    Read {
        /// Byte offset.
        offset: u64,
        /// Length in bytes.
        len: u64,
    },
    /// Write `len` bytes at `offset` into the image (content is
    /// synthesized deterministically from the VM seed by the executor).
    Write {
        /// Byte offset.
        offset: u64,
        /// Length in bytes.
        len: u64,
    },
}

impl VmOp {
    /// Bytes read by this op.
    pub fn read_bytes(&self) -> u64 {
        match self {
            VmOp::Read { len, .. } => *len,
            _ => 0,
        }
    }

    /// Bytes written by this op.
    pub fn write_bytes(&self) -> u64 {
        match self {
            VmOp::Write { len, .. } => *len,
            _ => 0,
        }
    }

    /// CPU time consumed by this op.
    pub fn cpu_us(&self) -> u64 {
        match self {
            VmOp::Cpu { us } => *us,
            _ => 0,
        }
    }
}

/// Totals over a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceTotals {
    /// Sum of read lengths.
    pub read_bytes: u64,
    /// Sum of write lengths.
    pub write_bytes: u64,
    /// Sum of compute time.
    pub cpu_us: u64,
    /// Number of ops.
    pub ops: usize,
}

/// Summarize a trace.
pub fn totals(trace: &[VmOp]) -> TraceTotals {
    let mut t = TraceTotals {
        ops: trace.len(),
        ..Default::default()
    };
    for op in trace {
        t.read_bytes += op.read_bytes();
        t.write_bytes += op.write_bytes();
        t.cpu_us += op.cpu_us();
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let trace = [
            VmOp::Cpu { us: 10 },
            VmOp::Read {
                offset: 0,
                len: 100,
            },
            VmOp::Write { offset: 5, len: 7 },
            VmOp::Read {
                offset: 100,
                len: 50,
            },
        ];
        let t = totals(&trace);
        assert_eq!(t.read_bytes, 150);
        assert_eq!(t.write_bytes, 7);
        assert_eq!(t.cpu_us, 10);
        assert_eq!(t.ops, 4);
    }
}
