//! The Monte Carlo π application of §5.5.
//!
//! One hundred loosely coupled workers estimate π by sampling points in
//! the unit square; each saves intermediate results into a ~10 MB
//! temporary file inside its VM image, which is what makes the
//! suspend/resume cycle (multisnapshotting + multideployment) meaningful:
//! after resume on a fresh node, the worker restarts from the last
//! intermediate result instead of from scratch.

use crate::VmOp;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Actually estimate π by sampling (the real computation, used by the
/// examples so the application end-to-end result is genuine).
pub fn estimate_pi(samples: u64, seed: u64) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut inside = 0u64;
    for _ in 0..samples {
        let x: f64 = rng.gen_range(-1.0..1.0);
        let y: f64 = rng.gen_range(-1.0..1.0);
        if x * x + y * y <= 1.0 {
            inside += 1;
        }
    }
    4.0 * inside as f64 / samples as f64
}

/// Plan for one worker VM.
#[derive(Debug, Clone, Copy)]
pub struct WorkerPlan {
    /// Total compute time of the full job, us (paper: ~1000 s).
    pub compute_us: u64,
    /// Interval between intermediate-result saves, us.
    pub checkpoint_every_us: u64,
    /// Size of the intermediate-result file (paper: ~10 MB).
    pub state_bytes: u64,
    /// Where in the image the temporary file lives.
    pub state_offset: u64,
}

impl WorkerPlan {
    /// The paper's setting: ~1000 s of compute, ~10 MB of state.
    pub fn paper() -> Self {
        Self {
            compute_us: 1_000_000_000,
            checkpoint_every_us: 100_000_000,
            state_bytes: 10 << 20,
            state_offset: 1 << 30,
        }
    }

    /// Scaled-down plan for tests.
    pub fn scaled() -> Self {
        Self {
            compute_us: 1_000_000,
            checkpoint_every_us: 200_000,
            state_bytes: 64 << 10,
            state_offset: 1 << 20,
        }
    }

    /// The ops for the portion of the job between `done_us` and either
    /// completion or `until_us` (used to split the job around a
    /// suspend/resume point). Each checkpoint overwrites the same
    /// temporary file region.
    pub fn ops_between(&self, done_us: u64, until_us: u64) -> Vec<VmOp> {
        let end = until_us.min(self.compute_us);
        let mut ops = Vec::new();
        let mut t = done_us;
        while t < end {
            let step = self.checkpoint_every_us.min(end - t);
            ops.push(VmOp::Cpu { us: step });
            t += step;
            // Save intermediate results (skip if the job just finished —
            // final results are reported, not checkpointed).
            if t < self.compute_us {
                ops.push(VmOp::Write {
                    offset: self.state_offset,
                    len: self.state_bytes,
                });
            }
        }
        ops
    }

    /// Ops for the whole uninterrupted job.
    pub fn full_ops(&self) -> Vec<VmOp> {
        self.ops_between(0, self.compute_us)
    }

    /// On resume, a worker reads its saved state back first.
    pub fn resume_prologue(&self) -> Vec<VmOp> {
        vec![VmOp::Read {
            offset: self.state_offset,
            len: self.state_bytes,
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::totals;

    #[test]
    fn pi_estimate_converges() {
        let pi = estimate_pi(200_000, 42);
        assert!((pi - std::f64::consts::PI).abs() < 0.02, "estimate {pi}");
    }

    #[test]
    fn pi_estimate_deterministic() {
        assert_eq!(estimate_pi(1000, 7), estimate_pi(1000, 7));
    }

    #[test]
    fn full_job_compute_time_is_exact() {
        let p = WorkerPlan::scaled();
        let t = totals(&p.full_ops());
        assert_eq!(t.cpu_us, p.compute_us);
        // 5 checkpoint intervals -> 4 intermediate saves.
        assert_eq!(t.write_bytes, 4 * p.state_bytes);
    }

    #[test]
    fn split_job_equals_whole_job() {
        let p = WorkerPlan::scaled();
        let cut = 450_000;
        let first = p.ops_between(0, cut);
        let second = p.ops_between(cut, p.compute_us);
        let t1 = totals(&first);
        let t2 = totals(&second);
        assert_eq!(t1.cpu_us + t2.cpu_us, p.compute_us);
    }

    #[test]
    fn resume_reads_state_back() {
        let p = WorkerPlan::scaled();
        let pro = p.resume_prologue();
        assert_eq!(totals(&pro).read_bytes, p.state_bytes);
    }
}
