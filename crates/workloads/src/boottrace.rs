//! Synthetic VM boot traces.
//!
//! A boot (§2.3) is modelled as: the boot sector and bootloader, a
//! sequential kernel/initrd read, then a long tail of small random reads
//! (init scripts, shared libraries, configuration) interleaved with CPU
//! bursts, plus a sprinkle of small writes (log files, runtime state).
//! The knobs are calibrated so the defaults reproduce the paper's
//! measured footprint: ~120 MB of a 2 GB Debian image touched per boot
//! (13 GB of fetches across 110 instances, Fig. 4d) and a local boot time
//! of roughly ten seconds (the flat prepropagation line of Fig. 4a).

use crate::VmOp;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Boot-trace parameters.
#[derive(Debug, Clone, Copy)]
pub struct BootProfile {
    /// Image size in bytes.
    pub image_len: u64,
    /// Bytes of sequential kernel/initrd reads at the front of the image.
    pub kernel_bytes: u64,
    /// Request size for the sequential phase.
    pub kernel_read: u64,
    /// Total bytes of random small reads (libraries, scripts, config).
    pub random_read_bytes: u64,
    /// Random read request sizes (min, max).
    pub random_read_size: (u64, u64),
    /// Fraction of the image the random reads cluster into (hot set).
    pub hot_fraction: f64,
    /// Total bytes of small writes during boot (logs, runtime state).
    pub write_bytes: u64,
    /// Write request sizes (min, max).
    pub write_size: (u64, u64),
    /// Total CPU time of the boot, spread between I/O ops, us.
    pub cpu_total_us: u64,
    /// Fraction of the boot's file reads drawn from the *image's* fixed
    /// file layout, identical across instances. Instances booting the
    /// same image read the same kernel, init scripts and shared
    /// libraries — §3.1.3's "access the same initial data set ...
    /// highly correlated" observation, which both the provider page
    /// caches and the adaptive prefetcher exploit. The remainder models
    /// per-instance divergence (host-specific config, timing-dependent
    /// services).
    pub shared_fraction: f64,
}

impl BootProfile {
    /// The paper's 2 GB Debian image boot, calibrated to §5.2 numbers.
    pub fn debian_2g() -> Self {
        Self {
            image_len: 2 << 30,
            kernel_bytes: 24 << 20,
            kernel_read: 128 << 10,
            random_read_bytes: 94 << 20,
            random_read_size: (4 << 10, 64 << 10),
            hot_fraction: 0.045,
            write_bytes: 2 << 20,
            write_size: (1 << 10, 16 << 10),
            cpu_total_us: 9_500_000,
            shared_fraction: 0.9,
        }
    }

    /// A proportionally scaled-down profile for fast tests: image of
    /// `image_len` bytes with the same touch ratios as the 2 GB boot.
    pub fn scaled(image_len: u64) -> Self {
        let full = Self::debian_2g();
        let ratio = image_len as f64 / full.image_len as f64;
        let scale = |v: u64| ((v as f64 * ratio) as u64).max(1);
        Self {
            image_len,
            kernel_bytes: scale(full.kernel_bytes),
            kernel_read: (16 << 10).min(image_len / 8).max(512),
            random_read_bytes: scale(full.random_read_bytes),
            random_read_size: (512, (8 << 10).min(image_len / 16).max(513)),
            hot_fraction: full.hot_fraction,
            write_bytes: scale(full.write_bytes),
            write_size: (256, 1024),
            cpu_total_us: 50_000,
            shared_fraction: full.shared_fraction,
        }
    }

    /// Generate the boot trace for one VM instance. Different seeds give
    /// different (but statistically identical) traces — the natural skew
    /// between instances that §3.1.3 relies on.
    pub fn generate(&self, seed: u64) -> Vec<VmOp> {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xB007_B007_B007_B007);
        let mut ops = Vec::new();
        // Estimate op count to spread CPU time between I/Os.
        let est_random_ops = (self.random_read_bytes
            / ((self.random_read_size.0 + self.random_read_size.1) / 2).max(1))
        .max(1);
        let est_seq_ops = (self.kernel_bytes / self.kernel_read.max(1)).max(1);
        let est_write_ops =
            (self.write_bytes / ((self.write_size.0 + self.write_size.1) / 2).max(1)).max(1);
        let total_ops = est_random_ops + est_seq_ops + est_write_ops;
        let cpu_slice = (self.cpu_total_us / total_ops).max(1);
        let cpu = |rng: &mut SmallRng, ops: &mut Vec<VmOp>| {
            // Jitter each CPU burst ±50% so instances drift apart.
            let us = rng.gen_range(cpu_slice / 2..=cpu_slice * 3 / 2).max(1);
            ops.push(VmOp::Cpu { us });
        };

        // BIOS/bootloader: the first sectors.
        ops.push(VmOp::Read {
            offset: 0,
            len: 512.min(self.image_len),
        });
        cpu(&mut rng, &mut ops);

        // Kernel + initrd: sequential from the front of the image.
        let mut off = 4096.min(self.image_len);
        while off < self.kernel_bytes.min(self.image_len) {
            let len = self.kernel_read.min(self.image_len - off);
            ops.push(VmOp::Read { offset: off, len });
            off += len;
            cpu(&mut rng, &mut ops);
        }

        // Services, libraries, config files: each is a contiguous run of
        // small sequential reads (the guest reads whole files), with the
        // *files* placed inside a hot subset of the image. Small
        // requests therefore correlate strongly within chunks — exactly
        // the pattern §3.3 strategy 1 exploits, and what keeps the
        // fetched volume close to the touched volume (Fig. 4d: ~13 GB
        // fetched vs ~12 GB touched across 110 instances).
        //
        // Most files come from the image's *fixed layout* — every
        // instance boots the same kernel, init scripts and libraries, in
        // the same order (§3.1.3's access correlation); the rest are
        // per-instance (host config, timing-dependent services), drawn
        // from the VM's own stream.
        let layout = self.shared_files();
        let mut layout_next = 0usize;
        let mut read_left = self.random_read_bytes;
        let mut write_left = self.write_bytes;
        let est_files = (self.random_read_bytes / (256 << 10)).max(1);
        let write_every = (est_files / est_write_ops.max(1)).max(1);
        let mut file_no = 0u64;
        while read_left > 0 {
            let shared =
                rng.gen_range(0.0..1.0) < self.shared_fraction && layout_next < layout.len();
            let (mut offset, file_len) = if shared {
                let f = layout[layout_next];
                layout_next += 1;
                f
            } else {
                // Per-instance divergence is *small* files — host
                // config, machine ids, early logs. The big files (the
                // kernel, shared libraries) are by definition shared:
                // every instance of the image has the same ones.
                let (offset, _) = self.place_file(&mut rng);
                let cap = (64u64 << 10).min(self.random_read_bytes / 4).max(2048);
                (offset, rng.gen_range(cap / 16..=cap))
            };
            let file_len = file_len.min(read_left);
            // Sequential requests through the file (request sizes are
            // the instance's own: same data, instance-specific I/O).
            let mut remaining = file_len;
            while remaining > 0 {
                let len = rng
                    .gen_range(self.random_read_size.0..=self.random_read_size.1)
                    .min(remaining);
                ops.push(VmOp::Read { offset, len });
                offset += len;
                remaining -= len;
                cpu(&mut rng, &mut ops);
            }
            read_left -= file_len;
            file_no += 1;
            if file_no.is_multiple_of(write_every) && write_left > 0 {
                let wlen = rng
                    .gen_range(self.write_size.0..=self.write_size.1)
                    .min(write_left);
                let woff = rng.gen_range(0..self.image_len.saturating_sub(wlen).max(1));
                ops.push(VmOp::Write {
                    offset: woff,
                    len: wlen,
                });
                write_left -= wlen;
            }
        }
        ops
    }

    /// One boot file: placed inside a band of the hot set (different
    /// chunks — and providers — serve different files), sized mostly
    /// small with occasional large shared libraries.
    fn place_file(&self, rng: &mut SmallRng) -> (u64, u64) {
        let hot_len = ((self.image_len as f64 * self.hot_fraction) as u64).max(1);
        let file_len = match rng.gen_range(0..10u32) {
            0..=5 => rng.gen_range(4u64 << 10..64 << 10),
            6..=8 => rng.gen_range(64u64 << 10..256 << 10),
            _ => rng.gen_range(256u64 << 10..1 << 20),
        };
        let band = rng.gen_range(0..8u64);
        let band_base = band * (self.image_len / 8);
        let within = rng.gen_range(0..(hot_len / 8).max(1));
        let offset = (band_base + within).min(self.image_len.saturating_sub(file_len));
        (offset, file_len)
    }

    /// The image's fixed boot-file layout: the ordered list of files
    /// every instance of this image reads. Deterministic in the profile
    /// alone (never the instance seed) — instances share it the way
    /// they share the image bytes. Sized generously past
    /// `random_read_bytes` so instances that skip per-VM files still
    /// find shared ones.
    fn shared_files(&self) -> Vec<(u64, u64)> {
        let mut rng = SmallRng::seed_from_u64(0x1AA_0117 ^ self.image_len);
        let mut files = Vec::new();
        let mut total = 0u64;
        while total < self.random_read_bytes.saturating_mul(2) {
            let f = self.place_file(&mut rng);
            total += f.1;
            files.push(f);
        }
        files
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::totals;

    #[test]
    fn default_profile_touches_paper_footprint() {
        let p = BootProfile::debian_2g();
        let t = totals(&p.generate(1));
        // ~118 MB of reads: within 15% of the 120 MB calibration target.
        let target = 118.0 * 1024.0 * 1024.0;
        assert!(
            (t.read_bytes as f64 - target).abs() / target < 0.15,
            "read bytes {} off target",
            t.read_bytes
        );
        // CPU close to the configured total.
        assert!(
            (t.cpu_us as f64 - 9.5e6).abs() / 9.5e6 < 0.2,
            "cpu {} off target",
            t.cpu_us
        );
        // Boot reads are a small fraction of the image (the lazy-fetch
        // advantage exists at all).
        assert!(t.read_bytes < (2u64 << 30) / 8);
    }

    #[test]
    fn traces_are_deterministic_per_seed() {
        let p = BootProfile::scaled(1 << 20);
        assert_eq!(p.generate(7), p.generate(7));
        assert_ne!(p.generate(7), p.generate(8), "different instances differ");
    }

    #[test]
    fn ops_stay_in_bounds() {
        let p = BootProfile::scaled(1 << 20);
        for seed in 0..5 {
            for op in p.generate(seed) {
                match op {
                    VmOp::Read { offset, len } | VmOp::Write { offset, len } => {
                        assert!(offset + len <= 1 << 20, "{op:?} out of bounds");
                        assert!(len > 0);
                    }
                    VmOp::Cpu { us } => assert!(us > 0),
                }
            }
        }
    }

    #[test]
    fn scaled_profile_keeps_ratios() {
        let p = BootProfile::scaled(1 << 22);
        let t = totals(&p.generate(3));
        let ratio = t.read_bytes as f64 / (1u64 << 22) as f64;
        // The full profile touches ~5.8% of the image.
        assert!((0.02..0.12).contains(&ratio), "touch ratio {ratio}");
    }

    #[test]
    fn starts_with_boot_sector() {
        let p = BootProfile::debian_2g();
        let ops = p.generate(9);
        assert_eq!(
            ops[0],
            VmOp::Read {
                offset: 0,
                len: 512
            }
        );
    }
}
