//! Calibration constants.
//!
//! Every constant here is anchored to a number printed in the paper (or
//! directly readable off its figures); EXPERIMENTS.md tabulates the
//! mapping. Nothing else in the workspace hard-codes timing values.

use bff_sim::{ClusterParams, DiskParams};

/// End-to-end calibration for the simulated testbed.
#[derive(Debug, Clone, Copy)]
pub struct Calibration {
    /// Per-I/O-op syscall + block-layer cost on the local path, us.
    /// Anchor: Fig. 6 local block throughput at 8 KB requests.
    pub syscall_us: u64,
    /// Extra user/kernel crossings per data op through FUSE, us.
    /// Anchor: Fig. 6 "our-approach" bars stay within ~2x of local.
    pub fuse_data_us: u64,
    /// Extra cost of a random seek op (page-cache lookup, block layer),
    /// us, on top of `syscall_us`. Anchor: Fig. 7 RndSeek local
    /// ~35 k ops/s.
    pub seek_extra_us: u64,
    /// Extra FUSE cost of a random seek. Anchor: Fig. 7 RndSeek
    /// our-approach visibly below local.
    pub fuse_seek_extra_us: u64,
    /// Cost of a file create on the local path, us. Anchor: Fig. 7
    /// CreatF local ~30 k ops/s.
    pub create_us: u64,
    /// Extra FUSE cost per create (multiple crossings: lookup + create +
    /// attr), us.
    pub fuse_create_extra_us: u64,
    /// Cost of a file delete on the local path, us. Anchor: Fig. 7 DelF.
    pub delete_us: u64,
    /// Extra FUSE cost per delete — the paper singles out deletion as the
    /// worst case ("especially with random seeks and file deletion").
    pub fuse_delete_extra_us: u64,
    /// Effective absorb bandwidth of the hypervisor's *default* write
    /// path, bytes/us. Anchor: Fig. 6 local BlockW ≈ half of
    /// our-approach ("write throughput ... almost twice as high for our
    /// approach").
    pub hyp_write_bw: f64,
    /// Page-cache copy bandwidth for locally served reads, bytes/us.
    /// Anchor: Fig. 6 BlockR ≈ 430 MB/s for both configurations.
    pub page_read_bw: f64,
    /// Hypervisor start skew upper bound per instance, us. Anchor:
    /// §3.1.3 "a skew of about 100 ms between the times they access the
    /// boot sector".
    pub start_skew_us: u64,
    /// qcow2 cluster bits for the baseline (qemu default 64 KiB).
    pub qcow2_cluster_bits: u32,
    /// Broadcast tree fan-out for the prepropagation baseline.
    pub bcast_arity: usize,
}

impl Default for Calibration {
    fn default() -> Self {
        Self {
            syscall_us: 4,
            fuse_data_us: 8,
            seek_extra_us: 24,
            fuse_seek_extra_us: 55,
            create_us: 28,
            fuse_create_extra_us: 35,
            delete_us: 25,
            fuse_delete_extra_us: 170,
            hyp_write_bw: 210.0,
            page_read_bw: 550.0,
            start_skew_us: 200_000,
            qcow2_cluster_bits: 16,
            bcast_arity: 2,
        }
    }
}

impl Calibration {
    /// The simulated Grid'5000 Nancy cluster for `compute` nodes plus one
    /// service node (§5.1: 117.5 MB/s TCP, 0.1 ms latency, 55 MB/s
    /// disks, ≥ 8 GB RAM).
    pub fn cluster(&self, compute: usize) -> ClusterParams {
        ClusterParams {
            nodes: compute + 1,
            nic_bw: 117.5,
            link_latency_us: 100,
            msg_overhead_bytes: 512,
            rpc_overhead_us: 150,
            disk: DiskParams {
                bandwidth: 55.0,
                access_us: 6_000,
                // Page-cache absorb speed for mmap write-back; anchor:
                // Fig. 6 our-approach BlockW ≈ 450 MB/s.
                mem_bandwidth: 450.0,
                // Default vm.dirty_ratio (20%) of the nodes' 8 GB RAM.
                dirty_limit: 1_600 << 20,
            },
        }
    }

    /// Total FUSE-path cost of one data op, us.
    pub fn fuse_op_us(&self) -> u64 {
        self.syscall_us + self.fuse_data_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_matches_testbed() {
        let c = Calibration::default().cluster(110);
        assert_eq!(c.nodes, 111);
        assert_eq!(c.nic_bw, 117.5);
        assert_eq!(c.disk.bandwidth, 55.0);
        assert_eq!(c.link_latency_us, 100);
    }

    #[test]
    fn fuse_path_is_more_expensive_than_local() {
        let cal = Calibration::default();
        assert!(cal.fuse_op_us() > cal.syscall_us);
        assert!(cal.fuse_delete_extra_us > cal.fuse_create_extra_us);
    }
}
