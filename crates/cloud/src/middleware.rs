//! The cloud middleware control API (Fig. 1): upload/download images,
//! deploy a set of VM instances, add/remove instances, and snapshot
//! individual instances or the whole set via broadcast CLONE + COMMIT
//! (§3.2).
//!
//! This is the integration layer the paper sketches for Nimbus: the
//! "central service" is [`Cloud`]; each [`VmHandle`] plays the control
//! agent that issues ioctl calls to its node's mirroring module.

use crate::backend::{BackendError, ImageBackend, MirrorBackend};
use crate::params::Calibration;
use bff_blobseer::{BlobConfig, BlobId, BlobStore, BlobTopology, Client as BlobClient, Version};
use bff_data::Payload;
use bff_net::{Fabric, NodeId};
use std::collections::HashMap;
use std::sync::Arc;

/// A deployed VM instance under middleware control.
pub struct VmHandle {
    /// Compute node hosting the instance.
    pub node: NodeId,
    /// The instance's image backend (the mirroring module).
    pub backend: MirrorBackend,
}

impl VmHandle {
    /// Snapshot this single instance (fine-grained control, §3.2).
    pub fn snapshot(&mut self) -> Result<(BlobId, Version), BackendError> {
        self.backend.snapshot()?;
        Ok((self.backend.blob(), self.backend.version()))
    }
}

/// The middleware: owns the repository deployment and coordinates
/// compute nodes.
pub struct Cloud {
    store: Arc<BlobStore>,
    fabric: Arc<dyn Fabric>,
    compute: Vec<NodeId>,
    service: NodeId,
    cal: Calibration,
}

impl Cloud {
    /// Deploy the versioning repository over `compute` nodes (aggregating
    /// their local disks, §3.1.1), with managers on `service`.
    pub fn new(
        fabric: Arc<dyn Fabric>,
        compute: Vec<NodeId>,
        service: NodeId,
        blob_cfg: BlobConfig,
        cal: Calibration,
    ) -> Self {
        let topo = BlobTopology::colocated(&compute, service);
        let store = BlobStore::new(blob_cfg, topo, Arc::clone(&fabric));
        Self {
            store,
            fabric,
            compute,
            service,
            cal,
        }
    }

    /// Wrap an existing repository handle instead of deploying one —
    /// e.g. a [`BlobStore::remote`] attached over sockets to
    /// `blob_server` processes hosting the server roles. Note that on a
    /// remote handle the local-diagnostic parts of [`Cloud::metrics`]
    /// (contention, storage totals) are unavailable.
    pub fn with_store(
        store: Arc<BlobStore>,
        fabric: Arc<dyn Fabric>,
        compute: Vec<NodeId>,
        service: NodeId,
        cal: Calibration,
    ) -> Self {
        Self {
            store,
            fabric,
            compute,
            service,
            cal,
        }
    }

    /// The repository.
    pub fn store(&self) -> &Arc<BlobStore> {
        &self.store
    }

    /// The fabric in use.
    pub fn fabric(&self) -> &Arc<dyn Fabric> {
        &self.fabric
    }

    /// The compute node set.
    pub fn compute_nodes(&self) -> &[NodeId] {
        &self.compute
    }

    /// Repository client for a node. Clients created for the same node
    /// attach to that node's shared [`bff_blobseer::NodeContext`] — the
    /// paper's per-node FUSE module — so co-located VMs share the
    /// descriptor cache and the content-digest dedup index.
    pub fn client(&self, node: NodeId) -> BlobClient {
        BlobClient::new(Arc::clone(&self.store), node)
    }

    /// The shared cache module of one compute node.
    pub fn node_context(&self, node: NodeId) -> Arc<bff_blobseer::NodeContext> {
        self.store.node_context(node)
    }

    /// One coherent snapshot of every cluster-level counter: cache/dedup
    /// totals, prefetch effectiveness (aggregate and per compute node),
    /// lock contention of the shared services, storage totals and the
    /// transport's real bytes-on-wire. Supersedes the old accessor
    /// sprawl (`cache_stats`, `prefetch_stats`, `node_prefetch_stats`,
    /// per-lock getters) — one call, one struct, diffable before/after
    /// a workload.
    pub fn metrics(&self) -> ClusterMetrics {
        let mut cache = bff_blobseer::CacheStats::default();
        let mut prefetch = bff_blobseer::PrefetchStats::default();
        let mut per_node_prefetch = Vec::with_capacity(self.compute.len() + 1);
        for &node in self.compute.iter().chain([&self.service]) {
            let ctx = self.store.node_context(node);
            let s = ctx.stats();
            cache.desc_hits += s.desc_hits;
            cache.desc_misses += s.desc_misses;
            cache.dedup_hits += s.dedup_hits;
            cache.dedup_reused_bytes += s.dedup_reused_bytes;
            cache.desc_entries += s.desc_entries;
            let p = ctx.prefetch_stats();
            prefetch.prefetched_chunks += p.prefetched_chunks;
            prefetch.prefetched_bytes += p.prefetched_bytes;
            prefetch.hits += p.hits;
            prefetch.hit_bytes += p.hit_bytes;
            prefetch.wasted_chunks += p.wasted_chunks;
            prefetch.cache_hits += p.cache_hits;
            prefetch.cached_chunks += p.cached_chunks;
            prefetch.cached_bytes += p.cached_bytes;
            per_node_prefetch.push((node, p));
        }
        ClusterMetrics {
            cache,
            prefetch,
            per_node_prefetch,
            board_contention: self.store.pattern_board().contention(),
            cluster_contention: self.store.cluster_contention(),
            stored_bytes: self.store.total_stored_bytes(),
            stored_chunks: self.store.total_chunks(),
            wire: self.store.wire_stats(),
            durability: self.store.durability(),
        }
    }

    /// Client-side image upload (Fig. 1 "put image"); the image is
    /// automatically striped.
    pub fn upload_image(&self, data: Payload) -> Result<(BlobId, Version), BackendError> {
        Ok(self.client(self.service).upload(data)?)
    }

    /// Client-side image download (Fig. 1 "get image"): any snapshot is a
    /// standalone raw image.
    pub fn download_image(&self, blob: BlobId, version: Version) -> Result<Payload, BackendError> {
        let client = self.client(self.service);
        let size = client.blob_size(blob)?;
        Ok(client.read(blob, version, 0..size)?)
    }

    /// Deploy one instance of `(blob, version)` on each of `nodes`
    /// (multideployment, lazily: no data moves until the VMs touch it).
    pub fn deploy(
        &self,
        blob: BlobId,
        version: Version,
        nodes: &[NodeId],
    ) -> Result<Vec<VmHandle>, BackendError> {
        nodes
            .iter()
            .map(|&node| {
                let backend = MirrorBackend::open(self.client(node), blob, version, &self.cal)?;
                Ok(VmHandle { node, backend })
            })
            .collect()
    }

    /// Add one instance to a running deployment (§3.2: "dynamically
    /// adding or removing compute nodes from that set").
    pub fn add_instance(
        &self,
        blob: BlobId,
        version: Version,
        node: NodeId,
    ) -> Result<VmHandle, BackendError> {
        let backend = MirrorBackend::open(self.client(node), blob, version, &self.cal)?;
        Ok(VmHandle { node, backend })
    }

    /// Global snapshot of the whole application: broadcast CLONE (first
    /// time) then COMMIT to every mirroring module (§3.2). Returns each
    /// instance's standalone snapshot identity.
    pub fn snapshot_all(
        &self,
        vms: &mut [VmHandle],
    ) -> Result<Vec<(BlobId, Version)>, BackendError> {
        vms.iter_mut().map(|vm| vm.snapshot()).collect()
    }

    /// Terminate an instance and drop its divergent snapshots (§3.2's
    /// "removing compute nodes from that set", completed by garbage
    /// collection): a VM that snapshotted at least once owns a private
    /// clone lineage nobody else can deploy from once the instance is
    /// gone, so every version of that clone is deleted and the chunk
    /// storage only those snapshots referenced is reclaimed
    /// ([`bff_blobseer::Client::delete_snapshots`]). Content shared
    /// with the base image — or deduplicated into other lineages —
    /// survives untouched; the refcounts guarantee it. A never-
    /// snapshotted instance just drops its local mirror state.
    ///
    /// To keep some of the instance's snapshots (e.g. a final archived
    /// checkpoint), delete the others explicitly with
    /// [`Cloud::delete_snapshot`] and drop the handle instead.
    pub fn terminate_instance(&self, vm: VmHandle) -> Result<bff_blobseer::GcReport, BackendError> {
        let VmHandle { node, backend } = vm;
        if !backend.diverged() {
            return Ok(bff_blobseer::GcReport::default());
        }
        let blob = backend.blob();
        let client = self.client(node);
        // Only the still-live versions: snapshots pruned earlier (e.g.
        // via `Cloud::delete_snapshot`) must not fail the terminate —
        // the batch delete is all-or-nothing.
        let versions = client.live_snapshots(blob)?;
        drop(backend); // the instance is gone; only the snapshots remain
        if versions.is_empty() {
            return Ok(bff_blobseer::GcReport::default());
        }
        Ok(client.delete_snapshots(blob, &versions)?)
    }

    /// Delete one published snapshot and reclaim the storage unique to
    /// it (see [`bff_blobseer::Client::delete_snapshot`]).
    pub fn delete_snapshot(
        &self,
        blob: BlobId,
        version: Version,
    ) -> Result<bff_blobseer::GcReport, BackendError> {
        Ok(self.client(self.service).delete_snapshot(blob, version)?)
    }

    /// Resume snapshots on a fresh set of nodes (off-line migration: the
    /// new nodes may run any hypervisor — snapshots are raw images).
    pub fn resume(
        &self,
        snapshots: &[(BlobId, Version)],
        nodes: &[NodeId],
    ) -> Result<Vec<VmHandle>, BackendError> {
        assert_eq!(snapshots.len(), nodes.len(), "one node per snapshot");
        snapshots
            .iter()
            .zip(nodes)
            .map(|(&(blob, version), &node)| self.add_instance(blob, version, node))
            .collect()
    }

    /// Storage accounting: bytes in the repository, and what the same
    /// snapshots would cost as full standalone images (the §3.1.4
    /// duplication argument).
    pub fn storage_report(&self, snapshots: &[(BlobId, Version)]) -> StorageReport {
        let stored = self.store.total_stored_bytes();
        let mut sizes: HashMap<BlobId, u64> = HashMap::new();
        let client = self.client(self.service);
        for (blob, _) in snapshots {
            if let Ok(size) = client.blob_size(*blob) {
                sizes.insert(*blob, size);
            }
        }
        let naive: u64 = snapshots
            .iter()
            .filter_map(|(b, _)| sizes.get(b))
            .copied()
            .sum();
        StorageReport {
            stored_bytes: stored,
            naive_full_copy_bytes: naive,
        }
    }
}

/// One coherent snapshot of the cluster's counters — see
/// [`Cloud::metrics`].
#[derive(Debug, Clone, Default)]
pub struct ClusterMetrics {
    /// Descriptor-cache and dedup counters, summed over every node
    /// context (compute nodes plus the service node).
    pub cache: bff_blobseer::CacheStats,
    /// Prefetch effectiveness, summed over every node context.
    pub prefetch: bff_blobseer::PrefetchStats,
    /// Per-node prefetch attribution (hits and waste are properties of
    /// a node's chunk cache, not of the cluster), in `compute` order
    /// with the service node last.
    pub per_node_prefetch: Vec<(NodeId, bff_blobseer::PrefetchStats)>,
    /// Contention counters of the pattern-board lock.
    pub board_contention: bff_blobseer::LockContention,
    /// Contention counters of the cluster dedup-index lock.
    pub cluster_contention: bff_blobseer::LockContention,
    /// Bytes stored across all providers (shared content counted once).
    pub stored_bytes: u64,
    /// Chunk replica instances stored across all providers.
    pub stored_chunks: usize,
    /// Serialized request/response bytes the transport moved (all zero
    /// under the direct transport — no frame ever exists).
    pub wire: bff_net::transport::WireStats,
    /// Durability counters: fsyncs issued, acks covered by them, the
    /// acks-per-fsync batching ratio and the worst group-commit ticket
    /// wait. All zero for non-durable (in-memory) deployments.
    pub durability: bff_blobseer::DurabilityCounters,
}

/// Output of [`Cloud::storage_report`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageReport {
    /// Bytes actually stored (shared content counted once).
    pub stored_bytes: u64,
    /// Bytes that one full image per snapshot would have cost.
    pub naive_full_copy_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::vm_write_payload;
    use bff_net::LocalFabric;

    const IMG: u64 = 1 << 20;

    fn cloud() -> Cloud {
        let fabric = LocalFabric::new(9);
        let compute: Vec<NodeId> = (0..8).map(NodeId).collect();
        let cfg = BlobConfig {
            chunk_size: 64 << 10,
            ..Default::default()
        };
        Cloud::new(fabric, compute, NodeId(8), cfg, Calibration::default())
    }

    #[test]
    fn upload_deploy_snapshot_download_cycle() {
        let cloud = cloud();
        let image = Payload::synth(5, 0, IMG);
        let (blob, v) = cloud.upload_image(image.clone()).unwrap();
        let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
        let mut vms = cloud.deploy(blob, v, &nodes).unwrap();
        // Each VM writes its own data.
        for (i, vm) in vms.iter_mut().enumerate() {
            vm.backend
                .write(1000 * (i as u64 + 1), vm_write_payload(i as u64, 1000, 64))
                .unwrap();
        }
        let snaps = cloud.snapshot_all(&mut vms).unwrap();
        assert_eq!(snaps.len(), 4);
        // Snapshots are distinct first-class blobs.
        let blobs: std::collections::HashSet<BlobId> = snaps.iter().map(|(b, _)| *b).collect();
        assert_eq!(blobs.len(), 4);
        assert!(blobs.iter().all(|b| *b != blob));
        // Each snapshot downloads as a standalone image with that VM's
        // modification and nobody else's.
        for (i, (b, ver)) in snaps.iter().enumerate() {
            let full = cloud.download_image(*b, *ver).unwrap();
            let expect = image
                .clone()
                .overwrite(1000 * (i as u64 + 1), vm_write_payload(i as u64, 1000, 64));
            assert!(full.content_eq(&expect), "snapshot {i}");
        }
    }

    #[test]
    fn second_global_snapshot_reuses_clones() {
        let cloud = cloud();
        let (blob, v) = cloud.upload_image(Payload::synth(6, 0, IMG)).unwrap();
        let mut vms = cloud.deploy(blob, v, &[NodeId(0), NodeId(1)]).unwrap();
        for vm in vms.iter_mut() {
            vm.backend.write(0, Payload::from(vec![1u8; 16])).unwrap();
        }
        let first = cloud.snapshot_all(&mut vms).unwrap();
        for vm in vms.iter_mut() {
            vm.backend.write(32, Payload::from(vec![2u8; 16])).unwrap();
        }
        let second = cloud.snapshot_all(&mut vms).unwrap();
        for ((b1, v1), (b2, v2)) in first.iter().zip(&second) {
            assert_eq!(b1, b2, "subsequent snapshots reuse the clone");
            assert!(v2 > v1, "versions are totally ordered");
        }
    }

    #[test]
    fn storage_report_shows_sharing() {
        let cloud = cloud();
        let (blob, v) = cloud.upload_image(Payload::synth(7, 0, IMG)).unwrap();
        let nodes: Vec<NodeId> = (0..8).map(NodeId).collect();
        let mut vms = cloud.deploy(blob, v, &nodes).unwrap();
        for vm in vms.iter_mut() {
            vm.backend.write(0, Payload::from(vec![3u8; 100])).unwrap();
        }
        let snaps = cloud.snapshot_all(&mut vms).unwrap();
        let report = cloud.storage_report(&snaps);
        // 8 snapshots of a 1 MB image stored as 1 MB + 8 dirty chunks.
        assert_eq!(report.naive_full_copy_bytes, 8 * IMG);
        assert!(
            report.stored_bytes <= IMG + 8 * (64 << 10),
            "stored {} should be near one image",
            report.stored_bytes
        );
        // The >90% reduction the paper reports.
        assert!(report.stored_bytes * 5 < report.naive_full_copy_bytes);
    }

    #[test]
    fn co_located_vms_share_node_cache() {
        let cloud = cloud();
        let (blob, v) = cloud.upload_image(Payload::synth(9, 0, IMG)).unwrap();
        // Two instances on ONE node — the co-location case the paper's
        // shared FUSE process serves.
        let mut vm1 = cloud.add_instance(blob, v, NodeId(0)).unwrap();
        let mut vm2 = cloud.add_instance(blob, v, NodeId(0)).unwrap();
        vm1.backend.read(0..IMG).unwrap();
        let ctx = cloud.node_context(NodeId(0));
        let misses_after_first = ctx.stats().desc_misses;
        vm2.backend.read(0..IMG).unwrap();
        let s = ctx.stats();
        assert_eq!(
            s.desc_misses, misses_after_first,
            "the second co-located VM must ride the first one's resolved \
             descriptors"
        );
        assert!(s.desc_hits > 0, "shared cache recorded no hits");
        // An instance on another node resolves independently.
        let mut vm3 = cloud.add_instance(blob, v, NodeId(1)).unwrap();
        vm3.backend.read(0..4096).unwrap();
        assert!(cloud.node_context(NodeId(1)).stats().desc_misses > 0);
    }

    #[test]
    fn terminate_reclaims_divergent_snapshots_only() {
        let cloud = cloud();
        let image = Payload::synth(11, 0, IMG);
        let (blob, v) = cloud.upload_image(image.clone()).unwrap();
        let base_stored = cloud.store().total_stored_bytes();
        // Two instances; both snapshot twice with private dirty data.
        let mut vms = cloud.deploy(blob, v, &[NodeId(0), NodeId(1)]).unwrap();
        for (i, vm) in vms.iter_mut().enumerate() {
            for round in 0..2u64 {
                vm.backend
                    .write(
                        round * (64 << 10),
                        vm_write_payload(7 * (i as u64 + 1) + round, 0, 64 << 10),
                    )
                    .unwrap();
                vm.snapshot().unwrap();
            }
        }
        let survivor_snap = {
            let vm = &vms[1];
            (vm.backend.blob(), vm.backend.version())
        };
        let stored_all = cloud.store().total_stored_bytes();
        assert!(stored_all > base_stored);
        // Terminating VM 0 reclaims exactly its divergent bytes; the
        // base image and VM 1's snapshots are untouched. One of its
        // checkpoints was already pruned — terminate must skip it, not
        // fail the whole (all-or-nothing) batch.
        let vm0 = vms.remove(0);
        cloud
            .delete_snapshot(vm0.backend.blob(), Version(2))
            .unwrap();
        let report = cloud.terminate_instance(vm0).unwrap();
        // Two of the three versions (CLONE alias + two commits) were
        // still live.
        assert_eq!(report.deleted_versions, 2);
        assert!(report.freed_bytes > 0, "divergent chunks reclaimed");
        let stored_after = cloud.store().total_stored_bytes();
        assert!(stored_after < stored_all);
        assert!(stored_after >= base_stored);
        let got = cloud
            .download_image(survivor_snap.0, survivor_snap.1)
            .unwrap();
        let expect = image
            .clone()
            .overwrite(0, vm_write_payload(14, 0, 64 << 10))
            .overwrite(64 << 10, vm_write_payload(15, 0, 64 << 10));
        assert!(got.content_eq(&expect), "survivor snapshot byte-identical");
        assert!(cloud.download_image(blob, v).unwrap().content_eq(&image));
        // A never-snapshotted instance terminates without touching the
        // repository.
        let fresh = cloud.add_instance(blob, v, NodeId(2)).unwrap();
        let stored = cloud.store().total_stored_bytes();
        let report = cloud.terminate_instance(fresh).unwrap();
        assert_eq!(report, bff_blobseer::GcReport::default());
        assert_eq!(cloud.store().total_stored_bytes(), stored);
    }

    #[test]
    fn resume_on_fresh_nodes_reads_snapshot_content() {
        let cloud = cloud();
        let (blob, v) = cloud.upload_image(Payload::synth(8, 0, IMG)).unwrap();
        let mut vms = cloud.deploy(blob, v, &[NodeId(0)]).unwrap();
        vms[0]
            .backend
            .write(500, Payload::from(vec![9u8; 32]))
            .unwrap();
        let snaps = cloud.snapshot_all(&mut vms).unwrap();
        drop(vms);
        let mut resumed = cloud.resume(&snaps, &[NodeId(5)]).unwrap();
        let got = resumed[0].backend.read(500..532).unwrap();
        assert!(got.content_eq(&Payload::from(vec![9u8; 32])));
    }
}
