//! Simulator-backed signal table for broadcast ordering dependencies.

use bff_bcast::SignalTable;
use bff_sim::{CompletionId, Env, SimState};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A [`SignalTable`] whose waits block virtual time.
pub struct SimSignals {
    state: Arc<SimState>,
    map: Mutex<HashMap<u64, CompletionId>>,
}

impl SimSignals {
    /// Bind to a simulation.
    pub fn new(state: Arc<SimState>) -> Arc<Self> {
        Arc::new(Self {
            state,
            map: Mutex::new(HashMap::new()),
        })
    }

    fn completion(&self, key: u64) -> CompletionId {
        let mut map = self.map.lock();
        *map.entry(key)
            .or_insert_with(|| self.state.new_completion())
    }
}

impl SignalTable for SimSignals {
    fn signal(&self, key: u64) {
        let cid = self.completion(key);
        self.state.complete(cid);
    }

    fn wait(&self, key: u64) {
        let cid = self.completion(key);
        Env::current().wait(cid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bff_sim::Simulation;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn wait_blocks_until_signal() {
        let sim = Simulation::bare();
        let signals = SimSignals::new(Arc::clone(sim.state()));
        let t = Arc::new(AtomicU64::new(0));
        let (s2, t2) = (Arc::clone(&signals), Arc::clone(&t));
        sim.spawn("waiter", move |env| {
            s2.wait(9);
            t2.store(env.now_us(), Ordering::Relaxed);
        });
        let s3 = Arc::clone(&signals);
        sim.spawn("signaler", move |env| {
            env.sleep_us(777);
            s3.signal(9);
        });
        sim.run();
        assert_eq!(t.load(Ordering::Relaxed), 777);
    }

    #[test]
    fn signal_before_wait_does_not_block() {
        let sim = Simulation::bare();
        let signals = SimSignals::new(Arc::clone(sim.state()));
        signals.signal(1);
        let ok = Arc::new(AtomicU64::new(0));
        let (s2, ok2) = (Arc::clone(&signals), Arc::clone(&ok));
        sim.spawn("w", move |env| {
            s2.wait(1);
            ok2.store(env.now_us() + 1, Ordering::Relaxed);
        });
        sim.run();
        assert_eq!(ok.load(Ordering::Relaxed), 1, "completed at t=0");
    }
}
