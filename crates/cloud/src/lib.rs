//! # bff-cloud
//!
//! The cloud middleware layer (Fig. 1 of the paper): it glues the storage
//! stacks, the hypervisor/VM lifecycle model and the workload generators
//! into deployable scenarios, and hosts the experiment drivers that
//! regenerate every figure of the paper's evaluation (§5).
//!
//! * [`backend`] — the three image backends the evaluation compares:
//!   the mirroring module ("our approach"), a prepropagated local raw
//!   file, and qcow2 over PVFS.
//! * [`vm`] — the hypervisor model: replays boot/application traces
//!   against a backend, with per-instance start skew.
//! * [`middleware`] — the control API (deploy / snapshot / resume) used
//!   by the examples; CLONE and COMMIT are broadcast to the per-node
//!   mirroring modules exactly as §3.2 describes.
//! * [`experiments`] — the simulated Grid'5000 runs behind Figs. 4-8.
//! * [`params`] — every calibration constant, each documented with the
//!   paper measurement it is anchored to.

pub mod backend;
pub mod experiments;
pub mod middleware;
pub mod params;
pub mod simsignals;
pub mod vm;

pub use backend::{BackendError, ImageBackend, MirrorBackend, QcowPvfsBackend, RawLocalBackend};
pub use middleware::{Cloud, ClusterMetrics};
pub use params::Calibration;
pub use vm::run_vm_trace;
