//! The three image backends compared in the evaluation.
//!
//! | Backend | Deployment | Reads | Writes | Snapshot |
//! |---|---|---|---|---|
//! | [`MirrorBackend`] | lazy (none) | on-demand chunk fetch | local mmap write-back | CLONE + COMMIT of dirty chunks |
//! | [`RawLocalBackend`] | full prepropagation | local page cache | hypervisor default path | unsupported (infeasible, §5.3) |
//! | [`QcowPvfsBackend`] | qcow2 shell (instant) | backing reads from PVFS, exact ranges | CoW cluster allocation | copy the qcow2 file to PVFS |

use crate::params::Calibration;
use bff_blobseer::{BlobError, BlobId, Client as BlobClient, Version};
use bff_core::{MemStore, MirrorConfig, MirroredImage};
use bff_data::extent::ExtentPiece;
use bff_data::{ByteRange, ExtentMap, Payload};
use bff_net::{Fabric, NetError, NodeId};
use bff_pvfs::{FileId, PvfsClient, PvfsError};
use bff_qcow2::{Backing, BlockDev, MemBlockDev, Qcow2Error, Qcow2Image};
use std::fmt;
use std::sync::Arc;

/// Unified backend error.
#[derive(Debug)]
pub enum BackendError {
    /// Repository failure (mirror backend).
    Blob(BlobError),
    /// PVFS failure (qcow2 backend).
    Pvfs(PvfsError),
    /// Image-format failure (qcow2 backend).
    Qcow(Qcow2Error),
    /// Transport failure.
    Net(NetError),
    /// The backend cannot perform this operation (e.g. snapshotting a
    /// prepropagated raw image: the paper deems it infeasible, §5.3).
    Unsupported(&'static str),
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Blob(e) => write!(f, "repository: {e}"),
            BackendError::Pvfs(e) => write!(f, "pvfs: {e}"),
            BackendError::Qcow(e) => write!(f, "qcow2: {e}"),
            BackendError::Net(e) => write!(f, "network: {e}"),
            BackendError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for BackendError {}

impl From<BlobError> for BackendError {
    fn from(e: BlobError) -> Self {
        BackendError::Blob(e)
    }
}
impl From<PvfsError> for BackendError {
    fn from(e: PvfsError) -> Self {
        BackendError::Pvfs(e)
    }
}
impl From<Qcow2Error> for BackendError {
    fn from(e: Qcow2Error) -> Self {
        BackendError::Qcow(e)
    }
}
impl From<NetError> for BackendError {
    fn from(e: NetError) -> Self {
        BackendError::Net(e)
    }
}

/// What a hypervisor needs from a VM image.
pub trait ImageBackend: Send {
    /// Virtual disk size.
    fn len(&self) -> u64;
    /// Whether the image is zero-length.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Read a range of the image.
    fn read(&mut self, range: ByteRange) -> Result<Payload, BackendError>;
    /// Read several ranges as one vectored request, one payload per
    /// range — how a hypervisor submits its queued reads in one batch.
    /// Backends with a remote data plane override this to batch their
    /// transfers; the default is a per-range loop.
    fn read_multi(&mut self, ranges: &[ByteRange]) -> Result<Vec<Payload>, BackendError> {
        ranges.iter().map(|r| self.read(r.clone())).collect()
    }
    /// Notification that the guest is entering a compute burst of `us`
    /// microseconds. A backend with background work (the mirror's
    /// adaptive prefetcher) uses it to kick *detached* read-ahead whose
    /// transfers then hide behind the burst; the hypervisor always
    /// charges the compute itself afterwards, so a backend must never
    /// block here. The default does nothing.
    fn idle(&mut self, _us: u64) -> Result<(), BackendError> {
        Ok(())
    }
    /// Write into the image.
    fn write(&mut self, offset: u64, data: Payload) -> Result<(), BackendError>;
    /// Persist the VM's local modifications; returns the bytes moved to
    /// persistent storage.
    fn snapshot(&mut self) -> Result<u64, BackendError>;
    /// Identity of the persistent snapshot lineage, if any (blob id for
    /// the mirror backend, PVFS file for qcow2 copies).
    fn snapshot_ref(&self) -> Option<u64> {
        None
    }
}

// ---------------------------------------------------------------------
// Mirror backend (our approach)
// ---------------------------------------------------------------------

/// The paper's approach: a [`MirroredImage`] with CLONE-then-COMMIT
/// snapshotting.
pub struct MirrorBackend {
    img: MirroredImage,
    cloned: bool,
}

impl MirrorBackend {
    /// Open `(blob, version)` for the VM on `client.node()`.
    pub fn open(
        client: BlobClient,
        blob: BlobId,
        version: Version,
        cal: &Calibration,
    ) -> Result<Self, BackendError> {
        let size = client.blob_size(blob)?;
        let cfg = MirrorConfig {
            fuse_op_overhead_us: cal.fuse_op_us(),
            read_syscall_us: cal.syscall_us,
            read_bw: cal.page_read_bw,
            ..MirrorConfig::default()
        };
        let mut img =
            MirroredImage::open(client, blob, version, Box::new(MemStore::new(size)), cfg)?;
        // Deploy-time read-ahead: the middleware attaches images before
        // the hypervisors launch (§3.2), so the module starts pulling
        // the cohort's predicted window the moment the image exists —
        // the guest's first faults then hit a warming cache instead of
        // a cold one. No-op without a published pattern or with
        // prefetching off.
        img.poke_prefetch();
        Ok(Self { img, cloned: false })
    }

    /// Access the underlying mirror (stats, chunk map).
    pub fn image(&self) -> &MirroredImage {
        &self.img
    }

    /// Kick one background read-ahead step (see
    /// [`MirroredImage::poke_prefetch`]); returns whether a step was
    /// started. Test/bench pumps loop this on cost-free fabrics, where
    /// detached steps run inline.
    pub fn poke_prefetch(&mut self) -> bool {
        self.img.poke_prefetch()
    }

    /// The blob currently backing the VM.
    pub fn blob(&self) -> BlobId {
        self.img.blob()
    }

    /// Whether this instance has diverged into its own snapshot lineage
    /// (CLONE happened: [`MirrorBackend::blob`] is a clone private to
    /// this VM, not the deployed image). The middleware uses this at
    /// termination: a diverged instance's snapshots die with it.
    pub fn diverged(&self) -> bool {
        self.cloned
    }

    /// The snapshot version the mirror is based on.
    pub fn version(&self) -> Version {
        self.img.base_version()
    }
}

impl ImageBackend for MirrorBackend {
    fn len(&self) -> u64 {
        self.img.len()
    }

    fn read(&mut self, range: ByteRange) -> Result<Payload, BackendError> {
        Ok(self.img.read(range)?)
    }

    fn read_multi(&mut self, ranges: &[ByteRange]) -> Result<Vec<Payload>, BackendError> {
        Ok(self.img.read_multi(ranges)?)
    }

    fn idle(&mut self, _us: u64) -> Result<(), BackendError> {
        // Kick one background read-ahead step (the §3.1.3
        // adaptive-prefetch overlap): the step runs detached, so the
        // compute burst is still charged by the hypervisor — prefetch
        // transfers hide behind it instead of extending it.
        self.img.poke_prefetch();
        Ok(())
    }

    fn write(&mut self, offset: u64, data: Payload) -> Result<(), BackendError> {
        Ok(self.img.write(offset, data)?)
    }

    fn snapshot(&mut self) -> Result<u64, BackendError> {
        // First global snapshot: CLONE then COMMIT; afterwards COMMIT
        // only (§3.2).
        if !self.cloned {
            self.img.clone_image()?;
            self.cloned = true;
        }
        let before = self.img.stats().committed_bytes;
        self.img.commit()?;
        Ok(self.img.stats().committed_bytes - before)
    }

    fn snapshot_ref(&self) -> Option<u64> {
        Some(self.img.blob().0)
    }
}

// ---------------------------------------------------------------------
// Prepropagated raw local image
// ---------------------------------------------------------------------

/// The prepropagation baseline after broadcast: the full image sits on
/// the local disk (hot in the page cache — it just arrived), the
/// hypervisor reads and writes it directly.
pub struct RawLocalBackend {
    node: NodeId,
    fabric: Arc<dyn Fabric>,
    base: Payload,
    overlay: ExtentMap<Payload>,
    cal: Calibration,
}

impl RawLocalBackend {
    /// Wrap the broadcast copy of `base` on `node`.
    pub fn new(node: NodeId, fabric: Arc<dyn Fabric>, base: Payload, cal: Calibration) -> Self {
        Self {
            node,
            fabric,
            base,
            overlay: ExtentMap::new(),
            cal,
        }
    }
}

impl ImageBackend for RawLocalBackend {
    fn len(&self) -> u64 {
        self.base.len()
    }

    fn read(&mut self, range: ByteRange) -> Result<Payload, BackendError> {
        let copy = ((range.end - range.start) as f64 / self.cal.page_read_bw).ceil() as u64;
        self.fabric.compute(self.node, self.cal.syscall_us + copy);
        let mut out = Payload::empty();
        for piece in self.overlay.read(&range) {
            match piece {
                ExtentPiece::Data(_, p) => out.append(p),
                ExtentPiece::Gap(g) => out.append(self.base.slice(g.start, g.end)),
            }
        }
        Ok(out)
    }

    fn write(&mut self, offset: u64, data: Payload) -> Result<(), BackendError> {
        self.fabric.compute(self.node, self.cal.syscall_us);
        let len = data.len();
        if len == 0 {
            return Ok(());
        }
        self.overlay.insert(offset..offset + len, data);
        // The hypervisor's default write path: page-cache absorb plus the
        // less efficient flush behaviour the paper observed (Fig. 6).
        self.fabric.disk_write_cached(self.node, len)?;
        self.fabric.compute(
            self.node,
            (len as f64 / self.cal.hyp_write_bw).ceil() as u64,
        );
        Ok(())
    }

    fn snapshot(&mut self) -> Result<u64, BackendError> {
        Err(BackendError::Unsupported(
            "copying full raw images back to storage is infeasible (paper §5.3)",
        ))
    }
}

// ---------------------------------------------------------------------
// qcow2 over PVFS
// ---------------------------------------------------------------------

/// Local block device of the qcow2 file: contents in memory (the file is
/// page-cache hot while the VM runs), writes charged to the node's disk
/// as write-back.
struct ChargedDev {
    inner: MemBlockDev,
    node: NodeId,
    fabric: Arc<dyn Fabric>,
}

impl BlockDev for ChargedDev {
    fn read_at(&self, range: ByteRange) -> Payload {
        self.inner.read_at(range)
    }

    fn write_at(&mut self, offset: u64, data: &Payload) {
        // Failures here mean the node died mid-write; costs stop accruing.
        let _ = self.fabric.disk_write_cached(self.node, data.len());
        self.inner.write_at(offset, data);
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }
}

/// Backing image stored in PVFS: reads are exact-range network reads (no
/// prefetching — the key behavioural difference from the mirror, §5.2).
struct PvfsBacking {
    client: PvfsClient,
    file: FileId,
    size: u64,
}

impl Backing for PvfsBacking {
    fn len(&self) -> u64 {
        self.size
    }

    fn read_at(&self, range: ByteRange) -> Payload {
        self.client
            .read(self.file, range)
            .expect("backing image read failed (fail-stop)")
    }

    fn read_multi(&self, ranges: &[ByteRange]) -> Vec<Payload> {
        self.client
            .read_multi(self.file, ranges)
            .expect("backing image read failed (fail-stop)")
    }
}

/// The qcow2-over-PVFS baseline.
pub struct QcowPvfsBackend {
    img: Qcow2Image<ChargedDev>,
    pvfs: PvfsClient,
    node: NodeId,
    fabric: Arc<dyn Fabric>,
    cal: Calibration,
    snapshot_file: Option<FileId>,
}

impl QcowPvfsBackend {
    /// Create the per-VM qcow2 shell on `node`, backed by the base image
    /// `base_file` stored in PVFS (the baseline's "first initialization
    /// phase", §5.2 — a quick local file creation).
    pub fn create(
        pvfs: PvfsClient,
        base_file: FileId,
        node: NodeId,
        fabric: Arc<dyn Fabric>,
        cal: Calibration,
    ) -> Result<Self, BackendError> {
        let size = pvfs.size(base_file)?;
        let dev = ChargedDev {
            inner: MemBlockDev::new(),
            node,
            fabric: Arc::clone(&fabric),
        };
        let backing = Box::new(PvfsBacking {
            client: pvfs.clone(),
            file: base_file,
            size,
        });
        let img = Qcow2Image::create(dev, size, cal.qcow2_cluster_bits, Some(backing))?;
        Ok(Self {
            img,
            pvfs,
            node,
            fabric,
            cal,
            snapshot_file: None,
        })
    }

    /// Reopen a snapshot copy previously pushed to PVFS: download the
    /// qcow2 file to the local disk of `node`, then open it backed by the
    /// original base image (the chain-of-files manageability cost the
    /// paper criticizes in §3.1.4).
    pub fn resume_from_snapshot(
        pvfs: PvfsClient,
        base_file: FileId,
        snapshot_file: FileId,
        node: NodeId,
        fabric: Arc<dyn Fabric>,
        cal: Calibration,
    ) -> Result<Self, BackendError> {
        let qcow_bytes = pvfs.size(snapshot_file)?;
        let contents = pvfs.read(snapshot_file, 0..qcow_bytes)?;
        fabric.disk_write_cached(node, qcow_bytes)?;
        let dev = ChargedDev {
            inner: MemBlockDev::from_payload(contents),
            node,
            fabric: Arc::clone(&fabric),
        };
        let size = pvfs.size(base_file)?;
        let backing = Box::new(PvfsBacking {
            client: pvfs.clone(),
            file: base_file,
            size,
        });
        let img = Qcow2Image::open(dev, Some(backing))?;
        Ok(Self {
            img,
            pvfs,
            node,
            fabric,
            cal,
            snapshot_file: Some(snapshot_file),
        })
    }

    /// Bytes the qcow2 file occupies locally.
    pub fn file_len(&self) -> u64 {
        self.img.file_len()
    }
}

impl ImageBackend for QcowPvfsBackend {
    fn len(&self) -> u64 {
        self.img.virtual_size()
    }

    fn read(&mut self, range: ByteRange) -> Result<Payload, BackendError> {
        let copy = ((range.end - range.start) as f64 / self.cal.page_read_bw).ceil() as u64;
        self.fabric.compute(self.node, self.cal.syscall_us + copy);
        Ok(self.img.read(range)?)
    }

    fn read_multi(&mut self, ranges: &[ByteRange]) -> Result<Vec<Payload>, BackendError> {
        for range in ranges {
            let copy = ((range.end - range.start) as f64 / self.cal.page_read_bw).ceil() as u64;
            self.fabric.compute(self.node, self.cal.syscall_us + copy);
        }
        Ok(self.img.read_multi(ranges)?)
    }

    fn write(&mut self, offset: u64, data: Payload) -> Result<(), BackendError> {
        self.fabric.compute(self.node, self.cal.syscall_us);
        let len = data.len();
        self.img.write(offset, data)?;
        // Hypervisor default write path penalty (same as raw local).
        self.fabric.compute(
            self.node,
            (len as f64 / self.cal.hyp_write_bw).ceil() as u64,
        );
        Ok(())
    }

    fn snapshot(&mut self) -> Result<u64, BackendError> {
        // §5.3: "the snapshot is taken by concurrently copying the set of
        // qcow2 files locally available on the compute nodes back to
        // PVFS". The local file is page-cache hot, so the cost is the
        // network push plus the PVFS servers' disks.
        let bytes = self.img.file_len();
        let contents = self.img.device().read_at(0..bytes);
        let file = self.pvfs.create(bytes)?;
        self.pvfs.write(file, 0, contents)?;
        self.snapshot_file = Some(file);
        Ok(bytes)
    }

    fn snapshot_ref(&self) -> Option<u64> {
        self.snapshot_file.map(|f| f.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bff_blobseer::{BlobConfig, BlobStore, BlobTopology};
    use bff_net::LocalFabric;
    use bff_pvfs::{Pvfs, PvfsConfig};

    const IMG: u64 = 1 << 20;

    fn calibration() -> Calibration {
        Calibration::default()
    }

    fn image() -> Payload {
        Payload::synth(0x11A6E, 0, IMG)
    }

    fn mirror_backend() -> MirrorBackend {
        let fabric = LocalFabric::new(5);
        let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
        let topo = BlobTopology::colocated(&nodes, NodeId(4));
        let cfg = BlobConfig {
            chunk_size: 64 << 10,
            ..Default::default()
        };
        let store = BlobStore::new(cfg, topo, fabric as Arc<dyn Fabric>);
        let client = BlobClient::new(store, NodeId(0));
        let (blob, v) = client.upload(image()).unwrap();
        MirrorBackend::open(client, blob, v, &calibration()).unwrap()
    }

    fn qcow_backend() -> QcowPvfsBackend {
        let fabric: Arc<dyn Fabric> = LocalFabric::new(5);
        let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
        let pvfs = Pvfs::new(
            PvfsConfig {
                stripe_size: 64 << 10,
                ..Default::default()
            },
            nodes,
            Arc::clone(&fabric),
        );
        let client = PvfsClient::new(pvfs, NodeId(0));
        let base = client.create(IMG).unwrap();
        client.write(base, 0, image()).unwrap();
        QcowPvfsBackend::create(client, base, NodeId(0), fabric, calibration()).unwrap()
    }

    fn exercise_backend(b: &mut dyn ImageBackend) {
        assert_eq!(b.len(), IMG);
        // Cold read returns base content.
        let got = b.read(1000..5000).unwrap();
        assert!(got.content_eq(&image().slice(1000, 5000)));
        // Read-your-writes.
        b.write(2000, Payload::from(vec![7u8; 100])).unwrap();
        let got = b.read(1990..2110).unwrap();
        let expect = image()
            .slice(1990, 2110)
            .overwrite(10, Payload::from(vec![7u8; 100]));
        assert!(got.content_eq(&expect));
    }

    #[test]
    fn mirror_backend_semantics() {
        let mut b = mirror_backend();
        exercise_backend(&mut b);
        let bytes = b.snapshot().unwrap();
        assert!(bytes >= 100, "committed at least the dirty chunk: {bytes}");
        assert!(b.snapshot_ref().is_some());
    }

    #[test]
    fn raw_local_backend_semantics() {
        let fabric: Arc<dyn Fabric> = LocalFabric::new(1);
        let mut b = RawLocalBackend::new(NodeId(0), fabric, image(), calibration());
        exercise_backend(&mut b);
        assert!(matches!(b.snapshot(), Err(BackendError::Unsupported(_))));
    }

    #[test]
    fn qcow_backend_semantics() {
        let mut b = qcow_backend();
        exercise_backend(&mut b);
        // Snapshot pushes the qcow2 file (metadata + one cluster at least).
        let bytes = b.snapshot().unwrap();
        assert!(bytes >= 64 << 10, "snapshot moved {bytes} bytes");
        assert!(b.snapshot_ref().is_some());
    }

    #[test]
    fn qcow_snapshot_roundtrips_through_pvfs() {
        let mut b = qcow_backend();
        b.write(10_000, Payload::from(vec![9u8; 500])).unwrap();
        b.snapshot().unwrap();
        let snap = FileId(b.snapshot_ref().unwrap());
        // Resume on a different node from the PVFS copy.
        let pvfs = b.pvfs.clone();
        let fabric = Arc::clone(&b.fabric);
        let mut resumed = QcowPvfsBackend::resume_from_snapshot(
            pvfs,
            FileId(1),
            snap,
            NodeId(2),
            fabric,
            calibration(),
        )
        .unwrap();
        let got = resumed.read(9_900..10_600).unwrap();
        let expect = image()
            .slice(9_900, 10_600)
            .overwrite(100, Payload::from(vec![9u8; 500]));
        assert!(got.content_eq(&expect));
    }

    #[test]
    fn mirror_and_qcow_agree_on_content() {
        // Cross-baseline equivalence: the same write sequence produces
        // byte-identical images through both stacks.
        let mut m = mirror_backend();
        let mut q = qcow_backend();
        let writes = [
            (100u64, 50usize),
            (70_000, 200),
            (65_530, 20),
            (IMG - 300, 300),
        ];
        for (i, (off, len)) in writes.into_iter().enumerate() {
            let data = Payload::synth(i as u64 + 50, 0, len as u64);
            m.write(off, data.clone()).unwrap();
            q.write(off, data).unwrap();
        }
        let a = m.read(0..IMG).unwrap();
        let b = q.read(0..IMG).unwrap();
        assert!(a.content_eq(&b));
    }
}
