//! Simulated Grid'5000 experiment drivers behind every figure of §5.
//!
//! Each driver builds a fresh [`SimCluster`] from the calibration, stages
//! the initial image in the appropriate repository *outside* virtual time
//! (the paper's experiments start with the image already stored), then
//! runs the deployment as simulated processes and reads the metrics off
//! the virtual clock and the fabric's traffic counters.
//!
//! All drivers take an [`ExpScale`] so integration tests can run
//! miniature versions of the exact same code paths that the benchmark
//! binaries run at paper scale.

pub mod fig4;
pub mod fig5;
pub mod fig67;
pub mod fig8;

use crate::backend::{MirrorBackend, QcowPvfsBackend, RawLocalBackend};
use crate::params::Calibration;
use crate::simsignals::SimSignals;
use crate::vm::run_vm_trace;
use bff_bcast::{BroadcastMode, SignalTable, TreeBroadcast};
use bff_blobseer::{BlobConfig, BlobStore, BlobTopology, Client as BlobClient};
use bff_data::Payload;
use bff_net::{Fabric, NodeId};
use bff_pvfs::{Pvfs, PvfsClient, PvfsConfig};
use bff_sim::SimCluster;
use bff_workloads::boottrace::BootProfile;
use bff_workloads::VmOp;
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Seed of the initial VM image's synthetic content.
pub const IMAGE_SEED: u64 = 0xDEB1A2;

/// Experiment scale: the paper's testbed or a miniature for tests.
#[derive(Debug, Clone, Copy)]
pub struct ExpScale {
    /// VM image size (paper: 2 GB).
    pub image_len: u64,
    /// Chunk/stripe size (paper: 256 KB).
    pub chunk_size: u64,
}

impl ExpScale {
    /// The paper's configuration.
    pub fn paper() -> Self {
        Self {
            image_len: 2 << 30,
            chunk_size: 256 << 10,
        }
    }

    /// A miniature configuration for fast tests (same code paths).
    pub fn mini() -> Self {
        Self {
            image_len: 8 << 20,
            chunk_size: 64 << 10,
        }
    }

    /// Boot profile matching this scale.
    pub fn boot_profile(&self) -> BootProfile {
        if self.image_len == 2 << 30 {
            BootProfile::debian_2g()
        } else {
            BootProfile::scaled(self.image_len)
        }
    }

    /// The initial image content.
    pub fn image(&self) -> Payload {
        Payload::synth(IMAGE_SEED, 0, self.image_len)
    }
}

/// The three deployment strategies compared in §5.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// taktuk-style full broadcast, then boot from the local raw copy.
    Prepropagation,
    /// Per-node qcow2 shell backed by the image striped in PVFS.
    QcowOverPvfs,
    /// The paper's approach: lazy mirroring over the versioning store.
    Mirror,
}

impl Strategy {
    /// Display label used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::Prepropagation => "taktuk-prepropagation",
            Strategy::QcowOverPvfs => "qcow2-over-pvfs",
            Strategy::Mirror => "our-approach",
        }
    }
}

/// What one deployment run produced.
#[derive(Debug, Clone)]
pub struct DeployOutcome {
    /// Per-instance boot duration, seconds (hypervisor launch → trace
    /// end; excludes the prepropagation init phase, as in Fig. 4a).
    pub per_vm_s: Vec<f64>,
    /// Deployment-request to last-instance-done, seconds (includes the
    /// init phase; Fig. 4b).
    pub total_s: f64,
    /// Total network traffic, GB (Fig. 4d; includes the init phase).
    pub traffic_gb: f64,
}

impl DeployOutcome {
    /// Mean per-instance boot time, seconds.
    pub fn avg_boot_s(&self) -> f64 {
        if self.per_vm_s.is_empty() {
            return 0.0;
        }
        self.per_vm_s.iter().sum::<f64>() / self.per_vm_s.len() as f64
    }
}

/// Extra per-VM ops appended after the boot trace (the application
/// phase; `None` for pure multideployment runs).
pub type ExtraOps = Option<Arc<dyn Fn(usize) -> Vec<VmOp> + Send + Sync>>;

fn skew_us(cal: &Calibration, run_seed: u64, i: usize) -> u64 {
    let mut rng = SmallRng::seed_from_u64(run_seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15));
    rng.gen_range(0..cal.start_skew_us.max(1))
}

/// Run one multideployment of `n` instances with the given strategy.
///
/// The image is pre-staged in the strategy's repository outside virtual
/// time; the clock starts at the deployment request.
pub fn run_deployment(
    strategy: Strategy,
    n: usize,
    scale: ExpScale,
    cal: Calibration,
    extra: ExtraOps,
    run_seed: u64,
) -> DeployOutcome {
    let cluster = SimCluster::new(cal.cluster(n));
    let fabric: Arc<dyn Fabric> = cluster.fabric();
    let compute: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
    let service = NodeId(n as u32);
    let profile = scale.boot_profile();
    let spans: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(vec![(0, 0); n]));

    match strategy {
        Strategy::Mirror => {
            let cfg = BlobConfig {
                chunk_size: scale.chunk_size,
                ..Default::default()
            };
            let topo = BlobTopology::colocated(&compute, service);
            let store = BlobStore::new(cfg, topo, Arc::clone(&fabric));
            let uploader = BlobClient::new(Arc::clone(&store), service);
            let (blob, version) = uploader.upload(scale.image()).expect("pre-staging upload");
            store.drop_provider_caches(); // image staged long before; caches cold
            fabric.stats().reset();
            for (i, &node) in compute.iter().enumerate() {
                let store = Arc::clone(&store);
                let fabric = Arc::clone(&fabric);
                let spans = Arc::clone(&spans);
                let extra = extra.clone();
                cluster.sim().spawn(format!("vm{i}"), move |env| {
                    env.sleep_us(skew_us(&cal, run_seed, i));
                    let start = env.now_us();
                    let client = BlobClient::new(store, node);
                    let mut backend =
                        MirrorBackend::open(client, blob, version, &cal).expect("open mirror");
                    let mut ops = profile.generate(run_seed ^ i as u64);
                    if let Some(f) = &extra {
                        ops.extend(f(i));
                    }
                    run_vm_trace(&fabric, node, &mut backend, i as u64, &ops).expect("vm trace");
                    spans.lock()[i] = (start, env.now_us());
                });
            }
        }
        Strategy::QcowOverPvfs => {
            let pvfs = Pvfs::new(
                PvfsConfig {
                    stripe_size: scale.chunk_size,
                    ..Default::default()
                },
                compute.clone(),
                Arc::clone(&fabric),
            );
            let stage = PvfsClient::new(Arc::clone(&pvfs), service);
            let base = stage.create(scale.image_len).expect("create base");
            stage
                .write(base, 0, scale.image())
                .expect("pre-staging write");
            pvfs.drop_caches(); // image staged long before; caches cold
            fabric.stats().reset();
            for (i, &node) in compute.iter().enumerate() {
                let pvfs = Arc::clone(&pvfs);
                let fabric = Arc::clone(&fabric);
                let spans = Arc::clone(&spans);
                let extra = extra.clone();
                cluster.sim().spawn(format!("vm{i}"), move |env| {
                    env.sleep_us(skew_us(&cal, run_seed, i));
                    let start = env.now_us();
                    let client = PvfsClient::new(pvfs, node);
                    let mut backend =
                        QcowPvfsBackend::create(client, base, node, Arc::clone(&fabric), cal)
                            .expect("create qcow2 shell");
                    let mut ops = profile.generate(run_seed ^ i as u64);
                    if let Some(f) = &extra {
                        ops.extend(f(i));
                    }
                    run_vm_trace(&fabric, node, &mut backend, i as u64, &ops).expect("vm trace");
                    spans.lock()[i] = (start, env.now_us());
                });
            }
        }
        Strategy::Prepropagation => {
            // The image sits on the NFS server's disk; broadcast it, then
            // launch every VM on its local copy.
            fabric.stats().reset();
            let image = scale.image();
            let state = Arc::clone(cluster.sim().state());
            let fabric2 = Arc::clone(&fabric);
            let spans2 = Arc::clone(&spans);
            let compute2 = compute.clone();
            let extra2 = extra.clone();
            cluster.sim().spawn("middleware", move |env| {
                let signals: Arc<dyn SignalTable> = SimSignals::new(state);
                let bc = TreeBroadcast {
                    arity: cal.bcast_arity,
                    mode: BroadcastMode::StoreAndForward,
                    write_to_disk: true,
                };
                bc.run(&fabric2, &signals, service, &compute2, scale.image_len)
                    .expect("broadcast");
                // Phase 2: all VMs launch simultaneously (§5.2).
                let mut pids = Vec::with_capacity(compute2.len());
                for (i, &node) in compute2.iter().enumerate() {
                    let fabric = Arc::clone(&fabric2);
                    let spans = Arc::clone(&spans2);
                    let image = image.clone();
                    let extra = extra2.clone();
                    pids.push(env.spawn(format!("vm{i}"), move |env| {
                        env.sleep_us(skew_us(&cal, run_seed, i));
                        let start = env.now_us();
                        let mut backend =
                            RawLocalBackend::new(node, Arc::clone(&fabric), image, cal);
                        let mut ops = profile.generate(run_seed ^ i as u64);
                        if let Some(f) = &extra {
                            ops.extend(f(i));
                        }
                        run_vm_trace(&fabric, node, &mut backend, i as u64, &ops)
                            .expect("vm trace");
                        spans.lock()[i] = (start, env.now_us());
                    }));
                }
                env.join_all(&pids);
            });
        }
    }

    cluster.run();
    let spans = spans.lock();
    let per_vm_s: Vec<f64> = spans.iter().map(|(s, e)| (e - s) as f64 / 1e6).collect();
    let total_s = spans.iter().map(|(_, e)| *e).max().unwrap_or(0) as f64 / 1e6;
    DeployOutcome {
        per_vm_s,
        total_s,
        traffic_gb: fabric.stats().total_network_bytes() as f64 / 1e9,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini(strategy: Strategy, n: usize) -> DeployOutcome {
        run_deployment(
            strategy,
            n,
            ExpScale::mini(),
            Calibration::default(),
            None,
            1,
        )
    }

    #[test]
    fn mirror_deployment_is_lazy() {
        let out = mini(Strategy::Mirror, 4);
        assert_eq!(out.per_vm_s.len(), 4);
        assert!(out.total_s > 0.0);
        // Traffic well under 4 full images.
        let four_images = 4.0 * (8 << 20) as f64 / 1e9;
        assert!(
            out.traffic_gb < four_images / 2.0,
            "traffic {}",
            out.traffic_gb
        );
    }

    #[test]
    fn prepropagation_moves_full_images_and_dominates_total_time() {
        let pre = mini(Strategy::Prepropagation, 4);
        let ours = mini(Strategy::Mirror, 4);
        let four_images = 4.0 * (8 << 20) as f64 / 1e9;
        assert!(
            pre.traffic_gb >= four_images * 0.99,
            "traffic {}",
            pre.traffic_gb
        );
        assert!(pre.traffic_gb > 3.0 * ours.traffic_gb);
        // Total deployment time: prepropagation pays the broadcast.
        assert!(
            pre.total_s > ours.total_s,
            "{} vs {}",
            pre.total_s,
            ours.total_s
        );
        // But its per-instance boot (post-init) is the fastest.
        assert!(pre.avg_boot_s() < ours.avg_boot_s());
    }

    #[test]
    fn qcow_boots_slower_than_mirror_but_transfers_similar() {
        let q = mini(Strategy::QcowOverPvfs, 4);
        let m = mini(Strategy::Mirror, 4);
        // Both lazy schemes move only the touched fraction (same order).
        assert!(q.traffic_gb < 2.0 * m.traffic_gb + 0.001);
        // No prefetching => more round trips => slower boot.
        assert!(
            q.avg_boot_s() > m.avg_boot_s(),
            "qcow {} vs mirror {}",
            q.avg_boot_s(),
            m.avg_boot_s()
        );
    }

    #[test]
    fn deployments_are_deterministic() {
        let a = mini(Strategy::Mirror, 3);
        let b = mini(Strategy::Mirror, 3);
        assert_eq!(a.per_vm_s, b.per_vm_s);
        assert_eq!(a.total_s, b.total_s);
    }
}
