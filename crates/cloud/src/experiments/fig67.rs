//! Figures 6 and 7: local access performance under a read-your-writes
//! workload (Bonnie++) — sustained throughput for block writes, reads and
//! overwrites (Fig. 6), and operations per second for random seeks and
//! file creation/deletion (Fig. 7), comparing the mirroring module
//! against a locally available raw image.
//!
//! As in §5.4, a single VM instance suffices: the working set is written
//! before it is read back, so no remote reads occur and there is no
//! cross-instance contention.

use super::{ExpScale, IMAGE_SEED};
use crate::backend::{ImageBackend, MirrorBackend, RawLocalBackend};
use crate::params::Calibration;
use crate::vm::run_vm_trace;
use bff_blobseer::{BlobConfig, BlobStore, BlobTopology, Client as BlobClient};
use bff_data::Payload;
use bff_net::{Fabric, NodeId};
use bff_sim::SimCluster;
use bff_workloads::bonnie::{BonnieConfig, BonniePhase};
use parking_lot::Mutex;
use std::sync::Arc;

/// Which configuration a measurement belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Hypervisor on a fully local raw image (prepropagation/qcow2 local
    /// behaviour; the paper found qcow2-vs-raw overhead negligible).
    Local,
    /// Hypervisor on the mirroring module's virtual file.
    Mirror,
}

/// One measured phase.
#[derive(Debug, Clone, Copy)]
pub struct BonnieResult {
    /// The Bonnie++ phase.
    pub phase: BonniePhase,
    /// Local raw image measurement.
    pub local: f64,
    /// Mirroring module measurement.
    pub mirror: f64,
    /// `true` for KB/s (Fig. 6), `false` for ops/s (Fig. 7).
    pub is_throughput: bool,
}

fn phase_extra_us(cal: &Calibration, variant: Variant, phase: BonniePhase) -> u64 {
    // Per-op costs beyond the backend's own data path: positioning for
    // seeks, metadata work for create/delete, and the FUSE crossings the
    // mirror pays on top (Fig. 7's regime).
    let base = match phase {
        BonniePhase::RandomSeek => cal.seek_extra_us,
        BonniePhase::CreateFiles => cal.create_us,
        BonniePhase::DeleteFiles => cal.delete_us,
        _ => 0,
    };
    let fuse = match (variant, phase) {
        (Variant::Mirror, BonniePhase::RandomSeek) => cal.fuse_seek_extra_us,
        (Variant::Mirror, BonniePhase::CreateFiles) => cal.fuse_create_extra_us,
        (Variant::Mirror, BonniePhase::DeleteFiles) => cal.fuse_delete_extra_us,
        _ => 0,
    };
    base + fuse
}

fn run_variant(
    variant: Variant,
    scale: ExpScale,
    cal: Calibration,
    cfg: BonnieConfig,
) -> Vec<(BonniePhase, f64)> {
    // One compute node + three repository nodes + one service node.
    let cluster = SimCluster::new(cal.cluster(4));
    let fabric: Arc<dyn Fabric> = cluster.fabric();
    let node = NodeId(0);
    let results: Arc<Mutex<Vec<(BonniePhase, f64)>>> = Arc::new(Mutex::new(Vec::new()));

    let make_backend: Box<dyn FnOnce() -> Box<dyn ImageBackend> + Send> = match variant {
        Variant::Local => {
            let fabric = Arc::clone(&fabric);
            Box::new(move || {
                Box::new(RawLocalBackend::new(
                    node,
                    fabric,
                    Payload::synth(IMAGE_SEED, 0, scale.image_len),
                    cal,
                ))
            })
        }
        Variant::Mirror => {
            let compute: Vec<NodeId> = (0..4).map(NodeId).collect();
            let bcfg = BlobConfig {
                chunk_size: scale.chunk_size,
                ..Default::default()
            };
            let topo = BlobTopology::colocated(&compute, NodeId(4));
            let store = BlobStore::new(bcfg, topo, Arc::clone(&fabric));
            let uploader = BlobClient::new(Arc::clone(&store), NodeId(4));
            let (blob, version) = uploader
                .upload(Payload::synth(IMAGE_SEED, 0, scale.image_len))
                .expect("pre-stage");
            store.drop_provider_caches();
            Box::new(move || {
                let client = BlobClient::new(store, node);
                Box::new(MirrorBackend::open(client, blob, version, &cal).expect("open"))
            })
        }
    };

    let results2 = Arc::clone(&results);
    let fabric2 = Arc::clone(&fabric);
    cluster.sim().spawn("bonnie", move |env| {
        let mut backend = make_backend();
        for phase in BonnieConfig::phases() {
            let ops = cfg.phase_ops(phase, 11);
            let extra = phase_extra_us(&cal, variant, phase);
            let t0 = env.now_us();
            for op in &ops {
                if extra > 0 {
                    fabric2.compute(node, extra);
                }
                run_vm_trace(
                    &fabric2,
                    node,
                    backend.as_mut(),
                    3,
                    std::slice::from_ref(op),
                )
                .expect("bonnie op");
            }
            let dt_s = (env.now_us() - t0) as f64 / 1e6;
            let metric = match phase {
                BonniePhase::BlockWrite | BonniePhase::BlockRead => {
                    (cfg.working_set as f64 / 1024.0) / dt_s
                }
                // Overwrite moves the working set twice (read + write).
                BonniePhase::BlockOverwrite => (cfg.working_set as f64 / 1024.0) / dt_s,
                BonniePhase::RandomSeek => cfg.seeks as f64 / dt_s,
                BonniePhase::CreateFiles | BonniePhase::DeleteFiles => cfg.files as f64 / dt_s,
            };
            results2.lock().push((phase, metric));
        }
    });
    cluster.run();
    Arc::try_unwrap(results)
        .unwrap_or_else(|a| Mutex::new(a.lock().clone()))
        .into_inner()
}

/// Run the full Bonnie++ comparison (Figs. 6 and 7).
pub fn run(scale: ExpScale, cal: Calibration, cfg: BonnieConfig) -> Vec<BonnieResult> {
    let local = run_variant(Variant::Local, scale, cal, cfg);
    let mirror = run_variant(Variant::Mirror, scale, cal, cfg);
    local
        .into_iter()
        .zip(mirror)
        .map(|((phase, l), (p2, m))| {
            debug_assert_eq!(phase, p2);
            BonnieResult {
                phase,
                local: l,
                mirror: m,
                is_throughput: matches!(
                    phase,
                    BonniePhase::BlockWrite | BonniePhase::BlockRead | BonniePhase::BlockOverwrite
                ),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn results() -> Vec<BonnieResult> {
        let scale = ExpScale::mini();
        run(
            scale,
            Calibration::default(),
            BonnieConfig::scaled(scale.image_len),
        )
    }

    #[test]
    fn fig6_shape_writes_faster_reads_equal() {
        let rs = results();
        let get = |p: BonniePhase| rs.iter().find(|r| r.phase == p).expect("phase present");
        let w = get(BonniePhase::BlockWrite);
        // mmap write-back beats the hypervisor default path noticeably.
        assert!(
            w.mirror > 1.5 * w.local,
            "BlockW ours {} vs local {}",
            w.mirror,
            w.local
        );
        let o = get(BonniePhase::BlockOverwrite);
        assert!(o.mirror > 1.2 * o.local);
        // Reads are page-cache served on both sides: near-equal.
        let r = get(BonniePhase::BlockRead);
        let ratio = r.mirror / r.local;
        assert!((0.8..1.25).contains(&ratio), "BlockR ratio {ratio}");
    }

    #[test]
    fn fig7_shape_fuse_costs_ops() {
        let rs = results();
        let get = |p: BonniePhase| rs.iter().find(|r| r.phase == p).expect("phase present");
        for phase in [
            BonniePhase::RandomSeek,
            BonniePhase::CreateFiles,
            BonniePhase::DeleteFiles,
        ] {
            let r = get(phase);
            assert!(!r.is_throughput);
            assert!(
                r.local > r.mirror,
                "{}: local {} must beat mirror {}",
                phase.label(),
                r.local,
                r.mirror
            );
        }
        // Deletion is the worst case, as the paper highlights.
        let seek_ratio = get(BonniePhase::RandomSeek).local / get(BonniePhase::RandomSeek).mirror;
        let del_ratio = get(BonniePhase::DeleteFiles).local / get(BonniePhase::DeleteFiles).mirror;
        assert!(del_ratio > 1.5, "DelF ratio {del_ratio}");
        assert!(seek_ratio > 1.5, "RndSeek ratio {seek_ratio}");
    }
}
