//! Figure 4: multideployment — average boot time per instance (a), total
//! time to boot all instances (b), speedup (c), and total network
//! traffic (d), as functions of the number of concurrent instances.

use super::{run_deployment, DeployOutcome, ExpScale, Strategy};
use crate::params::Calibration;

/// One row of the Fig. 4 sweep (one x-axis point, all three strategies).
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// Number of concurrent instances.
    pub n: usize,
    /// Per-strategy outcomes: `[Prepropagation, QcowOverPvfs, Mirror]`.
    pub outcomes: [DeployOutcome; 3],
}

impl Fig4Row {
    /// Fig. 4(c): speedup of the mirror's completion time vs taktuk.
    pub fn speedup_vs_taktuk(&self) -> f64 {
        self.outcomes[0].total_s / self.outcomes[2].total_s
    }

    /// Fig. 4(c): speedup vs qcow2-over-PVFS.
    pub fn speedup_vs_qcow(&self) -> f64 {
        self.outcomes[1].total_s / self.outcomes[2].total_s
    }
}

/// The strategies in figure order.
pub const STRATEGIES: [Strategy; 3] = [
    Strategy::Prepropagation,
    Strategy::QcowOverPvfs,
    Strategy::Mirror,
];

/// Run the Fig. 4 sweep over instance counts `ns`.
pub fn run(ns: &[usize], scale: ExpScale, cal: Calibration, run_seed: u64) -> Vec<Fig4Row> {
    ns.iter()
        .map(|&n| Fig4Row {
            n,
            outcomes: STRATEGIES.map(|s| run_deployment(s, n, scale, cal, None, run_seed)),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shapes_match_paper() {
        let rows = run(&[2, 6], ExpScale::mini(), Calibration::default(), 7);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            // (b): the mirror completes fastest end-to-end.
            assert!(row.speedup_vs_taktuk() > 1.0, "n={}", row.n);
            assert!(row.speedup_vs_qcow() > 1.0, "n={}", row.n);
            // (d): prepropagation traffic dwarfs the lazy schemes.
            assert!(row.outcomes[0].traffic_gb > 3.0 * row.outcomes[2].traffic_gb);
        }
        // (d): traffic grows with n — roughly linearly (x3 here), far from
        // quadratically. Mini-scale footprints vary per seed, so the
        // bounds are generous; the paper-scale run in EXPERIMENTS.md shows
        // tight linearity.
        for s in 0..3 {
            let ratio = rows[1].outcomes[s].traffic_gb / rows[0].outcomes[s].traffic_gb;
            assert!((1.5..9.0).contains(&ratio), "strategy {s} ratio {ratio}");
        }
    }
}
