//! Figure 8: a real application — Monte Carlo π estimation on 100 VM
//! instances, uninterrupted and with a suspend/resume cycle in the
//! middle (§5.5).
//!
//! The suspend/resume setting exercises the full multideployment +
//! multisnapshotting loop: deploy, compute halfway, snapshot everything,
//! terminate, redeploy every instance *on a different node* (nothing
//! local survives), reboot, reload the intermediate results, finish.

use super::{run_deployment, ExpScale, Strategy, IMAGE_SEED};
use crate::backend::{ImageBackend, MirrorBackend, QcowPvfsBackend};
use crate::params::Calibration;
use crate::vm::run_vm_trace;
use bff_blobseer::{BlobConfig, BlobId, BlobStore, BlobTopology, Client as BlobClient, Version};
use bff_data::Payload;
use bff_net::{Fabric, NodeId};
use bff_pvfs::{FileId, Pvfs, PvfsClient, PvfsConfig};
use bff_sim::{SimBarrier, SimCluster};
use bff_workloads::montecarlo::WorkerPlan;
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The two settings of Fig. 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Setting {
    /// Deployment runs to completion.
    Uninterrupted,
    /// Snapshot at half time, terminate, redeploy elsewhere, finish.
    SuspendResume,
}

/// Completion time (seconds) of the whole application run.
pub fn run_one(
    strategy: Strategy,
    setting: Setting,
    n: usize,
    scale: ExpScale,
    cal: Calibration,
    plan: WorkerPlan,
    run_seed: u64,
) -> f64 {
    match setting {
        Setting::Uninterrupted => {
            let extra = Arc::new(move |_i: usize| plan.full_ops());
            run_deployment(strategy, n, scale, cal, Some(extra), run_seed).total_s
        }
        Setting::SuspendResume => match strategy {
            Strategy::Mirror => suspend_resume_mirror(n, scale, cal, plan, run_seed),
            Strategy::QcowOverPvfs => suspend_resume_qcow(n, scale, cal, plan, run_seed),
            Strategy::Prepropagation => {
                panic!("suspend/resume needs snapshotting; excluded as in the paper")
            }
        },
    }
}

fn skew(cal: &Calibration, run_seed: u64, i: usize) -> u64 {
    let mut rng = SmallRng::seed_from_u64(run_seed ^ (i as u64).wrapping_mul(0x517c_c1b7));
    rng.gen_range(0..cal.start_skew_us.max(1))
}

fn suspend_resume_mirror(
    n: usize,
    scale: ExpScale,
    cal: Calibration,
    plan: WorkerPlan,
    run_seed: u64,
) -> f64 {
    let cluster = SimCluster::new(cal.cluster(n));
    let fabric: Arc<dyn Fabric> = cluster.fabric();
    let compute: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
    let service = NodeId(n as u32);
    let cfg = BlobConfig {
        chunk_size: scale.chunk_size,
        ..Default::default()
    };
    let topo = BlobTopology::colocated(&compute, service);
    let store = BlobStore::new(cfg, topo, Arc::clone(&fabric));
    let uploader = BlobClient::new(Arc::clone(&store), service);
    let (blob, version) = uploader.upload(scale.image()).expect("pre-stage");
    store.drop_provider_caches();
    fabric.stats().reset();

    let profile = scale.boot_profile();
    let half = plan.compute_us / 2;
    type SnapSlots = Vec<Option<(BlobId, Version)>>;
    let snaps: Arc<Mutex<SnapSlots>> = Arc::new(Mutex::new(vec![None; n]));
    let barrier = SimBarrier::new(Arc::clone(cluster.sim().state()), n);
    let end_time: Arc<Mutex<u64>> = Arc::new(Mutex::new(0));

    let store2 = Arc::clone(&store);
    let fabric2 = Arc::clone(&fabric);
    let compute2 = compute.clone();
    let snaps2 = Arc::clone(&snaps);
    let end2 = Arc::clone(&end_time);
    cluster.sim().spawn("middleware", move |env| {
        // Phase A: deploy, boot, compute to half time, snapshot, stop.
        let mut pids = Vec::with_capacity(n);
        for (i, &node) in compute2.iter().enumerate() {
            let store = Arc::clone(&store2);
            let fabric = Arc::clone(&fabric2);
            let snaps = Arc::clone(&snaps2);
            let barrier = Arc::clone(&barrier);
            pids.push(env.spawn(format!("vmA{i}"), move |env| {
                env.sleep_us(skew(&cal, run_seed, i));
                let client = BlobClient::new(store, node);
                let mut backend = MirrorBackend::open(client, blob, version, &cal).expect("open");
                let mut ops = profile.generate(run_seed ^ i as u64);
                ops.extend(plan.ops_between(0, half));
                run_vm_trace(&fabric, node, &mut backend, i as u64, &ops).expect("phase A");
                // Global snapshot, synchronized.
                barrier.wait(&env);
                backend.snapshot().expect("snapshot");
                snaps.lock()[i] = Some((backend.blob(), backend.version()));
            }));
        }
        env.join_all(&pids);

        // Phase B: redeploy each snapshot on the *next* node over.
        let snapshot_list: Vec<(BlobId, Version)> = snaps2
            .lock()
            .iter()
            .map(|s| s.expect("phase A snapshotted"))
            .collect();
        let mut pids = Vec::with_capacity(n);
        for (i, &(sblob, sver)) in snapshot_list.iter().enumerate() {
            let node = compute2[(i + 1) % compute2.len()];
            let store = Arc::clone(&store2);
            let fabric = Arc::clone(&fabric2);
            pids.push(env.spawn(format!("vmB{i}"), move |env| {
                env.sleep_us(skew(&cal, run_seed + 1, i));
                let client = BlobClient::new(store, node);
                let mut backend = MirrorBackend::open(client, sblob, sver, &cal).expect("reopen");
                // Reboot on the fresh node, reload state, finish the job.
                let mut ops = profile.generate(run_seed ^ (i as u64 + 7919));
                ops.extend(plan.resume_prologue());
                ops.extend(plan.ops_between(half, plan.compute_us));
                run_vm_trace(&fabric, node, &mut backend, i as u64, &ops).expect("phase B");
            }));
        }
        env.join_all(&pids);
        *end2.lock() = env.now_us();
    });
    cluster.run();
    let end = *end_time.lock();
    end as f64 / 1e6
}

fn suspend_resume_qcow(
    n: usize,
    scale: ExpScale,
    cal: Calibration,
    plan: WorkerPlan,
    run_seed: u64,
) -> f64 {
    let cluster = SimCluster::new(cal.cluster(n));
    let fabric: Arc<dyn Fabric> = cluster.fabric();
    let compute: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
    let service = NodeId(n as u32);
    let pvfs = Pvfs::new(
        PvfsConfig {
            stripe_size: scale.chunk_size,
            ..Default::default()
        },
        compute.clone(),
        Arc::clone(&fabric),
    );
    let stage = PvfsClient::new(Arc::clone(&pvfs), service);
    let base = stage.create(scale.image_len).expect("create base");
    stage
        .write(base, 0, Payload::synth(IMAGE_SEED, 0, scale.image_len))
        .expect("pre-stage");
    pvfs.drop_caches();
    fabric.stats().reset();

    let profile = scale.boot_profile();
    let half = plan.compute_us / 2;
    let snaps: Arc<Mutex<Vec<Option<FileId>>>> = Arc::new(Mutex::new(vec![None; n]));
    let barrier = SimBarrier::new(Arc::clone(cluster.sim().state()), n);
    let end_time: Arc<Mutex<u64>> = Arc::new(Mutex::new(0));

    let pvfs2 = Arc::clone(&pvfs);
    let fabric2 = Arc::clone(&fabric);
    let compute2 = compute.clone();
    let snaps2 = Arc::clone(&snaps);
    let end2 = Arc::clone(&end_time);
    cluster.sim().spawn("middleware", move |env| {
        let mut pids = Vec::with_capacity(n);
        for (i, &node) in compute2.iter().enumerate() {
            let pvfs = Arc::clone(&pvfs2);
            let fabric = Arc::clone(&fabric2);
            let snaps = Arc::clone(&snaps2);
            let barrier = Arc::clone(&barrier);
            pids.push(env.spawn(format!("vmA{i}"), move |env| {
                env.sleep_us(skew(&cal, run_seed, i));
                let client = PvfsClient::new(pvfs, node);
                let mut backend =
                    QcowPvfsBackend::create(client, base, node, Arc::clone(&fabric), cal)
                        .expect("create");
                let mut ops = profile.generate(run_seed ^ i as u64);
                ops.extend(plan.ops_between(0, half));
                run_vm_trace(&fabric, node, &mut backend, i as u64, &ops).expect("phase A");
                barrier.wait(&env);
                backend.snapshot().expect("snapshot");
                snaps.lock()[i] = backend.snapshot_ref().map(FileId);
            }));
        }
        env.join_all(&pids);

        let snapshot_list: Vec<FileId> = snaps2
            .lock()
            .iter()
            .map(|s| s.expect("phase A snapshotted"))
            .collect();
        let mut pids = Vec::with_capacity(n);
        for (i, &snap) in snapshot_list.iter().enumerate() {
            let node = compute2[(i + 1) % compute2.len()];
            let pvfs = Arc::clone(&pvfs2);
            let fabric = Arc::clone(&fabric2);
            pids.push(env.spawn(format!("vmB{i}"), move |env| {
                env.sleep_us(skew(&cal, run_seed + 1, i));
                let client = PvfsClient::new(pvfs, node);
                let mut backend = QcowPvfsBackend::resume_from_snapshot(
                    client,
                    base,
                    snap,
                    node,
                    Arc::clone(&fabric),
                    cal,
                )
                .expect("resume");
                let mut ops = profile.generate(run_seed ^ (i as u64 + 7919));
                ops.extend(plan.resume_prologue());
                ops.extend(plan.ops_between(half, plan.compute_us));
                run_vm_trace(&fabric, node, &mut backend, i as u64, &ops).expect("phase B");
            }));
        }
        env.join_all(&pids);
        *end2.lock() = env.now_us();
    });
    cluster.run();
    let end = *end_time.lock();
    end as f64 / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_plan() -> WorkerPlan {
        WorkerPlan {
            compute_us: 400_000,
            checkpoint_every_us: 100_000,
            state_bytes: 128 << 10,
            state_offset: 1 << 20,
        }
    }

    #[test]
    fn uninterrupted_ordering_matches_paper() {
        let scale = ExpScale::mini();
        let cal = Calibration::default();
        let plan = mini_plan();
        let pre = run_one(
            Strategy::Prepropagation,
            Setting::Uninterrupted,
            3,
            scale,
            cal,
            plan,
            5,
        );
        let qcow = run_one(
            Strategy::QcowOverPvfs,
            Setting::Uninterrupted,
            3,
            scale,
            cal,
            plan,
            5,
        );
        let ours = run_one(
            Strategy::Mirror,
            Setting::Uninterrupted,
            3,
            scale,
            cal,
            plan,
            5,
        );
        // Fig. 8 left group: ours is the fastest. (The prepropagation vs
        // qcow2 ordering only emerges at paper scale, where broadcasting
        // 2 GB dominates; the paper-scale run is in EXPERIMENTS.md.)
        assert!(pre > ours, "pre {pre} vs ours {ours}");
        assert!(qcow > ours, "qcow {qcow} vs ours {ours}");
        // All include the compute time.
        assert!(ours >= 0.4);
    }

    #[test]
    fn suspend_resume_ours_beats_qcow() {
        let scale = ExpScale::mini();
        let cal = Calibration::default();
        let plan = mini_plan();
        let qcow = run_one(
            Strategy::QcowOverPvfs,
            Setting::SuspendResume,
            3,
            scale,
            cal,
            plan,
            5,
        );
        let ours = run_one(
            Strategy::Mirror,
            Setting::SuspendResume,
            3,
            scale,
            cal,
            plan,
            5,
        );
        assert!(ours < qcow, "ours {ours} vs qcow {qcow}");
        // The cycle costs more than the uninterrupted run.
        let ours_flat = run_one(
            Strategy::Mirror,
            Setting::Uninterrupted,
            3,
            scale,
            cal,
            plan,
            5,
        );
        assert!(ours > ours_flat);
    }

    #[test]
    #[should_panic(expected = "excluded")]
    fn prepropagation_cannot_suspend_resume() {
        run_one(
            Strategy::Prepropagation,
            Setting::SuspendResume,
            2,
            ExpScale::mini(),
            Calibration::default(),
            mini_plan(),
            5,
        );
    }
}
