//! Figure 5: multisnapshotting — average time to snapshot one instance
//! (a) and completion time to snapshot all instances (b), with ~15 MB of
//! local modifications per instance.
//!
//! Prepropagation is excluded exactly as in the paper ("it is infeasible
//! to copy back to the NFS server the whole set of full VM images").

use super::{ExpScale, Strategy, IMAGE_SEED};
use crate::backend::{ImageBackend, MirrorBackend, QcowPvfsBackend};
use crate::params::Calibration;
use crate::vm::vm_write_payload;
use bff_blobseer::{BlobConfig, BlobStore, BlobTopology, Client as BlobClient};
use bff_data::Payload;
use bff_net::{Fabric, NodeId};
use bff_pvfs::{Pvfs, PvfsClient, PvfsConfig};
use bff_sim::{SimBarrier, SimCluster};
use parking_lot::Mutex;
use std::sync::Arc;

/// Outcome of one multisnapshot run.
#[derive(Debug, Clone)]
pub struct SnapOutcome {
    /// Per-instance snapshot duration, seconds (Fig. 5a samples).
    pub per_vm_s: Vec<f64>,
    /// Synchronized-start to last-instance-done, seconds (Fig. 5b).
    pub total_s: f64,
}

impl SnapOutcome {
    /// Mean per-instance snapshot time.
    pub fn avg_s(&self) -> f64 {
        if self.per_vm_s.is_empty() {
            return 0.0;
        }
        self.per_vm_s.iter().sum::<f64>() / self.per_vm_s.len() as f64
    }
}

/// One row of the Fig. 5 sweep.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Number of concurrent instances.
    pub n: usize,
    /// qcow2-over-PVFS outcome.
    pub qcow: SnapOutcome,
    /// Our approach's outcome.
    pub mirror: SnapOutcome,
}

/// Run one multisnapshot experiment: `n` instances, each with
/// `diff_bytes` of local modifications, snapshotting synchronized.
pub fn run_one(
    strategy: Strategy,
    n: usize,
    scale: ExpScale,
    cal: Calibration,
    diff_bytes: u64,
) -> SnapOutcome {
    run_one_with_async(strategy, n, scale, cal, diff_bytes, true)
}

/// [`run_one`] with explicit control over BlobSeer's asynchronous write
/// acknowledgement (§5.3) — the A5 ablation. Ignored for qcow2.
pub fn run_one_with_async(
    strategy: Strategy,
    n: usize,
    scale: ExpScale,
    cal: Calibration,
    diff_bytes: u64,
    async_writes: bool,
) -> SnapOutcome {
    assert!(
        strategy != Strategy::Prepropagation,
        "excluded as in the paper"
    );
    let cluster = SimCluster::new(cal.cluster(n));
    let fabric: Arc<dyn Fabric> = cluster.fabric();
    let compute: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
    let service = NodeId(n as u32);
    let barrier = SimBarrier::new(Arc::clone(cluster.sim().state()), n);
    let spans: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(vec![(0, 0); n]));
    // The diff region: sequential writes inside the image, chunk-granular
    // so both stacks persist comparable volumes (the paper's 15 MB of
    // configuration/contextualization data).
    let diff_at = scale.image_len / 2;
    let write_sz = 128 << 10;

    let run_vm = move |backend: &mut dyn ImageBackend,
                       i: usize,
                       barrier: &SimBarrier,
                       env: &bff_sim::Env|
          -> (u64, u64) {
        let mut written = 0u64;
        while written < diff_bytes {
            let len = write_sz.min(diff_bytes - written);
            backend
                .write(
                    diff_at + written,
                    vm_write_payload(i as u64, diff_at + written, len),
                )
                .expect("diff write");
            written += len;
        }
        // §5.3: "the snapshotting process is synchronized to start at the
        // same time".
        barrier.wait(env);
        let start = env.now_us();
        backend.snapshot().expect("snapshot");
        (start, env.now_us())
    };

    match strategy {
        Strategy::Mirror => {
            let cfg = BlobConfig {
                chunk_size: scale.chunk_size,
                async_writes,
                ..Default::default()
            };
            let topo = BlobTopology::colocated(&compute, service);
            let store = BlobStore::new(cfg, topo, Arc::clone(&fabric));
            let uploader = BlobClient::new(Arc::clone(&store), service);
            let image = Payload::synth(IMAGE_SEED, 0, scale.image_len);
            let (blob, version) = uploader.upload(image).expect("pre-stage");
            store.drop_provider_caches();
            fabric.stats().reset();
            for (i, &node) in compute.iter().enumerate() {
                let store = Arc::clone(&store);
                let spans = Arc::clone(&spans);
                let barrier = Arc::clone(&barrier);
                cluster.sim().spawn(format!("vm{i}"), move |env| {
                    let client = BlobClient::new(store, node);
                    let mut backend =
                        MirrorBackend::open(client, blob, version, &cal).expect("open");
                    spans.lock()[i] = run_vm(&mut backend, i, &barrier, &env);
                });
            }
        }
        Strategy::QcowOverPvfs => {
            let pvfs = Pvfs::new(
                PvfsConfig {
                    stripe_size: scale.chunk_size,
                    ..Default::default()
                },
                compute.clone(),
                Arc::clone(&fabric),
            );
            let stage = PvfsClient::new(Arc::clone(&pvfs), service);
            let base = stage.create(scale.image_len).expect("create");
            stage
                .write(base, 0, Payload::synth(IMAGE_SEED, 0, scale.image_len))
                .expect("pre-stage");
            pvfs.drop_caches();
            fabric.stats().reset();
            for (i, &node) in compute.iter().enumerate() {
                let pvfs = Arc::clone(&pvfs);
                let fabric = Arc::clone(&fabric);
                let spans = Arc::clone(&spans);
                let barrier = Arc::clone(&barrier);
                cluster.sim().spawn(format!("vm{i}"), move |env| {
                    let client = PvfsClient::new(pvfs, node);
                    let mut backend =
                        QcowPvfsBackend::create(client, base, node, fabric, cal).expect("create");
                    spans.lock()[i] = run_vm(&mut backend, i, &barrier, &env);
                });
            }
        }
        Strategy::Prepropagation => unreachable!("checked above"),
    }

    cluster.run();
    let spans = spans.lock();
    let start = spans.iter().map(|(s, _)| *s).min().unwrap_or(0);
    let end = spans.iter().map(|(_, e)| *e).max().unwrap_or(0);
    SnapOutcome {
        per_vm_s: spans.iter().map(|(s, e)| (e - s) as f64 / 1e6).collect(),
        total_s: (end - start) as f64 / 1e6,
    }
}

/// The Fig. 5 sweep: both strategies across instance counts.
pub fn run(ns: &[usize], scale: ExpScale, cal: Calibration, diff_bytes: u64) -> Vec<Fig5Row> {
    ns.iter()
        .map(|&n| Fig5Row {
            n,
            qcow: run_one(Strategy::QcowOverPvfs, n, scale, cal, diff_bytes),
            mirror: run_one(Strategy::Mirror, n, scale, cal, diff_bytes),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_times_have_paper_shape() {
        let rows = run(&[2, 6], ExpScale::mini(), Calibration::default(), 512 << 10);
        for row in &rows {
            // Both snapshot in sub-linear time (seconds at paper scale;
            // here just positive and bounded).
            assert!(row.mirror.avg_s() > 0.0);
            assert!(row.qcow.avg_s() > 0.0);
            // (a): the asynchronous commit keeps ours at or below qcow2.
            assert!(
                row.mirror.avg_s() <= row.qcow.avg_s() * 1.25,
                "n={}: ours {} vs qcow {}",
                row.n,
                row.mirror.avg_s(),
                row.qcow.avg_s()
            );
            // Completion ≥ average, by definition.
            assert!(row.mirror.total_s >= row.mirror.avg_s() * 0.99);
        }
    }

    #[test]
    #[should_panic(expected = "excluded")]
    fn prepropagation_rejected() {
        run_one(
            Strategy::Prepropagation,
            2,
            ExpScale::mini(),
            Calibration::default(),
            1 << 20,
        );
    }
}
