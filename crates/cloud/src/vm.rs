//! The hypervisor model: replays VM traces against an image backend.
//!
//! A trace is a list of [`VmOp`]s (compute bursts, reads, writes). Write
//! contents are synthesized deterministically from the VM seed and the
//! write offset, so the image a VM produces is a pure function of
//! `(base image, seed, trace)` — which is what lets integration tests
//! verify that snapshots taken through different stacks hold identical
//! bytes.

use crate::backend::{BackendError, ImageBackend};
use bff_data::Payload;
use bff_net::{Fabric, NodeId};
use bff_workloads::{coalesce_reads, VmBatch, VmOp};
use std::sync::Arc;

/// Queue depth of the modelled virtual disk: how many back-to-back guest
/// reads the hypervisor submits to the image backend as one vectored
/// request (virtio-blk queues default to this order of magnitude).
pub const READ_QUEUE_DEPTH: usize = 32;

/// The deterministic content a VM writes at `offset`: stream `seed`,
/// positioned by absolute offset so overlapping writes agree.
pub fn vm_write_payload(seed: u64, offset: u64, len: u64) -> Payload {
    Payload::synth(seed ^ 0x57A7_E000_0000_0000, offset, len)
}

/// Replay `ops` against `backend`, charging compute to `node`.
/// Consecutive reads are submitted as vectored requests of up to
/// [`READ_QUEUE_DEPTH`] ranges ([`ImageBackend::read_multi`]), which is
/// what routes workload reads through the repository's batched pipeline;
/// writes and compute bursts are ordering barriers.
pub fn run_vm_trace(
    fabric: &Arc<dyn Fabric>,
    node: NodeId,
    backend: &mut dyn ImageBackend,
    seed: u64,
    ops: &[VmOp],
) -> Result<(), BackendError> {
    for batch in coalesce_reads(ops, READ_QUEUE_DEPTH) {
        match batch {
            // Compute bursts are announced to the backend first: one
            // with background work (the mirror's adaptive prefetcher)
            // kicks detached read-ahead whose transfers hide behind the
            // burst. The burst itself is always charged here, exactly
            // as before.
            VmBatch::Op(VmOp::Cpu { us }) => {
                backend.idle(us)?;
                fabric.compute(node, us);
            }
            VmBatch::Op(VmOp::Write { offset, len }) => {
                backend.write(offset, vm_write_payload(seed, offset, len))?;
            }
            VmBatch::Op(VmOp::Read { .. }) => {
                unreachable!("coalesce_reads folds every read into a batch")
            }
            VmBatch::Reads(ranges) => {
                let got = backend.read_multi(&ranges)?;
                debug_assert!(got
                    .iter()
                    .zip(&ranges)
                    .all(|(p, r)| p.len() == r.end - r.start));
            }
        }
    }
    Ok(())
}

/// The image a VM's writes should have produced on top of `base`
/// (reference model for content-equivalence tests).
pub fn expected_image(base: &Payload, seed: u64, ops: &[VmOp]) -> Payload {
    let mut img = base.clone();
    for op in ops {
        if let VmOp::Write { offset, len } = *op {
            img = img.overwrite(offset, vm_write_payload(seed, offset, len));
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::RawLocalBackend;
    use crate::params::Calibration;
    use bff_net::LocalFabric;
    use bff_workloads::boottrace::BootProfile;

    #[test]
    fn trace_replay_matches_reference_model() {
        let image = Payload::synth(1, 0, 1 << 20);
        let fabric: Arc<dyn Fabric> = LocalFabric::new(1);
        let mut backend = RawLocalBackend::new(
            NodeId(0),
            Arc::clone(&fabric),
            image.clone(),
            Calibration::default(),
        );
        let profile = BootProfile::scaled(1 << 20);
        let ops = profile.generate(42);
        run_vm_trace(&fabric, NodeId(0), &mut backend, 42, &ops).unwrap();
        let expect = expected_image(&image, 42, &ops);
        let got = backend.read(0..1 << 20).unwrap();
        assert!(got.content_eq(&expect));
    }

    #[test]
    fn write_payloads_are_offset_stable() {
        // The same offset yields the same bytes regardless of write size,
        // so overlapping writes are consistent.
        let a = vm_write_payload(7, 100, 50);
        let b = vm_write_payload(7, 100, 10);
        assert!(a.slice(0, 10).content_eq(&b));
    }
}
