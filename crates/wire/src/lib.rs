//! # bff-wire
//!
//! The typed RPC wire protocol of the BlobSeer-like service: request and
//! response enums for every manager / metadata / provider / board
//! interaction, plus the compact self-describing binary codec that
//! carries them across process boundaries.
//!
//! The paper's deployment is genuinely distributed — the version
//! manager, provider manager, metadata servers and providers are
//! separate processes exchanging real messages. This crate is that
//! message boundary for the reproduction: the client protocol in
//! `bff-blobseer` speaks [`msg::Req`]/[`msg::Resp`], and a
//! `bff_net::Transport` decides whether those values are dispatched
//! in-process (zero-copy), round-tripped through the codec, or carried
//! over framed TCP to server processes.
//!
//! ## Wire format sketch
//!
//! A frame is the [`codec::Wire`] encoding of one message; the transport
//! wraps it in a `u32`-LE length prefix. Within a frame:
//!
//! * integers — LEB128 varints (identifiers, sizes, counts);
//! * enums — one tag byte, then the variant's fields in order;
//! * collections — varint count, then elements;
//! * payloads — rope *structure*: literal segments travel verbatim,
//!   synthetic/zero extents travel as `(seed, start, len)` descriptors,
//!   so a multi-gigabyte synthetic image costs O(1) wire bytes;
//! * `Option`/`Result` — a one-byte discriminant, then the value.
//!
//! Both ends are compiled from this crate, so the message layout is the
//! schema; decoding never panics and rejects trailing bytes, truncated
//! frames and unknown tags with `bff_net::WireError`.

pub mod codec;
pub mod msg;
pub mod types;

pub use codec::{decode, encode, put_varint, Reader, Wire, WireError};
pub use msg::{
    unexpected_resp, BoardReq, BoardResp, ClusterReq, ClusterResp, DeleteOutcome, MetaReq,
    MetaResp, PmReq, PmResp, ProviderReq, ProviderResp, Req, Resp, VersionInfo, VmReq, VmResp,
};
pub use types::{BlobError, BlobId, BlobResult, ChunkDesc, ChunkId, NodeKey, TreeNode, Version};
