//! The compact self-describing binary codec every wire message uses.
//!
//! Design rules, in priority order:
//!
//! 1. **Never panic on input.** Decoding returns [`WireError`] for any
//!    byte sequence — truncated, garbage, adversarial. The fuzz tests in
//!    `tests/prop_wire.rs` hold this for random frames.
//! 2. **Compact.** Integers are LEB128 varints (a chunk index costs one
//!    byte, not eight); enums cost one tag byte; collections are
//!    length-prefixed. There is no schema negotiation — both ends are
//!    compiled from the same crate, so the message layout *is* the schema.
//! 3. **No external dependencies.** The codec is ~200 lines of hand-rolled
//!    encoding in the same vendor-shim spirit as the rest of the
//!    workspace.
//!
//! A message travels as a frame: the [`Wire`] encoding of the value,
//! carried inside a `u32`-LE length prefix by the transport layer
//! (`bff_net::transport`). [`decode`] requires the frame to be consumed
//! exactly — trailing bytes are a framing error, which catches
//! misrouted or version-skewed messages early.

pub use bff_net::transport::WireError;
use std::ops::Range;

/// Cursor over a received frame.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Start reading `buf` from the beginning.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Next raw byte.
    #[inline]
    pub fn byte(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Next LEB128 varint.
    pub fn varint(&mut self) -> Result<u64, WireError> {
        let mut val = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            let bits = u64::from(b & 0x7f);
            if shift > 63 || (shift == 63 && bits > 1) {
                return Err(WireError::BadFrame);
            }
            val |= bits << shift;
            if b & 0x80 == 0 {
                return Ok(val);
            }
            shift += 7;
        }
    }

    /// Assert the frame was consumed exactly.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::BadFrame)
        }
    }
}

/// Append `v` as a LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// A value with a stable binary wire form.
pub trait Wire: Sized {
    /// Append the encoding of `self` to `out`.
    fn enc(&self, out: &mut Vec<u8>);
    /// Decode one value from `r`.
    fn dec(r: &mut Reader<'_>) -> Result<Self, WireError>;
}

/// Encode a value into a fresh frame payload.
pub fn encode<T: Wire>(v: &T) -> Vec<u8> {
    let mut out = Vec::new();
    v.enc(&mut out);
    out
}

/// Decode a full frame payload; trailing bytes are a framing error.
pub fn decode<T: Wire>(buf: &[u8]) -> Result<T, WireError> {
    let mut r = Reader::new(buf);
    let v = T::dec(&mut r)?;
    r.finish()?;
    Ok(v)
}

impl Wire for u64 {
    fn enc(&self, out: &mut Vec<u8>) {
        put_varint(out, *self);
    }
    fn dec(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.varint()
    }
}

impl Wire for u32 {
    fn enc(&self, out: &mut Vec<u8>) {
        put_varint(out, u64::from(*self));
    }
    fn dec(r: &mut Reader<'_>) -> Result<Self, WireError> {
        u32::try_from(r.varint()?).map_err(|_| WireError::BadFrame)
    }
}

impl Wire for usize {
    fn enc(&self, out: &mut Vec<u8>) {
        put_varint(out, *self as u64);
    }
    fn dec(r: &mut Reader<'_>) -> Result<Self, WireError> {
        usize::try_from(r.varint()?).map_err(|_| WireError::BadFrame)
    }
}

impl Wire for bool {
    fn enc(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn dec(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::BadTag("bool", t)),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn enc(&self, out: &mut Vec<u8>) {
        put_varint(out, self.len() as u64);
        for item in self {
            item.enc(out);
        }
    }
    fn dec(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = usize::dec(r)?;
        // Every Wire encoding is at least one byte, so a declared count
        // beyond the remaining frame is corrupt — reject before
        // allocating for it.
        if n > r.remaining() {
            return Err(WireError::Truncated);
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(T::dec(r)?);
        }
        Ok(v)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn enc(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.enc(out);
            }
        }
    }
    fn dec(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(None),
            1 => Ok(Some(T::dec(r)?)),
            t => Err(WireError::BadTag("option", t)),
        }
    }
}

impl<T: Wire, E: Wire> Wire for Result<T, E> {
    fn enc(&self, out: &mut Vec<u8>) {
        match self {
            Ok(v) => {
                out.push(0);
                v.enc(out);
            }
            Err(e) => {
                out.push(1);
                e.enc(out);
            }
        }
    }
    fn dec(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(Ok(T::dec(r)?)),
            1 => Ok(Err(E::dec(r)?)),
            t => Err(WireError::BadTag("result", t)),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn enc(&self, out: &mut Vec<u8>) {
        self.0.enc(out);
        self.1.enc(out);
    }
    fn dec(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::dec(r)?, B::dec(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn enc(&self, out: &mut Vec<u8>) {
        self.0.enc(out);
        self.1.enc(out);
        self.2.enc(out);
    }
    fn dec(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::dec(r)?, B::dec(r)?, C::dec(r)?))
    }
}

impl Wire for Range<u64> {
    fn enc(&self, out: &mut Vec<u8>) {
        put_varint(out, self.start);
        put_varint(out, self.end);
    }
    fn dec(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(r.varint()?..r.varint()?)
    }
}

/// Encode a `&'static str` drawn from an intern `table` as its index.
/// Strings not in the table encode as index 0 — tables reserve slot 0
/// for their "unknown" placeholder, so decoding is total and the round
/// trip is the identity for every interned string.
pub fn enc_static(s: &str, table: &[&'static str], out: &mut Vec<u8>) {
    let idx = table.iter().position(|t| *t == s).unwrap_or(0);
    put_varint(out, idx as u64);
}

/// Decode an interned `&'static str` (see [`enc_static`]).
pub fn dec_static(r: &mut Reader<'_>, table: &[&'static str]) -> Result<&'static str, WireError> {
    let idx = usize::dec(r)?;
    table
        .get(idx)
        .copied()
        .ok_or(WireError::BadTag("interned string", idx as u8))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_edges() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut out = Vec::new();
            put_varint(&mut out, v);
            let mut r = Reader::new(&out);
            assert_eq!(r.varint().unwrap(), v);
            r.finish().unwrap();
        }
    }

    #[test]
    fn varint_overlong_rejected() {
        // 11 continuation bytes can never be a valid u64.
        let buf = [0x80u8; 11];
        let mut r = Reader::new(&buf);
        assert_eq!(r.varint().unwrap_err(), WireError::BadFrame);
        // Truncated varint: continuation bit set, no next byte.
        let mut r = Reader::new(&[0x80]);
        assert_eq!(r.varint().unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn vec_count_beyond_frame_rejected() {
        // Declares 1000 elements but carries none.
        let mut out = Vec::new();
        put_varint(&mut out, 1000);
        assert_eq!(decode::<Vec<u64>>(&out).unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut out = encode(&7u64);
        out.push(0);
        assert_eq!(decode::<u64>(&out).unwrap_err(), WireError::BadFrame);
    }

    #[test]
    fn composites_roundtrip() {
        let v: Vec<(u64, Option<bool>)> = vec![(1, None), (2, Some(true)), (300, Some(false))];
        assert_eq!(decode::<Vec<(u64, Option<bool>)>>(&encode(&v)).unwrap(), v);
        let r: Result<u64, u32> = Err(9);
        assert_eq!(decode::<Result<u64, u32>>(&encode(&r)).unwrap(), r);
        let range = 17u64..99u64;
        assert_eq!(decode::<Range<u64>>(&encode(&range)).unwrap(), range);
    }
}
