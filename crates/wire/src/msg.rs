//! The typed request/response message set — one request enum per server
//! role, mirroring exactly the operations the client protocol performs
//! against the passive state machines. The messages preserve today's
//! *lock-acquisition granularity*: a batch message corresponds to one
//! lock acquisition server-side, a per-item message to one acquisition
//! per item. That keeps the contention ablations (`coarse_*` config
//! flags) meaningful under every transport.

use crate::codec::{put_varint, Reader, Wire, WireError};
use crate::types::{BlobError, BlobId, BlobResult, ChunkDesc, ChunkId, NodeKey, TreeNode, Version};
use bff_data::{ContentKey, Payload};
use bff_net::{NodeId, RouteKey};
use std::ops::Range;

/// Per-blob bookkeeping snapshot served by the version manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VersionInfo {
    /// Root of the version's metadata tree.
    pub root: NodeKey,
    /// Blob size in bytes.
    pub size: u64,
    /// Chunk size the blob was created with.
    pub chunk_size: u64,
    /// Chunk span of the metadata tree (power of two ≥ chunk count).
    pub span: u64,
}

/// Everything the compound snapshot-deletion call returns: kept in one
/// message so the version-manager state transition stays atomic under
/// one lock, exactly as in the direct path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeleteOutcome {
    /// Roots of the deleted versions (reachability-diff sources).
    pub dead_roots: Vec<NodeKey>,
    /// Roots of every still-live version in the blob's clone family.
    pub live_roots: Vec<NodeKey>,
    /// Chunk span of the blob's metadata trees.
    pub span: u64,
}

/// Version-manager requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmReq {
    /// Create an empty blob.
    CreateBlob {
        /// Initial logical size.
        size: u64,
        /// Chunk size for the lineage.
        chunk_size: u64,
    },
    /// Clone a snapshot into a new blob lineage.
    CloneBlob {
        /// Source blob.
        src: BlobId,
        /// Source snapshot.
        version: Version,
    },
    /// Latest published version of a blob.
    Latest(BlobId),
    /// Current size of a blob.
    Size(BlobId),
    /// Live (undeleted) snapshot list.
    LiveSnapshots(BlobId),
    /// Root + geometry of one snapshot.
    VersionMeta(BlobId, Version),
    /// Publish a new version with the given tree root.
    Publish {
        /// Blob being written.
        blob: BlobId,
        /// Version the writer based its update on.
        base: Version,
        /// Root of the new metadata tree.
        root: NodeKey,
    },
    /// Delete snapshots and report the reachability inputs (compound;
    /// see [`DeleteOutcome`]).
    DeleteSnapshots {
        /// Blob to delete from.
        blob: BlobId,
        /// Versions to delete.
        versions: Vec<Version>,
    },
    /// Reserve `n` fresh metadata node keys.
    ReserveKeys(u64),
}

/// Version-manager responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmResp {
    /// New blob id.
    Created(BlobResult<BlobId>),
    /// Cloned blob id.
    Cloned(BlobResult<BlobId>),
    /// Latest version.
    Latest(BlobResult<Version>),
    /// Blob size.
    Size(BlobResult<u64>),
    /// Live snapshots.
    LiveSnapshots(BlobResult<Vec<Version>>),
    /// Snapshot root + geometry.
    VersionMeta(BlobResult<VersionInfo>),
    /// Published version number.
    Published(BlobResult<Version>),
    /// Deletion outcome.
    Deleted(BlobResult<DeleteOutcome>),
    /// Reserved key range.
    Reserved(Range<u64>),
}

/// Provider-manager requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PmReq {
    /// Allocate descriptors for `n` fresh chunks, skipping down nodes.
    Allocate {
        /// Chunks to place.
        n: usize,
        /// Bytes per chunk (load accounting).
        chunk_bytes: u64,
        /// Replicas per chunk.
        replication: usize,
        /// Per-provider down flags, in topology provider order.
        down: Vec<bool>,
    },
}

/// Provider-manager responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PmResp {
    /// Allocated descriptors, in chunk order.
    Allocated(BlobResult<Vec<ChunkDesc>>),
}

/// Metadata-shard requests.
#[derive(Debug, Clone, PartialEq)]
pub enum MetaReq {
    /// Fetch tree nodes; one shard lock held across the whole batch.
    ReadNodes(Vec<NodeKey>),
    /// Store tree nodes; one shard lock held across the whole batch.
    WriteNodes(Vec<(NodeKey, TreeNode)>),
}

/// Metadata-shard responses.
#[derive(Debug, Clone, PartialEq)]
pub enum MetaResp {
    /// Nodes in request order (fails on the first missing key).
    Nodes(BlobResult<Vec<TreeNode>>),
    /// Write acknowledged.
    Written,
}

/// Chunk-provider requests. Addressed to one provider node (carried in
/// [`Req::Provider`]); batches hold the provider lock once, single-item
/// messages once per message — mirroring the direct path.
#[derive(Debug, Clone, PartialEq)]
pub enum ProviderReq {
    /// Store chunk replicas (one provider lock for the whole batch).
    Put(Vec<(ChunkId, Payload)>),
    /// Fetch chunks for a read plan (one provider lock for the batch);
    /// marks hits hot in the provider's read cache.
    Fetch(Vec<ChunkId>),
    /// Inspect a chunk *without* touching read-cache state (dedup
    /// byte-verification path).
    Peek(ChunkId),
    /// Bump a chunk's refcount (commit-by-reference).
    Retain(ChunkId),
    /// Drop one reference (write rollback).
    Release(ChunkId),
    /// Drop `n` references and report what happened (snapshot GC).
    ReleaseCounted(ChunkId, u64),
}

/// Chunk-provider responses.
#[derive(Debug, Clone, PartialEq)]
pub enum ProviderResp {
    /// Whether the provider accepted the batch.
    Put(bool),
    /// Per-chunk `(payload, was_cached)` in request order; `None` where
    /// the chunk is absent.
    Fetched(Vec<Option<(Payload, bool)>>),
    /// The chunk's bytes, if present.
    Peeked(Option<Payload>),
    /// Whether the chunk existed (and was retained).
    Retained(bool),
    /// Whether the chunk existed (and was released).
    Released(bool),
    /// `(bytes_freed, removed, dropped_to_zero)` from the counted release.
    ReleaseCounted((u64, bool, bool)),
}

/// Pattern-board requests (prefetch gossip) plus the snapshot-GC purge,
/// which cleans board *and* cluster-index state in one message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoardReq {
    /// Which of `batch` the board does not yet consider cohort-confirmed.
    NovelOf {
        /// Snapshot the pattern belongs to.
        key: (BlobId, Version),
        /// First-touch chunk indices.
        batch: Vec<u64>,
        /// Confidence threshold.
        min_publishers: usize,
    },
    /// Merge a publisher's first-touch batch.
    Merge {
        /// Snapshot the pattern belongs to.
        key: (BlobId, Version),
        /// Publishing node.
        publisher: NodeId,
        /// First-touch chunk indices.
        batch: Vec<u64>,
    },
    /// Length of the merged sequence.
    SequenceLen((BlobId, Version)),
    /// The merged sequence with per-chunk confidence flags.
    Sequence {
        /// Snapshot the pattern belongs to.
        key: (BlobId, Version),
        /// Confidence threshold.
        min_publishers: usize,
    },
    /// Snapshot-GC cleanup: drop dead patterns and evict freed chunks
    /// from the cluster dedup index.
    Purge {
        /// Deleted snapshots.
        keys: Vec<(BlobId, Version)>,
        /// Chunk ids whose last replica was freed.
        freed: Vec<ChunkId>,
    },
}

/// Pattern-board responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoardResp {
    /// The novel subset.
    Novel(Vec<u64>),
    /// Indices new to the board.
    Merged(usize),
    /// Sequence length.
    SequenceLen(usize),
    /// Merged sequence + optional per-chunk confidence flags.
    Sequence(Option<(Vec<u64>, Option<Vec<bool>>)>),
    /// Cluster-index entries evicted by the purge.
    Purged(usize),
}

/// Cluster-dedup-index requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterReq {
    /// Look up descriptors (one shared-lock acquisition for the batch).
    Get(Vec<ContentKey>),
    /// Coarse-ablation lookup: one *exclusive* acquisition for one key.
    GetExclusive(ContentKey),
    /// Which keys the index does not yet hold.
    NovelOf(Vec<ContentKey>),
    /// Record novel entries (one exclusive acquisition for the batch).
    Record(Vec<(ContentKey, ChunkDesc)>),
    /// Drop a stale entry.
    Forget(ContentKey),
}

/// Cluster-dedup-index responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterResp {
    /// Per-key descriptors in request order.
    Got(Vec<Option<ChunkDesc>>),
    /// Single-key descriptor.
    GotOne(Option<ChunkDesc>),
    /// The novel subset.
    Novel(Vec<ContentKey>),
    /// Record acknowledged.
    Recorded,
    /// Forget acknowledged.
    Forgotten,
}

/// A request addressed to a server role.
#[derive(Debug, Clone, PartialEq)]
pub enum Req {
    /// To the version manager.
    Vm(VmReq),
    /// To the provider manager.
    Pm(PmReq),
    /// To one metadata shard.
    Meta {
        /// Target shard index.
        shard: u32,
        /// The shard operation.
        req: MetaReq,
    },
    /// To one chunk provider.
    Provider {
        /// Target provider node.
        node: NodeId,
        /// The provider operation.
        req: ProviderReq,
    },
    /// To the pattern board.
    Board(BoardReq),
    /// To the cluster dedup index.
    Cluster(ClusterReq),
}

/// A response from a server role.
#[derive(Debug, Clone, PartialEq)]
pub enum Resp {
    /// From the version manager.
    Vm(VmResp),
    /// From the provider manager.
    Pm(PmResp),
    /// From a metadata shard.
    Meta(MetaResp),
    /// From a chunk provider.
    Provider(ProviderResp),
    /// From the pattern board.
    Board(BoardResp),
    /// From the cluster dedup index.
    Cluster(ClusterResp),
}

impl Req {
    /// Which listener this request goes to.
    pub fn route(&self) -> RouteKey {
        match self {
            Req::Vm(_) => RouteKey::Vm,
            Req::Pm(_) => RouteKey::Pm,
            Req::Meta { shard, .. } => RouteKey::Meta(*shard),
            Req::Provider { node, .. } => RouteKey::Provider(*node),
            Req::Board(_) => RouteKey::Board,
            Req::Cluster(_) => RouteKey::Cluster,
        }
    }
}

/// A server role responded with a variant the request cannot produce —
/// protocol corruption or version skew.
pub fn unexpected_resp() -> BlobError {
    BlobError::Net(bff_net::NetError::Wire(WireError::BadFrame))
}

// ---------------------------------------------------------------------
// Wire encodings.
// ---------------------------------------------------------------------

impl Wire for VersionInfo {
    fn enc(&self, out: &mut Vec<u8>) {
        self.root.enc(out);
        put_varint(out, self.size);
        put_varint(out, self.chunk_size);
        put_varint(out, self.span);
    }
    fn dec(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(VersionInfo {
            root: NodeKey::dec(r)?,
            size: r.varint()?,
            chunk_size: r.varint()?,
            span: r.varint()?,
        })
    }
}

impl Wire for DeleteOutcome {
    fn enc(&self, out: &mut Vec<u8>) {
        self.dead_roots.enc(out);
        self.live_roots.enc(out);
        put_varint(out, self.span);
    }
    fn dec(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(DeleteOutcome {
            dead_roots: Vec::dec(r)?,
            live_roots: Vec::dec(r)?,
            span: r.varint()?,
        })
    }
}

impl Wire for VmReq {
    fn enc(&self, out: &mut Vec<u8>) {
        match self {
            VmReq::CreateBlob { size, chunk_size } => {
                out.push(0);
                put_varint(out, *size);
                put_varint(out, *chunk_size);
            }
            VmReq::CloneBlob { src, version } => {
                out.push(1);
                src.enc(out);
                version.enc(out);
            }
            VmReq::Latest(b) => {
                out.push(2);
                b.enc(out);
            }
            VmReq::Size(b) => {
                out.push(3);
                b.enc(out);
            }
            VmReq::LiveSnapshots(b) => {
                out.push(4);
                b.enc(out);
            }
            VmReq::VersionMeta(b, v) => {
                out.push(5);
                b.enc(out);
                v.enc(out);
            }
            VmReq::Publish { blob, base, root } => {
                out.push(6);
                blob.enc(out);
                base.enc(out);
                root.enc(out);
            }
            VmReq::DeleteSnapshots { blob, versions } => {
                out.push(7);
                blob.enc(out);
                versions.enc(out);
            }
            VmReq::ReserveKeys(n) => {
                out.push(8);
                put_varint(out, *n);
            }
        }
    }
    fn dec(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(VmReq::CreateBlob {
                size: r.varint()?,
                chunk_size: r.varint()?,
            }),
            1 => Ok(VmReq::CloneBlob {
                src: BlobId::dec(r)?,
                version: Version::dec(r)?,
            }),
            2 => Ok(VmReq::Latest(BlobId::dec(r)?)),
            3 => Ok(VmReq::Size(BlobId::dec(r)?)),
            4 => Ok(VmReq::LiveSnapshots(BlobId::dec(r)?)),
            5 => Ok(VmReq::VersionMeta(BlobId::dec(r)?, Version::dec(r)?)),
            6 => Ok(VmReq::Publish {
                blob: BlobId::dec(r)?,
                base: Version::dec(r)?,
                root: NodeKey::dec(r)?,
            }),
            7 => Ok(VmReq::DeleteSnapshots {
                blob: BlobId::dec(r)?,
                versions: Vec::dec(r)?,
            }),
            8 => Ok(VmReq::ReserveKeys(r.varint()?)),
            t => Err(WireError::BadTag("vm request", t)),
        }
    }
}

impl Wire for VmResp {
    fn enc(&self, out: &mut Vec<u8>) {
        match self {
            VmResp::Created(v) => {
                out.push(0);
                v.enc(out);
            }
            VmResp::Cloned(v) => {
                out.push(1);
                v.enc(out);
            }
            VmResp::Latest(v) => {
                out.push(2);
                v.enc(out);
            }
            VmResp::Size(v) => {
                out.push(3);
                v.enc(out);
            }
            VmResp::LiveSnapshots(v) => {
                out.push(4);
                v.enc(out);
            }
            VmResp::VersionMeta(v) => {
                out.push(5);
                v.enc(out);
            }
            VmResp::Published(v) => {
                out.push(6);
                v.enc(out);
            }
            VmResp::Deleted(v) => {
                out.push(7);
                v.enc(out);
            }
            VmResp::Reserved(v) => {
                out.push(8);
                v.enc(out);
            }
        }
    }
    fn dec(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(VmResp::Created(Wire::dec(r)?)),
            1 => Ok(VmResp::Cloned(Wire::dec(r)?)),
            2 => Ok(VmResp::Latest(Wire::dec(r)?)),
            3 => Ok(VmResp::Size(Wire::dec(r)?)),
            4 => Ok(VmResp::LiveSnapshots(Wire::dec(r)?)),
            5 => Ok(VmResp::VersionMeta(Wire::dec(r)?)),
            6 => Ok(VmResp::Published(Wire::dec(r)?)),
            7 => Ok(VmResp::Deleted(Wire::dec(r)?)),
            8 => Ok(VmResp::Reserved(Wire::dec(r)?)),
            t => Err(WireError::BadTag("vm response", t)),
        }
    }
}

impl Wire for PmReq {
    fn enc(&self, out: &mut Vec<u8>) {
        match self {
            PmReq::Allocate {
                n,
                chunk_bytes,
                replication,
                down,
            } => {
                out.push(0);
                n.enc(out);
                put_varint(out, *chunk_bytes);
                replication.enc(out);
                down.enc(out);
            }
        }
    }
    fn dec(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(PmReq::Allocate {
                n: usize::dec(r)?,
                chunk_bytes: r.varint()?,
                replication: usize::dec(r)?,
                down: Vec::dec(r)?,
            }),
            t => Err(WireError::BadTag("pm request", t)),
        }
    }
}

impl Wire for PmResp {
    fn enc(&self, out: &mut Vec<u8>) {
        match self {
            PmResp::Allocated(v) => {
                out.push(0);
                v.enc(out);
            }
        }
    }
    fn dec(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(PmResp::Allocated(Wire::dec(r)?)),
            t => Err(WireError::BadTag("pm response", t)),
        }
    }
}

impl Wire for MetaReq {
    fn enc(&self, out: &mut Vec<u8>) {
        match self {
            MetaReq::ReadNodes(keys) => {
                out.push(0);
                keys.enc(out);
            }
            MetaReq::WriteNodes(nodes) => {
                out.push(1);
                nodes.enc(out);
            }
        }
    }
    fn dec(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(MetaReq::ReadNodes(Vec::dec(r)?)),
            1 => Ok(MetaReq::WriteNodes(Vec::dec(r)?)),
            t => Err(WireError::BadTag("meta request", t)),
        }
    }
}

impl Wire for MetaResp {
    fn enc(&self, out: &mut Vec<u8>) {
        match self {
            MetaResp::Nodes(v) => {
                out.push(0);
                v.enc(out);
            }
            MetaResp::Written => out.push(1),
        }
    }
    fn dec(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(MetaResp::Nodes(Wire::dec(r)?)),
            1 => Ok(MetaResp::Written),
            t => Err(WireError::BadTag("meta response", t)),
        }
    }
}

impl Wire for ProviderReq {
    fn enc(&self, out: &mut Vec<u8>) {
        match self {
            ProviderReq::Put(items) => {
                out.push(0);
                items.enc(out);
            }
            ProviderReq::Fetch(ids) => {
                out.push(1);
                ids.enc(out);
            }
            ProviderReq::Peek(id) => {
                out.push(2);
                id.enc(out);
            }
            ProviderReq::Retain(id) => {
                out.push(3);
                id.enc(out);
            }
            ProviderReq::Release(id) => {
                out.push(4);
                id.enc(out);
            }
            ProviderReq::ReleaseCounted(id, n) => {
                out.push(5);
                id.enc(out);
                put_varint(out, *n);
            }
        }
    }
    fn dec(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(ProviderReq::Put(Vec::dec(r)?)),
            1 => Ok(ProviderReq::Fetch(Vec::dec(r)?)),
            2 => Ok(ProviderReq::Peek(ChunkId::dec(r)?)),
            3 => Ok(ProviderReq::Retain(ChunkId::dec(r)?)),
            4 => Ok(ProviderReq::Release(ChunkId::dec(r)?)),
            5 => Ok(ProviderReq::ReleaseCounted(ChunkId::dec(r)?, r.varint()?)),
            t => Err(WireError::BadTag("provider request", t)),
        }
    }
}

impl Wire for ProviderResp {
    fn enc(&self, out: &mut Vec<u8>) {
        match self {
            ProviderResp::Put(ok) => {
                out.push(0);
                ok.enc(out);
            }
            ProviderResp::Fetched(chunks) => {
                out.push(1);
                chunks.enc(out);
            }
            ProviderResp::Peeked(data) => {
                out.push(2);
                data.enc(out);
            }
            ProviderResp::Retained(ok) => {
                out.push(3);
                ok.enc(out);
            }
            ProviderResp::Released(ok) => {
                out.push(4);
                ok.enc(out);
            }
            ProviderResp::ReleaseCounted(outcome) => {
                out.push(5);
                outcome.enc(out);
            }
        }
    }
    fn dec(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(ProviderResp::Put(bool::dec(r)?)),
            1 => Ok(ProviderResp::Fetched(Vec::dec(r)?)),
            2 => Ok(ProviderResp::Peeked(Wire::dec(r)?)),
            3 => Ok(ProviderResp::Retained(bool::dec(r)?)),
            4 => Ok(ProviderResp::Released(bool::dec(r)?)),
            5 => Ok(ProviderResp::ReleaseCounted(Wire::dec(r)?)),
            t => Err(WireError::BadTag("provider response", t)),
        }
    }
}

impl Wire for BoardReq {
    fn enc(&self, out: &mut Vec<u8>) {
        match self {
            BoardReq::NovelOf {
                key,
                batch,
                min_publishers,
            } => {
                out.push(0);
                key.enc(out);
                batch.enc(out);
                min_publishers.enc(out);
            }
            BoardReq::Merge {
                key,
                publisher,
                batch,
            } => {
                out.push(1);
                key.enc(out);
                publisher.enc(out);
                batch.enc(out);
            }
            BoardReq::SequenceLen(key) => {
                out.push(2);
                key.enc(out);
            }
            BoardReq::Sequence {
                key,
                min_publishers,
            } => {
                out.push(3);
                key.enc(out);
                min_publishers.enc(out);
            }
            BoardReq::Purge { keys, freed } => {
                out.push(4);
                keys.enc(out);
                freed.enc(out);
            }
        }
    }
    fn dec(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(BoardReq::NovelOf {
                key: Wire::dec(r)?,
                batch: Vec::dec(r)?,
                min_publishers: usize::dec(r)?,
            }),
            1 => Ok(BoardReq::Merge {
                key: Wire::dec(r)?,
                publisher: NodeId::dec(r)?,
                batch: Vec::dec(r)?,
            }),
            2 => Ok(BoardReq::SequenceLen(Wire::dec(r)?)),
            3 => Ok(BoardReq::Sequence {
                key: Wire::dec(r)?,
                min_publishers: usize::dec(r)?,
            }),
            4 => Ok(BoardReq::Purge {
                keys: Vec::dec(r)?,
                freed: Vec::dec(r)?,
            }),
            t => Err(WireError::BadTag("board request", t)),
        }
    }
}

impl Wire for BoardResp {
    fn enc(&self, out: &mut Vec<u8>) {
        match self {
            BoardResp::Novel(v) => {
                out.push(0);
                v.enc(out);
            }
            BoardResp::Merged(n) => {
                out.push(1);
                n.enc(out);
            }
            BoardResp::SequenceLen(n) => {
                out.push(2);
                n.enc(out);
            }
            BoardResp::Sequence(v) => {
                out.push(3);
                v.enc(out);
            }
            BoardResp::Purged(n) => {
                out.push(4);
                n.enc(out);
            }
        }
    }
    fn dec(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(BoardResp::Novel(Vec::dec(r)?)),
            1 => Ok(BoardResp::Merged(usize::dec(r)?)),
            2 => Ok(BoardResp::SequenceLen(usize::dec(r)?)),
            3 => Ok(BoardResp::Sequence(Wire::dec(r)?)),
            4 => Ok(BoardResp::Purged(usize::dec(r)?)),
            t => Err(WireError::BadTag("board response", t)),
        }
    }
}

impl Wire for ClusterReq {
    fn enc(&self, out: &mut Vec<u8>) {
        match self {
            ClusterReq::Get(keys) => {
                out.push(0);
                keys.enc(out);
            }
            ClusterReq::GetExclusive(key) => {
                out.push(1);
                key.enc(out);
            }
            ClusterReq::NovelOf(keys) => {
                out.push(2);
                keys.enc(out);
            }
            ClusterReq::Record(entries) => {
                out.push(3);
                entries.enc(out);
            }
            ClusterReq::Forget(key) => {
                out.push(4);
                key.enc(out);
            }
        }
    }
    fn dec(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(ClusterReq::Get(Vec::dec(r)?)),
            1 => Ok(ClusterReq::GetExclusive(Wire::dec(r)?)),
            2 => Ok(ClusterReq::NovelOf(Vec::dec(r)?)),
            3 => Ok(ClusterReq::Record(Vec::dec(r)?)),
            4 => Ok(ClusterReq::Forget(Wire::dec(r)?)),
            t => Err(WireError::BadTag("cluster request", t)),
        }
    }
}

impl Wire for ClusterResp {
    fn enc(&self, out: &mut Vec<u8>) {
        match self {
            ClusterResp::Got(v) => {
                out.push(0);
                v.enc(out);
            }
            ClusterResp::GotOne(v) => {
                out.push(1);
                v.enc(out);
            }
            ClusterResp::Novel(v) => {
                out.push(2);
                v.enc(out);
            }
            ClusterResp::Recorded => out.push(3),
            ClusterResp::Forgotten => out.push(4),
        }
    }
    fn dec(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(ClusterResp::Got(Vec::dec(r)?)),
            1 => Ok(ClusterResp::GotOne(Wire::dec(r)?)),
            2 => Ok(ClusterResp::Novel(Vec::dec(r)?)),
            3 => Ok(ClusterResp::Recorded),
            4 => Ok(ClusterResp::Forgotten),
            t => Err(WireError::BadTag("cluster response", t)),
        }
    }
}

impl Wire for Req {
    fn enc(&self, out: &mut Vec<u8>) {
        match self {
            Req::Vm(q) => {
                out.push(0);
                q.enc(out);
            }
            Req::Pm(q) => {
                out.push(1);
                q.enc(out);
            }
            Req::Meta { shard, req } => {
                out.push(2);
                shard.enc(out);
                req.enc(out);
            }
            Req::Provider { node, req } => {
                out.push(3);
                node.enc(out);
                req.enc(out);
            }
            Req::Board(q) => {
                out.push(4);
                q.enc(out);
            }
            Req::Cluster(q) => {
                out.push(5);
                q.enc(out);
            }
        }
    }
    fn dec(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(Req::Vm(VmReq::dec(r)?)),
            1 => Ok(Req::Pm(PmReq::dec(r)?)),
            2 => Ok(Req::Meta {
                shard: u32::dec(r)?,
                req: MetaReq::dec(r)?,
            }),
            3 => Ok(Req::Provider {
                node: NodeId::dec(r)?,
                req: ProviderReq::dec(r)?,
            }),
            4 => Ok(Req::Board(BoardReq::dec(r)?)),
            5 => Ok(Req::Cluster(ClusterReq::dec(r)?)),
            t => Err(WireError::BadTag("request", t)),
        }
    }
}

impl Wire for Resp {
    fn enc(&self, out: &mut Vec<u8>) {
        match self {
            Resp::Vm(q) => {
                out.push(0);
                q.enc(out);
            }
            Resp::Pm(q) => {
                out.push(1);
                q.enc(out);
            }
            Resp::Meta(q) => {
                out.push(2);
                q.enc(out);
            }
            Resp::Provider(q) => {
                out.push(3);
                q.enc(out);
            }
            Resp::Board(q) => {
                out.push(4);
                q.enc(out);
            }
            Resp::Cluster(q) => {
                out.push(5);
                q.enc(out);
            }
        }
    }
    fn dec(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(Resp::Vm(VmResp::dec(r)?)),
            1 => Ok(Resp::Pm(PmResp::dec(r)?)),
            2 => Ok(Resp::Meta(MetaResp::dec(r)?)),
            3 => Ok(Resp::Provider(ProviderResp::dec(r)?)),
            4 => Ok(Resp::Board(BoardResp::dec(r)?)),
            5 => Ok(Resp::Cluster(ClusterResp::dec(r)?)),
            t => Err(WireError::BadTag("response", t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode, encode};

    #[test]
    fn requests_roundtrip_and_route() {
        let reqs = [
            (
                Req::Vm(VmReq::Publish {
                    blob: BlobId(1),
                    base: Version(2),
                    root: NodeKey(3),
                }),
                RouteKey::Vm,
            ),
            (
                Req::Pm(PmReq::Allocate {
                    n: 4,
                    chunk_bytes: 65536,
                    replication: 2,
                    down: vec![false, true, false],
                }),
                RouteKey::Pm,
            ),
            (
                Req::Meta {
                    shard: 3,
                    req: MetaReq::ReadNodes(vec![NodeKey(1), NodeKey(9)]),
                },
                RouteKey::Meta(3),
            ),
            (
                Req::Provider {
                    node: NodeId(2),
                    req: ProviderReq::Fetch(vec![ChunkId(5)]),
                },
                RouteKey::Provider(NodeId(2)),
            ),
            (
                Req::Board(BoardReq::SequenceLen((BlobId(1), Version(1)))),
                RouteKey::Board,
            ),
            (
                Req::Cluster(ClusterReq::Forget((
                    65536,
                    bff_data::ContentDigest::Weak(bff_data::Digest(7)),
                ))),
                RouteKey::Cluster,
            ),
        ];
        for (req, route) in reqs {
            assert_eq!(req.route(), route);
            assert_eq!(decode::<Req>(&encode(&req)).unwrap(), req);
        }
    }

    #[test]
    fn payload_bearing_responses_roundtrip() {
        let resp = Resp::Provider(ProviderResp::Fetched(vec![
            Some((Payload::synth(1, 0, 65536), true)),
            None,
            Some((Payload::from(&b"lit"[..]), false)),
        ]));
        assert_eq!(decode::<Resp>(&encode(&resp)).unwrap(), resp);
    }

    #[test]
    fn garbage_frames_error_not_panic() {
        for tag in 6u8..=255 {
            assert!(decode::<Req>(&[tag]).is_err());
            assert!(decode::<Resp>(&[tag]).is_err());
        }
        assert_eq!(decode::<Req>(&[]).unwrap_err(), WireError::Truncated);
    }
}
