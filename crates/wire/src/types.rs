//! The service's wire-visible identifiers, metadata nodes and errors.
//!
//! These types used to live in `bff_blobseer::api`; they moved here when
//! the service grew a real message boundary, because both the client
//! crate and the wire protocol need them. `bff_blobseer::api` re-exports
//! everything, so downstream code is unaffected.
//!
//! Every type here implements [`Wire`]; the encodings are listed in the
//! crate docs' wire-format sketch.

use crate::codec::{dec_static, enc_static, put_varint, Reader, Wire, WireError};
use bff_data::{ContentDigest, Digest, Payload, SegView, Sha256Digest};
use bff_net::{NetError, NodeId};
use std::fmt;
use std::sync::Arc;

/// Identifier of a BLOB (one VM image lineage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlobId(pub u64);

/// Snapshot version of a BLOB. `Version(0)` is the empty blob created by
/// `create_blob`; every successful write publishes the next version.
/// Versions form a totally ordered sequence per blob (§4.2: "consecutive
/// COMMIT calls ... generate a totally ordered set of snapshots").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Version(pub u64);

/// Identifier of a stored chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChunkId(pub u64);

/// Identifier of a metadata tree node. `NodeKey::NULL` denotes an entirely
/// unwritten (all-zero) subtree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeKey(pub u64);

impl NodeKey {
    /// The null key: an absent subtree (reads as zeros).
    pub const NULL: NodeKey = NodeKey(0);

    /// Whether this key is the null subtree.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for BlobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blob{}", self.0)
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Where a chunk's replicas live.
///
/// Replica sets are shared (`Arc`) rather than owned: a descriptor is
/// cloned many times per commit (tree leaf, metadata shard, descriptor
/// caches), and sharing the set makes each clone a refcount bump instead
/// of a heap allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkDesc {
    /// The stored chunk.
    pub id: ChunkId,
    /// Provider nodes holding a replica, in allocation order.
    pub replicas: Arc<[NodeId]>,
}

/// A metadata segment-tree node (Fig. 3 of the paper).
///
/// Geometry is implicit: the root covers chunk indices `0..span` and each
/// inner node splits its range in half, so nodes store only child links.
/// Children may belong to trees of *other* snapshots or other blobs —
/// that is exactly the sharing that shadowing and cloning exploit.
#[derive(Debug, Clone, PartialEq)]
pub enum TreeNode {
    /// Interior node with two children (either may be NULL).
    Inner {
        /// Left child: first half of the covered chunk range.
        left: NodeKey,
        /// Right child: second half.
        right: NodeKey,
    },
    /// Leaf covering exactly one chunk.
    Leaf {
        /// The chunk written at this index.
        chunk: ChunkDesc,
    },
}

/// Errors returned by the storage service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlobError {
    /// Unknown blob.
    NoSuchBlob(BlobId),
    /// Unknown version for a known blob.
    NoSuchVersion(BlobId, Version),
    /// Optimistic-concurrency conflict: the base version was no longer
    /// the latest when publishing.
    Conflict {
        /// Blob being written.
        blob: BlobId,
        /// The version the writer based its update on.
        base: Version,
        /// The latest version at publish time.
        latest: Version,
    },
    /// Access beyond the blob size.
    OutOfBounds {
        /// Requested range start.
        offset: u64,
        /// Requested length.
        len: u64,
        /// Blob size.
        size: u64,
    },
    /// A chunk could not be served by any replica.
    ChunkUnavailable(ChunkId),
    /// Metadata inconsistency (missing tree node) — indicates a bug or a
    /// failed metadata server.
    MetadataMissing(NodeKey),
    /// Transport-level failure.
    Net(NetError),
    /// Invalid argument.
    BadInput(&'static str),
}

impl From<NetError> for BlobError {
    fn from(e: NetError) -> Self {
        BlobError::Net(e)
    }
}

impl From<WireError> for BlobError {
    fn from(e: WireError) -> Self {
        BlobError::Net(NetError::Wire(e))
    }
}

impl fmt::Display for BlobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlobError::NoSuchBlob(b) => write!(f, "{b} does not exist"),
            BlobError::NoSuchVersion(b, v) => write!(f, "{b} has no snapshot {v}"),
            BlobError::Conflict { blob, base, latest } => {
                write!(
                    f,
                    "write to {blob} based on {base} conflicts with latest {latest}"
                )
            }
            BlobError::OutOfBounds { offset, len, size } => {
                write!(f, "access {offset}+{len} beyond blob size {size}")
            }
            BlobError::ChunkUnavailable(c) => write!(f, "chunk {c:?} unavailable on all replicas"),
            BlobError::MetadataMissing(k) => write!(f, "metadata node {k:?} missing"),
            BlobError::Net(e) => write!(f, "network: {e}"),
            BlobError::BadInput(m) => write!(f, "bad input: {m}"),
        }
    }
}

impl std::error::Error for BlobError {}

/// Result alias for service operations.
pub type BlobResult<T> = Result<T, BlobError>;

// ---------------------------------------------------------------------
// Wire encodings.
// ---------------------------------------------------------------------

macro_rules! wire_newtype_u64 {
    ($($ty:ident),*) => {$(
        impl Wire for $ty {
            fn enc(&self, out: &mut Vec<u8>) {
                put_varint(out, self.0);
            }
            fn dec(r: &mut Reader<'_>) -> Result<Self, WireError> {
                Ok($ty(r.varint()?))
            }
        }
    )*};
}

wire_newtype_u64!(BlobId, Version, ChunkId, NodeKey, Digest);

impl Wire for NodeId {
    fn enc(&self, out: &mut Vec<u8>) {
        put_varint(out, u64::from(self.0));
    }
    fn dec(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(NodeId(u32::dec(r)?))
    }
}

impl Wire for Sha256Digest {
    fn enc(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0);
    }
    fn dec(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut d = [0u8; 32];
        d.copy_from_slice(r.take(32)?);
        Ok(Sha256Digest(d))
    }
}

impl Wire for ContentDigest {
    fn enc(&self, out: &mut Vec<u8>) {
        match self {
            ContentDigest::Weak(d) => {
                out.push(0);
                d.enc(out);
            }
            ContentDigest::Strong(d) => {
                out.push(1);
                d.enc(out);
            }
        }
    }
    fn dec(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(ContentDigest::Weak(Digest::dec(r)?)),
            1 => Ok(ContentDigest::Strong(Sha256Digest::dec(r)?)),
            t => Err(WireError::BadTag("content digest", t)),
        }
    }
}

impl Wire for ChunkDesc {
    fn enc(&self, out: &mut Vec<u8>) {
        self.id.enc(out);
        put_varint(out, self.replicas.len() as u64);
        for n in self.replicas.iter() {
            n.enc(out);
        }
    }
    fn dec(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let id = ChunkId::dec(r)?;
        let replicas: Vec<NodeId> = Vec::dec(r)?;
        Ok(ChunkDesc {
            id,
            replicas: replicas.into(),
        })
    }
}

impl Wire for TreeNode {
    fn enc(&self, out: &mut Vec<u8>) {
        match self {
            TreeNode::Inner { left, right } => {
                out.push(0);
                left.enc(out);
                right.enc(out);
            }
            TreeNode::Leaf { chunk } => {
                out.push(1);
                chunk.enc(out);
            }
        }
    }
    fn dec(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(TreeNode::Inner {
                left: NodeKey::dec(r)?,
                right: NodeKey::dec(r)?,
            }),
            1 => Ok(TreeNode::Leaf {
                chunk: ChunkDesc::dec(r)?,
            }),
            t => Err(WireError::BadTag("tree node", t)),
        }
    }
}

/// Payloads serialize their rope *structure*: a synthetic 2 GB extent
/// costs a dozen wire bytes, literal segments travel verbatim. The
/// receiving side rebuilds an equivalent rope; all content operations
/// (digest, equality, materialize) are representation-independent, so
/// the round trip preserves content exactly.
impl Wire for Payload {
    fn enc(&self, out: &mut Vec<u8>) {
        put_varint(out, self.segment_count() as u64);
        for seg in self.segments() {
            match seg {
                SegView::Bytes(b) => {
                    out.push(0);
                    put_varint(out, b.len() as u64);
                    out.extend_from_slice(b);
                }
                SegView::Synth { seed, start, len } => {
                    out.push(1);
                    put_varint(out, seed);
                    put_varint(out, start);
                    put_varint(out, len);
                }
                SegView::Zero { len } => {
                    out.push(2);
                    put_varint(out, len);
                }
            }
        }
    }
    fn dec(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = usize::dec(r)?;
        if n > r.remaining() {
            return Err(WireError::Truncated);
        }
        let mut p = Payload::empty();
        for _ in 0..n {
            match r.byte()? {
                0 => {
                    let len = usize::dec(r)?;
                    p.append(Payload::from_bytes(bytes::Bytes::copy_from_slice(
                        r.take(len)?,
                    )));
                }
                1 => {
                    let (seed, start, len) = (r.varint()?, r.varint()?, r.varint()?);
                    p.append(Payload::synth(seed, start, len));
                }
                2 => p.append(Payload::zeros(r.varint()?)),
                t => return Err(WireError::BadTag("payload segment", t)),
            }
        }
        Ok(p)
    }
}

/// Every `&'static str` a [`WireError::BadTag`] may carry. Slot 0 is the
/// unknown-string placeholder (see [`enc_static`]).
const BAD_TAG_CONTEXTS: &[&str] = &[
    "?",
    "bool",
    "option",
    "result",
    "interned string",
    "content digest",
    "tree node",
    "payload segment",
    "net error",
    "wire error",
    "io error kind",
    "blob error",
    "vm request",
    "vm response",
    "pm request",
    "pm response",
    "meta request",
    "meta response",
    "provider request",
    "provider response",
    "board request",
    "board response",
    "cluster request",
    "cluster response",
    "request",
    "response",
    "chunk record",
    "ref record",
    "journal record",
];

/// Every `&'static str` a [`BlobError::BadInput`] may carry. Slot 0 is
/// the unknown-string placeholder.
const BAD_INPUT_MESSAGES: &[&str] = &[
    "?",
    "empty write",
    "empty update set",
    "update is not a full chunk",
    "no providers registered",
    "replication must be in 1..=providers",
    "cannot delete Version(0)",
    "duplicate version in delete set",
    "chunk_size must be positive",
    "corrupt mirror metadata",
];

/// `std::io::ErrorKind` values with a stable wire tag; anything else
/// maps to `Other`.
const IO_KINDS: &[std::io::ErrorKind] = &[
    std::io::ErrorKind::Other,
    std::io::ErrorKind::UnexpectedEof,
    std::io::ErrorKind::ConnectionRefused,
    std::io::ErrorKind::ConnectionReset,
    std::io::ErrorKind::ConnectionAborted,
    std::io::ErrorKind::NotConnected,
    std::io::ErrorKind::AddrInUse,
    std::io::ErrorKind::BrokenPipe,
    std::io::ErrorKind::WouldBlock,
    std::io::ErrorKind::TimedOut,
    std::io::ErrorKind::Interrupted,
];

impl Wire for WireError {
    fn enc(&self, out: &mut Vec<u8>) {
        match self {
            WireError::Truncated => out.push(0),
            WireError::BadTag(what, tag) => {
                out.push(1);
                enc_static(what, BAD_TAG_CONTEXTS, out);
                out.push(*tag);
            }
            WireError::BadFrame => out.push(2),
            WireError::Closed => out.push(3),
            WireError::Io(kind) => {
                out.push(4);
                let idx = IO_KINDS.iter().position(|k| k == kind).unwrap_or(0);
                out.push(idx as u8);
            }
        }
    }
    fn dec(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(WireError::Truncated),
            1 => Ok(WireError::BadTag(
                dec_static(r, BAD_TAG_CONTEXTS)?,
                r.byte()?,
            )),
            2 => Ok(WireError::BadFrame),
            3 => Ok(WireError::Closed),
            4 => {
                let idx = r.byte()? as usize;
                let kind = IO_KINDS
                    .get(idx)
                    .copied()
                    .ok_or(WireError::BadTag("io error kind", idx as u8))?;
                Ok(WireError::Io(kind))
            }
            t => Err(WireError::BadTag("wire error", t)),
        }
    }
}

impl Wire for NetError {
    fn enc(&self, out: &mut Vec<u8>) {
        match self {
            NetError::NodeDown(n) => {
                out.push(0);
                n.enc(out);
            }
            NetError::Cancelled => out.push(1),
            NetError::Wire(e) => {
                out.push(2);
                e.enc(out);
            }
        }
    }
    fn dec(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(NetError::NodeDown(NodeId::dec(r)?)),
            1 => Ok(NetError::Cancelled),
            2 => Ok(NetError::Wire(WireError::dec(r)?)),
            t => Err(WireError::BadTag("net error", t)),
        }
    }
}

impl Wire for BlobError {
    fn enc(&self, out: &mut Vec<u8>) {
        match self {
            BlobError::NoSuchBlob(b) => {
                out.push(0);
                b.enc(out);
            }
            BlobError::NoSuchVersion(b, v) => {
                out.push(1);
                b.enc(out);
                v.enc(out);
            }
            BlobError::Conflict { blob, base, latest } => {
                out.push(2);
                blob.enc(out);
                base.enc(out);
                latest.enc(out);
            }
            BlobError::OutOfBounds { offset, len, size } => {
                out.push(3);
                put_varint(out, *offset);
                put_varint(out, *len);
                put_varint(out, *size);
            }
            BlobError::ChunkUnavailable(c) => {
                out.push(4);
                c.enc(out);
            }
            BlobError::MetadataMissing(k) => {
                out.push(5);
                k.enc(out);
            }
            BlobError::Net(e) => {
                out.push(6);
                e.enc(out);
            }
            BlobError::BadInput(m) => {
                out.push(7);
                enc_static(m, BAD_INPUT_MESSAGES, out);
            }
        }
    }
    fn dec(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(BlobError::NoSuchBlob(BlobId::dec(r)?)),
            1 => Ok(BlobError::NoSuchVersion(BlobId::dec(r)?, Version::dec(r)?)),
            2 => Ok(BlobError::Conflict {
                blob: BlobId::dec(r)?,
                base: Version::dec(r)?,
                latest: Version::dec(r)?,
            }),
            3 => Ok(BlobError::OutOfBounds {
                offset: r.varint()?,
                len: r.varint()?,
                size: r.varint()?,
            }),
            4 => Ok(BlobError::ChunkUnavailable(ChunkId::dec(r)?)),
            5 => Ok(BlobError::MetadataMissing(NodeKey::dec(r)?)),
            6 => Ok(BlobError::Net(NetError::dec(r)?)),
            7 => Ok(BlobError::BadInput(dec_static(r, BAD_INPUT_MESSAGES)?)),
            t => Err(WireError::BadTag("blob error", t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode, encode};

    #[test]
    fn null_key_identity() {
        assert!(NodeKey::NULL.is_null());
        assert!(!NodeKey(1).is_null());
    }

    #[test]
    fn errors_display() {
        let e = BlobError::Conflict {
            blob: BlobId(1),
            base: Version(2),
            latest: Version(3),
        };
        assert!(e.to_string().contains("conflicts"));
    }

    #[test]
    fn core_types_roundtrip() {
        let desc = ChunkDesc {
            id: ChunkId(42),
            replicas: vec![NodeId(1), NodeId(7)].into(),
        };
        assert_eq!(decode::<ChunkDesc>(&encode(&desc)).unwrap(), desc);

        for node in [
            TreeNode::Inner {
                left: NodeKey(3),
                right: NodeKey::NULL,
            },
            TreeNode::Leaf {
                chunk: desc.clone(),
            },
        ] {
            assert_eq!(decode::<TreeNode>(&encode(&node)).unwrap(), node);
        }
    }

    #[test]
    fn payload_structure_stays_compact() {
        // A 2 GB synthetic extent costs O(1) wire bytes.
        let p = Payload::synth(0xFAB, 0, 2 << 30);
        let frame = encode(&p);
        assert!(frame.len() < 32, "synthetic extent stayed structural");
        let q = decode::<Payload>(&frame).unwrap();
        assert_eq!(q.len(), p.len());
        assert!(q.content_eq(&p));

        // Mixed rope with literal bytes round-trips content exactly.
        let mixed = Payload::from(&b"literal"[..])
            .concat(Payload::zeros(10))
            .concat(Payload::synth(5, 3, 100));
        let back = decode::<Payload>(&encode(&mixed)).unwrap();
        assert!(back.content_eq(&mixed));
    }

    #[test]
    fn errors_roundtrip() {
        let errors = [
            BlobError::NoSuchBlob(BlobId(9)),
            BlobError::NoSuchVersion(BlobId(1), Version(4)),
            BlobError::Conflict {
                blob: BlobId(1),
                base: Version(2),
                latest: Version(3),
            },
            BlobError::OutOfBounds {
                offset: 10,
                len: 20,
                size: 15,
            },
            BlobError::ChunkUnavailable(ChunkId(7)),
            BlobError::MetadataMissing(NodeKey(8)),
            BlobError::Net(NetError::NodeDown(NodeId(3))),
            BlobError::Net(NetError::Wire(WireError::Closed)),
            BlobError::Net(NetError::Wire(WireError::Io(
                std::io::ErrorKind::BrokenPipe,
            ))),
            BlobError::BadInput("empty write"),
        ];
        for e in errors {
            assert_eq!(decode::<BlobError>(&encode(&e)).unwrap(), e);
        }
    }
}
