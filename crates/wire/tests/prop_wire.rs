//! Property tests for the wire protocol: `decode(encode(m)) == m` for
//! every message type, and decoding never panics on hostile input —
//! truncated frames, random garbage and bit-flipped valid frames all
//! come back as `WireError`s.
//!
//! The generators pick enum variants uniformly, so across the case
//! budget every variant of every request/response enum (including the
//! nested error types and the interned-string tables) round-trips many
//! times. A deterministic one-of-each sweep rides along so a tag
//! renumbering is caught even at case budget 1.

use bff_data::{ContentDigest, ContentKey, Digest, Payload, Sha256Digest};
use bff_net::{NetError, NodeId};
use bff_wire::codec::{decode, encode, Wire};
use bff_wire::msg::{
    BoardReq, BoardResp, ClusterReq, ClusterResp, DeleteOutcome, MetaReq, MetaResp, PmReq, PmResp,
    ProviderReq, ProviderResp, Req, Resp, VersionInfo, VmReq, VmResp,
};
use bff_wire::types::{
    BlobError, BlobId, BlobResult, ChunkDesc, ChunkId, NodeKey, TreeNode, Version,
};
use bff_wire::WireError;
use proptest::prelude::*;
use proptest::strategy::TestRng;

/// Adapter: any `fn(&mut TestRng) -> T` is a strategy.
struct Gen<T>(fn(&mut TestRng) -> T);

impl<T> Strategy for Gen<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// u64 with varied magnitude (varint edge coverage: 1-byte through
/// 10-byte encodings).
fn arb_u64(rng: &mut TestRng) -> u64 {
    rng.bits() >> (rng.below(64) as u32)
}

fn arb_usize(rng: &mut TestRng) -> usize {
    (arb_u64(rng) & 0xFFFF) as usize
}

fn arb_node(rng: &mut TestRng) -> NodeId {
    NodeId(rng.below(1 << 20) as u32)
}

fn arb_vec<T>(rng: &mut TestRng, max: u64, f: fn(&mut TestRng) -> T) -> Vec<T> {
    (0..rng.below(max)).map(|_| f(rng)).collect()
}

fn arb_digest(rng: &mut TestRng) -> ContentDigest {
    if rng.below(2) == 0 {
        ContentDigest::Weak(Digest(rng.bits()))
    } else {
        let mut d = [0u8; 32];
        for b in &mut d {
            *b = rng.bits() as u8;
        }
        ContentDigest::Strong(Sha256Digest(d))
    }
}

fn arb_content_key(rng: &mut TestRng) -> ContentKey {
    (arb_u64(rng), arb_digest(rng))
}

fn arb_desc(rng: &mut TestRng) -> ChunkDesc {
    ChunkDesc {
        id: ChunkId(arb_u64(rng)),
        replicas: arb_vec(rng, 4, arb_node).into(),
    }
}

fn arb_tree_node(rng: &mut TestRng) -> TreeNode {
    if rng.below(2) == 0 {
        TreeNode::Inner {
            left: NodeKey(arb_u64(rng)),
            right: NodeKey(arb_u64(rng)),
        }
    } else {
        TreeNode::Leaf {
            chunk: arb_desc(rng),
        }
    }
}

/// Ropes mixing literal, synthetic and zero segments (the three
/// structural encodings), content-bounded so equality stays cheap.
fn arb_payload(rng: &mut TestRng) -> Payload {
    let mut p = Payload::empty();
    for _ in 0..rng.below(4) {
        match rng.below(3) {
            0 => {
                let bytes: Vec<u8> = (0..rng.below(48)).map(|_| rng.bits() as u8).collect();
                p.append(Payload::from(bytes));
            }
            1 => p.append(Payload::synth(rng.bits(), arb_u64(rng), rng.below(1 << 16))),
            _ => p.append(Payload::zeros(rng.below(1 << 16))),
        }
    }
    p
}

/// Interned `&'static str`s a `BlobError::BadInput` may carry (a subset
/// of the crate's table — round-trip is the identity for all of them).
const BAD_INPUTS: &[&str] = &[
    "empty write",
    "empty update set",
    "no providers registered",
    "cannot delete Version(0)",
];

/// Interned tag-context strings (subset of the crate's table).
const TAG_CONTEXTS: &[&str] = &["bool", "option", "tree node", "request"];

fn arb_wire_error(rng: &mut TestRng) -> WireError {
    match rng.below(5) {
        0 => WireError::Truncated,
        1 => WireError::BadTag(
            TAG_CONTEXTS[rng.below(TAG_CONTEXTS.len() as u64) as usize],
            rng.bits() as u8,
        ),
        2 => WireError::BadFrame,
        3 => WireError::Closed,
        _ => WireError::Io(
            [
                std::io::ErrorKind::Other,
                std::io::ErrorKind::UnexpectedEof,
                std::io::ErrorKind::BrokenPipe,
                std::io::ErrorKind::TimedOut,
            ][rng.below(4) as usize],
        ),
    }
}

fn arb_blob_error(rng: &mut TestRng) -> BlobError {
    match rng.below(8) {
        0 => BlobError::NoSuchBlob(BlobId(arb_u64(rng))),
        1 => BlobError::NoSuchVersion(BlobId(arb_u64(rng)), Version(arb_u64(rng))),
        2 => BlobError::Conflict {
            blob: BlobId(arb_u64(rng)),
            base: Version(arb_u64(rng)),
            latest: Version(arb_u64(rng)),
        },
        3 => BlobError::OutOfBounds {
            offset: arb_u64(rng),
            len: arb_u64(rng),
            size: arb_u64(rng),
        },
        4 => BlobError::ChunkUnavailable(ChunkId(arb_u64(rng))),
        5 => BlobError::MetadataMissing(NodeKey(arb_u64(rng))),
        6 => BlobError::Net(match rng.below(3) {
            0 => NetError::NodeDown(arb_node(rng)),
            1 => NetError::Cancelled,
            _ => NetError::Wire(arb_wire_error(rng)),
        }),
        _ => BlobError::BadInput(BAD_INPUTS[rng.below(BAD_INPUTS.len() as u64) as usize]),
    }
}

fn arb_result<T>(rng: &mut TestRng, ok: fn(&mut TestRng) -> T) -> BlobResult<T> {
    if rng.below(4) == 0 {
        Err(arb_blob_error(rng))
    } else {
        Ok(ok(rng))
    }
}

fn arb_board_key(rng: &mut TestRng) -> (BlobId, Version) {
    (BlobId(arb_u64(rng)), Version(arb_u64(rng)))
}

fn arb_vm_req(rng: &mut TestRng) -> VmReq {
    match rng.below(9) {
        0 => VmReq::CreateBlob {
            size: arb_u64(rng),
            chunk_size: arb_u64(rng),
        },
        1 => VmReq::CloneBlob {
            src: BlobId(arb_u64(rng)),
            version: Version(arb_u64(rng)),
        },
        2 => VmReq::Latest(BlobId(arb_u64(rng))),
        3 => VmReq::Size(BlobId(arb_u64(rng))),
        4 => VmReq::LiveSnapshots(BlobId(arb_u64(rng))),
        5 => VmReq::VersionMeta(BlobId(arb_u64(rng)), Version(arb_u64(rng))),
        6 => VmReq::Publish {
            blob: BlobId(arb_u64(rng)),
            base: Version(arb_u64(rng)),
            root: NodeKey(arb_u64(rng)),
        },
        7 => VmReq::DeleteSnapshots {
            blob: BlobId(arb_u64(rng)),
            versions: arb_vec(rng, 6, |r| Version(arb_u64(r))),
        },
        _ => VmReq::ReserveKeys(arb_u64(rng)),
    }
}

fn arb_vm_resp(rng: &mut TestRng) -> VmResp {
    match rng.below(9) {
        0 => VmResp::Created(arb_result(rng, |r| BlobId(arb_u64(r)))),
        1 => VmResp::Cloned(arb_result(rng, |r| BlobId(arb_u64(r)))),
        2 => VmResp::Latest(arb_result(rng, |r| Version(arb_u64(r)))),
        3 => VmResp::Size(arb_result(rng, arb_u64)),
        4 => VmResp::LiveSnapshots(arb_result(rng, |r| arb_vec(r, 6, |q| Version(arb_u64(q))))),
        5 => VmResp::VersionMeta(arb_result(rng, |r| VersionInfo {
            root: NodeKey(arb_u64(r)),
            size: arb_u64(r),
            chunk_size: arb_u64(r),
            span: arb_u64(r),
        })),
        6 => VmResp::Published(arb_result(rng, |r| Version(arb_u64(r)))),
        7 => VmResp::Deleted(arb_result(rng, |r| DeleteOutcome {
            dead_roots: arb_vec(r, 6, |q| NodeKey(arb_u64(q))),
            live_roots: arb_vec(r, 6, |q| NodeKey(arb_u64(q))),
            span: arb_u64(r),
        })),
        _ => {
            let start = arb_u64(rng);
            VmResp::Reserved(start..start.saturating_add(rng.below(1 << 10)))
        }
    }
}

fn arb_pm_req(rng: &mut TestRng) -> PmReq {
    PmReq::Allocate {
        n: arb_usize(rng),
        chunk_bytes: arb_u64(rng),
        replication: arb_usize(rng),
        down: arb_vec(rng, 8, |r| r.below(2) == 0),
    }
}

fn arb_pm_resp(rng: &mut TestRng) -> PmResp {
    PmResp::Allocated(arb_result(rng, |r| arb_vec(r, 6, arb_desc)))
}

fn arb_meta_req(rng: &mut TestRng) -> MetaReq {
    if rng.below(2) == 0 {
        MetaReq::ReadNodes(arb_vec(rng, 8, |r| NodeKey(arb_u64(r))))
    } else {
        MetaReq::WriteNodes(arb_vec(rng, 8, |r| (NodeKey(arb_u64(r)), arb_tree_node(r))))
    }
}

fn arb_meta_resp(rng: &mut TestRng) -> MetaResp {
    if rng.below(2) == 0 {
        MetaResp::Nodes(arb_result(rng, |r| arb_vec(r, 8, arb_tree_node)))
    } else {
        MetaResp::Written
    }
}

fn arb_provider_req(rng: &mut TestRng) -> ProviderReq {
    match rng.below(6) {
        0 => ProviderReq::Put(arb_vec(rng, 4, |r| (ChunkId(arb_u64(r)), arb_payload(r)))),
        1 => ProviderReq::Fetch(arb_vec(rng, 8, |r| ChunkId(arb_u64(r)))),
        2 => ProviderReq::Peek(ChunkId(arb_u64(rng))),
        3 => ProviderReq::Retain(ChunkId(arb_u64(rng))),
        4 => ProviderReq::Release(ChunkId(arb_u64(rng))),
        _ => ProviderReq::ReleaseCounted(ChunkId(arb_u64(rng)), arb_u64(rng)),
    }
}

fn arb_provider_resp(rng: &mut TestRng) -> ProviderResp {
    match rng.below(6) {
        0 => ProviderResp::Put(rng.below(2) == 0),
        1 => ProviderResp::Fetched(arb_vec(rng, 4, |r| {
            if r.below(3) == 0 {
                None
            } else {
                Some((arb_payload(r), r.below(2) == 0))
            }
        })),
        2 => ProviderResp::Peeked(if rng.below(3) == 0 {
            None
        } else {
            Some(arb_payload(rng))
        }),
        3 => ProviderResp::Retained(rng.below(2) == 0),
        4 => ProviderResp::Released(rng.below(2) == 0),
        _ => ProviderResp::ReleaseCounted((arb_u64(rng), rng.below(2) == 0, rng.below(2) == 0)),
    }
}

fn arb_board_req(rng: &mut TestRng) -> BoardReq {
    match rng.below(5) {
        0 => BoardReq::NovelOf {
            key: arb_board_key(rng),
            batch: arb_vec(rng, 8, arb_u64),
            min_publishers: arb_usize(rng),
        },
        1 => BoardReq::Merge {
            key: arb_board_key(rng),
            publisher: arb_node(rng),
            batch: arb_vec(rng, 8, arb_u64),
        },
        2 => BoardReq::SequenceLen(arb_board_key(rng)),
        3 => BoardReq::Sequence {
            key: arb_board_key(rng),
            min_publishers: arb_usize(rng),
        },
        _ => BoardReq::Purge {
            keys: arb_vec(rng, 6, arb_board_key),
            freed: arb_vec(rng, 6, |r| ChunkId(arb_u64(r))),
        },
    }
}

fn arb_board_resp(rng: &mut TestRng) -> BoardResp {
    match rng.below(5) {
        0 => BoardResp::Novel(arb_vec(rng, 8, arb_u64)),
        1 => BoardResp::Merged(arb_usize(rng)),
        2 => BoardResp::SequenceLen(arb_usize(rng)),
        3 => BoardResp::Sequence(if rng.below(3) == 0 {
            None
        } else {
            let seq = arb_vec(rng, 8, arb_u64);
            let conf = if rng.below(2) == 0 {
                None
            } else {
                let n = seq.len();
                Some((0..n).map(|_| rng.below(2) == 0).collect())
            };
            Some((seq, conf))
        }),
        _ => BoardResp::Purged(arb_usize(rng)),
    }
}

fn arb_cluster_req(rng: &mut TestRng) -> ClusterReq {
    match rng.below(5) {
        0 => ClusterReq::Get(arb_vec(rng, 6, arb_content_key)),
        1 => ClusterReq::GetExclusive(arb_content_key(rng)),
        2 => ClusterReq::NovelOf(arb_vec(rng, 6, arb_content_key)),
        3 => ClusterReq::Record(arb_vec(rng, 6, |r| (arb_content_key(r), arb_desc(r)))),
        _ => ClusterReq::Forget(arb_content_key(rng)),
    }
}

fn arb_cluster_resp(rng: &mut TestRng) -> ClusterResp {
    match rng.below(5) {
        0 => ClusterResp::Got(arb_vec(rng, 6, |r| {
            if r.below(3) == 0 {
                None
            } else {
                Some(arb_desc(r))
            }
        })),
        1 => ClusterResp::GotOne(if rng.below(3) == 0 {
            None
        } else {
            Some(arb_desc(rng))
        }),
        2 => ClusterResp::Novel(arb_vec(rng, 6, arb_content_key)),
        3 => ClusterResp::Recorded,
        _ => ClusterResp::Forgotten,
    }
}

fn arb_req(rng: &mut TestRng) -> Req {
    match rng.below(6) {
        0 => Req::Vm(arb_vm_req(rng)),
        1 => Req::Pm(arb_pm_req(rng)),
        2 => Req::Meta {
            shard: rng.below(1 << 16) as u32,
            req: arb_meta_req(rng),
        },
        3 => Req::Provider {
            node: arb_node(rng),
            req: arb_provider_req(rng),
        },
        4 => Req::Board(arb_board_req(rng)),
        _ => Req::Cluster(arb_cluster_req(rng)),
    }
}

fn arb_resp(rng: &mut TestRng) -> Resp {
    match rng.below(6) {
        0 => Resp::Vm(arb_vm_resp(rng)),
        1 => Resp::Pm(arb_pm_resp(rng)),
        2 => Resp::Meta(arb_meta_resp(rng)),
        3 => Resp::Provider(arb_provider_resp(rng)),
        4 => Resp::Board(arb_board_resp(rng)),
        _ => Resp::Cluster(arb_cluster_resp(rng)),
    }
}

fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
    let frame = encode(v);
    match decode::<T>(&frame) {
        Ok(back) => assert_eq!(&back, v, "decode(encode(m)) != m"),
        Err(e) => panic!("decode(encode({v:?})) failed: {e}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(384))]

    /// encode→decode is the identity for requests (all roles, all
    /// variants, including payload-bearing provider puts).
    #[test]
    fn requests_roundtrip(req in Gen(arb_req)) {
        roundtrip(&req);
    }

    /// encode→decode is the identity for responses, including every
    /// error variant a `BlobResult` can carry.
    #[test]
    fn responses_roundtrip(resp in Gen(arb_resp)) {
        roundtrip(&resp);
    }

    /// Wire-visible vocabulary types round-trip on their own.
    #[test]
    fn vocabulary_roundtrips(desc in Gen(arb_desc),
                             node in Gen(arb_tree_node),
                             key in Gen(arb_content_key),
                             payload in Gen(arb_payload),
                             err in Gen(arb_blob_error)) {
        roundtrip(&desc);
        roundtrip(&node);
        roundtrip(&key);
        roundtrip(&err);
        // Payload equality is content equality; structure may coalesce.
        let back = decode::<Payload>(&encode(&payload)).unwrap();
        prop_assert!(back.content_eq(&payload));
        prop_assert_eq!(back.len(), payload.len());
    }

    /// Any strict prefix of a valid frame decodes to a `WireError`
    /// (never panics, never half-succeeds): the codec demands exact
    /// consumption, so truncation is always detected.
    #[test]
    fn truncated_frames_are_errors(req in Gen(arb_req), cut in Gen(arb_u64)) {
        let frame = encode(&req);
        let cut = (cut % frame.len() as u64) as usize;
        prop_assert!(decode::<Req>(&frame[..cut]).is_err());
    }

    /// Random garbage never panics the decoder — every outcome is a
    /// clean `Result`.
    #[test]
    fn garbage_frames_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = decode::<Req>(&bytes);
        let _ = decode::<Resp>(&bytes);
        let _ = decode::<BlobError>(&bytes);
        let _ = decode::<Payload>(&bytes);
    }

    /// A single flipped byte in a valid frame either still decodes (the
    /// flip hit a don't-care bit of a varint) or errors — never panics.
    #[test]
    fn bitflipped_frames_never_panic(req in Gen(arb_req), pos in Gen(arb_u64), bit in 0u64..8) {
        let mut frame = encode(&req);
        let pos = (pos % frame.len() as u64) as usize;
        frame[pos] ^= 1 << bit;
        let _ = decode::<Req>(&frame);
    }
}

/// One literal value per enum variant, so a wire-tag renumbering fails
/// deterministically even with the case budget at 1.
#[test]
fn every_variant_roundtrips_once() {
    let desc = ChunkDesc {
        id: ChunkId(7),
        replicas: vec![NodeId(1), NodeId(2)].into(),
    };
    let key: ContentKey = (9, ContentDigest::Weak(Digest(0xABCD)));
    let reqs: Vec<Req> = vec![
        Req::Vm(VmReq::CreateBlob {
            size: 1,
            chunk_size: 2,
        }),
        Req::Vm(VmReq::CloneBlob {
            src: BlobId(1),
            version: Version(2),
        }),
        Req::Vm(VmReq::Latest(BlobId(3))),
        Req::Vm(VmReq::Size(BlobId(4))),
        Req::Vm(VmReq::LiveSnapshots(BlobId(5))),
        Req::Vm(VmReq::VersionMeta(BlobId(6), Version(1))),
        Req::Vm(VmReq::Publish {
            blob: BlobId(7),
            base: Version(0),
            root: NodeKey(3),
        }),
        Req::Vm(VmReq::DeleteSnapshots {
            blob: BlobId(8),
            versions: vec![Version(1)],
        }),
        Req::Vm(VmReq::ReserveKeys(16)),
        Req::Pm(PmReq::Allocate {
            n: 3,
            chunk_bytes: 64,
            replication: 2,
            down: vec![false, true],
        }),
        Req::Meta {
            shard: 1,
            req: MetaReq::ReadNodes(vec![NodeKey(1)]),
        },
        Req::Meta {
            shard: 2,
            req: MetaReq::WriteNodes(vec![(
                NodeKey(2),
                TreeNode::Inner {
                    left: NodeKey(3),
                    right: NodeKey::NULL,
                },
            )]),
        },
        Req::Provider {
            node: NodeId(1),
            req: ProviderReq::Put(vec![(ChunkId(1), Payload::synth(1, 0, 100))]),
        },
        Req::Provider {
            node: NodeId(2),
            req: ProviderReq::Fetch(vec![ChunkId(2)]),
        },
        Req::Provider {
            node: NodeId(3),
            req: ProviderReq::Peek(ChunkId(3)),
        },
        Req::Provider {
            node: NodeId(4),
            req: ProviderReq::Retain(ChunkId(4)),
        },
        Req::Provider {
            node: NodeId(5),
            req: ProviderReq::Release(ChunkId(5)),
        },
        Req::Provider {
            node: NodeId(6),
            req: ProviderReq::ReleaseCounted(ChunkId(6), 2),
        },
        Req::Board(BoardReq::NovelOf {
            key: (BlobId(1), Version(1)),
            batch: vec![1, 2],
            min_publishers: 2,
        }),
        Req::Board(BoardReq::Merge {
            key: (BlobId(2), Version(2)),
            publisher: NodeId(3),
            batch: vec![3],
        }),
        Req::Board(BoardReq::SequenceLen((BlobId(3), Version(3)))),
        Req::Board(BoardReq::Sequence {
            key: (BlobId(4), Version(4)),
            min_publishers: 1,
        }),
        Req::Board(BoardReq::Purge {
            keys: vec![(BlobId(5), Version(5))],
            freed: vec![ChunkId(9)],
        }),
        Req::Cluster(ClusterReq::Get(vec![key])),
        Req::Cluster(ClusterReq::GetExclusive(key)),
        Req::Cluster(ClusterReq::NovelOf(vec![key])),
        Req::Cluster(ClusterReq::Record(vec![(key, desc.clone())])),
        Req::Cluster(ClusterReq::Forget(key)),
    ];
    for req in &reqs {
        roundtrip(req);
    }

    let info = VersionInfo {
        root: NodeKey(1),
        size: 2,
        chunk_size: 3,
        span: 4,
    };
    let outcome = DeleteOutcome {
        dead_roots: vec![NodeKey(1)],
        live_roots: vec![NodeKey(2)],
        span: 8,
    };
    let resps: Vec<Resp> = vec![
        Resp::Vm(VmResp::Created(Ok(BlobId(1)))),
        Resp::Vm(VmResp::Cloned(Err(BlobError::NoSuchBlob(BlobId(2))))),
        Resp::Vm(VmResp::Latest(Ok(Version(3)))),
        Resp::Vm(VmResp::Size(Ok(64))),
        Resp::Vm(VmResp::LiveSnapshots(Ok(vec![Version(1), Version(2)]))),
        Resp::Vm(VmResp::VersionMeta(Ok(info))),
        Resp::Vm(VmResp::Published(Err(BlobError::Conflict {
            blob: BlobId(1),
            base: Version(1),
            latest: Version(2),
        }))),
        Resp::Vm(VmResp::Deleted(Ok(outcome))),
        Resp::Vm(VmResp::Reserved(10..20)),
        Resp::Pm(PmResp::Allocated(Ok(vec![desc.clone()]))),
        Resp::Meta(MetaResp::Nodes(Ok(vec![TreeNode::Leaf {
            chunk: desc.clone(),
        }]))),
        Resp::Meta(MetaResp::Written),
        Resp::Provider(ProviderResp::Put(true)),
        Resp::Provider(ProviderResp::Fetched(vec![
            Some((Payload::zeros(10), true)),
            None,
        ])),
        Resp::Provider(ProviderResp::Peeked(Some(Payload::synth(2, 1, 50)))),
        Resp::Provider(ProviderResp::Retained(false)),
        Resp::Provider(ProviderResp::Released(true)),
        Resp::Provider(ProviderResp::ReleaseCounted((100, true, false))),
        Resp::Board(BoardResp::Novel(vec![1])),
        Resp::Board(BoardResp::Merged(2)),
        Resp::Board(BoardResp::SequenceLen(3)),
        Resp::Board(BoardResp::Sequence(Some((
            vec![1, 2],
            Some(vec![true, false]),
        )))),
        Resp::Board(BoardResp::Purged(4)),
        Resp::Cluster(ClusterResp::Got(vec![Some(desc.clone()), None])),
        Resp::Cluster(ClusterResp::GotOne(None)),
        Resp::Cluster(ClusterResp::Novel(vec![key])),
        Resp::Cluster(ClusterResp::Recorded),
        Resp::Cluster(ClusterResp::Forgotten),
    ];
    for resp in &resps {
        roundtrip(resp);
    }
}
