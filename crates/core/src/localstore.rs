//! Local mirror backing stores.
//!
//! The mirroring module keeps a sparse local copy of the image on the
//! compute node's disk (§3.1.2). Two interchangeable stores implement
//! that role:
//!
//! * [`MemStore`] — an extent map of [`Payload`]s. Used by the simulator
//!   (where payloads are synthetic descriptors and a 2 GB mirror costs a
//!   few entries) and by in-memory tests (where payloads are literal
//!   bytes).
//! * [`FileStore`] — a real sparse file on the host filesystem, for
//!   examples and integration tests that exercise actual I/O.
//!
//! Reads of never-written regions return zeros, matching the semantics of
//! the initially-empty sparse mirror file the FUSE module creates on first
//! open (§4.2).

use bff_data::extent::ExtentPiece;
use bff_data::{ByteRange, ExtentMap, Payload};
use std::fs::{File, OpenOptions};
use std::io;
use std::path::Path;

/// Abstract local mirror storage.
pub trait LocalStore: Send {
    /// Image length in bytes (fixed at creation).
    fn len(&self) -> u64;

    /// Whether the store is zero-length.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read `range`; unwritten bytes are zeros.
    fn read(&self, range: &ByteRange) -> Payload;

    /// Write `data` at `offset`.
    fn write(&mut self, offset: u64, data: &Payload);
}

/// In-memory extent-map store.
#[derive(Debug, Default)]
pub struct MemStore {
    len: u64,
    extents: ExtentMap<Payload>,
}

impl MemStore {
    /// An empty (all-zero) store of `len` bytes.
    pub fn new(len: u64) -> Self {
        Self {
            len,
            extents: ExtentMap::new(),
        }
    }

    /// Number of stored extents (diagnostic).
    pub fn extent_count(&self) -> usize {
        self.extents.extent_count()
    }
}

impl LocalStore for MemStore {
    fn len(&self) -> u64 {
        self.len
    }

    fn read(&self, range: &ByteRange) -> Payload {
        assert!(range.end <= self.len, "read beyond store");
        let mut out = Payload::empty();
        for piece in self.extents.read(range) {
            match piece {
                ExtentPiece::Data(_, p) => out.append(p),
                ExtentPiece::Gap(g) => out.append(Payload::zeros(g.end - g.start)),
            }
        }
        out
    }

    fn write(&mut self, offset: u64, data: &Payload) {
        assert!(offset + data.len() <= self.len, "write beyond store");
        if data.is_empty() {
            return;
        }
        self.extents
            .insert(offset..offset + data.len(), data.clone());
    }
}

/// A real file used as the local mirror.
#[derive(Debug)]
pub struct FileStore {
    file: File,
    len: u64,
}

impl FileStore {
    /// Create (or truncate) a sparse file of `len` bytes at `path`.
    pub fn create(path: &Path, len: u64) -> io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.set_len(len)?;
        Ok(Self { file, len })
    }

    /// Open an existing mirror file (its size defines the image length).
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        Ok(Self { file, len })
    }
}

impl LocalStore for FileStore {
    fn len(&self) -> u64 {
        self.len
    }

    fn read(&self, range: &ByteRange) -> Payload {
        use std::os::unix::fs::FileExt;
        assert!(range.end <= self.len, "read beyond store");
        let mut buf = vec![0u8; (range.end - range.start) as usize];
        self.file
            .read_exact_at(&mut buf, range.start)
            .expect("mirror file read failed");
        Payload::from(buf)
    }

    fn write(&mut self, offset: u64, data: &Payload) {
        use std::os::unix::fs::FileExt;
        assert!(offset + data.len() <= self.len, "write beyond store");
        if data.is_empty() {
            return;
        }
        let bytes = data.materialize();
        self.file
            .write_all_at(&bytes, offset)
            .expect("mirror file write failed");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &mut dyn LocalStore) {
        assert_eq!(store.len(), 1000);
        // Unwritten regions are zeros.
        assert!(store.read(&(0..100)).content_eq(&Payload::zeros(100)));
        // Write/read-back.
        store.write(50, &Payload::from(vec![7u8; 30]));
        let got = store.read(&(40..90));
        let mut expect = vec![0u8; 50];
        expect[10..40].fill(7);
        assert_eq!(got.materialize(), expect);
        // Overwrite part of it.
        store.write(60, &Payload::from(vec![9u8; 10]));
        let got = store.read(&(50..80)).materialize();
        assert_eq!(&got[..10], &[7u8; 10]);
        assert_eq!(&got[10..20], &[9u8; 10]);
        assert_eq!(&got[20..30], &[7u8; 10]);
        // Tail write up to the boundary.
        store.write(990, &Payload::from(vec![1u8; 10]));
        assert_eq!(store.read(&(995..1000)).materialize(), vec![1u8; 5]);
    }

    #[test]
    fn mem_store_semantics() {
        let mut s = MemStore::new(1000);
        exercise(&mut s);
    }

    #[test]
    fn file_store_semantics() {
        let dir = std::env::temp_dir().join(format!("bff-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mirror.img");
        let mut s = FileStore::create(&path, 1000).unwrap();
        exercise(&mut s);
        drop(s);
        // Reopen preserves contents.
        let s = FileStore::open(&path).unwrap();
        assert_eq!(s.len(), 1000);
        assert_eq!(s.read(&(60..70)).materialize(), vec![9u8; 10]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mem_store_synthetic_payloads_stay_compact() {
        let mut s = MemStore::new(1 << 30);
        // A gigabyte of synthetic content costs one extent.
        s.write(0, &Payload::synth(1, 0, 1 << 30));
        assert_eq!(s.extent_count(), 1);
        let got = s.read(&(12345..12400));
        assert!(got.content_eq(&Payload::synth(1, 12345, 55)));
    }

    #[test]
    #[should_panic(expected = "beyond store")]
    fn write_out_of_bounds_panics() {
        let mut s = MemStore::new(10);
        s.write(5, &Payload::zeros(10));
    }
}
