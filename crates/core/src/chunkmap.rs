//! The local-modification manager's bookkeeping: which parts of the image
//! are available locally, which are dirty, and what must be fetched before
//! a read or write can proceed (§3.3, §4.2).
//!
//! Two access strategies from the paper are implemented here as planning
//! functions (the mirror executes the plans):
//!
//! * **Strategy 1 — minimal chunk cover prefetch**: a read touching any
//!   region not fully available locally fetches the *whole* chunks
//!   covering the region, trading a little extra traffic for far fewer
//!   small remote reads and better correlated-read performance.
//! * **Strategy 2 — one contiguous region per chunk**: a write landing on
//!   a chunk that already has local content fetches whatever gap lies
//!   between, so that per chunk only the limits of a single contiguous
//!   region ever need tracking. This bounds fragmentation overhead by the
//!   number of chunks.
//!
//! Both strategies are toggleable (the ablation benches measure their
//! effect); with both enabled the per-chunk single-run invariant holds and
//! is property-tested.

use bff_data::{chunk_cover, chunk_range, intersect, ByteRange, RangeSet};

/// Bookkeeping for one mirrored image.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkMap {
    image_len: u64,
    chunk_size: u64,
    /// Bytes available locally (mirrored or written).
    local: RangeSet,
    /// Bytes considered modified since the last COMMIT.
    dirty: RangeSet,
}

impl ChunkMap {
    /// Empty map for an image of `image_len` bytes in `chunk_size` chunks.
    pub fn new(image_len: u64, chunk_size: u64) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        Self {
            image_len,
            chunk_size,
            local: RangeSet::new(),
            dirty: RangeSet::new(),
        }
    }

    /// Image length in bytes.
    pub fn image_len(&self) -> u64 {
        self.image_len
    }

    /// Chunk size in bytes.
    pub fn chunk_size(&self) -> u64 {
        self.chunk_size
    }

    /// Bytes available locally.
    pub fn local_bytes(&self) -> u64 {
        self.local.covered()
    }

    /// Bytes dirty since last commit.
    pub fn dirty_bytes(&self) -> u64 {
        self.dirty.covered()
    }

    /// Whether `range` is fully serviceable from local content.
    pub fn is_local(&self, range: &ByteRange) -> bool {
        self.local.contains_range(range)
    }

    /// Whether chunk `idx` is completely mirrored.
    pub fn is_chunk_local(&self, idx: u64) -> bool {
        self.local
            .contains_range(&chunk_range(idx, self.chunk_size, self.image_len))
    }

    /// Number of maximal runs tracked (the fragmentation-overhead metric
    /// that strategy 2 bounds).
    pub fn fragmentation(&self) -> usize {
        self.local.run_count() + self.dirty.run_count()
    }

    /// Plan the remote fetches needed before serving a read of `range`.
    ///
    /// With `whole_chunks` (strategy 1) the plan is the minimal set of
    /// not-fully-local chunks covering the region, coalesced into
    /// contiguous runs; without it, the plan is exactly the missing byte
    /// ranges.
    pub fn plan_read(&self, range: &ByteRange, whole_chunks: bool) -> Vec<ByteRange> {
        assert!(range.end <= self.image_len, "read beyond image");
        if range.start >= range.end || self.local.contains_range(range) {
            return Vec::new();
        }
        if !whole_chunks {
            return self.local.gaps_within(range);
        }
        let mut plan: Vec<ByteRange> = Vec::new();
        for idx in chunk_cover(range, self.chunk_size) {
            let cr = chunk_range(idx, self.chunk_size, self.image_len);
            if self.local.contains_range(&cr) {
                continue;
            }
            match plan.last_mut() {
                Some(last) if last.end == cr.start => last.end = cr.end,
                _ => plan.push(cr),
            }
        }
        plan
    }

    /// The sub-ranges of `range` NOT yet local (used to merge fetched data
    /// without clobbering local writes: local content always wins).
    pub fn local_gaps_within(&self, range: &ByteRange) -> Vec<ByteRange> {
        self.local.gaps_within(range)
    }

    /// Record that `range` was fetched from the repository and mirrored.
    pub fn note_fetched(&mut self, range: ByteRange) {
        assert!(range.end <= self.image_len, "fetch beyond image");
        self.local.insert(range);
    }

    /// Plan the gap-fill fetches required before a write of `range`
    /// (strategy 2): per touched chunk, the bytes between the existing
    /// local region and the incoming write that are neither local nor
    /// about to be overwritten.
    pub fn plan_write_gaps(&self, range: &ByteRange) -> Vec<ByteRange> {
        assert!(range.end <= self.image_len, "write beyond image");
        let mut gaps = Vec::new();
        if range.start >= range.end {
            return gaps;
        }
        for idx in chunk_cover(range, self.chunk_size) {
            let cr = chunk_range(idx, self.chunk_size, self.image_len);
            let w = intersect(&cr, range);
            // Hull of existing local content in this chunk and the write.
            let runs: Vec<ByteRange> = self.local.runs_within(&cr).collect();
            let Some(first) = runs.first() else { continue };
            let last = runs.last().expect("non-empty");
            let hull = first.start.min(w.start)..last.end.max(w.end);
            for g in self.local.gaps_within(&hull) {
                let g = ByteRange {
                    start: g.start,
                    end: g.end,
                };
                // Exclude what the write itself will cover.
                if g.end <= w.start || g.start >= w.end {
                    gaps.push(g);
                } else {
                    if g.start < w.start {
                        gaps.push(g.start..w.start);
                    }
                    if g.end > w.end {
                        gaps.push(w.end..g.end);
                    }
                }
            }
        }
        gaps
    }

    /// Record a local write of `range`. With `gap_fill` (strategy 2) the
    /// dirty region of each touched chunk is extended to the contiguous
    /// hull of its previous dirty region and the new write; without it the
    /// exact range is tracked (fragmentation then grows unboundedly, which
    /// is what the ablation measures).
    pub fn note_written(&mut self, range: ByteRange, gap_fill: bool) {
        assert!(range.end <= self.image_len, "write beyond image");
        if range.start >= range.end {
            return;
        }
        if !gap_fill {
            self.local.insert(range.clone());
            self.dirty.insert(range);
            return;
        }
        for idx in chunk_cover(&range, self.chunk_size) {
            let cr = chunk_range(idx, self.chunk_size, self.image_len);
            let w = intersect(&cr, &range);
            // Local hull: gap-fill fetches must already have been noted
            // (the mirror executes plan_write_gaps first), so inserting
            // the write keeps the chunk's local region contiguous.
            self.local.insert(w.clone());
            // Dirty hull within the chunk.
            let hull = match self.dirty.runs_within(&cr).next() {
                Some(first) => {
                    let last_end = self
                        .dirty
                        .runs_within(&cr)
                        .last()
                        .map(|r| r.end)
                        .expect("non-empty");
                    first.start.min(w.start)..last_end.max(w.end)
                }
                None => w.clone(),
            };
            self.dirty.insert(hull);
        }
    }

    /// Indices of chunks with dirty content (what COMMIT must publish).
    pub fn dirty_chunks(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for run in self.dirty.iter() {
            for idx in chunk_cover(&run, self.chunk_size) {
                if out.last() != Some(&idx) {
                    out.push(idx);
                }
            }
        }
        out
    }

    /// Forget dirty state after a successful COMMIT (content stays local).
    pub fn clear_dirty(&mut self) {
        self.dirty.clear();
    }

    /// Verify the strategy-2 invariant: per chunk, at most one contiguous
    /// local run and one contiguous dirty run. Used by tests and debug
    /// assertions; only meaningful when both strategies are enabled.
    pub fn check_single_region_invariant(&self) -> Result<(), String> {
        for idx in 0..self.image_len.div_ceil(self.chunk_size) {
            let cr = chunk_range(idx, self.chunk_size, self.image_len);
            let locals = self.local.runs_within(&cr).count();
            if locals > 1 {
                return Err(format!("chunk {idx}: {locals} local runs"));
            }
            let dirties = self.dirty.runs_within(&cr).count();
            if dirties > 1 {
                return Err(format!("chunk {idx}: {dirties} dirty runs"));
            }
        }
        Ok(())
    }

    /// Serialize to a compact byte format (the extra metadata the local
    /// modification manager writes next to the mirror file on close,
    /// §4.2).
    pub fn serialize(&self) -> Vec<u8> {
        let mut out =
            Vec::with_capacity(40 + 16 * (self.local.run_count() + self.dirty.run_count()));
        out.extend(b"BFFM");
        out.extend(1u32.to_le_bytes()); // format version
        out.extend(self.image_len.to_le_bytes());
        out.extend(self.chunk_size.to_le_bytes());
        for set in [&self.local, &self.dirty] {
            out.extend((set.run_count() as u64).to_le_bytes());
            for r in set.iter() {
                out.extend(r.start.to_le_bytes());
                out.extend(r.end.to_le_bytes());
            }
        }
        out
    }

    /// Restore from [`Self::serialize`] output.
    pub fn deserialize(data: &[u8]) -> Result<Self, String> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], String> {
            let s = data
                .get(*pos..*pos + n)
                .ok_or("truncated chunk-map metadata")?;
            *pos += n;
            Ok(s)
        };
        let u64_at = |pos: &mut usize| -> Result<u64, String> {
            let b = take(pos, 8)?;
            Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
        };
        if take(&mut pos, 4)? != b"BFFM" {
            return Err("bad magic".into());
        }
        let ver = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes"));
        if ver != 1 {
            return Err(format!("unsupported chunk-map format {ver}"));
        }
        let image_len = u64_at(&mut pos)?;
        let chunk_size = u64_at(&mut pos)?;
        if chunk_size == 0 {
            return Err("zero chunk size".into());
        }
        let mut sets = Vec::with_capacity(2);
        for _ in 0..2 {
            let n = u64_at(&mut pos)?;
            let mut set = RangeSet::new();
            for _ in 0..n {
                let s = u64_at(&mut pos)?;
                let e = u64_at(&mut pos)?;
                if s >= e || e > image_len {
                    return Err("corrupt run".into());
                }
                set.insert(s..e);
            }
            sets.push(set);
        }
        let dirty = sets.pop().expect("two sets");
        let local = sets.pop().expect("two sets");
        Ok(Self {
            image_len,
            chunk_size,
            local,
            dirty,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> ChunkMap {
        ChunkMap::new(1000, 100)
    }

    #[test]
    fn fresh_map_plans_whole_chunk_fetches() {
        let m = map();
        // Read 150..250 spans chunks 1 and 2 -> fetch 100..300 in one run.
        assert_eq!(m.plan_read(&(150..250), true), vec![100..300]);
        // Exact mode fetches only the requested range.
        assert_eq!(m.plan_read(&(150..250), false), vec![150..250]);
    }

    #[test]
    fn fully_local_read_plans_nothing() {
        let mut m = map();
        m.note_fetched(100..300);
        assert!(m.plan_read(&(150..250), true).is_empty());
        assert!(m.plan_read(&(100..300), true).is_empty());
    }

    #[test]
    fn partially_local_chunk_is_refetched_whole() {
        let mut m = map();
        // A write made 120..140 local; a read of 110..130 still fetches
        // the whole chunk (local data will win at merge time).
        m.note_written(120..140, true);
        assert_eq!(m.plan_read(&(110..130), true), vec![100..200]);
        // Gaps-within lets the mirror merge without clobbering the write.
        assert_eq!(m.local_gaps_within(&(100..200)), vec![100..120, 140..200]);
    }

    #[test]
    fn plan_skips_interior_local_chunks() {
        let mut m = map();
        m.note_fetched(200..300); // chunk 2 fully local
        let plan = m.plan_read(&(150..450), true);
        assert_eq!(plan, vec![100..200, 300..500]);
    }

    #[test]
    fn write_gap_fill_plan() {
        let mut m = map();
        // First write in chunk 0.
        assert!(m.plan_write_gaps(&(10..20)).is_empty());
        m.note_written(10..20, true);
        // Second write in the same chunk, gap 20..50 must be filled.
        assert_eq!(m.plan_write_gaps(&(50..60)), vec![20..50]);
        // A write before the existing region fills the gap after it.
        assert_eq!(m.plan_write_gaps(&(0..5)), vec![5..10]);
        // Overlapping/adjacent writes need no fill.
        assert!(m.plan_write_gaps(&(15..30)).is_empty());
        assert!(m.plan_write_gaps(&(20..30)).is_empty());
    }

    #[test]
    fn gap_fill_keeps_single_region_per_chunk() {
        let mut m = map();
        m.note_written(10..20, true);
        // Mirror executes the plan, then notes the write.
        for g in m.plan_write_gaps(&(50..60)) {
            m.note_fetched(g);
        }
        m.note_written(50..60, true);
        m.check_single_region_invariant().unwrap();
        assert!(m.is_local(&(10..60)));
        // Dirty is the hull.
        assert_eq!(m.dirty_bytes(), 50);
        assert_eq!(m.fragmentation(), 2, "one local + one dirty run");
    }

    #[test]
    fn without_gap_fill_fragmentation_grows() {
        let mut m = map();
        m.note_written(10..12, false);
        m.note_written(20..22, false);
        m.note_written(30..32, false);
        assert_eq!(m.fragmentation(), 6);
        assert!(m.check_single_region_invariant().is_err());
    }

    #[test]
    fn write_spanning_chunks_tracks_per_chunk_hulls() {
        let mut m = map();
        m.note_written(80..250, true);
        m.check_single_region_invariant().unwrap();
        assert_eq!(m.dirty_chunks(), vec![0, 1, 2]);
        // Chunk-local dirtiness: chunk 0 dirty only at 80..100.
        assert!(m.is_local(&(80..250)));
        assert!(!m.is_local(&(79..80)));
    }

    #[test]
    fn dirty_chunks_deduplicated_and_sorted() {
        let mut m = map();
        m.note_written(50..60, true);
        m.note_written(850..950, true);
        m.note_written(150..160, true);
        assert_eq!(m.dirty_chunks(), vec![0, 1, 8, 9]);
        m.clear_dirty();
        assert!(m.dirty_chunks().is_empty());
        // Local content survives a commit.
        assert!(m.is_local(&(50..60)));
    }

    #[test]
    fn serialization_roundtrip() {
        let mut m = map();
        m.note_fetched(0..100);
        m.note_written(250..300, true);
        m.note_written(920..1000, true);
        let bytes = m.serialize();
        let back = ChunkMap::deserialize(&bytes).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn deserialize_rejects_garbage() {
        assert!(ChunkMap::deserialize(b"nope").is_err());
        assert!(ChunkMap::deserialize(b"BFFMxxxxxxxxxxxxxxxx").is_err());
        let mut ok = map();
        ok.note_fetched(0..10);
        let mut bytes = ok.serialize();
        let n = bytes.len();
        bytes.truncate(n - 3);
        assert!(ChunkMap::deserialize(&bytes).is_err());
    }

    #[test]
    fn tail_chunk_clamped() {
        let m = ChunkMap::new(950, 100);
        assert_eq!(m.plan_read(&(920..950), true), vec![900..950]);
    }
}
