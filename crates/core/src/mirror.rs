//! The mirroring module: on-demand VM image mirroring with transparent
//! snapshotting (§3.1.2, §3.3, §4.2) — the paper's core contribution.
//!
//! A [`MirroredImage`] presents a raw image to the hypervisor. Reads that
//! touch regions not yet available locally trigger remote fetches from the
//! versioning repository (whole minimal chunk covers, strategy 1); writes
//! always go to the local mirror, gap-filling so each chunk keeps a single
//! contiguous local region (strategy 2). `CLONE` rebinds the image to a
//! fresh first-class blob sharing all content with its origin; `COMMIT`
//! publishes exactly the dirty chunks as a new standalone snapshot.
//!
//! Cost model hooks: every remote fetch moves through the repository
//! client (network + provider disks), every local mirror write is charged
//! as an mmap-style write-back disk write, and every operation pays the
//! configured FUSE crossing overhead — the knobs behind Figs. 6 and 7.

use crate::chunkmap::ChunkMap;
use crate::localstore::LocalStore;
use bff_blobseer::{BlobId, BlobResult, Client, Version};
use bff_data::{ByteRange, Payload};
use bff_net::{Fabric, NodeId};
use std::sync::Arc;

/// Mirroring behaviour knobs.
#[derive(Debug, Clone, Copy)]
pub struct MirrorConfig {
    /// Strategy 1: fetch the full minimal chunk cover on read misses.
    pub prefetch_whole_chunks: bool,
    /// Strategy 2: keep one contiguous local region per chunk by
    /// gap-filling before scattered writes.
    pub gap_fill: bool,
    /// FUSE user/kernel crossing cost charged on writes and on reads
    /// that miss locally, us. Locally cached reads do *not* pay it: the
    /// kernel VFS cache serves them without a userspace crossing (§4.1:
    /// "FUSE takes advantage of the kernel-level virtual file system,
    /// which benefits of the cache management implemented in the
    /// kernel"). This is why Fig. 6 shows equal read throughput.
    pub fuse_op_overhead_us: u64,
    /// Syscall cost of a locally served read, us.
    pub read_syscall_us: u64,
    /// Page-cache copy bandwidth for locally served reads, bytes/us
    /// (0 disables the charge).
    pub read_bw: f64,
    /// Charge local mirror writes as write-back (mmap) instead of
    /// write-through. The paper's module mmaps the mirror file (§4.2).
    pub writeback: bool,
}

impl Default for MirrorConfig {
    fn default() -> Self {
        Self {
            prefetch_whole_chunks: true,
            gap_fill: true,
            fuse_op_overhead_us: 12,
            read_syscall_us: 4,
            read_bw: 550.0,
            writeback: true,
        }
    }
}

/// Counters exposed for experiments and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MirrorStats {
    /// Bytes fetched from the repository (includes prefetch overshoot):
    /// the sum of planned run lengths, independent of how the transport
    /// batches them.
    pub remote_bytes: u64,
    /// Remote fetch *runs* served: one per contiguous planned range, the
    /// paper-level accounting unit. The vectored pipeline may satisfy
    /// many runs with a single descent and batched provider transfers;
    /// this counter is deliberately transport-independent so stats are
    /// byte-identical between the per-run and batched paths.
    pub remote_fetches: u64,
    /// Bytes fetched purely to fill write gaps (strategy 2).
    pub gap_fill_bytes: u64,
    /// Read operations served.
    pub reads: u64,
    /// Write operations served.
    pub writes: u64,
    /// Bytes committed across all COMMITs (full dirty chunks).
    pub committed_bytes: u64,
    /// Of `committed_bytes`, bytes the repository published *by
    /// reference* through content-addressed dedup instead of pushing
    /// (0 when [`bff_blobseer::BlobConfig::dedup`] is off). Reported
    /// per commit by the repository client, so the attribution is exact
    /// per image even with co-located VMs committing concurrently.
    pub deduped_bytes: u64,
}

/// A VM image mirrored on a compute node.
///
/// Not `Sync`: an image belongs to the single hypervisor thread of its VM,
/// exactly as a FUSE-mounted file belongs to its opener. Share across
/// threads at the [`crate::vfs::VirtualFs`] layer if needed.
pub struct MirroredImage {
    client: Client,
    blob: BlobId,
    /// The repository snapshot this mirror is based on; COMMIT advances it.
    base: Version,
    node: NodeId,
    fabric: Arc<dyn Fabric>,
    store: Box<dyn LocalStore>,
    map: ChunkMap,
    cfg: MirrorConfig,
    stats: MirrorStats,
}

impl MirroredImage {
    /// Open `(blob, version)` for mirroring into `store`. The store must
    /// be empty or carry state saved by [`Self::close`] for this image.
    pub fn open(
        client: Client,
        blob: BlobId,
        version: Version,
        store: Box<dyn LocalStore>,
        cfg: MirrorConfig,
    ) -> BlobResult<Self> {
        let size = client.blob_size(blob)?;
        assert_eq!(store.len(), size, "local store must match image size");
        let chunk_size = client.store().config().chunk_size;
        let node = client.node();
        let fabric = Arc::clone(client.store().fabric());
        Ok(Self {
            client,
            blob,
            base: version,
            node,
            fabric,
            store,
            map: ChunkMap::new(size, chunk_size),
            cfg,
            stats: MirrorStats::default(),
        })
    }

    /// Reopen a previously closed mirror from its saved modification
    /// metadata (§4.2: reopening restores the local modification state).
    pub fn reopen(
        client: Client,
        store: Box<dyn LocalStore>,
        cfg: MirrorConfig,
        saved: &SavedMirror,
    ) -> BlobResult<Self> {
        let map = ChunkMap::deserialize(&saved.chunk_map)
            .map_err(|_| bff_blobseer::BlobError::BadInput("corrupt mirror metadata"))?;
        assert_eq!(store.len(), map.image_len(), "store/metadata size mismatch");
        let node = client.node();
        let fabric = Arc::clone(client.store().fabric());
        Ok(Self {
            client,
            blob: saved.blob,
            base: saved.base,
            node,
            fabric,
            store,
            map,
            cfg,
            stats: MirrorStats::default(),
        })
    }

    /// Image size in bytes.
    pub fn len(&self) -> u64 {
        self.map.image_len()
    }

    /// Whether the image is zero-length.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The blob currently backing this image (changes after CLONE).
    pub fn blob(&self) -> BlobId {
        self.blob
    }

    /// The repository snapshot the mirror is based on.
    pub fn base_version(&self) -> Version {
        self.base
    }

    /// Operation counters.
    pub fn stats(&self) -> MirrorStats {
        self.stats
    }

    /// Local-modification bookkeeping (tests / fragmentation metrics).
    pub fn chunk_map(&self) -> &ChunkMap {
        &self.map
    }

    fn charge_fuse_op(&self) {
        if self.cfg.fuse_op_overhead_us > 0 {
            self.fabric.compute(self.node, self.cfg.fuse_op_overhead_us);
        }
    }

    fn charge_local_write(&self, bytes: u64) -> BlobResult<()> {
        if self.cfg.writeback {
            self.fabric.disk_write_cached(self.node, bytes)?;
        } else {
            self.fabric.disk_write(self.node, bytes)?;
        }
        Ok(())
    }

    /// Fetch `plan` ranges from the repository and merge them into the
    /// local mirror. Local content wins: fetched data only fills the
    /// sub-ranges not yet present (they may hold newer local writes).
    ///
    /// The whole plan is handed to the repository's vectored
    /// [`Client::read_multi`] in one call: one segment-tree descent for
    /// all runs (instead of one per run), descriptor-cache hits for
    /// chunks this node already resolved, and per-provider batched chunk
    /// transfers. Accounting is unchanged: `remote_bytes` sums the run
    /// lengths and `remote_fetches` counts plan runs, exactly as the
    /// former per-run loop did.
    fn fetch_and_merge(
        &mut self,
        plan: Vec<ByteRange>,
        gap_fill_accounting: bool,
    ) -> BlobResult<()> {
        if plan.is_empty() {
            return Ok(());
        }
        let payloads = self.client.read_multi(self.blob, self.base, &plan)?;
        for (run, data) in plan.into_iter().zip(payloads) {
            let len = run.end - run.start;
            self.stats.remote_bytes += len;
            self.stats.remote_fetches += 1;
            if gap_fill_accounting {
                self.stats.gap_fill_bytes += len;
            }
            // Merge via zero-copy payload slices: only the gaps are
            // written, so newer local writes inside the run survive.
            for gap in self.map.local_gaps_within(&run) {
                let rel = gap.start - run.start..gap.end - run.start;
                self.store.write(gap.start, &data.slice(rel.start, rel.end));
            }
            // Mirroring writes the fetched content to the local disk.
            self.charge_local_write(len)?;
            self.map.note_fetched(run);
        }
        Ok(())
    }

    /// Read `range`, fetching missing content on demand (§3.1.2: reads on
    /// regions not available locally mirror the content first, then serve
    /// locally).
    pub fn read(&mut self, range: ByteRange) -> BlobResult<Payload> {
        assert!(range.end <= self.len(), "read beyond image");
        self.stats.reads += 1;
        let plan = self.map.plan_read(&range, self.cfg.prefetch_whole_chunks);
        if plan.is_empty() {
            // Locally cached: served by the kernel VFS cache.
            let mut cost = self.cfg.read_syscall_us;
            if self.cfg.read_bw > 0.0 {
                cost += ((range.end - range.start) as f64 / self.cfg.read_bw).ceil() as u64;
            }
            if cost > 0 {
                self.fabric.compute(self.node, cost);
            }
        } else {
            // Access hint for the prefetch plane: like the paper's FUSE
            // module, the per-node context only *observes* reads that
            // miss locally (cached reads never cross into userspace,
            // §4.1) — so exactly the planned fetch runs feed the
            // first-touch order published to the cluster PatternBoard.
            self.client.hint_access(self.blob, self.base, &plan);
            self.charge_fuse_op();
            self.fetch_and_merge(plan, false)?;
        }
        Ok(self.store.read(&range))
    }

    /// Vectored read: serve several ranges as one request, fetching all
    /// their missing content in a single batched repository plan. The
    /// per-range plans are deduplicated against each other (overlapping
    /// ranges fetch shared chunks once, exactly like sequential reads
    /// would), handed to [`Client::read_multi`] in one call, and each
    /// range is then served from the local mirror. Content and
    /// paper-accounting stats (`remote_bytes`, `remote_fetches`, `reads`)
    /// are identical to calling [`MirroredImage::read`] per range.
    pub fn read_multi(&mut self, ranges: &[ByteRange]) -> BlobResult<Vec<Payload>> {
        let mut plan: Vec<ByteRange> = Vec::new();
        let mut planned = bff_data::RangeSet::new();
        for range in ranges {
            assert!(range.end <= self.len(), "read beyond image");
            self.stats.reads += 1;
            let runs = self.map.plan_read(range, self.cfg.prefetch_whole_chunks);
            if runs.is_empty() {
                // Locally cached: served by the kernel VFS cache.
                let mut cost = self.cfg.read_syscall_us;
                if self.cfg.read_bw > 0.0 {
                    cost += ((range.end - range.start) as f64 / self.cfg.read_bw).ceil() as u64;
                }
                if cost > 0 {
                    self.fabric.compute(self.node, cost);
                }
            } else {
                self.charge_fuse_op();
                for run in runs {
                    // Later ranges may re-plan chunks an earlier range
                    // already covers; fetch each region once.
                    plan.extend(planned.gaps_within(&run));
                    planned.insert(run);
                }
            }
        }
        // Hint exactly the miss plan (see [`MirroredImage::read`]).
        self.client.hint_access(self.blob, self.base, &plan);
        self.fetch_and_merge(plan, false)?;
        Ok(ranges.iter().map(|r| self.store.read(r)).collect())
    }

    /// Write `data` at `offset`. Writes are always performed locally
    /// (§3.1.2); strategy 2 first fills any gap in the touched chunks.
    pub fn write(&mut self, offset: u64, data: Payload) -> BlobResult<()> {
        let range = offset..offset + data.len();
        assert!(range.end <= self.len(), "write beyond image");
        self.charge_fuse_op();
        self.stats.writes += 1;
        if data.is_empty() {
            return Ok(());
        }
        if self.cfg.gap_fill {
            let gaps = self.map.plan_write_gaps(&range);
            self.fetch_and_merge(gaps, true)?;
        }
        self.store.write(offset, &data);
        self.charge_local_write(data.len())?;
        self.map.note_written(range, self.cfg.gap_fill);
        if self.cfg.gap_fill && self.cfg.prefetch_whole_chunks {
            debug_assert!(self.map.check_single_region_invariant().is_ok());
        }
        Ok(())
    }

    /// Kick one *asynchronous* read-ahead step — the adaptive
    /// prefetching pipeline (§3.1.3: co-deployed VMs touch nearly
    /// identical chunk sequences, so the module pulls what the cohort's
    /// PatternBoard predicts while the guest computes). The hypervisor
    /// pokes this at every guest compute burst: if the board predicts
    /// unconsumed chunks and no step is already in flight, one bounded
    /// step ([`bff_blobseer::BlobConfig::prefetch_window`] chunks) is
    /// started as *background* work on the fabric — the guest's own
    /// timeline continues immediately, and on the simulator the
    /// prefetch transfers contend with (and hide behind) the guest's
    /// compute and demand I/O instead of extending them.
    ///
    /// Returns whether a step was started. `false` — starting nothing
    /// and charging nothing — when prefetching is off, no peer pattern
    /// exists, the pattern is fully consumed, or a step is still in
    /// flight; with `BFF_PREFETCH=0` the path is therefore
    /// bit-identical to the pre-prefetch model.
    pub fn poke_prefetch(&mut self) -> bool {
        if !self.client.has_prefetch_work(self.blob, self.base) {
            return false;
        }
        let ctx = Arc::clone(self.client.context());
        if !ctx.try_begin_prefetch() {
            return false; // a step is already in flight: budget of one
        }
        let client = self.client.clone();
        let (blob, base) = (self.blob, self.base);
        let window = client.store().config().prefetch_window;
        self.fabric.spawn_detached(Box::new(move || {
            // Best-effort: a failed step (managers unreachable) only
            // means this window stays on demand.
            let _ = client.prefetch_chunks(blob, base, window);
            ctx.end_prefetch();
        }));
        true
    }

    /// CLONE (ioctl): rebind this image to a new first-class blob that
    /// shares all content with the current base snapshot. Local state
    /// (mirrored content, dirty regions) carries over untouched. Returns
    /// the new blob id.
    pub fn clone_image(&mut self) -> BlobResult<BlobId> {
        let new_blob = self.client.clone_blob(self.blob, self.base)?;
        self.blob = new_blob;
        // The clone's Version(1) is the old base snapshot's tree.
        self.base = Version(1);
        Ok(new_blob)
    }

    /// COMMIT (ioctl): publish all local modifications as a new snapshot
    /// of the backing blob. Only dirty chunks are transferred (partially
    /// dirty edge chunks are completed from local/remote content first).
    /// Returns the published version; a commit with no local
    /// modifications is a no-op returning the current base.
    pub fn commit(&mut self) -> BlobResult<Version> {
        let dirty = self.map.dirty_chunks();
        if dirty.is_empty() {
            return Ok(self.base);
        }
        let chunk_size = self.map.chunk_size();
        let image_len = self.len();
        // Complete partially local dirty chunks: publishing works at chunk
        // granularity, so the clean remainder must be present locally.
        let mut fill = Vec::new();
        for &idx in &dirty {
            if !self.map.is_chunk_local(idx) {
                let cr = bff_data::chunk_range(idx, chunk_size, image_len);
                fill.extend(self.map.plan_read(&cr, true));
            }
        }
        self.fetch_and_merge(fill, true)?;

        let updates: Vec<(u64, Payload)> = dirty
            .iter()
            .map(|&idx| {
                let cr = bff_data::chunk_range(idx, chunk_size, image_len);
                (idx, self.store.read(&cr))
            })
            .collect();
        let committed: u64 = updates.iter().map(|(_, p)| p.len()).sum();
        // Dirty chunks whose content already has live replicas commit by
        // reference (§3.1.3 dedup); account the bytes that therefore
        // never left this node. The commit reports its own reuse — a
        // delta over the node-shared counters would fold in co-located
        // VMs committing concurrently.
        let (v, reused) = self
            .client
            .write_chunks_accounted(self.blob, self.base, updates)?;
        self.stats.deduped_bytes += reused;
        self.stats.committed_bytes += committed;
        self.base = v;
        self.map.clear_dirty();
        Ok(v)
    }

    /// Close the mirror, persisting the local-modification metadata next
    /// to the mirror file (§4.2). The local store itself is returned to
    /// the caller, who owns its lifecycle.
    pub fn close(self) -> (SavedMirror, Box<dyn LocalStore>) {
        let meta = SavedMirror {
            blob: self.blob,
            base: self.base,
            chunk_map: self.map.serialize(),
        };
        (meta, self.store)
    }
}

/// Mirror state persisted on close and consumed by
/// [`MirroredImage::reopen`].
#[derive(Debug, Clone, PartialEq)]
pub struct SavedMirror {
    /// Blob backing the mirror at close time.
    pub blob: BlobId,
    /// Base snapshot at close time.
    pub base: Version,
    /// Serialized [`ChunkMap`].
    pub chunk_map: Vec<u8>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::localstore::MemStore;
    use bff_blobseer::{BlobConfig, BlobStore, BlobTopology};
    use bff_net::LocalFabric;

    const CS: u64 = 128;
    const IMG: u64 = 1024;

    fn setup() -> (Client, BlobId, Payload) {
        let fabric = LocalFabric::new(5);
        let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
        let topo = BlobTopology::colocated(&nodes, NodeId(4));
        let cfg = BlobConfig {
            chunk_size: CS,
            ..Default::default()
        };
        let store = BlobStore::new(cfg, topo, fabric as Arc<dyn Fabric>);
        let client = Client::new(store, NodeId(0));
        let image = Payload::synth(42, 0, IMG);
        let (blob, _v) = client.upload(image.clone()).unwrap();
        (client, blob, image)
    }

    fn mirror(client: &Client, blob: BlobId) -> MirroredImage {
        MirroredImage::open(
            client.clone(),
            blob,
            Version(1),
            Box::new(MemStore::new(IMG)),
            MirrorConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn read_fetches_on_demand_and_serves_locally_after() {
        let (client, blob, image) = setup();
        let mut m = mirror(&client, blob);
        let got = m.read(10..50).unwrap();
        assert!(got.content_eq(&image.slice(10, 50)));
        // Strategy 1: the whole covering chunk was fetched.
        assert_eq!(m.stats().remote_bytes, CS);
        // A second read in the same chunk is a local hit.
        let before = m.stats().remote_fetches;
        let got = m.read(60..100).unwrap();
        assert!(got.content_eq(&image.slice(60, 100)));
        assert_eq!(m.stats().remote_fetches, before, "no new remote fetch");
    }

    #[test]
    fn reads_never_fetch_more_than_minimal_cover() {
        let (client, blob, _image) = setup();
        let mut m = mirror(&client, blob);
        m.read(130..140).unwrap(); // chunk 1 only
        assert_eq!(m.stats().remote_bytes, CS);
        m.read(0..IMG).unwrap(); // everything else
        assert_eq!(
            m.stats().remote_bytes,
            IMG,
            "each chunk fetched exactly once"
        );
    }

    #[test]
    fn writes_are_local_and_read_your_writes_holds() {
        let (client, blob, image) = setup();
        let mut m = mirror(&client, blob);
        let patch = Payload::from(vec![0xEEu8; 40]);
        m.write(200, patch.clone()).unwrap();
        assert_eq!(
            m.stats().remote_bytes,
            0,
            "writes fetch nothing by themselves"
        );
        // Read-your-writes within the written region.
        let got = m.read(200..240).unwrap();
        assert!(got.content_eq(&patch));
        // Reading around it merges remote content without clobbering.
        let got = m.read(128..256).unwrap();
        let expect = image.slice(128, 256).overwrite(200 - 128, patch);
        assert!(got.content_eq(&expect));
    }

    #[test]
    fn scattered_writes_gap_fill_remotely() {
        let (client, blob, image) = setup();
        let mut m = mirror(&client, blob);
        m.write(0, Payload::from(vec![1u8; 10])).unwrap();
        // Second write to the same chunk; gap 10..50 must be fetched.
        m.write(50, Payload::from(vec![2u8; 10])).unwrap();
        assert_eq!(m.stats().gap_fill_bytes, 40);
        // The gap holds pristine base content.
        let got = m.read(10..50).unwrap();
        assert!(got.content_eq(&image.slice(10, 50)));
        m.chunk_map().check_single_region_invariant().unwrap();
    }

    #[test]
    fn commit_publishes_only_dirty_chunks() {
        let (client, blob, image) = setup();
        let mut m = mirror(&client, blob);
        m.write(130, Payload::from(vec![5u8; 10])).unwrap(); // chunk 1
        m.write(900, Payload::from(vec![6u8; 10])).unwrap(); // chunk 7
        let stored_before = client.store().total_stored_bytes();
        let v2 = m.commit().unwrap();
        assert_eq!(v2, Version(2));
        // Exactly two chunks of new data in the repository.
        assert_eq!(client.store().total_stored_bytes() - stored_before, 2 * CS);
        // The new snapshot is a standalone image with the modifications.
        let fresh = client.read(blob, v2, 0..IMG).unwrap();
        let expect = image
            .overwrite(130, Payload::from(vec![5u8; 10]))
            .overwrite(900, Payload::from(vec![6u8; 10]));
        assert!(fresh.content_eq(&expect));
        // The base snapshot still reads pristine (shadowing).
        let old = client.read(blob, Version(1), 0..IMG).unwrap();
        assert!(old.content_eq(&image));
    }

    #[test]
    fn recommitted_identical_checkpoint_dedups() {
        // The Monte-Carlo checkpoint pattern: a VM rewrites the same
        // state bytes and snapshots again. With dedup on, the second
        // commit publishes by reference — no new provider storage.
        let fabric = LocalFabric::new(5);
        let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
        let topo = BlobTopology::colocated(&nodes, NodeId(4));
        let cfg = BlobConfig {
            chunk_size: CS,
            dedup: true,
            ..Default::default()
        };
        let store = BlobStore::new(cfg, topo, fabric as Arc<dyn Fabric>);
        let client = Client::new(store, NodeId(0));
        let (blob, _v) = client.upload(Payload::synth(42, 0, IMG)).unwrap();
        let mut m = mirror(&client, blob);

        // Distinct content per chunk so the first commit is all-unique.
        let state = Payload::synth(0xC4, 0, 2 * CS);
        m.write(256, state.clone()).unwrap();
        m.commit().unwrap();
        let stored = client.store().total_stored_bytes();
        assert_eq!(m.stats().deduped_bytes, 0, "first checkpoint is unique");

        // Same state written (and re-dirtied) again: commit-by-reference.
        m.write(256, state.clone()).unwrap();
        let v = m.commit().unwrap();
        assert_eq!(
            client.store().total_stored_bytes(),
            stored,
            "identical checkpoint re-commit must not grow storage"
        );
        assert_eq!(m.stats().deduped_bytes, 2 * CS);
        // The new snapshot still reads correctly.
        let got = client.read(blob, v, 256..256 + 2 * CS).unwrap();
        assert!(got.content_eq(&state));
    }

    #[test]
    fn commit_without_changes_is_noop() {
        let (client, blob, _image) = setup();
        let mut m = mirror(&client, blob);
        m.read(0..64).unwrap();
        assert_eq!(m.commit().unwrap(), Version(1));
    }

    #[test]
    fn consecutive_commits_form_totally_ordered_snapshots() {
        let (client, blob, image) = setup();
        let mut m = mirror(&client, blob);
        let mut expect = image.clone();
        let mut versions = Vec::new();
        for i in 0..3u64 {
            let patch = Payload::synth(100 + i, 0, 20);
            m.write(i * 300, patch.clone()).unwrap();
            expect = expect.overwrite(i * 300, patch);
            versions.push((m.commit().unwrap(), expect.clone()));
        }
        assert_eq!(
            versions.iter().map(|(v, _)| v.0).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        for (v, want) in versions {
            let got = client.read(blob, v, 0..IMG).unwrap();
            assert!(got.content_eq(&want), "snapshot {v} content");
        }
    }

    #[test]
    fn clone_then_commit_leaves_origin_untouched() {
        let (client, blob, image) = setup();
        let mut m = mirror(&client, blob);
        m.write(0, Payload::from(vec![9u8; 16])).unwrap();
        let cloned = m.clone_image().unwrap();
        assert_ne!(cloned, blob);
        let v = m.commit().unwrap();
        // The origin blob has only its original snapshot.
        assert_eq!(client.latest_version(blob).unwrap(), Version(1));
        let orig = client.read(blob, Version(1), 0..IMG).unwrap();
        assert!(orig.content_eq(&image));
        // The clone carries the modification.
        let got = client.read(cloned, v, 0..16).unwrap();
        assert!(got.content_eq(&Payload::from(vec![9u8; 16])));
    }

    #[test]
    fn partially_dirty_chunk_completed_before_commit() {
        let (client, blob, image) = setup();
        let mut m = mirror(&client, blob);
        // Dirty 10 bytes of chunk 2; rest of the chunk never read.
        m.write(256 + 7, Payload::from(vec![3u8; 10])).unwrap();
        let v = m.commit().unwrap();
        // The published chunk holds base content around the write.
        let got = client.read(blob, v, 256..384).unwrap();
        let expect = image
            .slice(256, 384)
            .overwrite(7, Payload::from(vec![3u8; 10]));
        assert!(got.content_eq(&expect));
        // The completion fetch is accounted.
        assert!(m.stats().remote_bytes >= CS - 10);
    }

    #[test]
    fn close_reopen_restores_modifications() {
        let (client, blob, image) = setup();
        let mut m = mirror(&client, blob);
        m.write(500, Payload::from(vec![8u8; 25])).unwrap();
        m.read(0..128).unwrap();
        let (saved, store) = m.close();
        let mut m2 =
            MirroredImage::reopen(client.clone(), store, MirrorConfig::default(), &saved).unwrap();
        // Local content still served locally.
        let before = m2.stats().remote_fetches;
        let got = m2.read(0..128).unwrap();
        assert!(got.content_eq(&image.slice(0, 128)));
        assert_eq!(m2.stats().remote_fetches, before);
        // Dirty state survived: commit publishes the write.
        let v = m2.commit().unwrap();
        let got = client.read(blob, v, 500..525).unwrap();
        assert!(got.content_eq(&Payload::from(vec![8u8; 25])));
    }

    /// Reference reimplementation of the pre-vectorization fetch loop:
    /// one `Client::read` per planned run. Used to pin stats equivalence.
    fn per_run_fetch(m: &mut MirroredImage, plan: Vec<ByteRange>) -> MirrorStats {
        let mut stats = MirrorStats::default();
        for run in plan {
            let len = run.end - run.start;
            let data = m.client.read(m.blob, m.base, run.clone()).unwrap();
            stats.remote_bytes += len;
            stats.remote_fetches += 1;
            for gap in m.map.local_gaps_within(&run) {
                let rel = gap.start - run.start..gap.end - run.start;
                m.store.write(gap.start, &data.slice(rel.start, rel.end));
            }
            m.map.note_fetched(run);
        }
        stats
    }

    #[test]
    fn vectored_path_matches_per_run_content_and_stats() {
        // Two mirrors of the same image run the same operation sequence;
        // one fetches through the vectored pipeline (the production
        // fetch_and_merge), the other through the per-run reference loop.
        // Content and paper-accounting stats must agree exactly.
        let (client, blob, image) = setup();
        let mut vectored = mirror(&client, blob);
        let mut reference = mirror(&client, blob);

        let reads: Vec<ByteRange> = vec![10..50, 130..140, 600..1000, 0..IMG];
        let mut ref_stats = MirrorStats::default();
        for r in &reads {
            // Vectored: the real read path.
            let got_v = vectored.read(r.clone()).unwrap();
            // Reference: plan identically, fetch per run, serve locally.
            let plan = reference.map.plan_read(r, true);
            let s = per_run_fetch(&mut reference, plan);
            ref_stats.remote_bytes += s.remote_bytes;
            ref_stats.remote_fetches += s.remote_fetches;
            let got_r = reference.store.read(r);
            assert!(got_v.content_eq(&got_r), "content differs for {r:?}");
            assert!(got_v.content_eq(&image.slice(r.start, r.end)));
        }
        assert_eq!(vectored.stats().remote_bytes, ref_stats.remote_bytes);
        assert_eq!(vectored.stats().remote_fetches, ref_stats.remote_fetches);
    }

    #[test]
    fn read_multi_matches_sequential_reads_content_and_stats() {
        // Vectored mirror reads must be byte- and stats-identical to the
        // same ranges served one `read` at a time, including overlapping
        // ranges that share chunks and ranges already local from writes.
        let (client, blob, image) = setup();
        let mut vectored = mirror(&client, blob);
        let mut sequential = mirror(&client, blob);
        vectored
            .write(200, Payload::from(vec![0xABu8; 40]))
            .unwrap();
        sequential
            .write(200, Payload::from(vec![0xABu8; 40]))
            .unwrap();

        let plan: Vec<ByteRange> = vec![10..50, 0..256, 130..140, 600..1000, 590..610];
        let got_v = vectored.read_multi(&plan).unwrap();
        let got_s: Vec<Payload> = plan
            .iter()
            .map(|r| sequential.read(r.clone()).unwrap())
            .collect();
        for ((r, v), s) in plan.iter().zip(&got_v).zip(&got_s) {
            assert!(v.content_eq(s), "range {r:?} differs");
            if r.start >= 240 || r.end <= 200 {
                assert!(v.content_eq(&image.slice(r.start, r.end)));
            }
        }
        assert_eq!(
            vectored.stats().remote_bytes,
            sequential.stats().remote_bytes
        );
        assert_eq!(
            vectored.stats().remote_fetches,
            sequential.stats().remote_fetches
        );
        assert_eq!(vectored.stats().reads, sequential.stats().reads);
    }

    #[test]
    fn multi_run_read_plan_is_one_metadata_descent() {
        // Dirty alternating chunks so a full read plans many disjoint
        // runs, then check the whole plan costs at most tree-depth
        // metadata rounds (8 chunks -> span 8 -> depth 4).
        let (client, blob, _image) = setup();
        let mut m = mirror(&client, blob);
        for i in 0..4u64 {
            m.write(i * 2 * CS, Payload::from(vec![7u8; 4])).unwrap();
        }
        let rounds_before = m.client.meta_fetch_calls();
        m.read(0..IMG).unwrap(); // plans 4 disjoint non-local runs
        let rounds = m.client.meta_fetch_calls() - rounds_before;
        assert!(rounds <= 4, "plan of 4 runs took {rounds} metadata rounds");
    }

    #[test]
    fn idle_prefetch_serves_peer_pattern_without_new_transfers() {
        // VM 1 boots on node 0 and publishes its access pattern; VM 2 on
        // node 1 spends guest idle time prefetching the predicted window
        // — its demand reads then touch no provider at all, while the
        // transport-independent mirror stats stay exactly as on demand.
        let fabric = LocalFabric::new(5);
        let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
        let topo = bff_blobseer::BlobTopology::colocated(&nodes, NodeId(4));
        let cfg = BlobConfig {
            chunk_size: CS,
            prefetch: true,
            // This test pins exact transfer counts of the raw
            // read-ahead overlap; the confidence filter's confirmation
            // publishes would shift them (it has its own tests).
            prefetch_min_publishers: 1,
            ..Default::default()
        };
        let store = BlobStore::new(cfg, topo, fabric.clone() as Arc<dyn Fabric>);
        let image = Payload::synth(77, 0, 4 * IMG); // 32 chunks of 128
        let c0 = Client::new(Arc::clone(&store), NodeId(0));
        let (blob, v) = c0.upload(image.clone()).unwrap();
        let open = |node: u32| {
            MirroredImage::open(
                Client::new(Arc::clone(&store), NodeId(node)),
                blob,
                v,
                Box::new(MemStore::new(4 * IMG)),
                MirrorConfig::default(),
            )
            .unwrap()
        };
        let mut m1 = open(0);
        m1.read(0..4 * IMG).unwrap(); // 32 chunk faults -> pattern published

        let mut m2 = open(1);
        let mut idles = 0;
        while m2.poke_prefetch() {
            idles += 1;
            assert!(idles < 100, "idle prefetch must terminate");
        }
        assert!(idles >= 2, "windowed prefetch takes several idle bursts");
        let transfers_before = fabric.stats().transfer_count();
        let got = m2.read(0..4 * IMG).unwrap();
        assert!(got.content_eq(&image));
        assert_eq!(
            fabric.stats().transfer_count(),
            transfers_before,
            "prefetched boot window must not re-fetch from providers"
        );
        // Paper-level accounting is transport-independent: the mirror
        // still records the full planned fetch volume.
        assert_eq!(m2.stats().remote_bytes, 4 * IMG);
        let stats = store.node_context(NodeId(1)).prefetch_stats();
        assert_eq!(stats.prefetched_chunks, 32);
        assert_eq!(stats.hits, 32);
        assert_eq!(stats.wasted_chunks, 0);
        // With no further predicted work, idle consumes nothing.
        assert!(!m2.poke_prefetch());
    }

    #[test]
    fn boot_like_traffic_is_fraction_of_image() {
        // A VM that touches 25% of its image should fetch about 25%,
        // not the whole image (the Fig. 4d effect).
        let (client, blob, _image) = setup();
        client.store().fabric().stats().reset(); // drop upload traffic
        let mut m = mirror(&client, blob);
        m.read(0..IMG / 4).unwrap();
        assert_eq!(m.stats().remote_bytes, IMG / 4);
        let net = client.store().fabric().stats().total_network_bytes();
        assert!(
            (IMG / 4..IMG / 2).contains(&net),
            "traffic {net} should be just over the touched bytes"
        );
    }
}
