//! A POSIX-like façade over mirrored images, mimicking the paper's FUSE
//! module interface (§4.2): each BLOB appears as a directory and its
//! snapshots as raw image files inside it; `CLONE` and `COMMIT` are
//! exposed as ioctl-style controls on open file handles.
//!
//! This layer is what a hypervisor (or the cloud middleware's control
//! agent) talks to; everything below it — chunk maps, lazy fetches,
//! shadowed commits — is [`crate::mirror::MirroredImage`].

use crate::localstore::{LocalStore, MemStore};
use crate::mirror::{MirrorConfig, MirroredImage, SavedMirror};
use bff_blobseer::{BlobError, BlobId, Client, Version};
use bff_data::Payload;
use std::collections::HashMap;
use std::fmt;

/// File-handle identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fd(pub u64);

/// Control operations trapped by the FUSE module (§4.2: "we had to
/// implement the CLONE and COMMIT primitives as ioctl system calls").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ioctl {
    /// Rebind the open image to a fresh clone blob.
    Clone,
    /// Publish local modifications as a new snapshot.
    Commit,
}

/// Result of an ioctl.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoctlReply {
    /// CLONE produced this blob.
    Cloned(BlobId),
    /// COMMIT published this version.
    Committed(Version),
}

/// VFS errors.
#[derive(Debug)]
pub enum VfsError {
    /// Unknown file handle.
    BadFd(Fd),
    /// Bad path syntax (expected `/blob<N>/snapshot-<V>`).
    BadPath(String),
    /// Storage-layer failure.
    Blob(BlobError),
}

impl fmt::Display for VfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VfsError::BadFd(fd) => write!(f, "bad file descriptor {fd:?}"),
            VfsError::BadPath(p) => write!(f, "bad path: {p}"),
            VfsError::Blob(e) => write!(f, "storage: {e}"),
        }
    }
}

impl std::error::Error for VfsError {}

impl From<BlobError> for VfsError {
    fn from(e: BlobError) -> Self {
        VfsError::Blob(e)
    }
}

/// The snapshot-file path for `(blob, version)`.
pub fn snapshot_path(blob: BlobId, version: Version) -> String {
    format!("/blob{}/snapshot-{}", blob.0, version.0)
}

/// Parse a `/blob<N>/snapshot-<V>` path.
pub fn parse_path(path: &str) -> Result<(BlobId, Version), VfsError> {
    let bad = || VfsError::BadPath(path.to_string());
    let rest = path.strip_prefix("/blob").ok_or_else(bad)?;
    let (blob_s, snap) = rest.split_once('/').ok_or_else(bad)?;
    let ver_s = snap.strip_prefix("snapshot-").ok_or_else(bad)?;
    let blob = blob_s.parse::<u64>().map_err(|_| bad())?;
    let ver = ver_s.parse::<u64>().map_err(|_| bad())?;
    Ok((BlobId(blob), Version(ver)))
}

/// A per-node virtual file system instance.
pub struct VirtualFs {
    client: Client,
    cfg: MirrorConfig,
    next_fd: u64,
    open: HashMap<Fd, MirroredImage>,
    /// Saved mirrors by blob id, restored on re-open (§4.2).
    saved: HashMap<BlobId, (SavedMirror, Box<dyn LocalStore>)>,
}

impl VirtualFs {
    /// Mount the VFS for a node's repository client.
    pub fn new(client: Client, cfg: MirrorConfig) -> Self {
        Self {
            client,
            cfg,
            next_fd: 3,
            open: HashMap::new(),
            saved: HashMap::new(),
        }
    }

    /// Open a snapshot file by path, creating an in-memory mirror store.
    pub fn open(&mut self, path: &str) -> Result<Fd, VfsError> {
        let (blob, version) = parse_path(path)?;
        self.open_blob(blob, version)
    }

    /// Open `(blob, version)` directly. If this blob was closed earlier on
    /// this node, its local mirror state is restored.
    pub fn open_blob(&mut self, blob: BlobId, version: Version) -> Result<Fd, VfsError> {
        let img = match self.saved.remove(&blob) {
            Some((meta, store)) if meta.base == version => {
                MirroredImage::reopen(self.client.clone(), store, self.cfg, &meta)?
            }
            other => {
                // Stale or absent local state: start a fresh sparse mirror.
                drop(other);
                let size = self.client.blob_size(blob)?;
                MirroredImage::open(
                    self.client.clone(),
                    blob,
                    version,
                    Box::new(MemStore::new(size)),
                    self.cfg,
                )?
            }
        };
        let fd = Fd(self.next_fd);
        self.next_fd += 1;
        self.open.insert(fd, img);
        Ok(fd)
    }

    fn image(&mut self, fd: Fd) -> Result<&mut MirroredImage, VfsError> {
        self.open.get_mut(&fd).ok_or(VfsError::BadFd(fd))
    }

    /// `pread(2)` equivalent.
    pub fn read(&mut self, fd: Fd, offset: u64, len: u64) -> Result<Payload, VfsError> {
        Ok(self.image(fd)?.read(offset..offset + len)?)
    }

    /// `pwrite(2)` equivalent.
    pub fn write(&mut self, fd: Fd, offset: u64, data: Payload) -> Result<(), VfsError> {
        Ok(self.image(fd)?.write(offset, data)?)
    }

    /// File size (`fstat` equivalent).
    pub fn size(&mut self, fd: Fd) -> Result<u64, VfsError> {
        Ok(self.image(fd)?.len())
    }

    /// Trapped control call.
    pub fn ioctl(&mut self, fd: Fd, op: Ioctl) -> Result<IoctlReply, VfsError> {
        let img = self.image(fd)?;
        match op {
            Ioctl::Clone => Ok(IoctlReply::Cloned(img.clone_image()?)),
            Ioctl::Commit => Ok(IoctlReply::Committed(img.commit()?)),
        }
    }

    /// Close a handle, persisting the mirror metadata for later re-open.
    pub fn close(&mut self, fd: Fd) -> Result<(), VfsError> {
        let img = self.open.remove(&fd).ok_or(VfsError::BadFd(fd))?;
        let blob = img.blob();
        let (meta, store) = img.close();
        self.saved.insert(blob, (meta, store));
        Ok(())
    }

    /// Number of open handles.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bff_blobseer::{BlobConfig, BlobStore, BlobTopology};
    use bff_net::{Fabric, LocalFabric, NodeId};
    use std::sync::Arc;

    fn vfs_with_image() -> (VirtualFs, BlobId, Payload) {
        let fabric = LocalFabric::new(3);
        let nodes: Vec<NodeId> = (0..2).map(NodeId).collect();
        let topo = BlobTopology::colocated(&nodes, NodeId(2));
        let cfg = BlobConfig {
            chunk_size: 64,
            ..Default::default()
        };
        let store = BlobStore::new(cfg, topo, fabric as Arc<dyn Fabric>);
        let client = Client::new(store, NodeId(0));
        let image = Payload::synth(3, 0, 512);
        let (blob, _) = client.upload(image.clone()).unwrap();
        (VirtualFs::new(client, MirrorConfig::default()), blob, image)
    }

    #[test]
    fn path_roundtrip() {
        let p = snapshot_path(BlobId(7), Version(3));
        assert_eq!(p, "/blob7/snapshot-3");
        assert_eq!(parse_path(&p).unwrap(), (BlobId(7), Version(3)));
        assert!(parse_path("/weird").is_err());
        assert!(parse_path("/blob7/other-3").is_err());
        assert!(parse_path("/blobX/snapshot-3").is_err());
    }

    #[test]
    fn open_read_write_close() {
        let (mut vfs, blob, image) = vfs_with_image();
        let fd = vfs.open(&snapshot_path(blob, Version(1))).unwrap();
        assert_eq!(vfs.size(fd).unwrap(), 512);
        let got = vfs.read(fd, 0, 100).unwrap();
        assert!(got.content_eq(&image.slice(0, 100)));
        vfs.write(fd, 10, Payload::from(vec![1u8; 5])).unwrap();
        let got = vfs.read(fd, 10, 5).unwrap();
        assert!(got.content_eq(&Payload::from(vec![1u8; 5])));
        vfs.close(fd).unwrap();
        assert_eq!(vfs.open_count(), 0);
        assert!(vfs.read(fd, 0, 1).is_err(), "closed fd rejected");
    }

    #[test]
    fn ioctl_clone_commit_cycle() {
        let (mut vfs, blob, _image) = vfs_with_image();
        let fd = vfs.open_blob(blob, Version(1)).unwrap();
        vfs.write(fd, 0, Payload::from(vec![9u8; 8])).unwrap();
        let IoctlReply::Cloned(new_blob) = vfs.ioctl(fd, Ioctl::Clone).unwrap() else {
            panic!("expected clone reply")
        };
        assert_ne!(new_blob, blob);
        let IoctlReply::Committed(v) = vfs.ioctl(fd, Ioctl::Commit).unwrap() else {
            panic!("expected commit reply")
        };
        assert_eq!(v, Version(2));
    }

    #[test]
    fn close_and_reopen_restores_local_state() {
        let (mut vfs, blob, _image) = vfs_with_image();
        let fd = vfs.open_blob(blob, Version(1)).unwrap();
        vfs.write(fd, 100, Payload::from(vec![4u8; 10])).unwrap();
        vfs.close(fd).unwrap();
        let fd2 = vfs.open_blob(blob, Version(1)).unwrap();
        let got = vfs.read(fd2, 100, 10).unwrap();
        assert!(got.content_eq(&Payload::from(vec![4u8; 10])));
        // Dirty state survived too: commit publishes it.
        let IoctlReply::Committed(v) = vfs.ioctl(fd2, Ioctl::Commit).unwrap() else {
            panic!()
        };
        assert_eq!(v, Version(2));
    }

    #[test]
    fn multiple_open_images() {
        let (mut vfs, blob, image) = vfs_with_image();
        let fd1 = vfs.open_blob(blob, Version(1)).unwrap();
        let fd2 = vfs.open_blob(blob, Version(1)).unwrap();
        vfs.write(fd1, 0, Payload::from(vec![1u8; 4])).unwrap();
        // fd2's mirror is independent.
        let got = vfs.read(fd2, 0, 4).unwrap();
        assert!(got.content_eq(&image.slice(0, 4)));
        assert_eq!(vfs.open_count(), 2);
    }
}
