//! # bff-core
//!
//! The paper's primary contribution: a virtual file system optimized for
//! the *multideployment* and *multisnapshotting* patterns on clouds.
//!
//! The public surface mirrors the paper's architecture (Fig. 2):
//!
//! * [`mirror::MirroredImage`] — the mirroring module. It presents a raw
//!   VM image backed by a local sparse mirror: reads fetch missing
//!   content from the versioning repository on demand (whole minimal
//!   chunk covers — §3.3 strategy 1), writes stay local with gap-filling
//!   so each chunk keeps one contiguous region (§3.3 strategy 2), and
//!   `CLONE`/`COMMIT` turn local modifications into first-class,
//!   standalone snapshots that share all unmodified content.
//! * [`chunkmap::ChunkMap`] — the local modification manager's state,
//!   persisted on close and restored on re-open (§4.2).
//! * [`localstore`] — the mirror backing stores (a real file or an
//!   in-memory extent map).
//! * [`vfs::VirtualFs`] — the POSIX-like façade the hypervisor sees, with
//!   `CLONE`/`COMMIT` exposed as ioctl-style calls.
//!
//! The repository underneath is [`bff_blobseer`]; all remote and disk
//! costs flow through [`bff_net::Fabric`], so this exact code runs both
//! in-process on real bytes and on the simulated testbed.

pub mod chunkmap;
pub mod localstore;
pub mod mirror;
pub mod vfs;

pub use chunkmap::ChunkMap;
pub use localstore::{FileStore, LocalStore, MemStore};
pub use mirror::{MirrorConfig, MirrorStats, MirroredImage, SavedMirror};
pub use vfs::{Fd, Ioctl, IoctlReply, VfsError, VirtualFs};
