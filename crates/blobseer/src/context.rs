//! The per-node shared metadata/cache module ([`NodeContext`]).
//!
//! The paper's compute nodes run one FUSE process per node, shared by
//! every co-located VM (§3.1.3, §4.1): its metadata cache and dedup
//! knowledge are node-wide, not per-image. This module is that process's
//! state in our model. Every [`crate::Client`] created for a node
//! attaches to the node's `NodeContext` (the [`crate::BlobStore`] keeps
//! one per node), so co-located clients share:
//!
//! * **The chunk-descriptor cache** — per-`(blob, version)` entries of
//!   resolved chunk descriptors, sharded like
//!   [`crate::provider::ProviderStore`] slots (one lock per shard, so
//!   co-located VMs resolving different snapshots never contend), with
//!   per-entry LRU eviction bounded by
//!   [`crate::BlobConfig::desc_cache_versions`]. Snapshots are immutable,
//!   so entries are never *stale* — the bound only caps memory. This
//!   replaces the old per-client cache whose wholesale eviction flushed
//!   everything once a client had touched too many versions.
//! * **The content-digest index** — maps `(length, digest)` of committed
//!   chunk payloads to their live descriptors. `Client::write_chunks`
//!   consults it before pushing replicas: a chunk whose content already
//!   has live replicas is committed *by reference* (descriptor reuse plus
//!   a provider-side refcount bump) instead of re-replicated, so snapshot
//!   storage grows with dirty *unique* bytes, not dirty bytes (§3.1.3's
//!   dedup claim, now exploited on the write side).
//!
//! Aggregate hit/miss and dedup counters are atomics: experiments read
//! them without stopping the data plane.

use crate::api::{BlobConfig, BlobId, ChunkDesc, Version};
use bff_data::{ContentKey, DigestIndex, FastMap, RangeSet, U64Hasher};
use parking_lot::Mutex;
use std::hash::{Hash, Hasher as _};
use std::sync::atomic::{AtomicU64, Ordering};

/// Descriptor-cache shards per node. Like the provider store, sharding
/// exists so concurrent co-located clients touching *different*
/// snapshots never contend on one lock; 8 shards cover the per-node VM
/// counts of the paper's multideployment experiments.
pub const DESC_SHARDS: usize = 8;

/// The resolved chunk descriptors of one snapshot (the paper's §4.1
/// metadata cache). An index inside `resolved` but absent from `descs`
/// is a known-unwritten chunk (reads as zeros) — that negative knowledge
/// also skips the metadata plane on re-reads.
#[derive(Debug, Clone, Default)]
pub struct DescCache {
    /// Chunk-index ranges already resolved against the metadata plane.
    pub(crate) resolved: RangeSet,
    /// Descriptors of the resolved chunks that exist.
    pub(crate) descs: FastMap<u64, ChunkDesc>,
}

/// One cached snapshot entry plus its LRU stamp.
#[derive(Debug, Default)]
struct Entry {
    cache: DescCache,
    last_used: u64,
}

#[derive(Debug, Default)]
struct DescShard {
    entries: FastMap<(BlobId, Version), Entry>,
}

/// Snapshot of a context's aggregate counters (see
/// [`NodeContext::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Chunk lookups served from the descriptor cache (incl. negative
    /// knowledge).
    pub desc_hits: u64,
    /// Chunk lookups that needed a metadata-plane descent.
    pub desc_misses: u64,
    /// Commit chunks published by reference instead of re-replicated.
    pub dedup_hits: u64,
    /// Payload bytes those reference commits did *not* push.
    pub dedup_reused_bytes: u64,
    /// `(blob, version)` entries currently cached.
    pub desc_entries: usize,
}

impl CacheStats {
    /// Descriptor-cache hit rate in `[0, 1]` (0 when no lookups).
    pub fn hit_rate(&self) -> f64 {
        let total = self.desc_hits + self.desc_misses;
        if total == 0 {
            return 0.0;
        }
        self.desc_hits as f64 / total as f64
    }
}

/// The node-shared cache module (see module docs).
#[derive(Debug)]
pub struct NodeContext {
    shards: Vec<Mutex<DescShard>>,
    /// Node-wide entry bound, distributed exactly over the shards
    /// (shard `i` holds `capacity/n + (i < capacity % n)` entries), so
    /// the configured `desc_cache_versions` is honored to the entry —
    /// never rounded up per shard.
    capacity: usize,
    /// Monotone use stamp shared by all shards.
    tick: AtomicU64,
    desc_hits: AtomicU64,
    desc_misses: AtomicU64,
    dedup_hits: AtomicU64,
    dedup_reused_bytes: AtomicU64,
    digests: Mutex<DigestIndex<ChunkDesc>>,
}

impl NodeContext {
    /// A context sized from the service configuration. Small capacities
    /// use fewer shards so every shard keeps a bound ≥ 1 while the
    /// total stays exactly `desc_cache_versions`.
    pub fn new(cfg: &BlobConfig) -> Self {
        let capacity = cfg.desc_cache_versions.max(1);
        let shard_count = DESC_SHARDS.min(capacity);
        Self {
            shards: (0..shard_count)
                .map(|_| Mutex::new(DescShard::default()))
                .collect(),
            capacity,
            tick: AtomicU64::new(0),
            desc_hits: AtomicU64::new(0),
            desc_misses: AtomicU64::new(0),
            dedup_hits: AtomicU64::new(0),
            dedup_reused_bytes: AtomicU64::new(0),
            digests: Mutex::new(DigestIndex::new(cfg.digest_index_chunks)),
        }
    }

    fn shard_of(&self, key: &(BlobId, Version)) -> usize {
        let mut h = U64Hasher::default();
        key.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    /// Entry bound of shard `i` (the node-wide bound distributed with
    /// the remainder spread over the first shards).
    fn shard_capacity(&self, i: usize) -> usize {
        let n = self.shards.len();
        self.capacity / n + usize::from(i < self.capacity % n)
    }

    /// Run `f` over the entry for `key`, creating it empty if absent and
    /// marking it most-recently used. Inserting into a full shard evicts
    /// that shard's least-recently-used entry — and only that entry; the
    /// rest of the cache is untouched (unlike the old wholesale clear).
    pub fn with_entry<R>(&self, key: (BlobId, Version), f: impl FnOnce(&mut DescCache) -> R) -> R {
        let shard_idx = self.shard_of(&key);
        let mut shard = self.shards[shard_idx].lock();
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        if shard.entries.len() >= self.shard_capacity(shard_idx)
            && !shard.entries.contains_key(&key)
        {
            if let Some(victim) = shard
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                shard.entries.remove(&victim);
            }
        }
        let entry = shard.entries.entry(key).or_default();
        entry.last_used = tick;
        f(&mut entry.cache)
    }

    /// Clone the entry for `key` if cached (marks it used). The CLONE
    /// carryover path: a clone's `Version(1)` *is* the source tree.
    pub fn entry_snapshot(&self, key: (BlobId, Version)) -> Option<DescCache> {
        let mut shard = self.shards[self.shard_of(&key)].lock();
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let entry = shard.entries.get_mut(&key)?;
        entry.last_used = tick;
        Some(entry.cache.clone())
    }

    /// Remove and return the entry for `key`. The COMMIT seeding path
    /// *moves* the base version's entry onto the new snapshot — cloning
    /// would copy O(resolved chunks) per commit along a commit chain.
    pub fn take_entry(&self, key: (BlobId, Version)) -> Option<DescCache> {
        let mut shard = self.shards[self.shard_of(&key)].lock();
        shard.entries.remove(&key).map(|e| e.cache)
    }

    /// Insert (or replace) the entry for `key`, marking it
    /// most-recently used and evicting the shard's LRU entry if needed.
    pub fn insert_entry(&self, key: (BlobId, Version), cache: DescCache) {
        self.with_entry(key, |slot| *slot = cache);
    }

    /// Total `(blob, version)` entries cached right now.
    pub fn desc_entries(&self) -> usize {
        self.shards.iter().map(|s| s.lock().entries.len()).sum()
    }

    /// The node-wide entry bound (`desc_entries` never exceeds it);
    /// exactly the configured `desc_cache_versions`.
    pub fn desc_capacity(&self) -> usize {
        self.capacity
    }

    /// Record the outcome of a descriptor resolution: `hits` chunks came
    /// from the cache, `misses` needed the metadata plane.
    pub(crate) fn note_desc_lookup(&self, hits: u64, misses: u64) {
        if hits > 0 {
            self.desc_hits.fetch_add(hits, Ordering::Relaxed);
        }
        if misses > 0 {
            self.desc_misses.fetch_add(misses, Ordering::Relaxed);
        }
    }

    /// Record a commit-by-reference of `chunks` chunks / `bytes` bytes.
    pub(crate) fn note_dedup(&self, chunks: u64, bytes: u64) {
        self.dedup_hits.fetch_add(chunks, Ordering::Relaxed);
        self.dedup_reused_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Look up a content key in the digest index.
    pub(crate) fn digest_lookup(&self, key: &ContentKey) -> Option<ChunkDesc> {
        self.digests.lock().get(key).cloned()
    }

    /// Record (or refresh) the descriptor holding `key`'s content.
    pub(crate) fn digest_record(&self, key: ContentKey, desc: ChunkDesc) {
        self.digests.lock().insert(key, desc);
    }

    /// Drop a digest entry found stale (no live replicas retained).
    pub(crate) fn digest_forget(&self, key: &ContentKey) {
        self.digests.lock().remove(key);
    }

    /// Number of content keys currently indexed.
    pub fn digest_entries(&self) -> usize {
        self.digests.lock().len()
    }

    /// Payload bytes committed by reference so far, node-wide across
    /// every attached client — one Relaxed atomic load, no locks. For
    /// per-commit attribution use
    /// `Client::write_chunks_accounted` instead: deltas of this shared
    /// counter interleave across co-located committers.
    pub fn dedup_reused_bytes(&self) -> u64 {
        self.dedup_reused_bytes.load(Ordering::Relaxed)
    }

    /// Aggregate counters, read lock-free except for the entry count.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            desc_hits: self.desc_hits.load(Ordering::Relaxed),
            desc_misses: self.desc_misses.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
            dedup_reused_bytes: self.dedup_reused_bytes.load(Ordering::Relaxed),
            desc_entries: self.desc_entries(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::ChunkId;
    use bff_net::NodeId;
    use std::sync::Arc;

    fn ctx(versions: usize) -> NodeContext {
        NodeContext::new(&BlobConfig {
            desc_cache_versions: versions,
            ..Default::default()
        })
    }

    fn desc(id: u64) -> ChunkDesc {
        ChunkDesc {
            id: ChunkId(id),
            replicas: Arc::from([NodeId(0)].as_slice()),
        }
    }

    #[test]
    fn entries_bounded_and_lru_evicted_per_shard() {
        let c = ctx(16);
        assert_eq!(c.desc_capacity(), 16);
        // Insert far more entries than capacity.
        for v in 1..=200u64 {
            c.with_entry((BlobId(1), Version(v)), |e| {
                e.descs.insert(0, desc(v));
            });
        }
        assert!(c.desc_entries() <= c.desc_capacity());
        // The most recent entry survived (it is the newest in its shard).
        assert!(c.entry_snapshot((BlobId(1), Version(200))).is_some());
    }

    #[test]
    fn capacity_is_exact_for_any_configuration() {
        // The configured bound is honored to the entry — including
        // values smaller than, and not divisible by, the shard count.
        for cap in [1usize, 3, 4, 10, 16, 64, 100] {
            let c = ctx(cap);
            assert_eq!(c.desc_capacity(), cap, "configured {cap}");
            for v in 1..=(cap as u64 * 20) {
                c.with_entry((BlobId(1), Version(v)), |_| {});
            }
            assert!(
                c.desc_entries() <= cap,
                "configured {cap}, holding {}",
                c.desc_entries()
            );
        }
    }

    #[test]
    fn recently_used_entries_survive_churn() {
        // Shard capacity 8: the hot entry (re-touched every other step)
        // can only be a shard's LRU victim if 7 churn entries landed in
        // its shard within 2 steps — impossible, so it must survive.
        let c = ctx(64);
        let hot = (BlobId(7), Version(1));
        c.with_entry(hot, |e| {
            e.descs.insert(0, desc(99));
        });
        // Churn many one-shot entries, re-touching the hot one often
        // enough that it is never its shard's LRU victim.
        for v in 1..=500u64 {
            c.with_entry((BlobId(1), Version(v)), |_| {});
            if v % 2 == 0 {
                assert!(
                    c.entry_snapshot(hot).is_some(),
                    "hot entry evicted at churn step {v}"
                );
            }
        }
        let got = c.entry_snapshot(hot).expect("hot entry survives churn");
        assert!(got.descs.contains_key(&0));
        assert!(c.desc_entries() <= c.desc_capacity());
    }

    #[test]
    fn take_and_insert_move_entries_between_keys() {
        let c = ctx(16);
        let a = (BlobId(1), Version(1));
        let b = (BlobId(1), Version(2));
        c.with_entry(a, |e| {
            e.resolved.insert(0..4);
            e.descs.insert(2, desc(5));
        });
        let moved = c.take_entry(a).expect("present");
        assert!(c.entry_snapshot(a).is_none(), "take removes");
        c.insert_entry(b, moved);
        let got = c.entry_snapshot(b).expect("moved entry");
        assert_eq!(got.descs.get(&2), Some(&desc(5)));
    }

    #[test]
    fn counters_accumulate() {
        let c = ctx(8);
        c.note_desc_lookup(3, 1);
        c.note_desc_lookup(0, 2);
        c.note_dedup(2, 256);
        let s = c.stats();
        assert_eq!((s.desc_hits, s.desc_misses), (3, 3));
        assert_eq!((s.dedup_hits, s.dedup_reused_bytes), (2, 256));
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn digest_index_roundtrip() {
        let c = ctx(8);
        let key = (128u64, bff_data::Digest(42));
        assert!(c.digest_lookup(&key).is_none());
        c.digest_record(key, desc(9));
        assert_eq!(c.digest_lookup(&key), Some(desc(9)));
        c.digest_forget(&key);
        assert!(c.digest_lookup(&key).is_none());
    }
}
