//! The per-node shared metadata/cache module ([`NodeContext`]).
//!
//! The paper's compute nodes run one FUSE process per node, shared by
//! every co-located VM (§3.1.3, §4.1): its metadata cache and dedup
//! knowledge are node-wide, not per-image. This module is that process's
//! state in our model. Every [`crate::Client`] created for a node
//! attaches to the node's `NodeContext` (the [`crate::BlobStore`] keeps
//! one per node), so co-located clients share:
//!
//! * **The chunk-descriptor cache** — per-`(blob, version)` entries of
//!   resolved chunk descriptors, sharded like
//!   [`crate::provider::ProviderStore`] slots (one lock per shard, so
//!   co-located VMs resolving different snapshots never contend), with
//!   per-entry LRU eviction bounded by
//!   [`crate::BlobConfig::desc_cache_versions`]. Snapshots are immutable,
//!   so entries are never *stale* — the bound only caps memory. This
//!   replaces the old per-client cache whose wholesale eviction flushed
//!   everything once a client had touched too many versions.
//! * **The content-digest index** — maps `(length, digest)` of committed
//!   chunk payloads to their live descriptors. `Client::write_chunks`
//!   consults it before pushing replicas: a chunk whose content already
//!   has live replicas is committed *by reference* (descriptor reuse plus
//!   a provider-side refcount bump) instead of re-replicated, so snapshot
//!   storage grows with dirty *unique* bytes, not dirty bytes (§3.1.3's
//!   dedup claim, now exploited on the write side).
//! * **The access trackers and chunk-data cache** — the node half of the
//!   adaptive prefetching pipeline. Trackers record each snapshot's
//!   first-touch chunk order (batched into
//!   [`crate::board::PatternBoard`] publishes) and the prefetcher's
//!   claim/cursor state; the chunk cache holds prefetched (and, while
//!   prefetching is on, demand-fetched) chunk payloads that
//!   `Client::read_multi` serves without touching providers — which is
//!   also how co-located VMs share each other's fetched data.
//!
//! Aggregate hit/miss, dedup and prefetch counters are atomics:
//! experiments read them without stopping the data plane.

use crate::api::{BlobConfig, BlobId, ChunkDesc, ChunkId, Version};
use crate::lockstat::{probed_lock, LockContention, LockProbe};
use bff_data::{ContentKey, DigestIndex, FastMap, FastSet, Payload, RangeSet, U64Hasher};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::hash::{Hash, Hasher as _};
use std::sync::atomic::{AtomicU64, Ordering};

/// Descriptor-cache shards per node. Like the provider store, sharding
/// exists so concurrent co-located clients touching *different*
/// snapshots never contend on one lock; 8 shards cover the per-node VM
/// counts of the paper's multideployment experiments.
pub const DESC_SHARDS: usize = 8;

/// First-touch accesses a node accumulates before publishing a summary
/// batch to the cluster [`crate::board::PatternBoard`]. Batching keeps
/// the control traffic one small message per several chunk faults
/// instead of one per fault; keeping the batch small keeps the pattern
/// *timely* — a peer one batch behind still prefetches most of the
/// window.
pub const PUBLISH_BATCH: usize = 8;

/// Cap on the first-touch sequence recorded per `(blob, version)`:
/// beyond this, accesses still count for dedup/seen purposes but the
/// *order* stops growing (a boot touches a few thousand chunks; the cap
/// only guards against pathological full-image scans).
const ACCESS_ORDER_CAP: usize = 1 << 14;

/// How a chunk payload entered the node-shared chunk cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkOrigin {
    /// Fetched ahead of need by the prefetch pipeline.
    Prefetch,
    /// Fetched by a demand read (cached so co-located VMs share it).
    Demand,
}

/// Per-`(blob, version)` access-pattern state: what this node has
/// touched (and in which first-touch order), how much of that order has
/// been published to the cluster board, and how far into the board's
/// peer sequence the node's prefetcher has advanced.
#[derive(Debug, Default)]
struct AccessTracker {
    /// Chunk indices this node has accessed (demand reads).
    seen: FastSet<u64>,
    /// First-touch order of `seen` (bounded by [`ACCESS_ORDER_CAP`]).
    order: Vec<u64>,
    /// Prefix of `order` already published to the board.
    published: usize,
    /// Chunk indices the prefetcher has already claimed (fetched or
    /// in flight) — never re-claimed, so a chunk is prefetched at most
    /// once per node.
    claimed: FastSet<u64>,
    /// Position in the board's peer sequence up to which candidates have
    /// been consumed.
    cursor: usize,
    /// LRU stamp (trackers are bounded like the descriptor cache).
    last_used: u64,
}

/// One cached chunk payload plus its bookkeeping.
#[derive(Debug)]
struct CachedChunk {
    data: Payload,
    origin: ChunkOrigin,
    /// Whether a demand read ever consumed this entry.
    used: bool,
    last_used: u64,
}

/// The node-shared chunk-data cache: prefetched (and demand-fetched)
/// chunk payloads, keyed by [`ChunkId`], bounded by bytes, LRU-evicted.
/// Chunk ids are never reused and a chunk's bytes are immutable while
/// any descriptor references it, so entries can never go stale — the
/// bound only caps memory.
#[derive(Debug, Default)]
struct ChunkCache {
    entries: FastMap<ChunkId, CachedChunk>,
    bytes: u64,
    /// LRU queue of `(id, stamp)`; a slot is live iff the stamp matches
    /// the entry's `last_used` (same lazy-invalidation scheme as
    /// [`DigestIndex`]).
    queue: VecDeque<(ChunkId, u64)>,
}

impl ChunkCache {
    /// Bound the stale queue slots that hits and refreshes leave
    /// behind: drain the stale prefix, then compact the whole queue
    /// once stale slots outnumber live entries (amortized O(1) per
    /// operation, `queue.len() ≤ max(2·entries, 8)` — same policy as
    /// [`DigestIndex`]). Without this, every cache *hit* would park a
    /// slot that only an over-capacity eviction ever pops.
    fn compact_queue(&mut self) {
        let is_stale = |entries: &FastMap<ChunkId, CachedChunk>, slot: &(ChunkId, u64)| {
            entries.get(&slot.0).is_none_or(|e| e.last_used != slot.1)
        };
        while self
            .queue
            .front()
            .is_some_and(|slot| is_stale(&self.entries, slot))
        {
            self.queue.pop_front();
        }
        if self.queue.len() > self.entries.len().saturating_mul(2).max(8) {
            let entries = &self.entries;
            self.queue.retain(|slot| !is_stale(entries, slot));
        }
    }
}

/// Snapshot of a context's prefetch counters (see
/// [`NodeContext::prefetch_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Chunks fetched ahead of need by [`crate::Client::prefetch_chunks`].
    pub prefetched_chunks: u64,
    /// Payload bytes those fetches moved.
    pub prefetched_bytes: u64,
    /// Demand chunk reads served from a *prefetched* cache entry.
    pub hits: u64,
    /// Payload bytes those hits did not re-fetch from providers.
    pub hit_bytes: u64,
    /// Prefetched entries evicted (or overwritten) without ever serving
    /// a demand read — the waste half of the hit/waste trade-off.
    pub wasted_chunks: u64,
    /// Demand chunk reads served from the cache regardless of entry
    /// origin (includes co-located demand sharing).
    pub cache_hits: u64,
    /// Chunks resident in the node's chunk cache right now.
    pub cached_chunks: usize,
    /// Bytes resident in the node's chunk cache right now.
    pub cached_bytes: u64,
}

impl PrefetchStats {
    /// Fraction of prefetched chunks that served a demand read, in
    /// `[0, 1]` (0 when nothing was prefetched).
    pub fn hit_rate(&self) -> f64 {
        if self.prefetched_chunks == 0 {
            return 0.0;
        }
        self.hits as f64 / self.prefetched_chunks as f64
    }
}

/// The resolved chunk descriptors of one snapshot (the paper's §4.1
/// metadata cache). An index inside `resolved` but absent from `descs`
/// is a known-unwritten chunk (reads as zeros) — that negative knowledge
/// also skips the metadata plane on re-reads.
#[derive(Debug, Clone, Default)]
pub struct DescCache {
    /// Chunk-index ranges already resolved against the metadata plane.
    pub(crate) resolved: RangeSet,
    /// Descriptors of the resolved chunks that exist.
    pub(crate) descs: FastMap<u64, ChunkDesc>,
}

/// One cached snapshot entry plus its LRU stamp.
#[derive(Debug, Default)]
struct Entry {
    cache: DescCache,
    last_used: u64,
}

#[derive(Debug, Default)]
struct DescShard {
    entries: FastMap<(BlobId, Version), Entry>,
}

/// Snapshot of a context's aggregate counters (see
/// [`NodeContext::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Chunk lookups served from the descriptor cache (incl. negative
    /// knowledge).
    pub desc_hits: u64,
    /// Chunk lookups that needed a metadata-plane descent.
    pub desc_misses: u64,
    /// Commit chunks published by reference instead of re-replicated.
    pub dedup_hits: u64,
    /// Payload bytes those reference commits did *not* push.
    pub dedup_reused_bytes: u64,
    /// `(blob, version)` entries currently cached.
    pub desc_entries: usize,
}

impl CacheStats {
    /// Descriptor-cache hit rate in `[0, 1]` (0 when no lookups).
    pub fn hit_rate(&self) -> f64 {
        let total = self.desc_hits + self.desc_misses;
        if total == 0 {
            return 0.0;
        }
        self.desc_hits as f64 / total as f64
    }
}

/// The node-shared cache module (see module docs).
#[derive(Debug)]
pub struct NodeContext {
    shards: Vec<Mutex<DescShard>>,
    /// Node-wide entry bound, distributed exactly over the shards
    /// (shard `i` holds `capacity/n + (i < capacity % n)` entries), so
    /// the configured `desc_cache_versions` is honored to the entry —
    /// never rounded up per shard.
    capacity: usize,
    /// Monotone use stamp shared by all shards.
    tick: AtomicU64,
    desc_hits: AtomicU64,
    desc_misses: AtomicU64,
    dedup_hits: AtomicU64,
    dedup_reused_bytes: AtomicU64,
    digests: Mutex<DigestIndex<ChunkDesc>>,
    /// Per-`(blob, version)` access-pattern trackers (prefetch plane).
    trackers: Mutex<FastMap<(BlobId, Version), AccessTracker>>,
    /// The node-shared chunk-data cache (prefetch plane).
    chunks: Mutex<ChunkCache>,
    /// Byte bound of `chunks`; 0 disables the cache (prefetch off).
    chunk_cache_bytes: u64,
    /// Whether a background read-ahead step is currently in flight for
    /// this node (one at a time: the in-flight budget is one
    /// `prefetch_window`-sized step).
    prefetch_inflight: std::sync::atomic::AtomicBool,
    prefetched_chunks: AtomicU64,
    prefetched_bytes: AtomicU64,
    prefetch_hits: AtomicU64,
    prefetch_hit_bytes: AtomicU64,
    prefetch_wasted: AtomicU64,
    chunk_cache_hits: AtomicU64,
    /// Contention counters of the `chunks` lock (serving diagnostics).
    chunks_probe: LockProbe,
}

impl NodeContext {
    /// A context sized from the service configuration. Small capacities
    /// use fewer shards so every shard keeps a bound ≥ 1 while the
    /// total stays exactly `desc_cache_versions`.
    pub fn new(cfg: &BlobConfig) -> Self {
        let capacity = cfg.desc_cache_versions.max(1);
        let shard_count = DESC_SHARDS.min(capacity);
        Self {
            shards: (0..shard_count)
                .map(|_| Mutex::new(DescShard::default()))
                .collect(),
            capacity,
            tick: AtomicU64::new(0),
            desc_hits: AtomicU64::new(0),
            desc_misses: AtomicU64::new(0),
            dedup_hits: AtomicU64::new(0),
            dedup_reused_bytes: AtomicU64::new(0),
            digests: Mutex::new(DigestIndex::new(cfg.digest_index_chunks)),
            trackers: Mutex::new(FastMap::default()),
            chunks: Mutex::new(ChunkCache::default()),
            chunk_cache_bytes: if cfg.prefetch {
                cfg.chunk_cache_bytes
            } else {
                0
            },
            prefetch_inflight: std::sync::atomic::AtomicBool::new(false),
            prefetched_chunks: AtomicU64::new(0),
            prefetched_bytes: AtomicU64::new(0),
            prefetch_hits: AtomicU64::new(0),
            prefetch_hit_bytes: AtomicU64::new(0),
            prefetch_wasted: AtomicU64::new(0),
            chunk_cache_hits: AtomicU64::new(0),
            chunks_probe: LockProbe::default(),
        }
    }

    fn shard_of(&self, key: &(BlobId, Version)) -> usize {
        let mut h = U64Hasher::default();
        key.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    /// Entry bound of shard `i` (the node-wide bound distributed with
    /// the remainder spread over the first shards).
    fn shard_capacity(&self, i: usize) -> usize {
        let n = self.shards.len();
        self.capacity / n + usize::from(i < self.capacity % n)
    }

    /// Run `f` over the entry for `key`, creating it empty if absent and
    /// marking it most-recently used. Inserting into a full shard evicts
    /// that shard's least-recently-used entry — and only that entry; the
    /// rest of the cache is untouched (unlike the old wholesale clear).
    pub fn with_entry<R>(&self, key: (BlobId, Version), f: impl FnOnce(&mut DescCache) -> R) -> R {
        let shard_idx = self.shard_of(&key);
        let mut shard = self.shards[shard_idx].lock();
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        if shard.entries.len() >= self.shard_capacity(shard_idx)
            && !shard.entries.contains_key(&key)
        {
            if let Some(victim) = shard
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                shard.entries.remove(&victim);
            }
        }
        let entry = shard.entries.entry(key).or_default();
        entry.last_used = tick;
        f(&mut entry.cache)
    }

    /// Clone the entry for `key` if cached (marks it used). The CLONE
    /// carryover path: a clone's `Version(1)` *is* the source tree.
    pub fn entry_snapshot(&self, key: (BlobId, Version)) -> Option<DescCache> {
        let mut shard = self.shards[self.shard_of(&key)].lock();
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let entry = shard.entries.get_mut(&key)?;
        entry.last_used = tick;
        Some(entry.cache.clone())
    }

    /// Remove and return the entry for `key`. The COMMIT seeding path
    /// *moves* the base version's entry onto the new snapshot — cloning
    /// would copy O(resolved chunks) per commit along a commit chain.
    pub fn take_entry(&self, key: (BlobId, Version)) -> Option<DescCache> {
        let mut shard = self.shards[self.shard_of(&key)].lock();
        shard.entries.remove(&key).map(|e| e.cache)
    }

    /// Insert (or replace) the entry for `key`, marking it
    /// most-recently used and evicting the shard's LRU entry if needed.
    pub fn insert_entry(&self, key: (BlobId, Version), cache: DescCache) {
        self.with_entry(key, |slot| *slot = cache);
    }

    /// Total `(blob, version)` entries cached right now.
    pub fn desc_entries(&self) -> usize {
        self.shards.iter().map(|s| s.lock().entries.len()).sum()
    }

    /// The node-wide entry bound (`desc_entries` never exceeds it);
    /// exactly the configured `desc_cache_versions`.
    pub fn desc_capacity(&self) -> usize {
        self.capacity
    }

    /// Record the outcome of a descriptor resolution: `hits` chunks came
    /// from the cache, `misses` needed the metadata plane.
    pub(crate) fn note_desc_lookup(&self, hits: u64, misses: u64) {
        if hits > 0 {
            self.desc_hits.fetch_add(hits, Ordering::Relaxed);
        }
        if misses > 0 {
            self.desc_misses.fetch_add(misses, Ordering::Relaxed);
        }
    }

    /// Record a commit-by-reference of `chunks` chunks / `bytes` bytes.
    pub(crate) fn note_dedup(&self, chunks: u64, bytes: u64) {
        self.dedup_hits.fetch_add(chunks, Ordering::Relaxed);
        self.dedup_reused_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Look up a content key in the digest index.
    pub(crate) fn digest_lookup(&self, key: &ContentKey) -> Option<ChunkDesc> {
        self.digests.lock().get(key).cloned()
    }

    /// Record (or refresh) the descriptor holding `key`'s content.
    pub(crate) fn digest_record(&self, key: ContentKey, desc: ChunkDesc) {
        self.digests.lock().insert(key, desc);
    }

    /// Drop a digest entry found stale (no live replicas retained).
    pub(crate) fn digest_forget(&self, key: &ContentKey) {
        self.digests.lock().remove(key);
    }

    /// Number of content keys currently indexed.
    pub fn digest_entries(&self) -> usize {
        self.digests.lock().len()
    }

    /// Snapshot-delete eviction, version-keyed state: drop the deleted
    /// `(blob, version)`'s descriptor-cache entry and access tracker.
    /// Stale entries would not corrupt anything (snapshots are
    /// immutable and chunk ids are never reused), but they would pin
    /// memory for a snapshot that can never be read again.
    pub fn purge_version(&self, key: (BlobId, Version)) {
        self.take_entry(key);
        self.trackers.lock().remove(&key);
    }

    /// Snapshot-delete eviction, chunk-keyed state: drop freed chunk
    /// ids from the digest index (a later identical commit must push
    /// fresh, not reference a reclaimed chunk) and from the chunk-data
    /// cache (the payload has no live referents left). Prefetched
    /// entries evicted this way count as waste — the read-ahead moved
    /// bytes no demand read ever consumed.
    pub fn purge_chunks(&self, freed: &FastSet<ChunkId>) {
        self.digests
            .lock()
            .remove_matching(|_, desc| freed.contains(&desc.id));
        let mut cache = self.chunks.lock();
        for &id in freed {
            if let Some(e) = cache.entries.remove(&id) {
                cache.bytes -= e.data.len();
                if e.origin == ChunkOrigin::Prefetch && !e.used {
                    self.prefetch_wasted.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        cache.compact_queue();
    }

    /// Payload bytes committed by reference so far, node-wide across
    /// every attached client — one Relaxed atomic load, no locks. For
    /// per-commit attribution use
    /// `Client::write_chunks_accounted` instead: deltas of this shared
    /// counter interleave across co-located committers.
    pub fn dedup_reused_bytes(&self) -> u64 {
        self.dedup_reused_bytes.load(Ordering::Relaxed)
    }

    // --- Access-pattern tracking (the prefetch plane) ---------------

    /// Run `f` over the tracker for `key`, creating it if absent and
    /// marking it most-recently used. Trackers are per-`(blob, version)`
    /// state of the same lifecycle class as descriptor-cache entries,
    /// so they share the `desc_cache_versions` bound: inserting beyond
    /// it evicts the least-recently-used tracker (an evicted snapshot's
    /// pattern state simply rebuilds if it is ever deployed again).
    fn with_tracker<R>(
        &self,
        key: (BlobId, Version),
        f: impl FnOnce(&mut AccessTracker) -> R,
    ) -> R {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let mut trackers = self.trackers.lock();
        if trackers.len() >= self.capacity && !trackers.contains_key(&key) {
            if let Some(victim) = trackers
                .iter()
                .min_by_key(|(_, t)| t.last_used)
                .map(|(k, _)| *k)
            {
                trackers.remove(&victim);
            }
        }
        let t = trackers.entry(key).or_default();
        t.last_used = tick;
        f(t)
    }

    /// Record demand accesses to chunk `indices` of `key`, in access
    /// order (first touch counts; repeats are free). Returns a batch of
    /// so-far-unpublished first-touch indices once at least
    /// [`PUBLISH_BATCH`] have accumulated — the caller ships that batch
    /// to the cluster [`crate::board::PatternBoard`] and charges the
    /// fabric for it.
    pub fn note_accesses(
        &self,
        key: (BlobId, Version),
        indices: impl IntoIterator<Item = u64>,
    ) -> Option<Vec<u64>> {
        self.with_tracker(key, |t| {
            for idx in indices {
                if t.seen.insert(idx) && t.order.len() < ACCESS_ORDER_CAP {
                    t.order.push(idx);
                }
            }
            if t.order.len() - t.published >= PUBLISH_BATCH {
                let batch = t.order[t.published..].to_vec();
                t.published = t.order.len();
                Some(batch)
            } else {
                None
            }
        })
    }

    /// Claim the next up-to-`max` prefetch candidates for `key` out of
    /// the board's peer access sequence `peer_seq`: chunks this node has
    /// neither accessed nor already claimed. Claimed chunks are never
    /// handed out twice, so each chunk is prefetched at most once per
    /// node; the per-key cursor makes repeated calls walk the peer
    /// sequence incrementally.
    ///
    /// `confident` is the board's cohort-confirmation mask (aligned
    /// with `peer_seq`; `None` = no filtering): positions it marks
    /// `false` — chunks only one cohort member reported — are walked
    /// past *without* claiming. They stay on demand; skipping them is
    /// the waste the confidence filter trades for. A chunk confirmed
    /// only after the cursor passed it is simply never prefetched —
    /// best-effort, like every other prefetch miss.
    pub fn claim_prefetch(
        &self,
        key: (BlobId, Version),
        peer_seq: &[u64],
        confident: Option<&[bool]>,
        max: usize,
    ) -> Vec<u64> {
        if max == 0 {
            return Vec::new();
        }
        debug_assert!(confident.is_none_or(|m| m.len() == peer_seq.len()));
        self.with_tracker(key, |t| {
            let mut out = Vec::new();
            while t.cursor < peer_seq.len() && out.len() < max {
                let idx = peer_seq[t.cursor];
                let ok = confident.is_none_or(|m| m[t.cursor]);
                t.cursor += 1;
                if ok && !t.seen.contains(&idx) && t.claimed.insert(idx) {
                    out.push(idx);
                }
            }
            out
        })
    }

    /// Whether the peer sequence for `key` extends past this node's
    /// prefetch cursor (cheap pre-check before spawning an async
    /// read-ahead step; may be a false positive when the remainder is
    /// already seen — [`NodeContext::claim_prefetch`] settles that).
    pub fn prefetch_cursor_behind(&self, key: (BlobId, Version), peer_seq_len: usize) -> bool {
        self.trackers
            .lock()
            .get(&key)
            .map_or(peer_seq_len > 0, |t| t.cursor < peer_seq_len)
    }

    // --- The node-shared chunk-data cache ---------------------------

    /// One cache lookup under an already-held lock: the common body of
    /// [`NodeContext::chunk_cache_get`] and
    /// [`NodeContext::chunk_cache_get_batch`], so the two are
    /// hit-for-hit and stat-for-stat identical.
    fn chunk_cache_get_locked(&self, cache: &mut ChunkCache, id: ChunkId) -> Option<Payload> {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let data = {
            let entry = cache.entries.get_mut(&id)?;
            if entry.origin == ChunkOrigin::Prefetch && !entry.used {
                self.prefetch_hits.fetch_add(1, Ordering::Relaxed);
                self.prefetch_hit_bytes
                    .fetch_add(entry.data.len(), Ordering::Relaxed);
            }
            entry.used = true;
            entry.last_used = tick;
            entry.data.clone()
        };
        cache.queue.push_back((id, tick));
        cache.compact_queue();
        self.chunk_cache_hits.fetch_add(1, Ordering::Relaxed);
        Some(data)
    }

    /// Look up a chunk payload in the node-shared chunk cache. A hit
    /// marks the entry used (a prefetched entry's first use counts
    /// toward the prefetch hit statistics) and refreshes its LRU stamp.
    pub fn chunk_cache_get(&self, id: ChunkId) -> Option<Payload> {
        if self.chunk_cache_bytes == 0 {
            return None;
        }
        let mut cache = probed_lock(&self.chunks_probe, &self.chunks);
        self.chunk_cache_get_locked(&mut cache, id)
    }

    /// Batched [`NodeContext::chunk_cache_get`]: one lock acquisition
    /// covers the whole lookup plan of a read, instead of one round trip
    /// per chunk. Exactly equivalent per id — same hit marking, same LRU
    /// stamps, same statistics — this is purely a lock-traffic fix: on
    /// the wall-clock serving path the per-chunk acquisitions of a
    /// 100-chunk read are ~100 contended futex round trips that the
    /// batch turns into one.
    pub fn chunk_cache_get_batch(&self, ids: &[ChunkId]) -> Vec<Option<Payload>> {
        if self.chunk_cache_bytes == 0 || ids.is_empty() {
            return vec![None; ids.len()];
        }
        let mut cache = probed_lock(&self.chunks_probe, &self.chunks);
        ids.iter()
            .map(|&id| self.chunk_cache_get_locked(&mut cache, id))
            .collect()
    }

    /// Whether a chunk is resident in the node-shared chunk cache,
    /// without touching hit statistics or LRU order (prefetch-side
    /// dedup check, not a demand read).
    pub fn chunk_cache_contains(&self, id: ChunkId) -> bool {
        self.chunk_cache_bytes != 0
            && probed_lock(&self.chunks_probe, &self.chunks)
                .entries
                .contains_key(&id)
    }

    /// Insert a fetched chunk into the node-shared cache, evicting LRU
    /// entries past the byte bound. An already-present id is only
    /// refreshed (chunk ids are immutable content — re-inserting the
    /// same bytes is a no-op).
    pub fn chunk_cache_insert(&self, id: ChunkId, data: Payload, origin: ChunkOrigin) {
        if self.chunk_cache_bytes == 0 {
            return;
        }
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let mut cache = probed_lock(&self.chunks_probe, &self.chunks);
        if let Some(entry) = cache.entries.get_mut(&id) {
            entry.last_used = tick;
            cache.queue.push_back((id, tick));
            cache.compact_queue();
            return;
        }
        cache.bytes += data.len();
        cache.entries.insert(
            id,
            CachedChunk {
                data,
                origin,
                used: false,
                last_used: tick,
            },
        );
        cache.queue.push_back((id, tick));
        while cache.bytes > self.chunk_cache_bytes {
            let Some((victim, stamp)) = cache.queue.pop_front() else {
                break;
            };
            // Stale slots (refreshed entries) evict nothing.
            let live = cache
                .entries
                .get(&victim)
                .is_some_and(|e| e.last_used == stamp);
            if !live {
                continue;
            }
            let e = cache.entries.remove(&victim).expect("live entry");
            cache.bytes -= e.data.len();
            if e.origin == ChunkOrigin::Prefetch && !e.used {
                self.prefetch_wasted.fetch_add(1, Ordering::Relaxed);
            }
        }
        cache.compact_queue();
    }

    /// Try to claim the node's single background read-ahead slot.
    /// Returns `false` while a step is already in flight — the caller
    /// skips this idle burst rather than queueing (the in-flight budget
    /// is one bounded step per node).
    pub fn try_begin_prefetch(&self) -> bool {
        !self
            .prefetch_inflight
            .swap(true, std::sync::atomic::Ordering::AcqRel)
    }

    /// Release the read-ahead slot (paired with
    /// [`NodeContext::try_begin_prefetch`]).
    pub fn end_prefetch(&self) {
        self.prefetch_inflight
            .store(false, std::sync::atomic::Ordering::Release);
    }

    /// Record that the prefetcher landed `chunks` chunks / `bytes` bytes
    /// in the cache.
    pub(crate) fn note_prefetched(&self, chunks: u64, bytes: u64) {
        self.prefetched_chunks.fetch_add(chunks, Ordering::Relaxed);
        self.prefetched_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Prefetch/chunk-cache counters (one lock for the residency pair,
    /// atomics otherwise).
    pub fn prefetch_stats(&self) -> PrefetchStats {
        let (cached_chunks, cached_bytes) = {
            let cache = self.chunks.lock();
            (cache.entries.len(), cache.bytes)
        };
        PrefetchStats {
            prefetched_chunks: self.prefetched_chunks.load(Ordering::Relaxed),
            prefetched_bytes: self.prefetched_bytes.load(Ordering::Relaxed),
            hits: self.prefetch_hits.load(Ordering::Relaxed),
            hit_bytes: self.prefetch_hit_bytes.load(Ordering::Relaxed),
            wasted_chunks: self.prefetch_wasted.load(Ordering::Relaxed),
            cache_hits: self.chunk_cache_hits.load(Ordering::Relaxed),
            cached_chunks,
            cached_bytes,
        }
    }

    /// Aggregate counters, read lock-free except for the entry count.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            desc_hits: self.desc_hits.load(Ordering::Relaxed),
            desc_misses: self.desc_misses.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
            dedup_reused_bytes: self.dedup_reused_bytes.load(Ordering::Relaxed),
            desc_entries: self.desc_entries(),
        }
    }

    /// Contention counters of the node-shared chunk-cache lock (serving
    /// diagnostics; see [`crate::lockstat`]).
    pub fn chunk_cache_contention(&self) -> LockContention {
        self.chunks_probe.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::ChunkId;
    use bff_net::NodeId;
    use std::sync::Arc;

    fn ctx(versions: usize) -> NodeContext {
        NodeContext::new(&BlobConfig {
            desc_cache_versions: versions,
            ..Default::default()
        })
    }

    fn desc(id: u64) -> ChunkDesc {
        ChunkDesc {
            id: ChunkId(id),
            replicas: Arc::from([NodeId(0)].as_slice()),
        }
    }

    #[test]
    fn entries_bounded_and_lru_evicted_per_shard() {
        let c = ctx(16);
        assert_eq!(c.desc_capacity(), 16);
        // Insert far more entries than capacity.
        for v in 1..=200u64 {
            c.with_entry((BlobId(1), Version(v)), |e| {
                e.descs.insert(0, desc(v));
            });
        }
        assert!(c.desc_entries() <= c.desc_capacity());
        // The most recent entry survived (it is the newest in its shard).
        assert!(c.entry_snapshot((BlobId(1), Version(200))).is_some());
    }

    #[test]
    fn capacity_is_exact_for_any_configuration() {
        // The configured bound is honored to the entry — including
        // values smaller than, and not divisible by, the shard count.
        for cap in [1usize, 3, 4, 10, 16, 64, 100] {
            let c = ctx(cap);
            assert_eq!(c.desc_capacity(), cap, "configured {cap}");
            for v in 1..=(cap as u64 * 20) {
                c.with_entry((BlobId(1), Version(v)), |_| {});
            }
            assert!(
                c.desc_entries() <= cap,
                "configured {cap}, holding {}",
                c.desc_entries()
            );
        }
    }

    #[test]
    fn recently_used_entries_survive_churn() {
        // Shard capacity 8: the hot entry (re-touched every other step)
        // can only be a shard's LRU victim if 7 churn entries landed in
        // its shard within 2 steps — impossible, so it must survive.
        let c = ctx(64);
        let hot = (BlobId(7), Version(1));
        c.with_entry(hot, |e| {
            e.descs.insert(0, desc(99));
        });
        // Churn many one-shot entries, re-touching the hot one often
        // enough that it is never its shard's LRU victim.
        for v in 1..=500u64 {
            c.with_entry((BlobId(1), Version(v)), |_| {});
            if v % 2 == 0 {
                assert!(
                    c.entry_snapshot(hot).is_some(),
                    "hot entry evicted at churn step {v}"
                );
            }
        }
        let got = c.entry_snapshot(hot).expect("hot entry survives churn");
        assert!(got.descs.contains_key(&0));
        assert!(c.desc_entries() <= c.desc_capacity());
    }

    #[test]
    fn take_and_insert_move_entries_between_keys() {
        let c = ctx(16);
        let a = (BlobId(1), Version(1));
        let b = (BlobId(1), Version(2));
        c.with_entry(a, |e| {
            e.resolved.insert(0..4);
            e.descs.insert(2, desc(5));
        });
        let moved = c.take_entry(a).expect("present");
        assert!(c.entry_snapshot(a).is_none(), "take removes");
        c.insert_entry(b, moved);
        let got = c.entry_snapshot(b).expect("moved entry");
        assert_eq!(got.descs.get(&2), Some(&desc(5)));
    }

    #[test]
    fn counters_accumulate() {
        let c = ctx(8);
        c.note_desc_lookup(3, 1);
        c.note_desc_lookup(0, 2);
        c.note_dedup(2, 256);
        let s = c.stats();
        assert_eq!((s.desc_hits, s.desc_misses), (3, 3));
        assert_eq!((s.dedup_hits, s.dedup_reused_bytes), (2, 256));
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn access_tracking_batches_publishes() {
        let half = PUBLISH_BATCH as u64 / 2;
        let c = ctx(8);
        let key = (BlobId(1), Version(1));
        // Below the batch threshold: nothing to publish yet.
        assert!(c.note_accesses(key, 0..half).is_none());
        // Crossing it returns every unpublished first-touch index, in
        // order, with repeats deduplicated.
        let second: Vec<u64> = (0..half) // repeats: already seen
            .chain(half..2 * PUBLISH_BATCH as u64)
            .collect();
        let batch = c.note_accesses(key, second).expect("threshold crossed");
        assert_eq!(batch, (0..2 * PUBLISH_BATCH as u64).collect::<Vec<u64>>());
        // Re-touching published chunks never re-publishes them.
        assert!(c.note_accesses(key, 0..2 * PUBLISH_BATCH as u64).is_none());
    }

    #[test]
    fn claim_prefetch_walks_peer_sequence_once() {
        let c = ctx(8);
        let key = (BlobId(2), Version(1));
        c.note_accesses(key, [3u64, 4]);
        let seq: Vec<u64> = (0..10).collect();
        assert!(c.prefetch_cursor_behind(key, seq.len()));
        // Seen chunks (3, 4) are skipped; claims are bounded.
        assert_eq!(c.claim_prefetch(key, &seq, None, 4), vec![0, 1, 2, 5]);
        assert_eq!(c.claim_prefetch(key, &seq, None, 100), vec![6, 7, 8, 9]);
        assert!(!c.prefetch_cursor_behind(key, seq.len()));
        // Nothing is ever claimed twice.
        assert!(c.claim_prefetch(key, &seq, None, 100).is_empty());
    }

    #[test]
    fn claim_prefetch_skips_unconfident_chunks_without_claiming() {
        let c = ctx(8);
        let key = (BlobId(3), Version(1));
        let seq: Vec<u64> = vec![10, 11, 12, 13];
        let mask = vec![true, false, true, false];
        assert_eq!(c.claim_prefetch(key, &seq, Some(&mask), 10), vec![10, 12]);
        // The cursor consumed the whole sequence: unconfident chunks are
        // walked past, not queued for later.
        assert!(!c.prefetch_cursor_behind(key, seq.len()));
        assert!(c.claim_prefetch(key, &seq, None, 10).is_empty());
    }

    fn chunk_ctx(cache_bytes: u64) -> NodeContext {
        NodeContext::new(&BlobConfig {
            prefetch: true,
            chunk_cache_bytes: cache_bytes,
            ..Default::default()
        })
    }

    #[test]
    fn chunk_cache_roundtrip_counts_hits() {
        let c = chunk_ctx(1 << 20);
        let p = bff_data::Payload::synth(9, 0, 100);
        assert!(c.chunk_cache_get(ChunkId(1)).is_none());
        c.chunk_cache_insert(ChunkId(1), p.clone(), ChunkOrigin::Prefetch);
        assert!(c.chunk_cache_contains(ChunkId(1)));
        let got = c.chunk_cache_get(ChunkId(1)).expect("cached");
        assert!(got.content_eq(&p));
        let s = c.prefetch_stats();
        // First use of a prefetched entry counts as a prefetch hit ...
        assert_eq!((s.hits, s.hit_bytes), (1, 100));
        // ... later uses only as plain cache hits.
        c.chunk_cache_get(ChunkId(1)).expect("still cached");
        let s = c.prefetch_stats();
        assert_eq!((s.hits, s.cache_hits), (1, 2));
        assert_eq!((s.cached_chunks, s.cached_bytes), (1, 100));
    }

    #[test]
    fn chunk_cache_bounded_lru_counts_waste() {
        let c = chunk_ctx(300);
        for i in 1..=3u64 {
            c.chunk_cache_insert(
                ChunkId(i),
                bff_data::Payload::zeros(100),
                ChunkOrigin::Prefetch,
            );
        }
        // Touch 1 so 2 is the LRU victim when 4 arrives.
        c.chunk_cache_get(ChunkId(1)).unwrap();
        c.chunk_cache_insert(
            ChunkId(4),
            bff_data::Payload::zeros(100),
            ChunkOrigin::Demand,
        );
        assert!(!c.chunk_cache_contains(ChunkId(2)), "LRU victim evicted");
        assert!(c.chunk_cache_contains(ChunkId(1)));
        let s = c.prefetch_stats();
        assert_eq!(s.cached_bytes, 300, "byte bound holds");
        assert_eq!(
            s.wasted_chunks, 1,
            "an unused prefetched entry evicted counts as waste"
        );
    }

    #[test]
    fn chunk_cache_queue_stays_bounded_under_hit_churn() {
        // Every hit refreshes the LRU stamp and parks a queue slot;
        // with a working set under the byte bound, eviction never runs,
        // so the queue must self-compact instead of growing per hit.
        let c = chunk_ctx(1 << 20);
        for i in 1..=4u64 {
            c.chunk_cache_insert(
                ChunkId(i),
                bff_data::Payload::zeros(64),
                ChunkOrigin::Demand,
            );
        }
        for round in 0..10_000u64 {
            c.chunk_cache_get(ChunkId(1 + round % 4)).expect("resident");
        }
        let q = c.chunks.lock().queue.len();
        assert!(q <= 8, "queue grew to {q} slots for 4 live entries");
    }

    #[test]
    fn trackers_bounded_by_desc_cache_versions() {
        let c = NodeContext::new(&BlobConfig {
            prefetch: true,
            desc_cache_versions: 8,
            ..Default::default()
        });
        for v in 1..=100u64 {
            c.note_accesses((BlobId(1), Version(v)), 0..3);
        }
        let held = c.trackers.lock().len();
        assert!(held <= 8, "trackers grew to {held} for bound 8");
        // The most recent tracker survived with its state.
        assert!(!c.prefetch_cursor_behind((BlobId(1), Version(100)), 0));
        let seq: Vec<u64> = (0..6).collect();
        assert_eq!(
            c.claim_prefetch((BlobId(1), Version(100)), &seq, None, 10),
            vec![3, 4, 5],
            "recent tracker kept its seen set through churn"
        );
    }

    #[test]
    fn zero_capacity_chunk_cache_is_inert() {
        let c = chunk_ctx(0);
        c.chunk_cache_insert(
            ChunkId(1),
            bff_data::Payload::zeros(10),
            ChunkOrigin::Demand,
        );
        assert!(!c.chunk_cache_contains(ChunkId(1)));
        assert!(c.chunk_cache_get(ChunkId(1)).is_none());
        // Prefetch off disables the cache regardless of the byte bound.
        let off = NodeContext::new(&BlobConfig {
            prefetch: false,
            chunk_cache_bytes: 1 << 20,
            ..Default::default()
        });
        off.chunk_cache_insert(
            ChunkId(1),
            bff_data::Payload::zeros(10),
            ChunkOrigin::Demand,
        );
        assert!(!off.chunk_cache_contains(ChunkId(1)));
    }

    #[test]
    fn digest_index_roundtrip() {
        let c = ctx(8);
        let key = (128u64, bff_data::ContentDigest::Weak(bff_data::Digest(42)));
        assert!(c.digest_lookup(&key).is_none());
        c.digest_record(key, desc(9));
        assert_eq!(c.digest_lookup(&key), Some(desc(9)));
        c.digest_forget(&key);
        assert!(c.digest_lookup(&key).is_none());
    }
}
