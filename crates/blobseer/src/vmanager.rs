//! The version manager: the serialization point that assigns snapshot
//! versions, totally orders publications per blob, and implements CLONE.
//!
//! This mirrors BlobSeer's version manager role (§4.1): striping and data
//! transfers are fully decentralized, but the version sequence of each
//! blob is decided in one place so that snapshots are totally ordered
//! (§4.2). Cloning (the paper's extension, Fig. 3b) is O(1): the new
//! blob's first version simply references the source tree's root.
//!
//! The version manager is also the serialization point for **snapshot
//! deletion** ([`VManager::delete_snapshots`]): it marks versions dead
//! (version numbers are never reused; a deleted version simply stops
//! resolving) and hands the garbage collector the set of roots that can
//! still reach shared metadata — every live root of the blob's *clone
//! family* ([`VManager::family_live_roots`]). Trees only ever share
//! leaf nodes through shadowing within a blob or through CLONE across
//! blobs, so the clone-connected component bounds exactly which trees
//! the collector must treat as live.

use crate::api::{BlobError, BlobId, BlobResult, NodeKey, Version};
use std::collections::{HashMap, HashSet};
use std::ops::Range;

/// Per-blob metadata kept by the version manager.
#[derive(Debug, Clone)]
pub struct BlobMeta {
    /// Logical size in bytes (fixed at creation; VM images do not grow).
    pub size: u64,
    /// Stripe size in bytes.
    pub chunk_size: u64,
    /// Segment-tree span (power of two ≥ chunk count).
    pub span: u64,
    /// Root per version: `roots[v]` is the tree of `Version(v)`.
    /// `roots[0]` is always `NodeKey::NULL` (the empty blob).
    pub roots: Vec<NodeKey>,
    /// Versions dropped by [`VManager::delete_snapshots`]. Numbers are
    /// never reused: a deleted version's slot stays occupied but no
    /// longer resolves.
    pub deleted: HashSet<u64>,
    /// Clone-family id: blobs connected through CLONE edges share it
    /// (a clone inherits its source's family). Only family members can
    /// share metadata tree nodes.
    pub family: u64,
}

impl BlobMeta {
    /// Latest published version (deleted or not — version numbers are
    /// never reused, so the publication sequence is unaffected by GC).
    pub fn latest(&self) -> Version {
        Version(self.roots.len() as u64 - 1)
    }

    /// Root of a version, if it exists and has not been deleted.
    pub fn root(&self, v: Version) -> Option<NodeKey> {
        if self.deleted.contains(&v.0) {
            return None;
        }
        self.roots.get(v.0 as usize).copied()
    }
}

/// Version-manager state (one logical instance per service).
#[derive(Debug, Default)]
pub struct VManager {
    blobs: HashMap<BlobId, BlobMeta>,
    next_blob: u64,
    next_node_key: u64,
}

impl VManager {
    /// Fresh state. Node key 0 is reserved for `NodeKey::NULL`.
    pub fn new() -> Self {
        Self {
            blobs: HashMap::new(),
            next_blob: 1,
            next_node_key: 1,
        }
    }

    /// Mark `versions` of `blob` deleted, returning their roots for the
    /// collector to sweep. All-or-nothing: every version must exist,
    /// be undeleted and non-zero (`Version(0)` is the shared empty
    /// version, not a snapshot), or nothing is marked.
    pub fn delete_snapshots(
        &mut self,
        blob: BlobId,
        versions: &[Version],
    ) -> BlobResult<Vec<NodeKey>> {
        let meta = self
            .blobs
            .get_mut(&blob)
            .ok_or(BlobError::NoSuchBlob(blob))?;
        let mut roots = Vec::with_capacity(versions.len());
        let mut marking: HashSet<u64> = HashSet::with_capacity(versions.len());
        for &v in versions {
            if v.0 == 0 {
                return Err(BlobError::BadInput("cannot delete Version(0)"));
            }
            if marking.contains(&v.0) {
                return Err(BlobError::BadInput("duplicate version in delete set"));
            }
            let root = meta.root(v).ok_or(BlobError::NoSuchVersion(blob, v))?;
            marking.insert(v.0);
            roots.push(root);
        }
        meta.deleted.extend(marking);
        Ok(roots)
    }

    /// The still-live (published, undeleted) snapshot versions of
    /// `blob`, ascending — what a terminate-style "delete everything"
    /// sweep must pass to [`VManager::delete_snapshots`], which is
    /// all-or-nothing and rejects already-deleted versions.
    pub fn live_snapshots(&self, blob: BlobId) -> BlobResult<Vec<Version>> {
        let meta = self.meta(blob)?;
        Ok((1..meta.roots.len() as u64)
            .filter(|v| !meta.deleted.contains(v))
            .map(Version)
            .collect())
    }

    /// Every live (undeleted, non-NULL) root in `blob`'s clone family —
    /// the reachability frontier a snapshot delete must treat as alive.
    /// Trees outside the family cannot share metadata nodes with the
    /// deleted ones (dedup shares *chunks* via separate refcounted
    /// leaves, never leaf nodes), so the collector need not walk them.
    pub fn family_live_roots(&self, blob: BlobId) -> BlobResult<Vec<NodeKey>> {
        let family = self.meta(blob)?.family;
        let mut out = Vec::new();
        for meta in self.blobs.values() {
            if meta.family != family {
                continue;
            }
            for (v, &root) in meta.roots.iter().enumerate() {
                if !root.is_null() && !meta.deleted.contains(&(v as u64)) {
                    out.push(root);
                }
            }
        }
        Ok(out)
    }

    /// Create an empty blob of `size` bytes striped into `chunk_size`
    /// chunks. Its `Version(0)` reads as all zeros.
    pub fn create_blob(&mut self, size: u64, chunk_size: u64) -> BlobResult<BlobId> {
        if chunk_size == 0 {
            return Err(BlobError::BadInput("chunk_size must be positive"));
        }
        let id = BlobId(self.next_blob);
        self.next_blob += 1;
        let chunks = size.div_ceil(chunk_size);
        self.blobs.insert(
            id,
            BlobMeta {
                size,
                chunk_size,
                span: crate::segtree::span_for(chunks),
                roots: vec![NodeKey::NULL],
                deleted: HashSet::new(),
                // A fresh blob founds its own clone family (the blob id
                // is unique, so it doubles as the family id).
                family: id.0,
            },
        );
        Ok(id)
    }

    /// Metadata for a blob.
    pub fn meta(&self, blob: BlobId) -> BlobResult<&BlobMeta> {
        self.blobs.get(&blob).ok_or(BlobError::NoSuchBlob(blob))
    }

    /// Root of `(blob, version)`.
    pub fn root_of(&self, blob: BlobId, version: Version) -> BlobResult<NodeKey> {
        self.meta(blob)?
            .root(version)
            .ok_or(BlobError::NoSuchVersion(blob, version))
    }

    /// Publish a new snapshot of `blob` whose tree is `root`, based on
    /// `base`. Fails with `Conflict` if `base` is no longer the latest —
    /// optimistic concurrency for writers sharing a blob. (In the paper's
    /// patterns each VM commits to its own clone, so conflicts indicate
    /// middleware bugs rather than expected races.)
    pub fn publish(&mut self, blob: BlobId, base: Version, root: NodeKey) -> BlobResult<Version> {
        let meta = self
            .blobs
            .get_mut(&blob)
            .ok_or(BlobError::NoSuchBlob(blob))?;
        let latest = Version(meta.roots.len() as u64 - 1);
        if base != latest {
            return Err(BlobError::Conflict { blob, base, latest });
        }
        // A deleted base cannot anchor new snapshots: its tree may
        // reference chunks GC already reclaimed, so a commit shadowing
        // it would publish dangling leaves. Rejecting here (the
        // serialization point) closes that hole even for writers whose
        // client-side caches predate the delete.
        if meta.deleted.contains(&base.0) {
            return Err(BlobError::NoSuchVersion(blob, base));
        }
        meta.roots.push(root);
        Ok(Version(meta.roots.len() as u64 - 1))
    }

    /// CLONE: a new blob whose `Version(1)` is `(src, version)`'s tree.
    /// Shares all chunks and all metadata nodes with the source; the cost
    /// is one registry entry (§4.2: "minimal overhead, both in space and
    /// in time").
    pub fn clone_blob(&mut self, src: BlobId, version: Version) -> BlobResult<BlobId> {
        let (size, chunk_size, span, root, family) = {
            let meta = self.meta(src)?;
            let root = meta
                .root(version)
                .ok_or(BlobError::NoSuchVersion(src, version))?;
            (meta.size, meta.chunk_size, meta.span, root, meta.family)
        };
        let id = BlobId(self.next_blob);
        self.next_blob += 1;
        self.blobs.insert(
            id,
            BlobMeta {
                size,
                chunk_size,
                span,
                roots: vec![NodeKey::NULL, root],
                deleted: HashSet::new(),
                // The clone shares the source tree, so it joins the
                // source's clone family: deletes on either side must
                // see the other's live roots.
                family,
            },
        );
        Ok(id)
    }

    /// Reserve `n` globally unique metadata node keys.
    pub fn reserve_keys(&mut self, n: u64) -> Range<u64> {
        let start = self.next_node_key;
        self.next_node_key += n;
        start..self.next_node_key
    }

    /// Next key [`VManager::reserve_keys`] would hand out.
    pub fn next_key(&self) -> u64 {
        self.next_node_key
    }

    /// Raise the key allocator to at least `floor` (recovery: a crash
    /// may have acked reservations whose exact extent was not recorded,
    /// so replay skips to the journaled high-water mark — keys are
    /// skipped, never reused).
    pub fn ensure_key_floor(&mut self, floor: u64) {
        self.next_node_key = self.next_node_key.max(floor);
    }

    /// Number of registered blobs.
    pub fn blob_count(&self) -> usize {
        self.blobs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_lookup() {
        let mut vm = VManager::new();
        let b = vm.create_blob(10_000, 256).unwrap();
        let meta = vm.meta(b).unwrap();
        assert_eq!(meta.size, 10_000);
        assert_eq!(meta.span, 64, "ceil(10000/256)=40 chunks -> span 64");
        assert_eq!(meta.latest(), Version(0));
        assert_eq!(vm.root_of(b, Version(0)).unwrap(), NodeKey::NULL);
        assert!(vm.root_of(b, Version(1)).is_err());
    }

    #[test]
    fn publish_appends_versions_in_order() {
        let mut vm = VManager::new();
        let b = vm.create_blob(1000, 100).unwrap();
        let v1 = vm.publish(b, Version(0), NodeKey(10)).unwrap();
        assert_eq!(v1, Version(1));
        let v2 = vm.publish(b, v1, NodeKey(20)).unwrap();
        assert_eq!(v2, Version(2));
        assert_eq!(vm.root_of(b, Version(1)).unwrap(), NodeKey(10));
        assert_eq!(vm.root_of(b, Version(2)).unwrap(), NodeKey(20));
    }

    #[test]
    fn stale_publish_conflicts() {
        let mut vm = VManager::new();
        let b = vm.create_blob(1000, 100).unwrap();
        vm.publish(b, Version(0), NodeKey(10)).unwrap();
        let err = vm.publish(b, Version(0), NodeKey(30)).unwrap_err();
        assert!(matches!(
            err,
            BlobError::Conflict {
                latest: Version(1),
                ..
            }
        ));
    }

    #[test]
    fn clone_shares_root_and_diverges() {
        let mut vm = VManager::new();
        let a = vm.create_blob(1000, 100).unwrap();
        vm.publish(a, Version(0), NodeKey(10)).unwrap();
        let b = vm.clone_blob(a, Version(1)).unwrap();
        assert_ne!(a, b);
        assert_eq!(vm.root_of(b, Version(1)).unwrap(), NodeKey(10));
        // Publishing to the clone leaves the origin untouched.
        vm.publish(b, Version(1), NodeKey(77)).unwrap();
        assert_eq!(vm.meta(a).unwrap().latest(), Version(1));
        assert_eq!(vm.meta(b).unwrap().latest(), Version(2));
    }

    #[test]
    fn clone_of_missing_version_fails() {
        let mut vm = VManager::new();
        let a = vm.create_blob(1000, 100).unwrap();
        assert!(matches!(
            vm.clone_blob(a, Version(3)),
            Err(BlobError::NoSuchVersion(_, Version(3)))
        ));
    }

    #[test]
    fn delete_marks_versions_and_stops_resolution() {
        let mut vm = VManager::new();
        let b = vm.create_blob(1000, 100).unwrap();
        vm.publish(b, Version(0), NodeKey(10)).unwrap();
        vm.publish(b, Version(1), NodeKey(20)).unwrap();
        let roots = vm.delete_snapshots(b, &[Version(1)]).unwrap();
        assert_eq!(roots, vec![NodeKey(10)]);
        assert!(
            vm.root_of(b, Version(1)).is_err(),
            "deleted stops resolving"
        );
        assert_eq!(vm.root_of(b, Version(2)).unwrap(), NodeKey(20));
        // Version numbering is unaffected: the next publish is v3.
        assert_eq!(vm.meta(b).unwrap().latest(), Version(2));
        let v3 = vm.publish(b, Version(2), NodeKey(30)).unwrap();
        assert_eq!(v3, Version(3));
        // Double delete and Version(0) are rejected; the batch is
        // all-or-nothing.
        assert!(vm.delete_snapshots(b, &[Version(1)]).is_err());
        assert!(vm.delete_snapshots(b, &[Version(0)]).is_err());
        assert!(vm.delete_snapshots(b, &[Version(2), Version(2)]).is_err());
        assert!(vm.delete_snapshots(b, &[Version(2), Version(9)]).is_err());
        assert_eq!(vm.root_of(b, Version(2)).unwrap(), NodeKey(20), "atomic");
        assert_eq!(vm.live_snapshots(b).unwrap(), vec![Version(2), Version(3)]);
        // A deleted *latest* cannot anchor new snapshots, even for a
        // writer that raced the delete with the right base number.
        vm.delete_snapshots(b, &[Version(3)]).unwrap();
        assert!(matches!(
            vm.publish(b, Version(3), NodeKey(40)),
            Err(BlobError::NoSuchVersion(_, Version(3)))
        ));
    }

    #[test]
    fn clone_of_deleted_version_fails() {
        let mut vm = VManager::new();
        let a = vm.create_blob(1000, 100).unwrap();
        vm.publish(a, Version(0), NodeKey(10)).unwrap();
        vm.delete_snapshots(a, &[Version(1)]).unwrap();
        assert!(matches!(
            vm.clone_blob(a, Version(1)),
            Err(BlobError::NoSuchVersion(_, Version(1)))
        ));
    }

    #[test]
    fn family_live_roots_span_clones_and_skip_deleted() {
        let mut vm = VManager::new();
        let a = vm.create_blob(1000, 100).unwrap();
        vm.publish(a, Version(0), NodeKey(10)).unwrap();
        let b = vm.clone_blob(a, Version(1)).unwrap();
        vm.publish(b, Version(1), NodeKey(20)).unwrap();
        let unrelated = vm.create_blob(1000, 100).unwrap();
        vm.publish(unrelated, Version(0), NodeKey(99)).unwrap();
        // The family sees a's root (also b's v1 alias) and b's v2 — not
        // the unrelated blob's tree.
        let mut roots = vm.family_live_roots(a).unwrap();
        roots.sort();
        assert_eq!(roots, vec![NodeKey(10), NodeKey(10), NodeKey(20)]);
        assert_eq!(
            vm.family_live_roots(a).unwrap(),
            vm.family_live_roots(b).unwrap()
        );
        // Deleting a's version leaves the clone's alias root live.
        vm.delete_snapshots(a, &[Version(1)]).unwrap();
        let mut roots = vm.family_live_roots(a).unwrap();
        roots.sort();
        assert_eq!(roots, vec![NodeKey(10), NodeKey(20)]);
    }

    #[test]
    fn key_reservation_is_disjoint() {
        let mut vm = VManager::new();
        let a = vm.reserve_keys(5);
        let b = vm.reserve_keys(3);
        assert_eq!(a.end, b.start);
        assert!(a.start >= 1, "key 0 is NULL");
    }
}
