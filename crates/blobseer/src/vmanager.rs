//! The version manager: the serialization point that assigns snapshot
//! versions, totally orders publications per blob, and implements CLONE.
//!
//! This mirrors BlobSeer's version manager role (§4.1): striping and data
//! transfers are fully decentralized, but the version sequence of each
//! blob is decided in one place so that snapshots are totally ordered
//! (§4.2). Cloning (the paper's extension, Fig. 3b) is O(1): the new
//! blob's first version simply references the source tree's root.

use crate::api::{BlobError, BlobId, BlobResult, NodeKey, Version};
use std::collections::HashMap;
use std::ops::Range;

/// Per-blob metadata kept by the version manager.
#[derive(Debug, Clone)]
pub struct BlobMeta {
    /// Logical size in bytes (fixed at creation; VM images do not grow).
    pub size: u64,
    /// Stripe size in bytes.
    pub chunk_size: u64,
    /// Segment-tree span (power of two ≥ chunk count).
    pub span: u64,
    /// Root per version: `roots[v]` is the tree of `Version(v)`.
    /// `roots[0]` is always `NodeKey::NULL` (the empty blob).
    pub roots: Vec<NodeKey>,
}

impl BlobMeta {
    /// Latest published version.
    pub fn latest(&self) -> Version {
        Version(self.roots.len() as u64 - 1)
    }

    /// Root of a version, if it exists.
    pub fn root(&self, v: Version) -> Option<NodeKey> {
        self.roots.get(v.0 as usize).copied()
    }
}

/// Version-manager state (one logical instance per service).
#[derive(Debug, Default)]
pub struct VManager {
    blobs: HashMap<BlobId, BlobMeta>,
    next_blob: u64,
    next_node_key: u64,
}

impl VManager {
    /// Fresh state. Node key 0 is reserved for `NodeKey::NULL`.
    pub fn new() -> Self {
        Self {
            blobs: HashMap::new(),
            next_blob: 1,
            next_node_key: 1,
        }
    }

    /// Create an empty blob of `size` bytes striped into `chunk_size`
    /// chunks. Its `Version(0)` reads as all zeros.
    pub fn create_blob(&mut self, size: u64, chunk_size: u64) -> BlobResult<BlobId> {
        if chunk_size == 0 {
            return Err(BlobError::BadInput("chunk_size must be positive"));
        }
        let id = BlobId(self.next_blob);
        self.next_blob += 1;
        let chunks = size.div_ceil(chunk_size);
        self.blobs.insert(
            id,
            BlobMeta {
                size,
                chunk_size,
                span: crate::segtree::span_for(chunks),
                roots: vec![NodeKey::NULL],
            },
        );
        Ok(id)
    }

    /// Metadata for a blob.
    pub fn meta(&self, blob: BlobId) -> BlobResult<&BlobMeta> {
        self.blobs.get(&blob).ok_or(BlobError::NoSuchBlob(blob))
    }

    /// Root of `(blob, version)`.
    pub fn root_of(&self, blob: BlobId, version: Version) -> BlobResult<NodeKey> {
        self.meta(blob)?
            .root(version)
            .ok_or(BlobError::NoSuchVersion(blob, version))
    }

    /// Publish a new snapshot of `blob` whose tree is `root`, based on
    /// `base`. Fails with `Conflict` if `base` is no longer the latest —
    /// optimistic concurrency for writers sharing a blob. (In the paper's
    /// patterns each VM commits to its own clone, so conflicts indicate
    /// middleware bugs rather than expected races.)
    pub fn publish(&mut self, blob: BlobId, base: Version, root: NodeKey) -> BlobResult<Version> {
        let meta = self
            .blobs
            .get_mut(&blob)
            .ok_or(BlobError::NoSuchBlob(blob))?;
        let latest = Version(meta.roots.len() as u64 - 1);
        if base != latest {
            return Err(BlobError::Conflict { blob, base, latest });
        }
        meta.roots.push(root);
        Ok(Version(meta.roots.len() as u64 - 1))
    }

    /// CLONE: a new blob whose `Version(1)` is `(src, version)`'s tree.
    /// Shares all chunks and all metadata nodes with the source; the cost
    /// is one registry entry (§4.2: "minimal overhead, both in space and
    /// in time").
    pub fn clone_blob(&mut self, src: BlobId, version: Version) -> BlobResult<BlobId> {
        let (size, chunk_size, span, root) = {
            let meta = self.meta(src)?;
            let root = meta
                .root(version)
                .ok_or(BlobError::NoSuchVersion(src, version))?;
            (meta.size, meta.chunk_size, meta.span, root)
        };
        let id = BlobId(self.next_blob);
        self.next_blob += 1;
        self.blobs.insert(
            id,
            BlobMeta {
                size,
                chunk_size,
                span,
                roots: vec![NodeKey::NULL, root],
            },
        );
        Ok(id)
    }

    /// Reserve `n` globally unique metadata node keys.
    pub fn reserve_keys(&mut self, n: u64) -> Range<u64> {
        let start = self.next_node_key;
        self.next_node_key += n;
        start..self.next_node_key
    }

    /// Number of registered blobs.
    pub fn blob_count(&self) -> usize {
        self.blobs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_lookup() {
        let mut vm = VManager::new();
        let b = vm.create_blob(10_000, 256).unwrap();
        let meta = vm.meta(b).unwrap();
        assert_eq!(meta.size, 10_000);
        assert_eq!(meta.span, 64, "ceil(10000/256)=40 chunks -> span 64");
        assert_eq!(meta.latest(), Version(0));
        assert_eq!(vm.root_of(b, Version(0)).unwrap(), NodeKey::NULL);
        assert!(vm.root_of(b, Version(1)).is_err());
    }

    #[test]
    fn publish_appends_versions_in_order() {
        let mut vm = VManager::new();
        let b = vm.create_blob(1000, 100).unwrap();
        let v1 = vm.publish(b, Version(0), NodeKey(10)).unwrap();
        assert_eq!(v1, Version(1));
        let v2 = vm.publish(b, v1, NodeKey(20)).unwrap();
        assert_eq!(v2, Version(2));
        assert_eq!(vm.root_of(b, Version(1)).unwrap(), NodeKey(10));
        assert_eq!(vm.root_of(b, Version(2)).unwrap(), NodeKey(20));
    }

    #[test]
    fn stale_publish_conflicts() {
        let mut vm = VManager::new();
        let b = vm.create_blob(1000, 100).unwrap();
        vm.publish(b, Version(0), NodeKey(10)).unwrap();
        let err = vm.publish(b, Version(0), NodeKey(30)).unwrap_err();
        assert!(matches!(
            err,
            BlobError::Conflict {
                latest: Version(1),
                ..
            }
        ));
    }

    #[test]
    fn clone_shares_root_and_diverges() {
        let mut vm = VManager::new();
        let a = vm.create_blob(1000, 100).unwrap();
        vm.publish(a, Version(0), NodeKey(10)).unwrap();
        let b = vm.clone_blob(a, Version(1)).unwrap();
        assert_ne!(a, b);
        assert_eq!(vm.root_of(b, Version(1)).unwrap(), NodeKey(10));
        // Publishing to the clone leaves the origin untouched.
        vm.publish(b, Version(1), NodeKey(77)).unwrap();
        assert_eq!(vm.meta(a).unwrap().latest(), Version(1));
        assert_eq!(vm.meta(b).unwrap().latest(), Version(2));
    }

    #[test]
    fn clone_of_missing_version_fails() {
        let mut vm = VManager::new();
        let a = vm.create_blob(1000, 100).unwrap();
        assert!(matches!(
            vm.clone_blob(a, Version(3)),
            Err(BlobError::NoSuchVersion(_, Version(3)))
        ));
    }

    #[test]
    fn key_reservation_is_disjoint() {
        let mut vm = VManager::new();
        let a = vm.reserve_keys(5);
        let b = vm.reserve_keys(3);
        assert_eq!(a.end, b.start);
        assert!(a.start >= 1, "key 0 is NULL");
    }
}
