//! Public configuration and placement of the BlobSeer-like versioning
//! storage service.
//!
//! The service's identifier, descriptor and error types live in
//! [`bff_wire::types`] — they *are* the wire protocol's vocabulary — and
//! are re-exported here unchanged, so `bff_blobseer::api::BlobId` (and
//! every other historical path) keeps working.

use bff_net::NodeId;

pub use bff_wire::types::{
    BlobError, BlobId, BlobResult, ChunkDesc, ChunkId, NodeKey, TreeNode, Version,
};

/// How chunk replicas are pushed to their providers on write.
///
/// All modes move the same payload bytes and leave byte-identical
/// provider state; they differ in how the transfers are shaped, which is
/// what the fabric's per-message and per-link costs see.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationMode {
    /// The client pushes every replica itself, with all pushes grouped by
    /// destination provider into one batched transfer each. Highest
    /// client egress (`k×` the payload), lowest replication latency depth.
    Fanout,
    /// The client pushes each chunk group to its first replica only; each
    /// replica forwards the batch to the next one in the descriptor's
    /// replica order. Client egress is `1×` the payload; the forwarding
    /// load rides the providers' links. The *whole batch* moves hop by
    /// hop, so on a fabric with non-zero transfer time the chain's
    /// latency is `hops × batch time`.
    Chain,
    /// Chain replication with chunk-granular pipelining: each chunk walks
    /// the replica chain independently, so hop `n+1` starts streaming
    /// chunk `i` while hop `n` is already receiving chunk `i+1` — on the
    /// simulated fabric the chain's latency collapses towards
    /// `batch time + hops × chunk time` (the Frisbee-style overlap the
    /// broadcast ablations show, applied to replication). Client egress
    /// is still `1×` the payload; the cost is one message per
    /// `(chunk, hop)` instead of one per hop, which is what the fabric's
    /// per-message overhead sees. Failover semantics are identical to
    /// [`ReplicationMode::Chain`]: a dead hop is skipped per chunk and
    /// the next hop is fed from the last live holder.
    ChainPipelined,
    /// The pre-batching reference path: one push per chunk, replicas in
    /// sequence. Kept for equivalence tests and as the perf baseline the
    /// `bench-regression` CI gate measures the batched modes against.
    Sequential,
}

/// How typed requests reach the server roles (see `bff_net::Transport`
/// and the `bff-wire` crate docs).
///
/// All three modes produce **identical logical outcomes** — every
/// modelled cost is charged to the fabric by the client before the
/// message moves, so the carrying mechanism is orthogonal to the
/// simulated economics. They differ only in mechanism (and real CPU
/// cost):
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportMode {
    /// In-process zero-copy dispatch against locally held server state —
    /// the historical behaviour and the equivalence baseline.
    Direct,
    /// In-process, but every request/response round-trips through the
    /// full `bff-wire` binary codec. Anything that could not cross a
    /// process boundary fails loudly here.
    Codec,
    /// Real framed TCP over loopback: one listener thread per server
    /// role, spawned inside this process. (A genuinely multi-process
    /// cluster instead connects a `SocketTransport` to external
    /// `blob_server` processes via [`crate::BlobStore::remote`].)
    Socket,
}

impl TransportMode {
    /// Stable textual name (CLI flags, `BFF_TRANSPORT`).
    pub fn name(self) -> &'static str {
        match self {
            TransportMode::Direct => "direct",
            TransportMode::Codec => "codec",
            TransportMode::Socket => "socket",
        }
    }

    /// Parse [`TransportMode::name`] back.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim() {
            "direct" => Some(TransportMode::Direct),
            "codec" => Some(TransportMode::Codec),
            "socket" => Some(TransportMode::Socket),
            _ => None,
        }
    }

    fn from_env() -> Self {
        match std::env::var("BFF_TRANSPORT") {
            Ok(v) => Self::parse(&v).unwrap_or(TransportMode::Direct),
            Err(_) => TransportMode::Direct,
        }
    }
}

/// Service configuration.
#[derive(Debug, Clone, Copy)]
pub struct BlobConfig {
    /// Chunk (stripe) size in bytes. Paper: 256 KB.
    pub chunk_size: u64,
    /// Number of replicas per chunk. Paper's headline runs: 1.
    pub replication: usize,
    /// How replicas are pushed on write (see [`ReplicationMode`]).
    pub replication_mode: ReplicationMode,
    /// Providers acknowledge writes after the page cache absorbs them
    /// (§5.3: "BlobSeer uses an asynchronous write strategy that returns
    /// to the client before data was committed to disk").
    pub async_writes: bool,
    /// Whether providers serve repeat chunk reads from memory (the host
    /// page cache) rather than re-reading the disk.
    pub provider_read_cache: bool,
    /// Serialized size of one metadata tree node, for RPC costing.
    pub node_bytes: u64,
    /// Size of a small control message, for RPC costing.
    pub control_bytes: u64,
    /// Content-addressed write deduplication (§3.1.3): a commit whose
    /// chunk payload already has live replicas under the node's digest
    /// index is published by reference (descriptor reuse + provider-side
    /// refcount bump) instead of re-replicated. Defaults to the
    /// `BFF_DEDUP` environment variable (unset → on), which is how CI
    /// runs the whole suite in both modes.
    pub dedup: bool,
    /// Cluster-wide content-addressed dedup (the second-level filter
    /// behind [`BlobConfig::dedup`], which must also be on): commits
    /// whose payloads miss the node's digest index additionally probe
    /// the cluster [`crate::cluster::ClusterIndex`] hosted beside the
    /// provider manager, so identical content committed from *different*
    /// nodes is published by reference instead of re-replicated. Probes
    /// resolve against the node's gossiped replica (no RPC); each commit
    /// pays at most one control round to publish its novel index
    /// entries. Defaults to the `BFF_CLUSTER_DEDUP` environment variable
    /// (unset → on), which is how CI runs the whole suite in both modes.
    pub cluster_dedup: bool,
    /// Entries kept in the cluster-wide dedup index. `0` disables the
    /// cluster index even when [`BlobConfig::cluster_dedup`] is on.
    pub cluster_index_chunks: usize,
    /// Versions kept in the node-shared chunk-descriptor cache before
    /// LRU eviction (entries are per `(blob, version)`; snapshots are
    /// immutable so the bound only caps memory, never freshness).
    pub desc_cache_versions: usize,
    /// Entries kept in the node's content-digest index (dedup lookup
    /// window). `0` disables the index even when `dedup` is on.
    pub digest_index_chunks: usize,
    /// Adaptive cross-VM prefetching (§3.1.3: co-deployed VMs touch
    /// nearly identical chunk sequences): nodes publish access summaries
    /// to the cluster `PatternBoard` and issue asynchronous read-ahead
    /// of the chunks their peers touched, landing them in the
    /// node-shared chunk cache. Defaults to the `BFF_PREFETCH`
    /// environment variable (unset → on), which is how CI runs the whole
    /// suite in both modes.
    pub prefetch: bool,
    /// In-flight budget of one asynchronous read-ahead step, in chunks
    /// ([`crate::Client::prefetch_chunks`] fetches at most this many per
    /// call).
    pub prefetch_window: usize,
    /// Prefetch confidence filter: only read ahead chunks that at least
    /// this many *distinct* publishers reported to the cluster
    /// [`crate::board::PatternBoard`]. Applies once the board has seen
    /// that many publishers for the snapshot — a lone seed VM's pattern
    /// is still prefetched in full; as soon as a cohort exists,
    /// single-publisher chunks (one VM's private divergence) are skipped,
    /// cutting read-ahead waste. `0` and `1` disable the filter.
    pub prefetch_min_publishers: usize,
    /// Byte bound of the node-shared chunk-data cache that prefetched
    /// (and, while prefetching is on, demand-fetched) chunks land in.
    /// LRU-evicted. A bound that cannot hold at least one chunk
    /// (including `0`) disables the cache — and with it the whole
    /// prefetch pipeline, even when [`BlobConfig::prefetch`] is on:
    /// read-ahead without somewhere to land the data would fetch every
    /// predicted chunk twice.
    pub chunk_cache_bytes: u64,
    /// Use the cryptographic (SHA-256) content digest for the dedup
    /// index instead of 64-bit FNV. A strong-digest index hit is
    /// collision-resistant, so the commit-by-reference path skips the
    /// byte-verification round against a stored replica. Off by default:
    /// FNV + verify is the reference behaviour.
    pub strong_digest: bool,
    /// Emulate the pre-wall-clock global pattern-board mutex: every
    /// board access — including the per-compute-burst prefetch poll —
    /// takes one exclusive lock instead of a sharded read lock. Identical
    /// logical behaviour, pure lock-granularity ablation; `load_sweep`
    /// runs this as its contention baseline. Off by default.
    pub coarse_board_lock: bool,
    /// Emulate per-chunk acquisition of the node-shared chunk-cache lock
    /// in batched reads (one lock round trip per chunk instead of one
    /// per read plan). Identical logical behaviour; `load_sweep`
    /// baseline ablation. Off by default.
    pub coarse_cache_locks: bool,
    /// Emulate per-key exclusive locking of the cluster dedup index
    /// during commit probes (one exclusive acquisition per missed chunk
    /// instead of one shared acquisition per commit). Identical logical
    /// behaviour; `load_sweep` baseline ablation. Off by default.
    pub coarse_cluster_probe: bool,
    /// How typed requests reach the server roles (see [`TransportMode`]).
    /// Defaults to the `BFF_TRANSPORT` environment variable (unset or
    /// unrecognized → [`TransportMode::Direct`]), which is how CI runs
    /// the whole test suite over the codec transport.
    pub transport: TransportMode,
    /// Group-commit durability on disk-backed deployments: concurrent
    /// acked puts/retains/publishes append under the log lock, then
    /// park on a sync ticket; one leader issues a single `sync_data`
    /// covering every append at-or-before its high-water mark, so N
    /// concurrent acks cost ~1 fsync instead of N. Fsync-before-ack is
    /// preserved — a ticket only acks after a sync covering its append
    /// *completed*. Off restores the measurable per-ack baseline (one
    /// fsync per acknowledged op). Defaults to the `BFF_GROUP_COMMIT`
    /// environment variable (unset → on), which is how CI runs the
    /// recovery smoke in both disciplines.
    pub group_commit: bool,
    /// Upper bound, in microseconds, on how long a group-commit
    /// follower parks for a leader's sync before re-checking (and, with
    /// the leader gone, taking over) — a lone writer's ack is never
    /// delayed past this window by a vanished cohort.
    pub flush_interval_us: u64,
}

/// Whether an on-by-default feature toggle (`BFF_DEDUP`,
/// `BFF_PREFETCH`) asks to be disabled (CI toggles the whole test suite
/// through these).
fn env_default_on(var: &str) -> bool {
    match std::env::var(var) {
        Ok(v) => !matches!(v.trim(), "0" | "false" | "off" | "no"),
        Err(_) => true,
    }
}

impl Default for BlobConfig {
    fn default() -> Self {
        Self {
            chunk_size: 256 << 10,
            replication: 1,
            replication_mode: ReplicationMode::Fanout,
            async_writes: true,
            provider_read_cache: true,
            node_bytes: 96,
            control_bytes: 64,
            dedup: env_default_on("BFF_DEDUP"),
            cluster_dedup: env_default_on("BFF_CLUSTER_DEDUP"),
            cluster_index_chunks: 1 << 18,
            desc_cache_versions: 64,
            digest_index_chunks: 1 << 16,
            prefetch: env_default_on("BFF_PREFETCH"),
            prefetch_window: 8,
            prefetch_min_publishers: 2,
            chunk_cache_bytes: 64 << 20,
            strong_digest: false,
            coarse_board_lock: false,
            coarse_cache_locks: false,
            coarse_cluster_probe: false,
            transport: TransportMode::from_env(),
            group_commit: env_default_on("BFF_GROUP_COMMIT"),
            flush_interval_us: 500,
        }
    }
}

impl BlobConfig {
    /// The default configuration with every `BFF_*` feature toggle read
    /// from the environment. This is the **single** place the service
    /// consults the environment; all other code receives a `BlobConfig`.
    ///
    /// | Variable | Effect | Default |
    /// |---|---|---|
    /// | `BFF_DEDUP` | node-level content dedup ([`BlobConfig::dedup`]); `0`/`false`/`off`/`no` disables | on |
    /// | `BFF_CLUSTER_DEDUP` | cluster-wide dedup index ([`BlobConfig::cluster_dedup`]); same disable spellings | on |
    /// | `BFF_PREFETCH` | adaptive cross-VM prefetching ([`BlobConfig::prefetch`]); same disable spellings | on |
    /// | `BFF_TRANSPORT` | request transport ([`BlobConfig::transport`]): `direct`, `codec` or `socket` | `direct` |
    /// | `BFF_DATA_DIR` | durable state directory for `blob_server` processes (same as `--data-dir`): segment files + ref log for providers, mutation journal for managers, replayed on restart | off (volatile) |
    /// | `BFF_GROUP_COMMIT` | group-commit durability ([`BlobConfig::group_commit`]): batch concurrent acks behind one fsync; `0`/`false`/`off`/`no` restores the per-ack fsync baseline | on |
    ///
    /// The benchmark harness reads four more variables that are *not*
    /// part of the service configuration: `BFF_LOADGEN_THREADS` (wall
    /// clock load-generator thread count), `BFF_RECOVERY_THREADS`
    /// (client count for the `recovery_sweep` crash-recovery storm),
    /// `BFF_BENCH_FAST` (shrink sweep sizes for CI smoke runs) and
    /// `BFF_BENCH_JSON` (emit machine-readable results) — see the
    /// `bff-bench` crate.
    pub fn from_env() -> Self {
        Self::default()
    }

    /// Start a builder from the environment-derived defaults:
    /// `BlobConfig::builder().dedup(false).prefetch_window(32).build()`.
    pub fn builder() -> BlobConfigBuilder {
        BlobConfigBuilder {
            cfg: Self::default(),
        }
    }
}

/// Fluent construction of a [`BlobConfig`] (see [`BlobConfig::builder`]).
#[derive(Debug, Clone)]
pub struct BlobConfigBuilder {
    cfg: BlobConfig,
}

macro_rules! builder_setters {
    ($($(#[$doc:meta])* $field:ident: $ty:ty),* $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $field(mut self, v: $ty) -> Self {
                self.cfg.$field = v;
                self
            }
        )*
    };
}

impl BlobConfigBuilder {
    builder_setters! {
        /// See [`BlobConfig::chunk_size`].
        chunk_size: u64,
        /// See [`BlobConfig::replication`].
        replication: usize,
        /// See [`BlobConfig::replication_mode`].
        replication_mode: ReplicationMode,
        /// See [`BlobConfig::async_writes`].
        async_writes: bool,
        /// See [`BlobConfig::provider_read_cache`].
        provider_read_cache: bool,
        /// See [`BlobConfig::node_bytes`].
        node_bytes: u64,
        /// See [`BlobConfig::control_bytes`].
        control_bytes: u64,
        /// See [`BlobConfig::dedup`].
        dedup: bool,
        /// See [`BlobConfig::cluster_dedup`].
        cluster_dedup: bool,
        /// See [`BlobConfig::cluster_index_chunks`].
        cluster_index_chunks: usize,
        /// See [`BlobConfig::desc_cache_versions`].
        desc_cache_versions: usize,
        /// See [`BlobConfig::digest_index_chunks`].
        digest_index_chunks: usize,
        /// See [`BlobConfig::prefetch`].
        prefetch: bool,
        /// See [`BlobConfig::prefetch_window`].
        prefetch_window: usize,
        /// See [`BlobConfig::prefetch_min_publishers`].
        prefetch_min_publishers: usize,
        /// See [`BlobConfig::chunk_cache_bytes`].
        chunk_cache_bytes: u64,
        /// See [`BlobConfig::strong_digest`].
        strong_digest: bool,
        /// See [`BlobConfig::coarse_board_lock`].
        coarse_board_lock: bool,
        /// See [`BlobConfig::coarse_cache_locks`].
        coarse_cache_locks: bool,
        /// See [`BlobConfig::coarse_cluster_probe`].
        coarse_cluster_probe: bool,
        /// See [`BlobConfig::transport`].
        transport: TransportMode,
        /// See [`BlobConfig::group_commit`].
        group_commit: bool,
        /// See [`BlobConfig::flush_interval_us`].
        flush_interval_us: u64,
    }

    /// Finish: the accumulated configuration.
    pub fn build(self) -> BlobConfig {
        self.cfg
    }
}

/// Placement of the service's roles onto cluster nodes.
///
/// In the paper's deployment the providers and metadata servers run on all
/// compute nodes (aggregating their local disks into the common pool,
/// §3.1.1), while the version manager and provider manager are single
/// logical services.
#[derive(Debug, Clone)]
pub struct BlobTopology {
    /// Node hosting the version manager.
    pub vmanager: NodeId,
    /// Node hosting the provider manager.
    pub pmanager: NodeId,
    /// Metadata server nodes (tree nodes are hash-partitioned over them).
    pub metadata: Vec<NodeId>,
    /// Chunk provider nodes.
    pub providers: Vec<NodeId>,
}

impl BlobTopology {
    /// The paper's co-located deployment: every compute node is both a
    /// provider and a metadata server; managers sit on `service_node`.
    pub fn colocated(compute_nodes: &[NodeId], service_node: NodeId) -> Self {
        Self {
            vmanager: service_node,
            pmanager: service_node,
            metadata: compute_nodes.to_vec(),
            providers: compute_nodes.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colocated_topology() {
        let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
        let t = BlobTopology::colocated(&nodes, NodeId(9));
        assert_eq!(t.vmanager, NodeId(9));
        assert_eq!(t.providers.len(), 4);
        assert_eq!(t.metadata.len(), 4);
    }

    #[test]
    fn builder_overrides_defaults() {
        let cfg = BlobConfig::builder()
            .dedup(false)
            .prefetch_window(32)
            .transport(TransportMode::Codec)
            .build();
        assert!(!cfg.dedup);
        assert_eq!(cfg.prefetch_window, 32);
        assert_eq!(cfg.transport, TransportMode::Codec);
        // Untouched fields keep their defaults.
        assert_eq!(cfg.chunk_size, BlobConfig::default().chunk_size);
    }

    #[test]
    fn transport_mode_names_roundtrip() {
        for mode in [
            TransportMode::Direct,
            TransportMode::Codec,
            TransportMode::Socket,
        ] {
            assert_eq!(TransportMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(TransportMode::parse("carrier-pigeon"), None);
    }
}
