//! Public identifiers, configuration and errors of the BlobSeer-like
//! versioning storage service.

use bff_net::{NetError, NodeId};
use std::fmt;
use std::sync::Arc;

/// Identifier of a BLOB (one VM image lineage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlobId(pub u64);

/// Snapshot version of a BLOB. `Version(0)` is the empty blob created by
/// `create_blob`; every successful write publishes the next version.
/// Versions form a totally ordered sequence per blob (§4.2: "consecutive
/// COMMIT calls ... generate a totally ordered set of snapshots").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Version(pub u64);

/// Identifier of a stored chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChunkId(pub u64);

/// Identifier of a metadata tree node. `NodeKey::NULL` denotes an entirely
/// unwritten (all-zero) subtree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeKey(pub u64);

impl NodeKey {
    /// The null key: an absent subtree (reads as zeros).
    pub const NULL: NodeKey = NodeKey(0);

    /// Whether this key is the null subtree.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for BlobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blob{}", self.0)
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Where a chunk's replicas live.
///
/// Replica sets are shared (`Arc`) rather than owned: a descriptor is
/// cloned many times per commit (tree leaf, metadata shard, descriptor
/// caches), and sharing the set makes each clone a refcount bump instead
/// of a heap allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkDesc {
    /// The stored chunk.
    pub id: ChunkId,
    /// Provider nodes holding a replica, in allocation order.
    pub replicas: Arc<[NodeId]>,
}

/// A metadata segment-tree node (Fig. 3 of the paper).
///
/// Geometry is implicit: the root covers chunk indices `0..span` and each
/// inner node splits its range in half, so nodes store only child links.
/// Children may belong to trees of *other* snapshots or other blobs —
/// that is exactly the sharing that shadowing and cloning exploit.
#[derive(Debug, Clone, PartialEq)]
pub enum TreeNode {
    /// Interior node with two children (either may be NULL).
    Inner {
        /// Left child: first half of the covered chunk range.
        left: NodeKey,
        /// Right child: second half.
        right: NodeKey,
    },
    /// Leaf covering exactly one chunk.
    Leaf {
        /// The chunk written at this index.
        chunk: ChunkDesc,
    },
}

/// How chunk replicas are pushed to their providers on write.
///
/// All modes move the same payload bytes and leave byte-identical
/// provider state; they differ in how the transfers are shaped, which is
/// what the fabric's per-message and per-link costs see.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationMode {
    /// The client pushes every replica itself, with all pushes grouped by
    /// destination provider into one batched transfer each. Highest
    /// client egress (`k×` the payload), lowest replication latency depth.
    Fanout,
    /// The client pushes each chunk group to its first replica only; each
    /// replica forwards the batch to the next one in the descriptor's
    /// replica order. Client egress is `1×` the payload; the forwarding
    /// load rides the providers' links. The *whole batch* moves hop by
    /// hop, so on a fabric with non-zero transfer time the chain's
    /// latency is `hops × batch time`.
    Chain,
    /// Chain replication with chunk-granular pipelining: each chunk walks
    /// the replica chain independently, so hop `n+1` starts streaming
    /// chunk `i` while hop `n` is already receiving chunk `i+1` — on the
    /// simulated fabric the chain's latency collapses towards
    /// `batch time + hops × chunk time` (the Frisbee-style overlap the
    /// broadcast ablations show, applied to replication). Client egress
    /// is still `1×` the payload; the cost is one message per
    /// `(chunk, hop)` instead of one per hop, which is what the fabric's
    /// per-message overhead sees. Failover semantics are identical to
    /// [`ReplicationMode::Chain`]: a dead hop is skipped per chunk and
    /// the next hop is fed from the last live holder.
    ChainPipelined,
    /// The pre-batching reference path: one push per chunk, replicas in
    /// sequence. Kept for equivalence tests and as the perf baseline the
    /// `bench-regression` CI gate measures the batched modes against.
    Sequential,
}

/// Service configuration.
#[derive(Debug, Clone, Copy)]
pub struct BlobConfig {
    /// Chunk (stripe) size in bytes. Paper: 256 KB.
    pub chunk_size: u64,
    /// Number of replicas per chunk. Paper's headline runs: 1.
    pub replication: usize,
    /// How replicas are pushed on write (see [`ReplicationMode`]).
    pub replication_mode: ReplicationMode,
    /// Providers acknowledge writes after the page cache absorbs them
    /// (§5.3: "BlobSeer uses an asynchronous write strategy that returns
    /// to the client before data was committed to disk").
    pub async_writes: bool,
    /// Whether providers serve repeat chunk reads from memory (the host
    /// page cache) rather than re-reading the disk.
    pub provider_read_cache: bool,
    /// Serialized size of one metadata tree node, for RPC costing.
    pub node_bytes: u64,
    /// Size of a small control message, for RPC costing.
    pub control_bytes: u64,
    /// Content-addressed write deduplication (§3.1.3): a commit whose
    /// chunk payload already has live replicas under the node's digest
    /// index is published by reference (descriptor reuse + provider-side
    /// refcount bump) instead of re-replicated. Defaults to the
    /// `BFF_DEDUP` environment variable (unset → on), which is how CI
    /// runs the whole suite in both modes.
    pub dedup: bool,
    /// Cluster-wide content-addressed dedup (the second-level filter
    /// behind [`BlobConfig::dedup`], which must also be on): commits
    /// whose payloads miss the node's digest index additionally probe
    /// the cluster [`crate::cluster::ClusterIndex`] hosted beside the
    /// provider manager, so identical content committed from *different*
    /// nodes is published by reference instead of re-replicated. Probes
    /// resolve against the node's gossiped replica (no RPC); each commit
    /// pays at most one control round to publish its novel index
    /// entries. Defaults to the `BFF_CLUSTER_DEDUP` environment variable
    /// (unset → on), which is how CI runs the whole suite in both modes.
    pub cluster_dedup: bool,
    /// Entries kept in the cluster-wide dedup index. `0` disables the
    /// cluster index even when [`BlobConfig::cluster_dedup`] is on.
    pub cluster_index_chunks: usize,
    /// Versions kept in the node-shared chunk-descriptor cache before
    /// LRU eviction (entries are per `(blob, version)`; snapshots are
    /// immutable so the bound only caps memory, never freshness).
    pub desc_cache_versions: usize,
    /// Entries kept in the node's content-digest index (dedup lookup
    /// window). `0` disables the index even when `dedup` is on.
    pub digest_index_chunks: usize,
    /// Adaptive cross-VM prefetching (§3.1.3: co-deployed VMs touch
    /// nearly identical chunk sequences): nodes publish access summaries
    /// to the cluster `PatternBoard` and issue asynchronous read-ahead
    /// of the chunks their peers touched, landing them in the
    /// node-shared chunk cache. Defaults to the `BFF_PREFETCH`
    /// environment variable (unset → on), which is how CI runs the whole
    /// suite in both modes.
    pub prefetch: bool,
    /// In-flight budget of one asynchronous read-ahead step, in chunks
    /// ([`crate::Client::prefetch_chunks`] fetches at most this many per
    /// call).
    pub prefetch_window: usize,
    /// Prefetch confidence filter: only read ahead chunks that at least
    /// this many *distinct* publishers reported to the cluster
    /// [`crate::board::PatternBoard`]. Applies once the board has seen
    /// that many publishers for the snapshot — a lone seed VM's pattern
    /// is still prefetched in full; as soon as a cohort exists,
    /// single-publisher chunks (one VM's private divergence) are skipped,
    /// cutting read-ahead waste. `0` and `1` disable the filter.
    pub prefetch_min_publishers: usize,
    /// Byte bound of the node-shared chunk-data cache that prefetched
    /// (and, while prefetching is on, demand-fetched) chunks land in.
    /// LRU-evicted. A bound that cannot hold at least one chunk
    /// (including `0`) disables the cache — and with it the whole
    /// prefetch pipeline, even when [`BlobConfig::prefetch`] is on:
    /// read-ahead without somewhere to land the data would fetch every
    /// predicted chunk twice.
    pub chunk_cache_bytes: u64,
    /// Use the cryptographic (SHA-256) content digest for the dedup
    /// index instead of 64-bit FNV. A strong-digest index hit is
    /// collision-resistant, so the commit-by-reference path skips the
    /// byte-verification round against a stored replica. Off by default:
    /// FNV + verify is the reference behaviour.
    pub strong_digest: bool,
    /// Emulate the pre-wall-clock global pattern-board mutex: every
    /// board access — including the per-compute-burst prefetch poll —
    /// takes one exclusive lock instead of a sharded read lock. Identical
    /// logical behaviour, pure lock-granularity ablation; `load_sweep`
    /// runs this as its contention baseline. Off by default.
    pub coarse_board_lock: bool,
    /// Emulate per-chunk acquisition of the node-shared chunk-cache lock
    /// in batched reads (one lock round trip per chunk instead of one
    /// per read plan). Identical logical behaviour; `load_sweep`
    /// baseline ablation. Off by default.
    pub coarse_cache_locks: bool,
    /// Emulate per-key exclusive locking of the cluster dedup index
    /// during commit probes (one exclusive acquisition per missed chunk
    /// instead of one shared acquisition per commit). Identical logical
    /// behaviour; `load_sweep` baseline ablation. Off by default.
    pub coarse_cluster_probe: bool,
}

/// Whether an on-by-default feature toggle (`BFF_DEDUP`,
/// `BFF_PREFETCH`) asks to be disabled (CI toggles the whole test suite
/// through these).
fn env_default_on(var: &str) -> bool {
    match std::env::var(var) {
        Ok(v) => !matches!(v.trim(), "0" | "false" | "off" | "no"),
        Err(_) => true,
    }
}

impl Default for BlobConfig {
    fn default() -> Self {
        Self {
            chunk_size: 256 << 10,
            replication: 1,
            replication_mode: ReplicationMode::Fanout,
            async_writes: true,
            provider_read_cache: true,
            node_bytes: 96,
            control_bytes: 64,
            dedup: env_default_on("BFF_DEDUP"),
            cluster_dedup: env_default_on("BFF_CLUSTER_DEDUP"),
            cluster_index_chunks: 1 << 18,
            desc_cache_versions: 64,
            digest_index_chunks: 1 << 16,
            prefetch: env_default_on("BFF_PREFETCH"),
            prefetch_window: 8,
            prefetch_min_publishers: 2,
            chunk_cache_bytes: 64 << 20,
            strong_digest: false,
            coarse_board_lock: false,
            coarse_cache_locks: false,
            coarse_cluster_probe: false,
        }
    }
}

/// Placement of the service's roles onto cluster nodes.
///
/// In the paper's deployment the providers and metadata servers run on all
/// compute nodes (aggregating their local disks into the common pool,
/// §3.1.1), while the version manager and provider manager are single
/// logical services.
#[derive(Debug, Clone)]
pub struct BlobTopology {
    /// Node hosting the version manager.
    pub vmanager: NodeId,
    /// Node hosting the provider manager.
    pub pmanager: NodeId,
    /// Metadata server nodes (tree nodes are hash-partitioned over them).
    pub metadata: Vec<NodeId>,
    /// Chunk provider nodes.
    pub providers: Vec<NodeId>,
}

impl BlobTopology {
    /// The paper's co-located deployment: every compute node is both a
    /// provider and a metadata server; managers sit on `service_node`.
    pub fn colocated(compute_nodes: &[NodeId], service_node: NodeId) -> Self {
        Self {
            vmanager: service_node,
            pmanager: service_node,
            metadata: compute_nodes.to_vec(),
            providers: compute_nodes.to_vec(),
        }
    }
}

/// Errors returned by the storage service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlobError {
    /// Unknown blob.
    NoSuchBlob(BlobId),
    /// Unknown version for a known blob.
    NoSuchVersion(BlobId, Version),
    /// Optimistic-concurrency conflict: the base version was no longer
    /// the latest when publishing.
    Conflict {
        /// Blob being written.
        blob: BlobId,
        /// The version the writer based its update on.
        base: Version,
        /// The latest version at publish time.
        latest: Version,
    },
    /// Access beyond the blob size.
    OutOfBounds {
        /// Requested range start.
        offset: u64,
        /// Requested length.
        len: u64,
        /// Blob size.
        size: u64,
    },
    /// A chunk could not be served by any replica.
    ChunkUnavailable(ChunkId),
    /// Metadata inconsistency (missing tree node) — indicates a bug or a
    /// failed metadata server.
    MetadataMissing(NodeKey),
    /// Transport-level failure.
    Net(NetError),
    /// Invalid argument.
    BadInput(&'static str),
}

impl From<NetError> for BlobError {
    fn from(e: NetError) -> Self {
        BlobError::Net(e)
    }
}

impl fmt::Display for BlobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlobError::NoSuchBlob(b) => write!(f, "{b} does not exist"),
            BlobError::NoSuchVersion(b, v) => write!(f, "{b} has no snapshot {v}"),
            BlobError::Conflict { blob, base, latest } => {
                write!(
                    f,
                    "write to {blob} based on {base} conflicts with latest {latest}"
                )
            }
            BlobError::OutOfBounds { offset, len, size } => {
                write!(f, "access {offset}+{len} beyond blob size {size}")
            }
            BlobError::ChunkUnavailable(c) => write!(f, "chunk {c:?} unavailable on all replicas"),
            BlobError::MetadataMissing(k) => write!(f, "metadata node {k:?} missing"),
            BlobError::Net(e) => write!(f, "network: {e}"),
            BlobError::BadInput(m) => write!(f, "bad input: {m}"),
        }
    }
}

impl std::error::Error for BlobError {}

/// Result alias for service operations.
pub type BlobResult<T> = Result<T, BlobError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_key_identity() {
        assert!(NodeKey::NULL.is_null());
        assert!(!NodeKey(1).is_null());
    }

    #[test]
    fn colocated_topology() {
        let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
        let t = BlobTopology::colocated(&nodes, NodeId(9));
        assert_eq!(t.vmanager, NodeId(9));
        assert_eq!(t.providers.len(), 4);
        assert_eq!(t.metadata.len(), 4);
    }

    #[test]
    fn errors_display() {
        let e = BlobError::Conflict {
            blob: BlobId(1),
            base: Version(2),
            latest: Version(3),
        };
        assert!(e.to_string().contains("conflicts"));
    }
}
