//! The assembled storage service: managers, metadata shards and providers
//! bound to cluster nodes and to a [`Fabric`].
//!
//! All server components are passive state machines guarded by mutexes;
//! *clients* execute the protocol logic and charge the fabric for every
//! message and disk access around those state transitions. Locks are
//! never held across fabric calls, so the same `BlobStore` works under
//! real thread concurrency (in-process mode) and under simulated
//! concurrency (coroutine processes).

use crate::api::{BlobConfig, BlobId, BlobTopology, ChunkId, Version};
use crate::board::BoardService;
use crate::cluster::ClusterIndex;
use crate::context::NodeContext;
use crate::lockstat::{probed_read, probed_write, LockContention, LockProbe};
use crate::meta::MetaPartition;
use crate::pmanager::{PManager, Placement};
use crate::provider::ProviderStore;
use crate::vmanager::VManager;
use bff_data::FastMap;
use bff_data::FastSet;
use bff_net::{Fabric, NodeId};
use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::sync::Arc;

/// A deployed BlobSeer-like service.
pub struct BlobStore {
    pub(crate) cfg: BlobConfig,
    pub(crate) topo: BlobTopology,
    pub(crate) fabric: Arc<dyn Fabric>,
    pub(crate) vmanager: Mutex<VManager>,
    pub(crate) pmanager: Mutex<PManager>,
    pub(crate) meta: Vec<Mutex<MetaPartition>>,
    /// Sharded one lock per provider: data-plane tasks on distinct
    /// providers never contend (see [`ProviderStore`]).
    pub(crate) providers: ProviderStore,
    /// One [`NodeContext`] per compute node, created lazily: every
    /// client on a node attaches to the same shared cache module (the
    /// paper's per-node FUSE process, §4.1).
    contexts: Mutex<FastMap<NodeId, Arc<NodeContext>>>,
    /// The cluster access-pattern board, hosted beside the provider
    /// manager (publishes pay an RPC to `topo.pmanager`; updates are
    /// gossiped to the compute nodes — see [`crate::board`]). The
    /// service does its own sharded read/write locking.
    pub(crate) pattern_board: BoardService,
    /// The cluster-wide content-addressed dedup index, hosted beside the
    /// provider manager on the same publish/gossip transport as the
    /// board (see [`crate::cluster`]). Read-mostly after deployment
    /// convergence (probes vastly outnumber novel-entry publishes), so a
    /// read/write lock; acquisitions on the client hot paths go through
    /// [`BlobStore::cluster_read`]/[`BlobStore::cluster_write`] and are
    /// contention-counted.
    pub(crate) cluster_index: RwLock<ClusterIndex>,
    cluster_probe: LockProbe,
}

impl BlobStore {
    /// Deploy the service with the given configuration and placement.
    pub fn new(cfg: BlobConfig, topo: BlobTopology, fabric: Arc<dyn Fabric>) -> Arc<Self> {
        Self::with_placement(cfg, topo, fabric, Placement::RoundRobin)
    }

    /// Deploy with an explicit chunk-placement strategy.
    pub fn with_placement(
        cfg: BlobConfig,
        topo: BlobTopology,
        fabric: Arc<dyn Fabric>,
        placement: Placement,
    ) -> Arc<Self> {
        assert!(!topo.providers.is_empty(), "need at least one provider");
        assert!(
            !topo.metadata.is_empty(),
            "need at least one metadata server"
        );
        let providers = ProviderStore::new(&topo.providers);
        let cluster_cap = if cfg.cluster_dedup && cfg.dedup {
            cfg.cluster_index_chunks
        } else {
            0
        };
        let meta = topo
            .metadata
            .iter()
            .map(|_| Mutex::new(MetaPartition::new()))
            .collect();
        Arc::new(Self {
            pmanager: Mutex::new(PManager::new(topo.providers.clone(), placement)),
            vmanager: Mutex::new(VManager::new()),
            providers,
            meta,
            cfg,
            topo,
            fabric,
            contexts: Mutex::new(FastMap::default()),
            pattern_board: BoardService::new(cfg.coarse_board_lock),
            cluster_index: RwLock::new(ClusterIndex::new(cluster_cap)),
            cluster_probe: LockProbe::default(),
        })
    }

    /// The shared cache module of `node` (created on first use). All
    /// clients co-located on a node attach to the same context, sharing
    /// its descriptor cache and content-digest index.
    pub fn node_context(&self, node: NodeId) -> Arc<NodeContext> {
        Arc::clone(
            self.contexts
                .lock()
                .entry(node)
                .or_insert_with(|| Arc::new(NodeContext::new(&self.cfg))),
        )
    }

    /// The cluster access-pattern board (diagnostics; the data plane
    /// goes through [`crate::Client`]).
    pub fn pattern_board(&self) -> &BoardService {
        &self.pattern_board
    }

    /// The cluster-wide dedup index (diagnostics; the data plane goes
    /// through [`crate::Client::write_chunks`]).
    pub fn cluster_index(&self) -> &RwLock<ClusterIndex> {
        &self.cluster_index
    }

    /// Shared read access to the cluster dedup index, contention-counted
    /// (the commit-probe hot path).
    pub(crate) fn cluster_read(&self) -> RwLockReadGuard<'_, ClusterIndex> {
        probed_read(&self.cluster_probe, &self.cluster_index)
    }

    /// Exclusive access to the cluster dedup index, contention-counted.
    pub(crate) fn cluster_write(&self) -> RwLockWriteGuard<'_, ClusterIndex> {
        probed_write(&self.cluster_probe, &self.cluster_index)
    }

    /// Contention counters of the cluster-index lock.
    pub fn cluster_contention(&self) -> LockContention {
        self.cluster_probe.snapshot()
    }

    /// Cluster-wide eviction after a snapshot delete: drop the deleted
    /// versions' pattern/descriptor state and every cached trace of the
    /// freed chunks from the cluster index and all node contexts. The
    /// caller (the deleting client) charges the gossip that carries
    /// these evictions; the state change itself is the replicas
    /// converging.
    pub(crate) fn purge_deleted(&self, versions: &[(BlobId, Version)], freed: &FastSet<ChunkId>) {
        for &key in versions {
            self.pattern_board.drop_pattern(key);
        }
        if !freed.is_empty() {
            self.cluster_write().evict_chunks(freed);
        }
        let contexts: Vec<Arc<NodeContext>> = self.contexts.lock().values().cloned().collect();
        for ctx in contexts {
            for &key in versions {
                ctx.purge_version(key);
            }
            if !freed.is_empty() {
                ctx.purge_chunks(freed);
            }
        }
    }

    /// Service configuration.
    pub fn config(&self) -> &BlobConfig {
        &self.cfg
    }

    /// Service placement.
    pub fn topology(&self) -> &BlobTopology {
        &self.topo
    }

    /// The fabric this service charges.
    pub fn fabric(&self) -> &Arc<dyn Fabric> {
        &self.fabric
    }

    /// The deployed provider set (chunk stores, refcounts, loads).
    pub fn providers(&self) -> &ProviderStore {
        &self.providers
    }

    /// Total chunk payload bytes stored across all providers. Shared
    /// chunks are stored once, so this is the paper's storage-space
    /// metric: snapshots that share content do not multiply it.
    /// Lock-free: maintained by the sharded store's atomic counters.
    pub fn total_stored_bytes(&self) -> u64 {
        self.providers.total_stored_bytes()
    }

    /// Total chunks stored across all providers (lock-free).
    pub fn total_chunks(&self) -> usize {
        self.providers.total_chunks()
    }

    /// Total metadata tree nodes stored.
    pub fn total_metadata_nodes(&self) -> usize {
        self.meta.iter().map(|m| m.lock().node_count()).sum()
    }

    /// Per-provider stored bytes, in `topology().providers` order
    /// (balance diagnostics).
    pub fn provider_loads(&self) -> Vec<u64> {
        self.providers.loads()
    }

    /// Drop all simulated page caches (ablations).
    pub fn drop_provider_caches(&self) {
        self.providers.drop_caches();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bff_net::{LocalFabric, NodeId};

    #[test]
    fn deploy_shapes_match_topology() {
        let fabric = LocalFabric::new(6);
        let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
        let topo = BlobTopology::colocated(&nodes, NodeId(5));
        let store = BlobStore::new(BlobConfig::default(), topo, fabric);
        assert_eq!(store.providers.len(), 4);
        assert_eq!(store.meta.len(), 4);
        assert_eq!(store.total_stored_bytes(), 0);
        assert_eq!(store.total_metadata_nodes(), 0);
    }

    #[test]
    fn node_contexts_shared_per_node() {
        let fabric = LocalFabric::new(3);
        let nodes: Vec<NodeId> = (0..2).map(NodeId).collect();
        let topo = BlobTopology::colocated(&nodes, NodeId(2));
        let store = BlobStore::new(BlobConfig::default(), topo, fabric);
        let a = store.node_context(NodeId(0));
        let b = store.node_context(NodeId(0));
        let c = store.node_context(NodeId(1));
        assert!(Arc::ptr_eq(&a, &b), "same node → same shared context");
        assert!(!Arc::ptr_eq(&a, &c), "different nodes stay isolated");
    }

    #[test]
    #[should_panic(expected = "provider")]
    fn empty_provider_set_rejected() {
        let fabric = LocalFabric::new(1);
        let topo = BlobTopology {
            vmanager: NodeId(0),
            pmanager: NodeId(0),
            metadata: vec![NodeId(0)],
            providers: vec![],
        };
        BlobStore::new(BlobConfig::default(), topo, fabric);
    }
}
